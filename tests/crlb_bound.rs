//! The Cramér–Rao bound must actually bound: achieved errors sit above the
//! information-theoretic floor, and pre-knowledge moves the floor the way
//! the paper claims.

use wsnloc::crlb::{crlb_per_node, mean_crlb};
use wsnloc::prelude::*;
use wsnloc_eval::{evaluate, EvalConfig};

fn scenario() -> Scenario {
    Scenario {
        name: "crlb".into(),
        deployment: Deployment::planned_square_drop(600.0, 3, 60.0),
        node_count: 70,
        anchors: AnchorStrategy::Grid { count: 9 },
        radio: RadioModel::UnitDisk { range: 170.0 },
        ranging: RangingModel::Multiplicative { factor: 0.1 },
        seed: 0xB0D,
    }
}

#[test]
fn achieved_error_respects_bound() {
    let s = scenario();
    // RMS achieved error over trials vs mean bound: the bound is per-node
    // RMS, so compare RMS to RMS with a tolerance for Monte-Carlo noise.
    let algo = BnlLocalizer::builder(Backend::particle(150).expect("valid backend"))
        .prior(PriorModel::DropPoint { sigma: 60.0 })
        .max_iterations(8)
        .tolerance(2.0)
        .try_build()
        .expect("valid config");
    let outcome = evaluate(&algo, &s, &EvalConfig::trials(3));
    let achieved_rms = outcome.summary().unwrap().rmse;
    let mut bounds = Vec::new();
    for t in 0..3 {
        let (net, truth) = s.build_trial(t);
        bounds.push(mean_crlb(&net, &truth, Some(60.0)).unwrap());
    }
    let bound = bounds.iter().sum::<f64>() / bounds.len() as f64;
    assert!(
        achieved_rms > 0.6 * bound,
        "achieved RMS {achieved_rms:.2} m implausibly beats the CRLB {bound:.2} m"
    );
}

#[test]
fn prior_information_tightens_bound() {
    let s = scenario();
    let (net, truth) = s.build_trial(0);
    let with = mean_crlb(&net, &truth, Some(60.0)).unwrap();
    let without = mean_crlb(&net, &truth, None).unwrap();
    assert!(with < without, "prior bound {with} vs {without}");
}

#[test]
fn bound_gap_grows_when_anchors_vanish() {
    // Pre-knowledge information matters most with few anchors (paper's
    // claim, checked at the bound level where it is exact).
    let mut sparse = scenario();
    sparse.anchors = AnchorStrategy::Random { count: 3 };
    let mut dense = scenario();
    dense.anchors = AnchorStrategy::Random { count: 20 };
    let gap = |s: &Scenario| {
        let (net, truth) = s.build_trial(0);
        mean_crlb(&net, &truth, None).unwrap() - mean_crlb(&net, &truth, Some(60.0)).unwrap()
    };
    assert!(gap(&sparse) > gap(&dense));
}

#[test]
fn bound_varies_sensibly_per_node() {
    let s = scenario();
    let (net, truth) = s.build_trial(0);
    let bounds = crlb_per_node(&net, &truth, Some(60.0)).unwrap();
    let values: Vec<f64> = bounds.iter().flatten().copied().collect();
    assert_eq!(
        values.len(),
        net.unknowns().count(),
        "one bound per unknown"
    );
    for &b in &values {
        assert!(b > 0.0 && b < 600.0, "bound {b}");
    }
    // Anchors carry no bound.
    for (id, _) in net.anchors() {
        assert!(bounds[id].is_none());
    }
}

#[test]
fn noise_scales_bound() {
    let mut quiet = scenario();
    quiet.ranging = RangingModel::Multiplicative { factor: 0.02 };
    let mut loud = scenario();
    loud.ranging = RangingModel::Multiplicative { factor: 0.3 };
    let bound = |s: &Scenario| {
        let (net, truth) = s.build_trial(0);
        mean_crlb(&net, &truth, None).unwrap()
    };
    assert!(bound(&loud) > bound(&quiet));
}
