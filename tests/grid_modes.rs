//! Accuracy contracts of the grid backend's opt-in throughput modes:
//! single-precision (f32) message passing and the coarse-to-fine
//! resolution schedule must track the default f64 dense run on a
//! realistic localization scenario (the F4 convergence-experiment
//! shape), and both knobs must be rejected with typed errors on
//! backends or parameters where they make no sense.

use wsnloc::prelude::*;

fn f4_style_scenario() -> Scenario {
    Scenario {
        name: "grid-modes".into(),
        deployment: Deployment::planned_square_drop(400.0, 3, 35.0),
        node_count: 45,
        anchors: AnchorStrategy::Grid { count: 9 },
        radio: RadioModel::UnitDisk { range: 140.0 },
        ranging: RangingModel::Multiplicative { factor: 0.05 },
        seed: 0xF4,
    }
}

fn grid_opts(resolution: usize) -> GridOptions {
    GridOptions::new(resolution).expect("valid grid resolution")
}

fn grid_builder_with(opts: GridOptions) -> BnlLocalizerBuilder {
    BnlLocalizer::builder(Backend::Grid(opts))
        .prior(PriorModel::DropPoint { sigma: 35.0 })
        .max_iterations(8)
        .tolerance(1.0)
}

fn grid_builder(resolution: usize) -> BnlLocalizerBuilder {
    grid_builder_with(grid_opts(resolution))
}

fn rmse(result: &LocalizationResult, truth: &GroundTruth, net: &Network) -> f64 {
    let errs: Vec<f64> = result
        .errors_for(truth, Some(net))
        .into_iter()
        .flatten()
        .collect();
    (errs.iter().map(|e| e * e).sum::<f64>() / errs.len() as f64).sqrt()
}

/// RMSE drift contract: the f32 hot path reproduces the f64 dense run's
/// accuracy to a small fraction of a grid cell, and per-node estimates
/// stay glued to the f64 ones.
#[test]
fn f32_rmse_drift_is_negligible_vs_f64_dense() {
    let (net, truth) = f4_style_scenario().build_trial(0);
    let f64_run = grid_builder(40)
        .try_build()
        .expect("valid f64 configuration")
        .localize(&net, 0);
    let f32_run = grid_builder_with(grid_opts(40).precision(GridPrecision::F32))
        .try_build()
        .expect("valid f32 configuration")
        .localize(&net, 0);
    let (r64, r32) = (rmse(&f64_run, &truth, &net), rmse(&f32_run, &truth, &net));
    // Cells are 10 m; the documented f32 contract keeps estimate drift
    // far below a cell width.
    assert!(
        (r64 - r32).abs() < 0.5,
        "f32 RMSE {r32:.3} drifted from f64 RMSE {r64:.3}"
    );
    for u in net.unknowns() {
        let a = f64_run.estimates[u].expect("f64 estimates every node");
        let b = f32_run.estimates[u].expect("f32 estimates every node");
        assert!(a.dist(b) < 2.0, "node {u}: f64 {a} vs f32 {b}");
    }
}

/// The coarse-to-fine schedule trades a cheap low-resolution pre-solve
/// for full-resolution iterations; its final accuracy must stay within
/// a cell of the flat dense run.
#[test]
fn coarse_to_fine_rmse_stays_within_a_cell_of_dense() {
    let (net, truth) = f4_style_scenario().build_trial(1);
    let dense = grid_builder(40)
        .try_build()
        .expect("valid dense configuration")
        .localize(&net, 0);
    let refined = grid_builder_with(
        grid_opts(40)
            .refine(CoarseToFine::default())
            .expect("default schedule is valid"),
    )
    .try_build()
    .expect("valid refined configuration")
    .localize(&net, 0);
    let (rd, rr) = (rmse(&dense, &truth, &net), rmse(&refined, &truth, &net));
    let cell = 400.0 / 40.0;
    assert!(
        (rd - rr).abs() < cell,
        "refined RMSE {rr:.3} vs dense RMSE {rd:.3} (cell {cell})"
    );
}

/// Both knobs compose: f32 + coarse-to-fine together still track the
/// f64 dense baseline.
#[test]
fn combined_f32_and_refinement_track_dense() {
    let (net, truth) = f4_style_scenario().build_trial(2);
    let dense = grid_builder(40)
        .try_build()
        .expect("valid dense configuration")
        .localize(&net, 0);
    let fast = grid_builder_with(
        grid_opts(40)
            .precision(GridPrecision::F32)
            .refine(CoarseToFine::default())
            .expect("default schedule is valid"),
    )
    .try_build()
    .expect("valid combined configuration")
    .localize(&net, 0);
    let (rd, rf) = (rmse(&dense, &truth, &net), rmse(&fast, &truth, &net));
    assert!(
        (rd - rf).abs() < 400.0 / 40.0,
        "combined RMSE {rf:.3} vs dense RMSE {rd:.3}"
    );
}

/// The knobs are grid-only *by type* — they live on [`GridOptions`], so
/// attaching them to another backend no longer even compiles — and their
/// parameters are validated where the options are constructed.
#[test]
fn mode_knobs_are_validated_at_construction_time() {
    // Degenerate resolutions are rejected before a backend exists.
    assert!(Backend::grid(0).is_err());
    assert!(Backend::grid(1).is_err());
    // Degenerate schedule parameters are rejected when attached.
    assert!(grid_opts(40)
        .refine(CoarseToFine {
            factor: 1,
            ..CoarseToFine::default()
        })
        .is_err());
    assert!(grid_opts(40)
        .refine(CoarseToFine {
            concentration: 1.5,
            ..CoarseToFine::default()
        })
        .is_err());
    // The default f64 dense configuration stays valid.
    assert!(grid_builder(40).try_build().is_ok());
}
