//! Robustness: degenerate and hostile inputs must degrade gracefully,
//! never panic.

use wsnloc::prelude::*;
use wsnloc_baselines::{Centroid, DvHop, MdsMap, MinMax, Multilateration, WeightedCentroid};
use wsnloc_geom::Shape;
use wsnloc_net::{Measurement, Network, NodeKind};

fn build(builder: BnlLocalizerBuilder) -> BnlLocalizer {
    builder.try_build().expect("valid config")
}

fn all_algorithms() -> Vec<Box<dyn Localizer>> {
    vec![
        Box::new(build(
            BnlLocalizer::builder(Backend::particle(60).expect("valid backend"))
                .max_iterations(3)
                .tolerance(1.0),
        )),
        Box::new(build(
            BnlLocalizer::builder(Backend::grid(15).expect("valid backend"))
                .max_iterations(3)
                .tolerance(1.0),
        )),
        Box::new(build(
            BnlLocalizer::builder(Backend::gaussian())
                .max_iterations(5)
                .tolerance(1.0),
        )),
        Box::new(Centroid),
        Box::new(WeightedCentroid),
        Box::new(MinMax),
        Box::new(Multilateration::nls()),
        Box::new(Multilateration::iterative()),
        Box::new(DvHop::default()),
        Box::new(MdsMap),
    ]
}

fn check_contract(net: &Network) {
    for algo in all_algorithms() {
        let r = algo.localize(net, 0);
        assert_eq!(r.estimates.len(), net.len(), "{}", algo.name());
        for est in r.estimates.iter().flatten() {
            assert!(
                est.is_finite(),
                "{} produced non-finite estimate",
                algo.name()
            );
        }
    }
}

#[test]
fn zero_anchor_network() {
    let s = Scenario {
        name: "no-anchors".into(),
        deployment: Deployment::uniform_square(300.0),
        node_count: 25,
        anchors: AnchorStrategy::Random { count: 0 },
        radio: RadioModel::UnitDisk { range: 120.0 },
        ranging: RangingModel::Multiplicative { factor: 0.1 },
        seed: 1,
    };
    let (net, _) = s.build_trial(0);
    assert_eq!(net.anchor_count(), 0);
    check_contract(&net);
}

#[test]
fn all_anchor_network() {
    let s = Scenario {
        name: "all-anchors".into(),
        deployment: Deployment::uniform_square(300.0),
        node_count: 12,
        anchors: AnchorStrategy::Random { count: 12 },
        radio: RadioModel::UnitDisk { range: 150.0 },
        ranging: RangingModel::Multiplicative { factor: 0.1 },
        seed: 2,
    };
    let (net, truth) = s.build_trial(0);
    assert_eq!(net.unknowns().count(), 0);
    for algo in all_algorithms() {
        let r = algo.localize(&net, 0);
        // Every node is an anchor: perfect "localization".
        for id in 0..net.len() {
            assert_eq!(r.estimates[id], Some(truth.position(id)), "{}", algo.name());
        }
    }
}

#[test]
fn single_node_network() {
    let net = Network::from_parts(
        Shape::Rect(Aabb::from_size(10.0, 10.0)),
        RadioModel::UnitDisk { range: 5.0 },
        RangingModel::AdditiveGaussian { sigma: 0.5 },
        vec![NodeKind::Unknown],
        vec![None],
        vec![None],
        vec![],
    );
    check_contract(&net);
}

#[test]
fn disconnected_components() {
    // Two clusters far apart; the far cluster has no anchors.
    let s = Scenario {
        name: "disconnected".into(),
        deployment: Deployment::DropPoints {
            targets: vec![Vec2::new(100.0, 100.0), Vec2::new(1900.0, 1900.0)],
            sigma: 50.0,
            field: Some(Shape::Rect(Aabb::from_size(2000.0, 2000.0))),
        },
        node_count: 40,
        anchors: AnchorStrategy::Explicit((0..6).map(|i| i * 2).collect()),
        radio: RadioModel::UnitDisk { range: 200.0 },
        ranging: RangingModel::Multiplicative { factor: 0.1 },
        seed: 3,
    };
    let (net, _) = s.build_trial(0);
    let (_, components) = net.topology().components();
    assert!(components >= 2, "expected a split network");
    check_contract(&net);
}

#[test]
fn extreme_noise_network() {
    let s = Scenario {
        name: "chaos".into(),
        deployment: Deployment::uniform_square(400.0),
        node_count: 30,
        anchors: AnchorStrategy::Random { count: 6 },
        radio: RadioModel::UnitDisk { range: 150.0 },
        ranging: RangingModel::Multiplicative { factor: 1.5 }, // absurd noise
        seed: 4,
    };
    let (net, _) = s.build_trial(0);
    check_contract(&net);
}

#[test]
fn duplicate_positions_network() {
    // All nodes at the same point: zero distances everywhere.
    let positions = [Vec2::new(5.0, 5.0); 8];
    let measurements: Vec<Measurement> = (0..8)
        .flat_map(|a| {
            ((a + 1)..8).map(move |b| Measurement {
                a,
                b,
                distance: 0.001,
            })
        })
        .collect();
    let net = Network::from_parts(
        Shape::Rect(Aabb::from_size(10.0, 10.0)),
        RadioModel::UnitDisk { range: 5.0 },
        RangingModel::AdditiveGaussian { sigma: 0.5 },
        vec![
            NodeKind::Anchor,
            NodeKind::Anchor,
            NodeKind::Anchor,
            NodeKind::Unknown,
            NodeKind::Unknown,
            NodeKind::Unknown,
            NodeKind::Unknown,
            NodeKind::Unknown,
        ],
        vec![
            Some(positions[0]),
            Some(positions[1]),
            Some(positions[2]),
            None,
            None,
            None,
            None,
            None,
        ],
        vec![None; 8],
        measurements,
    );
    check_contract(&net);
}

fn faulted_world(seed: u64) -> (Network, wsnloc_net::GroundTruth) {
    let s = Scenario {
        name: "faulted".into(),
        deployment: Deployment::planned_square_drop(500.0, 4, 40.0),
        node_count: 48,
        anchors: AnchorStrategy::Grid { count: 6 },
        radio: RadioModel::UnitDisk { range: 140.0 },
        ranging: RangingModel::Multiplicative { factor: 0.08 },
        seed,
    };
    s.build_trial(0)
}

fn bnl_backends() -> Vec<BnlLocalizerBuilder> {
    vec![
        BnlLocalizer::builder(Backend::particle(80).expect("valid backend"))
            .prior(PriorModel::DropPoint { sigma: 40.0 })
            .max_iterations(4)
            .tolerance(1.0),
        BnlLocalizer::builder(Backend::grid(18).expect("valid backend"))
            .prior(PriorModel::DropPoint { sigma: 40.0 })
            .max_iterations(4)
            .tolerance(1.0),
        BnlLocalizer::builder(Backend::gaussian())
            .prior(PriorModel::DropPoint { sigma: 40.0 })
            .max_iterations(6)
            .tolerance(1.0),
    ]
}

#[test]
fn fault_free_plan_is_bit_identical() {
    // FaultPlan::none() must compile down to the exact fault-free code
    // path — bit-identical estimates on every backend.
    let (net, _) = faulted_world(21);
    for builder in bnl_backends() {
        let loc = build(builder.clone());
        let clean = loc.localize(&net, 7);
        let planned = build(builder.fault_plan(FaultPlan::none())).localize(&net, 7);
        assert_eq!(clean.estimates, planned.estimates, "{}", loc.name());
        assert_eq!(clean.uncertainty, planned.uncertainty, "{}", loc.name());
    }
}

#[test]
fn total_blackout_keeps_beliefs_finite() {
    // Loss rate 1.0: every inter-node message of every iteration is
    // dropped. Beliefs must stay normalized and finite — estimates fall
    // back to the (prior × anchor) information each node holds locally.
    let (net, _) = faulted_world(22);
    let bounds = net.field_bounds();
    for builder in bnl_backends() {
        let loc = build(builder.fault_plan(FaultPlan::iid_loss(3, 1.0)));
        let r = loc.localize(&net, 0);
        for id in net.unknowns() {
            let est = r.estimates[id].expect("blackout estimate");
            assert!(est.is_finite(), "{} non-finite under blackout", loc.name());
            assert!(
                est.x >= bounds.min.x - 1.0
                    && est.x <= bounds.max.x + 1.0
                    && est.y >= bounds.min.y - 1.0
                    && est.y <= bounds.max.y + 1.0,
                "{} estimate {est} left the field under blackout",
                loc.name()
            );
            let spread = r.uncertainty[id].expect("blackout spread");
            assert!(spread.is_finite() && spread >= 0.0, "{}", loc.name());
        }
    }
}

#[test]
fn dead_anchor_network_still_localizes_in_field() {
    // Kill an anchor and two free nodes before the first exchange: the
    // surviving neighborhood keeps localizing and every estimate stays
    // inside (a margin of) the deployment field.
    let (net, _) = faulted_world(23);
    let dead_anchor = net.anchors().next().expect("an anchor").0;
    let mut dead_free = net.unknowns();
    let deaths = vec![
        wsnloc_net::NodeDeath {
            node: dead_anchor,
            at_iteration: 0,
        },
        wsnloc_net::NodeDeath {
            node: dead_free.next().expect("a free node"),
            at_iteration: 0,
        },
        wsnloc_net::NodeDeath {
            node: dead_free.next().expect("a second free node"),
            at_iteration: 2,
        },
    ];
    let plan = FaultPlan::iid_loss(5, 0.2).with_deaths(DeathModel::Explicit(deaths));
    let bounds = net.field_bounds();
    let margin = 0.25 * bounds.width().max(bounds.height());
    for builder in bnl_backends() {
        let loc = build(builder.fault_plan(plan.clone()));
        let r = loc.localize(&net, 0);
        for id in net.unknowns() {
            let est = r.estimates[id].expect("estimate despite dead anchor");
            assert!(est.is_finite(), "{}", loc.name());
            assert!(
                est.x >= bounds.min.x - margin
                    && est.x <= bounds.max.x + margin
                    && est.y >= bounds.min.y - margin
                    && est.y <= bounds.max.y + margin,
                "{} estimate {est} far outside the field with a dead anchor",
                loc.name()
            );
        }
    }
}

#[test]
fn decay_to_prior_with_unit_decay_matches_hold_last() {
    // DecayToPrior scales held-content information by decay^age; with
    // decay = 1.0 the scale factor is exactly 1.0 at every age, and the
    // policy consumes no randomness, so the run must be bit-identical to
    // HoldLast on every backend — the gaussian arm included.
    let (net, _) = faulted_world(24);
    let lossy = FaultPlan::iid_loss(11, 0.4);
    for builder in bnl_backends() {
        let hold_loc = build(
            builder
                .clone()
                .fault_plan(lossy.clone().with_drop_policy(DropPolicy::HoldLast)),
        );
        let hold = hold_loc.localize(&net, 3);
        let unit = build(
            builder.fault_plan(
                lossy
                    .clone()
                    .with_drop_policy(DropPolicy::DecayToPrior { decay: 1.0 }),
            ),
        )
        .localize(&net, 3);
        assert_eq!(hold.estimates, unit.estimates, "{}", hold_loc.name());
        assert_eq!(hold.uncertainty, unit.uncertainty, "{}", hold_loc.name());
    }
}

#[test]
fn gaussian_decay_to_prior_scales_held_information() {
    // With decay < 1, every iteration a link survives on held content
    // weakens that content's information contribution, so the gaussian
    // posterior must move away from the HoldLast one — while staying
    // finite and inside sane uncertainty bounds.
    let (net, _) = faulted_world(25);
    let gaussian = || {
        BnlLocalizer::builder(Backend::gaussian())
            .prior(PriorModel::DropPoint { sigma: 40.0 })
            .max_iterations(6)
            .tolerance(0.0)
    };
    let lossy = FaultPlan::iid_loss(13, 0.5);
    let hold = build(gaussian().fault_plan(lossy.clone().with_drop_policy(DropPolicy::HoldLast)))
        .localize(&net, 0);
    let decayed = build(
        gaussian().fault_plan(
            lossy
                .clone()
                .with_drop_policy(DropPolicy::DecayToPrior { decay: 0.05 }),
        ),
    )
    .localize(&net, 0);
    assert_ne!(
        hold.estimates, decayed.estimates,
        "alpha-scaling never engaged: no link aged under 50% loss?"
    );
    for id in net.unknowns() {
        let est = decayed.estimates[id].expect("estimate under decay policy");
        assert!(est.is_finite(), "non-finite gaussian estimate under decay");
        let spread = decayed.uncertainty[id].expect("spread under decay policy");
        assert!(spread.is_finite() && spread >= 0.0);
    }
}

#[test]
fn stale_event_counts_match_transport_deliveries_exactly() {
    // stale_prob = 1.0 with no losses makes every delivery after a
    // link's first a stale duplicate. The first iteration delivers fresh
    // on every link, so the transport performs exactly
    // active_links x (iterations - 1) stale deliveries, where a directed
    // link is active iff its receiver is a free node — and the
    // StaleMessageUsed events must account for every single one.
    let (net, _) = faulted_world(26);
    let active_links: u64 = net
        .measurements()
        .iter()
        .map(|m| u64::from(!net.is_anchor(m.a)) + u64::from(!net.is_anchor(m.b)))
        .sum();
    assert!(active_links > 0, "degenerate fixture");
    let plan = FaultPlan::none().with_stale_prob(1.0);
    for backend in [
        Backend::particle(80).expect("valid backend"),
        Backend::grid(18).expect("valid backend"),
        Backend::gaussian(),
    ] {
        let loc = build(
            BnlLocalizer::builder(backend)
                .max_iterations(4)
                .prior(PriorModel::DropPoint { sigma: 40.0 })
                .tolerance(0.0) // run all iterations: no early convergence
                .fault_plan(plan.clone()),
        );
        let tracer = TraceObserver::new();
        let result = loc.localize_with_observer(&net, 5, &tracer);
        let run = tracer.last_run().expect("one recorded run");
        let mut per_iteration = vec![0u64; result.iterations];
        for event in &run.events {
            if let wsnloc::obs::ObsEvent::StaleMessageUsed { iteration, count } = event {
                per_iteration[*iteration] += count;
            }
        }
        assert_eq!(
            per_iteration[0],
            0,
            "{}: first delivery is fresh",
            loc.name()
        );
        for (iter, &count) in per_iteration.iter().enumerate().skip(1) {
            assert_eq!(
                count,
                active_links,
                "{}: iteration {iter} must report one stale delivery per active link",
                loc.name()
            );
        }
        let total: u64 = per_iteration.iter().sum();
        assert_eq!(
            total,
            active_links * (result.iterations as u64 - 1),
            "{}",
            loc.name()
        );
    }
}

#[test]
fn nlos_saturated_network() {
    let s = Scenario {
        name: "all-nlos".into(),
        deployment: Deployment::uniform_square(400.0),
        node_count: 30,
        anchors: AnchorStrategy::Random { count: 6 },
        radio: RadioModel::UnitDisk { range: 150.0 },
        ranging: RangingModel::NlosMixture {
            factor: 0.1,
            outlier_prob: 1.0, // every measurement is an outlier
            outlier_scale: 100.0,
        },
        seed: 5,
    };
    let (net, _) = s.build_trial(0);
    check_contract(&net);
}
