//! Robustness: degenerate and hostile inputs must degrade gracefully,
//! never panic.

use wsnloc::prelude::*;
use wsnloc_baselines::{Centroid, DvHop, MdsMap, MinMax, Multilateration, WeightedCentroid};
use wsnloc_geom::Shape;
use wsnloc_net::{Measurement, Network, NodeKind};

fn all_algorithms() -> Vec<Box<dyn Localizer>> {
    vec![
        Box::new(
            BnlLocalizer::particle(60)
                .with_max_iterations(3)
                .with_tolerance(1.0),
        ),
        Box::new(
            BnlLocalizer::grid(15)
                .with_max_iterations(3)
                .with_tolerance(1.0),
        ),
        Box::new(
            BnlLocalizer::gaussian()
                .with_max_iterations(5)
                .with_tolerance(1.0),
        ),
        Box::new(Centroid),
        Box::new(WeightedCentroid),
        Box::new(MinMax),
        Box::new(Multilateration::nls()),
        Box::new(Multilateration::iterative()),
        Box::new(DvHop::default()),
        Box::new(MdsMap),
    ]
}

fn check_contract(net: &Network) {
    for algo in all_algorithms() {
        let r = algo.localize(net, 0);
        assert_eq!(r.estimates.len(), net.len(), "{}", algo.name());
        for est in r.estimates.iter().flatten() {
            assert!(
                est.is_finite(),
                "{} produced non-finite estimate",
                algo.name()
            );
        }
    }
}

#[test]
fn zero_anchor_network() {
    let s = Scenario {
        name: "no-anchors".into(),
        deployment: Deployment::uniform_square(300.0),
        node_count: 25,
        anchors: AnchorStrategy::Random { count: 0 },
        radio: RadioModel::UnitDisk { range: 120.0 },
        ranging: RangingModel::Multiplicative { factor: 0.1 },
        seed: 1,
    };
    let (net, _) = s.build_trial(0);
    assert_eq!(net.anchor_count(), 0);
    check_contract(&net);
}

#[test]
fn all_anchor_network() {
    let s = Scenario {
        name: "all-anchors".into(),
        deployment: Deployment::uniform_square(300.0),
        node_count: 12,
        anchors: AnchorStrategy::Random { count: 12 },
        radio: RadioModel::UnitDisk { range: 150.0 },
        ranging: RangingModel::Multiplicative { factor: 0.1 },
        seed: 2,
    };
    let (net, truth) = s.build_trial(0);
    assert_eq!(net.unknowns().count(), 0);
    for algo in all_algorithms() {
        let r = algo.localize(&net, 0);
        // Every node is an anchor: perfect "localization".
        for id in 0..net.len() {
            assert_eq!(r.estimates[id], Some(truth.position(id)), "{}", algo.name());
        }
    }
}

#[test]
fn single_node_network() {
    let net = Network::from_parts(
        Shape::Rect(Aabb::from_size(10.0, 10.0)),
        RadioModel::UnitDisk { range: 5.0 },
        RangingModel::AdditiveGaussian { sigma: 0.5 },
        vec![NodeKind::Unknown],
        vec![None],
        vec![None],
        vec![],
    );
    check_contract(&net);
}

#[test]
fn disconnected_components() {
    // Two clusters far apart; the far cluster has no anchors.
    let s = Scenario {
        name: "disconnected".into(),
        deployment: Deployment::DropPoints {
            targets: vec![Vec2::new(100.0, 100.0), Vec2::new(1900.0, 1900.0)],
            sigma: 50.0,
            field: Some(Shape::Rect(Aabb::from_size(2000.0, 2000.0))),
        },
        node_count: 40,
        anchors: AnchorStrategy::Explicit((0..6).map(|i| i * 2).collect()),
        radio: RadioModel::UnitDisk { range: 200.0 },
        ranging: RangingModel::Multiplicative { factor: 0.1 },
        seed: 3,
    };
    let (net, _) = s.build_trial(0);
    let (_, components) = net.topology().components();
    assert!(components >= 2, "expected a split network");
    check_contract(&net);
}

#[test]
fn extreme_noise_network() {
    let s = Scenario {
        name: "chaos".into(),
        deployment: Deployment::uniform_square(400.0),
        node_count: 30,
        anchors: AnchorStrategy::Random { count: 6 },
        radio: RadioModel::UnitDisk { range: 150.0 },
        ranging: RangingModel::Multiplicative { factor: 1.5 }, // absurd noise
        seed: 4,
    };
    let (net, _) = s.build_trial(0);
    check_contract(&net);
}

#[test]
fn duplicate_positions_network() {
    // All nodes at the same point: zero distances everywhere.
    let positions = [Vec2::new(5.0, 5.0); 8];
    let measurements: Vec<Measurement> = (0..8)
        .flat_map(|a| {
            ((a + 1)..8).map(move |b| Measurement {
                a,
                b,
                distance: 0.001,
            })
        })
        .collect();
    let net = Network::from_parts(
        Shape::Rect(Aabb::from_size(10.0, 10.0)),
        RadioModel::UnitDisk { range: 5.0 },
        RangingModel::AdditiveGaussian { sigma: 0.5 },
        vec![
            NodeKind::Anchor,
            NodeKind::Anchor,
            NodeKind::Anchor,
            NodeKind::Unknown,
            NodeKind::Unknown,
            NodeKind::Unknown,
            NodeKind::Unknown,
            NodeKind::Unknown,
        ],
        vec![
            Some(positions[0]),
            Some(positions[1]),
            Some(positions[2]),
            None,
            None,
            None,
            None,
            None,
        ],
        vec![None; 8],
        measurements,
    );
    check_contract(&net);
}

#[test]
fn nlos_saturated_network() {
    let s = Scenario {
        name: "all-nlos".into(),
        deployment: Deployment::uniform_square(400.0),
        node_count: 30,
        anchors: AnchorStrategy::Random { count: 6 },
        radio: RadioModel::UnitDisk { range: 150.0 },
        ranging: RangingModel::NlosMixture {
            factor: 0.1,
            outlier_prob: 1.0, // every measurement is an outlier
            outlier_scale: 100.0,
        },
        seed: 5,
    };
    let (net, _) = s.build_trial(0);
    check_contract(&net);
}
