//! Observer-layer guarantees: the zero-cost contract of `NullObserver`,
//! thread-count-independent telemetry under the synchronous schedule, the
//! builder-first validation surface, structured MAP-fallback events, and
//! the trace.jsonl serialization path end to end.

use std::sync::Mutex;
use wsnloc::prelude::*;
use wsnloc_eval::{evaluate, EvalConfig, Parallelism};
use wsnloc_obs::{
    accounting, analyze_str, parse_jsonl, replay, write_jsonl, ObsEvent, SamplePolicy,
    SampledObserver, VecSink,
};

/// The accounting counters are process-wide, so every test that runs
/// inference (bumping them) or asserts on them takes this lock first.
static SERIAL: Mutex<()> = Mutex::new(());

fn scenario() -> Scenario {
    Scenario {
        name: "observability".into(),
        deployment: Deployment::planned_square_drop(500.0, 3, 50.0),
        node_count: 40,
        anchors: AnchorStrategy::Random { count: 6 },
        radio: RadioModel::UnitDisk { range: 160.0 },
        ranging: RangingModel::Multiplicative { factor: 0.1 },
        seed: 0x0B5,
    }
}

fn algo() -> BnlLocalizer {
    BnlLocalizer::builder(Backend::particle(80).expect("valid backend"))
        .prior(PriorModel::DropPoint { sigma: 50.0 })
        .max_iterations(4)
        .tolerance(0.0) // full trajectory: every iteration reports
        .try_build()
        .expect("valid localizer configuration")
}

#[test]
fn trace_residuals_are_bit_identical_across_pool_sizes() {
    let _guard = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // The synchronous schedule parallelizes belief updates over rayon
    // workers; residuals are deterministic functions of the beliefs, so
    // the recorded telemetry must not depend on the pool size.
    let (net, _) = scenario().build_trial(0);
    let run = |threads: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool")
            .install(|| {
                let tracer = TraceObserver::new();
                let result = algo().localize_with_observer(&net, 11, &tracer);
                (result, tracer.take_runs())
            })
    };
    let (res1, runs1) = run(1);
    let (res4, runs4) = run(4);
    assert_eq!(res1.estimates, res4.estimates);
    assert_eq!(runs1.len(), 1);
    assert_eq!(runs4.len(), 1);
    assert_eq!(runs1[0].info, runs4[0].info);
    assert_eq!(runs1[0].iterations.len(), runs4[0].iterations.len());
    for (a, b) in runs1[0].iterations.iter().zip(&runs4[0].iterations) {
        // Bit-identical: exact f64 equality on every per-node residual and
        // on the convergence quantity itself. Only wall-clock timing may
        // differ between the two runs.
        assert_eq!(a.iteration, b.iteration);
        assert!(a.max_shift.to_bits() == b.max_shift.to_bits());
        assert_eq!(a.comm, b.comm);
        assert_eq!(a.residuals.len(), b.residuals.len());
        for (ra, rb) in a.residuals.iter().zip(&b.residuals) {
            assert_eq!(ra.node, rb.node);
            assert!(ra.residual.to_bits() == rb.residual.to_bits());
            assert_eq!(ra.kl.map(f64::to_bits), rb.kl.map(f64::to_bits));
        }
    }
}

#[test]
fn null_observer_does_no_trace_accounting() {
    let _guard = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let (net, _) = scenario().build_trial(1);
    // Warm up once so lazily-initialized state can't masquerade as
    // observer cost.
    let _ = algo().localize(&net, 3);

    let buffers_before = accounting::residual_buffers();
    let records_before = accounting::iteration_records();
    let _ = algo().localize(&net, 4); // default path: &NullObserver
    let _ = algo().localize_with_observer(&net, 5, &NullObserver);
    assert_eq!(
        accounting::residual_buffers(),
        buffers_before,
        "NullObserver run allocated residual buffers"
    );
    assert_eq!(
        accounting::iteration_records(),
        records_before,
        "NullObserver run stored iteration records"
    );

    // Sanity check that the counters are live at all: a recording
    // observer must move both.
    let tracer = TraceObserver::new();
    let _ = algo().localize_with_observer(&net, 6, &tracer);
    assert!(accounting::residual_buffers() > buffers_before);
    assert!(accounting::iteration_records() > records_before);
}

#[test]
fn builder_rejects_invalid_configuration_before_any_run() {
    // Backend options fail at their own constructors…
    assert!(Backend::particle(0).is_err());
    assert!(Backend::grid(1).is_err());
    // …and builder-level knobs fail at try_build.
    assert!(BnlLocalizer::builder(Backend::gaussian())
        .tolerance(f64::NAN)
        .try_build()
        .is_err());
    assert!(BnlLocalizer::builder(Backend::gaussian())
        .damping(1.0)
        .try_build()
        .is_err());
    let err = BnlLocalizer::builder(Backend::particle(50).expect("valid backend"))
        .max_iterations(0)
        .try_build()
        .expect_err("zero iterations must not validate");
    assert!(err.to_string().contains("max_iterations"));
}

#[test]
fn map_fallback_is_a_structured_event() {
    let _guard = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let (net, _) = scenario().build_trial(2);
    let algo = BnlLocalizer::builder(Backend::gaussian())
        .prior(PriorModel::DropPoint { sigma: 50.0 })
        .max_iterations(3)
        .estimator(Estimator::Map)
        .try_build()
        .expect("valid localizer configuration");
    let tracer = TraceObserver::new();
    let _ = algo.localize_with_observer(&net, 0, &tracer);
    let run = tracer.last_run().expect("one recorded run");
    assert!(
        run.events.iter().any(|e| matches!(
            e,
            ObsEvent::MapFallbackToMmse {
                backend: "gaussian"
            }
        )),
        "gaussian backend must report the MAP->MMSE fallback, got {:?}",
        run.events
    );
}

#[test]
fn analyze_reproduces_the_live_metrics_snapshot() {
    let _guard = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // The acceptance invariant of the aggregation tier: replaying a
    // recorded trace through `analyze` yields *exactly* the snapshot the
    // live MetricsObserver folded — same per-iteration residual
    // quantiles, comm totals, and fault-event counts. This holds because
    // the JSONL encoder round-trips every finite f64 (shortest-repr
    // printing + correctly-rounded parsing) and the fold is insensitive
    // to the record reordering serialization introduces.
    let outcome = evaluate(
        &algo(),
        &scenario(),
        &EvalConfig::trials(2)
            .with_traces()
            .with_metrics()
            .with_parallelism(Parallelism::Sequential),
    );
    let live = outcome.metrics.expect("with_metrics collects snapshots");
    let agg = outcome.trace.expect("with_traces collects traces");

    let mut sink = VecSink::new();
    write_jsonl(&agg.traces, &mut sink).expect("in-memory sink");
    let analysis = analyze_str(&sink.lines.join("\n")).expect("recorded trace parses");

    assert_eq!(analysis.runs as u64, agg.runs);
    assert_eq!(analysis.incomplete_runs, 0);
    assert_eq!(
        analysis.snapshot, live.overall,
        "replayed snapshot must equal the live fold"
    );
    // The rendered artifacts come from the same data.
    assert!(analysis.flame_table.contains("message_passing"));
    assert!(analysis.flame_table.contains("iteration"));
    assert!(analysis.openmetrics.contains("wsnloc_bp_runs_total 2"));
    assert!(analysis.openmetrics.contains(&format!(
        "wsnloc_bp_messages_total {}",
        live.overall.messages
    )));
}

#[test]
fn panicked_run_still_yields_parseable_jsonl() {
    let _guard = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // Record a real run, then serialize it through a buffered file sink
    // on a thread that panics before any explicit flush: the sink's Drop
    // must push every completed line to disk, and the parser must accept
    // the result (the interrupted run simply has no run_end record).
    let (net, _) = scenario().build_trial(3);
    let tracer = TraceObserver::new();
    let _ = algo().localize_with_observer(&net, 7, &tracer);
    let mut runs = tracer.take_runs();
    assert_eq!(runs.len(), 1);
    runs[0].summary = None; // the crash happened before the verdict

    let dir = std::env::temp_dir().join(format!("wsnloc-poison-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("trace.jsonl");
    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut sink = JsonlSink::create(&path).expect("create trace file");
        write_jsonl(&runs, &mut sink).expect("serialize");
        panic!("simulated mid-run crash before finish()");
    }));
    assert!(panicked.is_err(), "the writer thread must have panicked");

    let text = std::fs::read_to_string(&path).expect("trace file exists");
    let parsed = parse_jsonl(&text).expect("every flushed line parses");
    assert_eq!(parsed, runs, "nothing written before the panic was lost");
    assert!(parsed[0].summary.is_none());
    let analysis = analyze_str(&text).expect("interrupted traces analyze");
    assert_eq!(analysis.incomplete_runs, 1);
    assert_eq!(analysis.snapshot.runs, 1);
    assert_eq!(analysis.snapshot.converged_runs, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn evaluate_traces_serialize_to_replayable_jsonl() {
    let _guard = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let outcome = evaluate(
        &algo(),
        &scenario(),
        &EvalConfig::trials(2)
            .with_traces()
            .with_parallelism(Parallelism::Sequential),
    );
    let agg = outcome.trace.expect("with_traces collects an aggregate");
    assert_eq!(agg.runs, 2);
    assert_eq!(agg.mean_residual_curve.len(), 4);

    let mut sink = VecSink::new();
    let lines = write_jsonl(&agg.traces, &mut sink).expect("in-memory sink");
    assert_eq!(lines, sink.lines.len());
    // One run_start/run_end pair per trial, contiguous records in between.
    let starts: Vec<usize> = sink
        .lines
        .iter()
        .enumerate()
        .filter(|(_, l)| l.starts_with("{\"type\":\"run_start\""))
        .map(|(i, _)| i)
        .collect();
    let ends: Vec<usize> = sink
        .lines
        .iter()
        .enumerate()
        .filter(|(_, l)| l.starts_with("{\"type\":\"run_end\""))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(starts.len(), 2);
    assert_eq!(ends.len(), 2);
    assert_eq!(starts[0], 0);
    assert_eq!(*ends.last().expect("two run ends"), sink.lines.len() - 1);
    assert!(starts[1] > ends[0], "runs must not interleave");
    assert!(sink
        .lines
        .iter()
        .any(|l| l.contains("\"span\":\"model_build\"")));
    assert!(sink
        .lines
        .iter()
        .any(|l| l.contains("\"span\":\"message_passing\"")));
    for line in &sink.lines {
        assert_eq!(
            line.matches('{').count(),
            line.matches('}').count(),
            "unbalanced braces in {line}"
        );
    }
}

#[test]
fn sample_policy_all_reproduces_trace_jsonl_byte_for_byte() {
    let _guard = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // The transparency criterion of the sampling tier: a SamplePolicy::All
    // gate between the engine and the trace recorder changes nothing in
    // the serialized trace.jsonl, down to the last byte. Byte-for-byte
    // comparison requires the gate to see the *same* callback stream the
    // recording did (live re-runs differ in wall-clock fields), so the
    // recorded runs are replayed through the gate.
    let (net, _) = scenario().build_trial(4);
    let recorder = TraceObserver::new();
    for seed in 0..3u64 {
        let _ = algo().localize_with_observer(&net, seed, &recorder);
    }
    let runs = recorder.take_runs();
    let mut original = VecSink::new();
    write_jsonl(&runs, &mut original).expect("in-memory sink");

    let gated_inner = TraceObserver::new();
    let gated = SampledObserver::new(&gated_inner, SamplePolicy::All, 0xA11);
    replay(&runs, &gated);
    assert_eq!(gated.kept_runs(), 3);
    assert_eq!(gated.dropped_events(), 0);

    let mut gated_sink = VecSink::new();
    write_jsonl(&gated_inner.take_runs(), &mut gated_sink).expect("in-memory sink");
    assert_eq!(
        original.lines, gated_sink.lines,
        "SamplePolicy::All must be byte-transparent"
    );
}

#[test]
fn hash_ratio_sampling_is_bit_identical_across_pool_sizes() {
    let _guard = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // The sampling decision is a pure function of (run seed, sampler
    // seed), so which runs survive — and everything deterministic in
    // their traces — must not depend on the rayon pool size the solves
    // ran under. Wall-clock fields (`secs`) are the one sanctioned
    // difference, so the fingerprint covers everything but timing.
    let (net, _) = scenario().build_trial(5);
    let fingerprint = |runs: &[wsnloc_obs::RunTrace]| -> Vec<u64> {
        let mut fp = Vec::new();
        for run in runs {
            fp.push(run.info.seed);
            fp.push(run.iterations.len() as u64);
            for it in &run.iterations {
                fp.push(it.iteration as u64);
                fp.push(it.max_shift.to_bits());
                fp.push(it.comm.messages);
                for r in &it.residuals {
                    fp.push(r.node as u64);
                    fp.push(r.residual.to_bits());
                }
            }
            let summary = run.summary.expect("completed run");
            fp.push(summary.iterations as u64);
            fp.push(u64::from(summary.converged));
        }
        fp
    };
    let sample = |threads: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool")
            .install(|| {
                let inner = TraceObserver::new();
                let sampled = SampledObserver::new(&inner, SamplePolicy::HashRatio(0.5), 0x5EED);
                for seed in 0..8u64 {
                    let _ = algo().localize_with_observer(&net, seed, &sampled);
                }
                assert_eq!(sampled.kept_runs() + sampled.dropped_runs(), 8);
                assert!(sampled.dropped_runs() > 0, "p=0.5 over 8 runs drops some");
                assert!(sampled.kept_runs() > 0, "p=0.5 over 8 runs keeps some");
                (fingerprint(&inner.take_runs()), sampled.dropped_events())
            })
    };
    let (fp1, dropped1) = sample(1);
    let (fp2, dropped2) = sample(2);
    let (fp4, dropped4) = sample(4);
    assert_eq!(fp1, fp2, "sampled trace differs between 1 and 2 threads");
    assert_eq!(fp2, fp4, "sampled trace differs between 2 and 4 threads");
    // Suppressed-callback accounting is thread-count-invariant too: the
    // synchronous schedule reports the same callbacks regardless of pool.
    assert_eq!(dropped1, dropped2);
    assert_eq!(dropped2, dropped4);
}

#[test]
fn sharded_observer_emits_boundary_exchange_without_perturbing_results() {
    let _guard = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // Attaching an observer to a sharded solve must not change the
    // estimates (observers are read-only), and the trace must carry the
    // per-shard BoundaryExchange volume events the windowed tier feeds on.
    let (net, _) = scenario().build_trial(6);
    let sharded = || {
        BnlLocalizer::builder(Backend::particle(80).expect("valid backend"))
            .prior(PriorModel::DropPoint { sigma: 50.0 })
            .max_iterations(4)
            .tolerance(0.0)
            .shards(ShardPlan::target_nodes(12).expect("valid plan"))
            .try_build()
            .expect("valid localizer configuration")
    };
    let silent = sharded().localize(&net, 9);
    let tracer = TraceObserver::new();
    let observed = sharded().localize_with_observer(&net, 9, &tracer);
    for (a, b) in silent.estimates.iter().zip(&observed.estimates) {
        match (a, b) {
            (Some(p), Some(q)) => {
                assert_eq!(p.x.to_bits(), q.x.to_bits());
                assert_eq!(p.y.to_bits(), q.y.to_bits());
            }
            (None, None) => {}
            _ => panic!("estimate presence diverged between observed and silent runs"),
        }
    }
    let run = tracer.last_run().expect("one recorded run");
    let exchanges: Vec<(usize, usize, u64)> = run
        .events
        .iter()
        .filter_map(|e| match e {
            ObsEvent::BoundaryExchange {
                round,
                shard,
                messages,
            } => Some((*round, *shard, *messages)),
            _ => None,
        })
        .collect();
    assert!(
        !exchanges.is_empty(),
        "multi-shard run must report boundary exchanges, got events {:?}",
        run.events
    );
    let shards: std::collections::BTreeSet<usize> = exchanges.iter().map(|e| e.1).collect();
    assert!(shards.len() > 1, "expected several occupied shards");
    assert!(
        exchanges.iter().any(|e| e.2 > 0),
        "a multi-shard unit-disk network must route cross-shard messages, got {exchanges:?}"
    );
    // The events round-trip through the JSONL schema like everything else.
    let mut sink = VecSink::new();
    write_jsonl(std::slice::from_ref(&run), &mut sink).expect("in-memory sink");
    let parsed = parse_jsonl(&sink.lines.join("\n")).expect("trace parses");
    assert_eq!(parsed[0].events, run.events);
}
