//! End-to-end pipeline integration: scenario → network → algorithm →
//! metrics → report, across crates.

use wsnloc::prelude::*;
use wsnloc_eval::{evaluate, experiments, EvalConfig, ExpConfig};

fn small_scenario() -> Scenario {
    Scenario {
        name: "pipeline".into(),
        deployment: Deployment::planned_square_drop(500.0, 3, 50.0),
        node_count: 60,
        anchors: AnchorStrategy::Random { count: 8 },
        radio: RadioModel::UnitDisk { range: 150.0 },
        ranging: RangingModel::Multiplicative { factor: 0.1 },
        seed: 11,
    }
}

#[test]
fn scenario_to_metrics_pipeline() {
    let scenario = small_scenario();
    let algo = BnlLocalizer::builder(Backend::particle(80).expect("valid backend"))
        .prior(PriorModel::DropPoint { sigma: 50.0 })
        .max_iterations(5)
        .tolerance(2.0)
        .try_build()
        .expect("valid config");
    let outcome = evaluate(&algo, &scenario, &EvalConfig::trials(2));
    assert_eq!(outcome.trials, 2);
    assert!(outcome.coverage > 0.99, "coverage {}", outcome.coverage);
    assert!(outcome.mean_error > 0.0);
    assert!(outcome.mean_error < 500.0);
    let s = outcome.normalized_summary(150.0).unwrap();
    assert!(s.median <= s.p90);
    assert!(s.mean < 1.5);
    assert!(outcome.msgs_per_node > 0.0);
}

#[test]
fn quick_experiments_produce_wellformed_reports() {
    let cfg = ExpConfig::quick();
    // A fast representative subset: the pre-knowledge and particle-count
    // ablations exercise sweeps, reports, and both estimators.
    for id in ["f6", "f8"] {
        let reports = experiments::by_id(id, &cfg).expect("known id");
        assert!(!reports.is_empty(), "{id} produced no report");
        for r in reports {
            assert!(!r.row_labels.is_empty(), "{id}: empty rows");
            assert_eq!(r.row_labels.len(), r.data.len());
            for row in &r.data {
                assert_eq!(row.len(), r.columns.len(), "{id}: ragged");
                for &v in row {
                    assert!(v.is_nan() || v.is_finite(), "{id}: bad cell {v}");
                }
            }
            // Render paths must not panic.
            let ascii = r.to_ascii();
            assert!(ascii.contains(&r.id.to_uppercase()));
            let csv = r.to_csv();
            assert_eq!(csv.lines().count(), r.row_labels.len() + 1);
        }
    }
}

#[test]
fn experiment_registry_is_complete() {
    let cfg = ExpConfig::quick();
    for id in experiments::ids() {
        assert!(
            [
                "t2", "t3", "f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8", "f9", "f10", "f11",
                "f12", "f13", "f14", "f15", "f16"
            ]
            .contains(&id),
            "unexpected id {id}"
        );
    }
    assert!(experiments::by_id("nope", &cfg).is_none());
}

#[test]
fn wire_accounting_flows_to_outcome() {
    let scenario = small_scenario();
    let algo = wsnloc_baselines::DvHop::default();
    let outcome = evaluate(&algo, &scenario, &EvalConfig::trials(2));
    // DV-Hop: 2 floods × anchors × nodes → 2 × anchors messages per node.
    assert!((outcome.msgs_per_node - 16.0).abs() < 1e-9);
    assert!(outcome.bytes_per_node > 0.0);
}
