//! The grid (discrete Bayesian network) and particle (nonparametric)
//! backends approximate the same posterior — on easy, well-anchored
//! networks their estimates must agree to within discretization error.

use wsnloc::prelude::*;

fn easy_scenario() -> Scenario {
    Scenario {
        name: "backend-agreement".into(),
        deployment: Deployment::planned_square_drop(400.0, 3, 35.0),
        node_count: 45,
        anchors: AnchorStrategy::Grid { count: 9 },
        radio: RadioModel::UnitDisk { range: 140.0 },
        ranging: RangingModel::Multiplicative { factor: 0.05 },
        seed: 0xA96,
    }
}

#[test]
fn backends_agree_on_easy_network() {
    let s = easy_scenario();
    let (net, truth) = s.build_trial(0);
    let particle = BnlLocalizer::builder(Backend::particle(250).expect("valid backend"))
        .prior(PriorModel::DropPoint { sigma: 35.0 })
        .max_iterations(8)
        .tolerance(1.0)
        .try_build()
        .expect("valid config")
        .localize(&net, 0);
    let grid = BnlLocalizer::builder(Backend::grid(40).expect("valid backend"))
        .prior(PriorModel::DropPoint { sigma: 35.0 })
        .max_iterations(8)
        .tolerance(1.0)
        .try_build()
        .expect("valid config")
        .localize(&net, 0);

    let cell = 400.0 / 40.0; // 10 m cells
    let mut disagreements = 0;
    let mut count = 0;
    for u in net.unknowns() {
        let p = particle.estimates[u].expect("particle always estimates");
        let g = grid.estimates[u].expect("grid always estimates");
        count += 1;
        // Agreement within a few cells; count outliers rather than failing
        // on a single multi-modal node.
        if p.dist(g) > 4.0 * cell {
            disagreements += 1;
        }
        // Both should also be near the truth on this easy network.
        assert!(
            p.dist(truth.position(u)) < 120.0,
            "particle estimate wild at node {u}"
        );
        assert!(
            g.dist(truth.position(u)) < 120.0,
            "grid estimate wild at node {u}"
        );
    }
    assert!(
        disagreements * 5 <= count,
        "{disagreements}/{count} nodes disagree beyond 4 cells"
    );
}

#[test]
fn both_backends_beat_the_prior_alone() {
    let s = easy_scenario();
    let (net, truth) = s.build_trial(1);
    let prior_alone: f64 = net
        .unknowns()
        .map(|u| net.planned_position(u).unwrap().dist(truth.position(u)))
        .sum::<f64>()
        / net.unknowns().count() as f64;
    for result in [
        BnlLocalizer::builder(Backend::particle(200).expect("valid backend"))
            .prior(PriorModel::DropPoint { sigma: 35.0 })
            .max_iterations(6)
            .try_build()
            .expect("valid config")
            .localize(&net, 0),
        BnlLocalizer::builder(Backend::grid(40).expect("valid backend"))
            .prior(PriorModel::DropPoint { sigma: 35.0 })
            .max_iterations(6)
            .try_build()
            .expect("valid config")
            .localize(&net, 0),
    ] {
        let errs: Vec<f64> = result
            .errors_for(&truth, Some(&net))
            .into_iter()
            .flatten()
            .collect();
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(
            mean < prior_alone,
            "posterior mean error {mean:.1} should beat prior-alone {prior_alone:.1}"
        );
    }
}

#[test]
fn grid_map_and_mmse_estimators_are_close_on_unimodal_posteriors() {
    let s = easy_scenario();
    let (net, _) = s.build_trial(2);
    let mmse = BnlLocalizer::builder(Backend::grid(40).expect("valid backend"))
        .prior(PriorModel::DropPoint { sigma: 35.0 })
        .estimator(Estimator::Mmse)
        .max_iterations(6)
        .try_build()
        .expect("valid config")
        .localize(&net, 0);
    let map = BnlLocalizer::builder(Backend::grid(40).expect("valid backend"))
        .prior(PriorModel::DropPoint { sigma: 35.0 })
        .estimator(Estimator::Map)
        .max_iterations(6)
        .try_build()
        .expect("valid config")
        .localize(&net, 0);
    let cell = 400.0 / 40.0;
    let mut far = 0;
    let mut count = 0;
    for u in net.unknowns() {
        count += 1;
        if mmse.estimates[u].unwrap().dist(map.estimates[u].unwrap()) > 3.0 * cell {
            far += 1;
        }
    }
    assert!(far * 4 <= count, "{far}/{count} MAP/MMSE disagreements");
}
