//! Tenant-interleaving determinism soak for the streaming engine.
//!
//! Tenant sessions are fully isolated, so every tenant's trajectory must
//! be bit-identical (`f64::to_bits`) to running that tenant alone in a
//! plain sequential [`LocalizationSession`] — no matter how many other
//! tenants share the engine, in which order epochs are batched into
//! ticks, or how many worker threads the solve batches fan out over.

use wsnloc::prelude::*;
use wsnloc_serve::{
    EngineConfig, MeasurementEpoch, PositionUpdate, SessionConfig, StreamingEngine,
};

const TENANTS: usize = 4;
const EPOCHS: u64 = 4;

fn tenant_network(tenant: u64) -> Network {
    let scenario = Scenario {
        name: format!("soak-{tenant}"),
        deployment: Deployment::planned_square_drop(500.0, 3, 50.0),
        node_count: 40,
        anchors: AnchorStrategy::Random { count: 7 },
        radio: RadioModel::UnitDisk { range: 160.0 },
        ranging: RangingModel::Multiplicative { factor: 0.08 },
        seed: 0x50AC ^ tenant,
    };
    scenario.build_trial(tenant).0
}

fn tenant_seed(tenant: u64, epoch: u64) -> u64 {
    tenant.wrapping_mul(1_000_003) ^ epoch
}

fn localizer() -> BnlLocalizer {
    BnlLocalizer::builder(Backend::particle(60).expect("valid backend"))
        .prior(PriorModel::DropPoint { sigma: 50.0 })
        .max_iterations(2)
        .tolerance(0.0)
        .try_build()
        .expect("valid config")
}

fn session_config() -> SessionConfig {
    SessionConfig::new(localizer()).with_motion(MotionModel::random_walk(4.0))
}

/// Bit-exact fingerprint of one epoch's estimates and uncertainties.
fn fingerprint(r: &wsnloc::LocalizationResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |bits: u64| {
        h ^= bits;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for est in &r.estimates {
        match est {
            Some(p) => {
                mix(p.x.to_bits());
                mix(p.y.to_bits());
            }
            None => mix(u64::MAX),
        }
    }
    for u in &r.uncertainty {
        mix(u.map_or(u64::MAX, f64::to_bits));
    }
    h
}

/// Reference trajectories: each tenant alone, plain sequential session.
fn sequential_reference() -> Vec<Vec<u64>> {
    (0..TENANTS as u64)
        .map(|t| {
            let network = tenant_network(t);
            let mut session =
                LocalizationSession::new(localizer()).with_motion(MotionModel::random_walk(4.0));
            (0..EPOCHS)
                .map(|e| fingerprint(&session.advance(&network, tenant_seed(t, e))))
                .collect()
        })
        .collect()
}

/// Sorts one run's updates into per-tenant fingerprint trajectories.
fn trajectories(updates: &[PositionUpdate]) -> Vec<Vec<u64>> {
    let mut per: Vec<Vec<(u64, u64)>> = vec![Vec::new(); TENANTS];
    for up in updates {
        assert!(!up.degraded, "soak runs never shed");
        per[up.tenant.raw() as usize].push((up.epoch, fingerprint(&up.result)));
    }
    per.into_iter()
        .map(|mut v| {
            v.sort_by_key(|&(e, _)| e);
            v.into_iter().map(|(_, f)| f).collect()
        })
        .collect()
}

/// Interleaved batching: one epoch per tenant per tick.
fn run_interleaved() -> Vec<PositionUpdate> {
    let mut engine = StreamingEngine::new(EngineConfig::default());
    let ids: Vec<_> = (0..TENANTS)
        .map(|_| engine.open_session(session_config()))
        .collect();
    let networks: Vec<Network> = (0..TENANTS as u64).map(tenant_network).collect();
    let mut all = Vec::new();
    for e in 0..EPOCHS {
        for t in 0..TENANTS {
            engine.submit(
                ids[t],
                MeasurementEpoch::new(networks[t].clone(), tenant_seed(t as u64, e)),
            );
        }
        all.extend(engine.tick());
    }
    all
}

/// Backlogged batching: every epoch queued up front, engine drains; ticks
/// now mix different tenants at different epoch indices.
fn run_backlogged() -> Vec<PositionUpdate> {
    let mut engine = StreamingEngine::new(EngineConfig::default());
    let ids: Vec<_> = (0..TENANTS)
        .map(|_| engine.open_session(session_config()))
        .collect();
    // Submission order deliberately scrambled: all of tenant 3 first, then
    // epoch-major for the rest.
    let networks: Vec<Network> = (0..TENANTS as u64).map(tenant_network).collect();
    for e in 0..EPOCHS {
        engine.submit(
            ids[3],
            MeasurementEpoch::new(networks[3].clone(), tenant_seed(3, e)),
        );
    }
    for e in 0..EPOCHS {
        for t in 0..3 {
            engine.submit(
                ids[t],
                MeasurementEpoch::new(networks[t].clone(), tenant_seed(t as u64, e)),
            );
        }
    }
    engine.drain()
}

fn with_pool<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool")
        .install(f)
}

#[test]
fn interleaved_tenants_match_sequential_reference() {
    let reference = sequential_reference();
    for threads in [1usize, 2, 4] {
        let got = trajectories(&with_pool(threads, run_interleaved));
        assert_eq!(
            got, reference,
            "interleaved run diverged from the sequential reference at {threads} threads"
        );
    }
}

#[test]
fn backlogged_batching_matches_sequential_reference() {
    let reference = sequential_reference();
    for threads in [1usize, 2, 4] {
        let got = trajectories(&with_pool(threads, run_backlogged));
        assert_eq!(
            got, reference,
            "backlogged run diverged from the sequential reference at {threads} threads"
        );
    }
}

#[test]
fn engine_population_does_not_perturb_a_tenant() {
    // Tenant 0 hosted alone in an engine vs hosted with three neighbors:
    // same trajectory, bit for bit.
    let solo = {
        let mut engine = StreamingEngine::new(EngineConfig::default());
        let id = engine.open_session(session_config());
        let network = tenant_network(0);
        let mut fps = Vec::new();
        for e in 0..EPOCHS {
            engine.submit(
                id,
                MeasurementEpoch::new(network.clone(), tenant_seed(0, e)),
            );
            let ups = engine.tick();
            assert_eq!(ups.len(), 1);
            fps.push(fingerprint(&ups[0].result));
        }
        fps
    };
    let crowded = trajectories(&run_interleaved());
    assert_eq!(solo, crowded[0]);
}
