//! Cross-algorithm ordering invariants — the qualitative claims the
//! reproduction stands on, checked at a small but representative
//! configuration (multiple trials pooled so the orderings are stable).

use wsnloc::prelude::*;
use wsnloc_baselines::{Centroid, DvHop, WeightedCentroid};
use wsnloc_eval::{evaluate, EvalConfig};

fn scenario() -> Scenario {
    Scenario {
        name: "ordering".into(),
        deployment: Deployment::planned_square_drop(600.0, 3, 60.0),
        node_count: 80,
        anchors: AnchorStrategy::Random { count: 10 },
        radio: RadioModel::UnitDisk { range: 160.0 },
        ranging: RangingModel::Multiplicative { factor: 0.1 },
        seed: 0x0D0E,
    }
}

fn bnl() -> BnlLocalizer {
    BnlLocalizer::builder(Backend::particle(120).expect("valid backend"))
        .prior(PriorModel::DropPoint { sigma: 60.0 })
        .max_iterations(7)
        .tolerance(2.0)
        .try_build()
        .expect("valid config")
}

fn nbp() -> BnlLocalizer {
    BnlLocalizer::builder(Backend::particle(120).expect("valid backend"))
        .max_iterations(7)
        .tolerance(2.0)
        .try_build()
        .expect("valid config")
}

const TRIALS: u64 = 3;

#[test]
fn preknowledge_beats_no_preknowledge() {
    let s = scenario();
    let pk = evaluate(&bnl(), &s, &EvalConfig::trials(TRIALS)).mean_error;
    let plain = evaluate(&nbp(), &s, &EvalConfig::trials(TRIALS)).mean_error;
    assert!(
        pk < plain,
        "BNL-PK ({pk:.1} m) must beat NBP ({plain:.1} m)"
    );
}

#[test]
fn cooperative_beats_proximity_methods() {
    let s = scenario();
    let pk = evaluate(&bnl(), &s, &EvalConfig::trials(TRIALS)).mean_error;
    let wcl = evaluate(&WeightedCentroid, &s, &EvalConfig::trials(TRIALS)).mean_error;
    let cent = evaluate(&Centroid, &s, &EvalConfig::trials(TRIALS)).mean_error;
    assert!(pk < wcl, "BNL-PK {pk:.1} vs WCL {wcl:.1}");
    assert!(pk < cent, "BNL-PK {pk:.1} vs Centroid {cent:.1}");
}

#[test]
fn bnl_has_full_coverage_where_proximity_does_not() {
    // Sparser anchors: proximity methods lose coverage, BP never does.
    let mut s = scenario();
    s.anchors = AnchorStrategy::Random { count: 5 };
    let pk = evaluate(&bnl(), &s, &EvalConfig::trials(TRIALS));
    let cent = evaluate(&Centroid, &s, &EvalConfig::trials(TRIALS));
    assert!((pk.coverage - 1.0).abs() < 1e-9);
    assert!(cent.coverage < 1.0, "centroid coverage {}", cent.coverage);
}

#[test]
fn more_anchors_help_bnl() {
    let mut sparse = scenario();
    sparse.anchors = AnchorStrategy::Random { count: 4 };
    let mut dense = scenario();
    dense.anchors = AnchorStrategy::Random { count: 20 };
    let e_sparse = evaluate(&bnl(), &sparse, &EvalConfig::trials(TRIALS)).mean_error;
    let e_dense = evaluate(&bnl(), &dense, &EvalConfig::trials(TRIALS)).mean_error;
    assert!(
        e_dense < e_sparse,
        "dense anchors {e_dense:.1} should beat sparse {e_sparse:.1}"
    );
}

#[test]
fn preknowledge_gap_shrinks_with_anchor_density() {
    // The paper's core claim: priors matter most when anchors are scarce.
    let mut sparse = scenario();
    sparse.anchors = AnchorStrategy::Random { count: 4 };
    let mut dense = scenario();
    dense.anchors = AnchorStrategy::Random { count: 24 };
    let gap = |s: &Scenario| {
        evaluate(&nbp(), s, &EvalConfig::trials(TRIALS)).mean_error
            - evaluate(&bnl(), s, &EvalConfig::trials(TRIALS)).mean_error
    };
    let sparse_gap = gap(&sparse);
    let dense_gap = gap(&dense);
    assert!(
        sparse_gap > dense_gap,
        "pre-knowledge gap should shrink with anchors: sparse {sparse_gap:.1} vs dense {dense_gap:.1}"
    );
}

#[test]
fn errors_are_bounded_by_field_scale() {
    let s = scenario();
    let diag = (2.0f64).sqrt() * 600.0;
    for outcome in [
        evaluate(&bnl(), &s, &EvalConfig::trials(1)),
        evaluate(&DvHop::default(), &s, &EvalConfig::trials(1)),
        evaluate(&WeightedCentroid, &s, &EvalConfig::trials(1)),
    ] {
        for &e in &outcome.pooled_errors {
            assert!(e >= 0.0 && e < 1.5 * diag, "{}: error {e}", outcome.algo);
        }
    }
}
