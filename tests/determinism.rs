//! Determinism guarantees across the whole stack: identical seeds must
//! yield bit-identical results regardless of rayon scheduling or pool size.

use wsnloc::prelude::*;
use wsnloc_eval::{evaluate, EvalConfig};

fn scenario() -> Scenario {
    Scenario {
        name: "determinism".into(),
        deployment: Deployment::planned_square_drop(500.0, 3, 50.0),
        node_count: 50,
        anchors: AnchorStrategy::Random { count: 7 },
        radio: RadioModel::UnitDisk { range: 150.0 },
        ranging: RangingModel::Multiplicative { factor: 0.1 },
        seed: 0xDE7,
    }
}

fn algo() -> BnlLocalizer {
    BnlLocalizer::builder(Backend::particle(100).expect("valid backend"))
        .prior(PriorModel::DropPoint { sigma: 50.0 })
        .max_iterations(5)
        .tolerance(0.0)
        .try_build()
        .expect("valid config")
}

#[test]
fn network_generation_is_deterministic() {
    let s = scenario();
    let (n1, t1) = s.build_trial(3);
    let (n2, t2) = s.build_trial(3);
    assert_eq!(t1, t2);
    assert_eq!(n1.measurements(), n2.measurements());
    assert_eq!(
        n1.anchors().collect::<Vec<_>>(),
        n2.anchors().collect::<Vec<_>>()
    );
}

#[test]
fn localization_is_deterministic_across_runs() {
    let s = scenario();
    let (net, _) = s.build_trial(0);
    let a = algo().localize(&net, 42);
    let b = algo().localize(&net, 42);
    assert_eq!(a.estimates, b.estimates);
    assert_eq!(a.iterations, b.iterations);
}

#[test]
fn localization_is_deterministic_across_pool_sizes() {
    // The rayon-parallel synchronous schedule must not let thread count
    // leak into results: per-node RNG streams are split deterministically.
    let s = scenario();
    let (net, _) = s.build_trial(0);
    let single = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap()
        .install(|| algo().localize(&net, 7));
    let quad = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap()
        .install(|| algo().localize(&net, 7));
    assert_eq!(single.estimates, quad.estimates);
}

#[test]
fn evaluation_is_deterministic_across_pool_sizes() {
    let s = scenario();
    let run = |threads| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| evaluate(&algo(), &s, &EvalConfig::trials(3)).mean_error)
    };
    assert_eq!(run(1), run(3));
}

#[test]
fn grid_bp_is_bit_identical_across_pool_sizes() {
    // The persistent-worker rayon shim chunks by the *installed* thread
    // count, never by how many workers execute the chunks — so the
    // synchronous grid schedule (stencil cache included) must be
    // bit-identical from 1 thread to many.
    let s = scenario();
    let (net, _) = s.build_trial(1);
    let g = BnlLocalizer::builder(Backend::grid(25).expect("valid backend"))
        .prior(PriorModel::DropPoint { sigma: 50.0 })
        .max_iterations(4)
        .try_build()
        .expect("valid config");
    let run = |threads| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| g.localize(&net, 5))
    };
    let single = run(1);
    let duo = run(2);
    let quad = run(4);
    assert_eq!(single.estimates, duo.estimates);
    assert_eq!(single.estimates, quad.estimates);
    assert_eq!(single.iterations, quad.iterations);
}

#[test]
fn particle_bp_is_bit_identical_across_pool_sizes() {
    let s = scenario();
    let (net, _) = s.build_trial(2);
    let run = |threads| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| algo().localize(&net, 11))
    };
    let single = run(1);
    let duo = run(2);
    let quad = run(4);
    assert_eq!(single.estimates, duo.estimates);
    assert_eq!(single.estimates, quad.estimates);
}

#[test]
fn schedule_permutation_audit_passes_on_a_small_matrix() {
    // The full {1,2,4,8}-thread × 8-seed sweep is the CI `cargo xtask
    // audit-determinism` gate; this pins a reduced matrix into tier-1 so
    // a regression in the permutation hook or an order-dependence in the
    // BP stack fails the plain test suite too.
    let outcome = wsnloc_eval::audit_determinism(&wsnloc_eval::AuditConfig {
        thread_counts: vec![1, 2],
        permutation_seeds: vec![0xA0D1_7000, 0xA0D1_8EEF],
    });
    assert!(outcome.passed(), "divergences: {:?}", outcome.failures);
}

#[test]
fn different_seeds_give_different_results() {
    let s = scenario();
    let (net, _) = s.build_trial(0);
    let a = algo().localize(&net, 1);
    let b = algo().localize(&net, 2);
    assert_ne!(a.estimates, b.estimates);
}

#[test]
fn grid_backend_is_deterministic() {
    let s = scenario();
    let (net, _) = s.build_trial(0);
    let g = BnlLocalizer::builder(Backend::grid(25).expect("valid backend"))
        .prior(PriorModel::DropPoint { sigma: 50.0 })
        .max_iterations(4)
        .try_build()
        .expect("valid config");
    // Grid BP has no internal randomness at all: even different seeds agree.
    let a = g.localize(&net, 1);
    let b = g.localize(&net, 2);
    assert_eq!(a.estimates, b.estimates);
}
