//! Table reports: aligned ASCII for the terminal, CSV for plotting.

use std::fmt::Write as _;
use std::path::Path;

/// A rectangular experiment report: labeled rows of numeric columns.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Report {
    /// Experiment id ("f1", "t2", …).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Name of the label column (e.g. "algorithm" or "anchor %").
    pub label_column: String,
    /// Numeric column names.
    pub columns: Vec<String>,
    /// Per-row labels.
    pub row_labels: Vec<String>,
    /// `data[row][col]` numeric payload; NaN renders as "-".
    pub data: Vec<Vec<f64>>,
}

impl Report {
    /// Creates a report, validating shape consistency.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        label_column: impl Into<String>,
        columns: Vec<String>,
        row_labels: Vec<String>,
        data: Vec<Vec<f64>>,
    ) -> Self {
        assert_eq!(row_labels.len(), data.len(), "one label per row");
        for row in &data {
            assert_eq!(row.len(), columns.len(), "ragged report row");
        }
        Report {
            id: id.into(),
            title: title.into(),
            label_column: label_column.into(),
            columns,
            row_labels,
            data,
        }
    }

    /// Looks up a cell by row label and column name (for tests and
    /// cross-experiment checks).
    pub fn cell(&self, row_label: &str, column: &str) -> Option<f64> {
        let r = self.row_labels.iter().position(|l| l == row_label)?;
        let c = self.columns.iter().position(|c| c == column)?;
        let v = self.data[r][c];
        (!v.is_nan()).then_some(v)
    }

    /// A whole numeric column by name.
    pub fn column(&self, column: &str) -> Option<Vec<f64>> {
        let c = self.columns.iter().position(|c| c == column)?;
        Some(self.data.iter().map(|row| row[c]).collect())
    }

    /// Renders an aligned ASCII table.
    pub fn to_ascii(&self) -> String {
        let mut widths: Vec<usize> = Vec::new();
        widths.push(
            self.row_labels
                .iter()
                .map(String::len)
                .chain([self.label_column.len()])
                .max()
                .unwrap_or(4),
        );
        let fmt_cell = |v: f64| {
            if v.is_nan() {
                "-".to_string()
            } else if v == 0.0 || (v.abs() >= 0.01 && v.abs() < 100_000.0) {
                format!("{v:.3}")
            } else {
                format!("{v:.3e}")
            }
        };
        for (c, name) in self.columns.iter().enumerate() {
            let w = self
                .data
                .iter()
                .map(|row| fmt_cell(row[c]).len())
                .chain([name.len()])
                .max()
                .unwrap_or(4);
            widths.push(w);
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {} — {}", self.id.to_uppercase(), self.title);
        let _ = write!(out, "{:<w$}", self.label_column, w = widths[0]);
        for (c, name) in self.columns.iter().enumerate() {
            let _ = write!(out, "  {:>w$}", name, w = widths[c + 1]);
        }
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * self.columns.len();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for (label, row) in self.row_labels.iter().zip(&self.data) {
            let _ = write!(out, "{:<w$}", label, w = widths[0]);
            for (c, &v) in row.iter().enumerate() {
                let _ = write!(out, "  {:>w$}", fmt_cell(v), w = widths[c + 1]);
            }
            out.push('\n');
        }
        out
    }

    /// Renders RFC-4180-ish CSV (label column first).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = write!(out, "{}", esc(&self.label_column));
        for c in &self.columns {
            let _ = write!(out, ",{}", esc(c));
        }
        out.push('\n');
        for (label, row) in self.row_labels.iter().zip(&self.data) {
            let _ = write!(out, "{}", esc(label));
            for &v in row {
                if v.is_nan() {
                    out.push(',');
                } else {
                    let _ = write!(out, ",{v}");
                }
            }
            out.push('\n');
        }
        out
    }

    /// Writes `<dir>/<id>.csv`, creating the directory if needed.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report::new(
            "t9",
            "sample report",
            "algo",
            vec!["err".into(), "cov".into()],
            vec!["BNL".into(), "DV-Hop".into()],
            vec![vec![0.25, 1.0], vec![0.9, f64::NAN]],
        )
    }

    #[test]
    fn cell_lookup() {
        let r = sample();
        assert_eq!(r.cell("BNL", "err"), Some(0.25));
        assert_eq!(r.cell("DV-Hop", "cov"), None); // NaN
        assert_eq!(r.cell("nope", "err"), None);
        let col = r.column("cov").unwrap();
        assert_eq!(col[0], 1.0);
        assert!(col[1].is_nan());
        assert_eq!(r.column("missing"), None);
    }

    #[test]
    fn ascii_renders_all_rows() {
        let text = sample().to_ascii();
        assert!(text.contains("T9"));
        assert!(text.contains("BNL"));
        assert!(text.contains("DV-Hop"));
        assert!(text.contains("0.250"));
        assert!(text.contains('-'));
        assert_eq!(text.lines().count(), 5);
    }

    #[test]
    fn csv_roundtrip_values() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "algo,err,cov");
        assert_eq!(lines[1], "BNL,0.25,1");
        assert_eq!(lines[2], "DV-Hop,0.9,"); // NaN → empty cell
    }

    #[test]
    fn csv_escapes_commas() {
        let r = Report::new(
            "x",
            "t",
            "name, with comma",
            vec!["v".into()],
            vec!["a\"b".into()],
            vec![vec![1.0]],
        );
        let csv = r.to_csv();
        assert!(csv.starts_with("\"name, with comma\""));
        assert!(csv.contains("\"a\"\"b\""));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = Report::new(
            "x",
            "t",
            "l",
            vec!["a".into(), "b".into()],
            vec!["r".into()],
            vec![vec![1.0]],
        );
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("wsnloc_eval_test_csv");
        let path = sample().write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("BNL"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
