//! Monte-Carlo trial runner.
//!
//! [`evaluate`] runs a [`Localizer`] over independent trials of a
//! [`Scenario`] — trial `t` realizes the scenario with seed offset `t` and
//! localizes with algorithm seed `t` — and aggregates errors, coverage,
//! communication, and runtime. Trials run in parallel through rayon; the
//! per-trial seeds make the aggregate independent of scheduling.

use rayon::prelude::*;
use wsnloc::Localizer;
use wsnloc_geom::stats::{self, Welford};
use wsnloc_net::Scenario;

use crate::metrics::{localized_errors, ErrorSummary};

/// Aggregated evaluation of one algorithm on one scenario.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EvalOutcome {
    /// Algorithm display name.
    pub algo: String,
    /// Scenario name.
    pub scenario: String,
    /// Trials executed.
    pub trials: u64,
    /// All localized-node errors pooled across trials (meters).
    pub pooled_errors: Vec<f64>,
    /// Mean of per-trial mean errors (meters).
    pub mean_error: f64,
    /// 95% confidence half-width of `mean_error` across trials.
    pub mean_error_ci95: f64,
    /// Mean coverage (fraction of unknowns localized).
    pub coverage: f64,
    /// Mean messages per node per trial.
    pub msgs_per_node: f64,
    /// Mean bytes per node per trial.
    pub bytes_per_node: f64,
    /// Mean wall seconds per trial.
    pub secs: f64,
    /// Mean iterations per trial.
    pub iterations: f64,
    /// Mean fraction of trials that converged (iterative algorithms).
    pub converged_frac: f64,
}

impl EvalOutcome {
    /// Summary of the pooled error distribution (meters).
    pub fn summary(&self) -> Option<ErrorSummary> {
        ErrorSummary::from_errors(&self.pooled_errors)
    }

    /// Summary normalized by `scale` (typically the radio range).
    pub fn normalized_summary(&self, scale: f64) -> Option<ErrorSummary> {
        self.summary().map(|s| s.normalized(scale))
    }
}

/// Per-trial raw record (used internally and by the scalability table).
#[derive(Debug, Clone)]
pub struct TrialRecord {
    /// Localized-node errors (meters).
    pub errors: Vec<f64>,
    /// Coverage over unknowns.
    pub coverage: f64,
    /// Messages per node.
    pub msgs_per_node: f64,
    /// Bytes per node.
    pub bytes_per_node: f64,
    /// Algorithm wall seconds.
    pub secs: f64,
    /// Iterations executed.
    pub iterations: usize,
    /// Converged flag.
    pub converged: bool,
}

/// Runs one trial of `algo` on `scenario`.
pub fn run_trial(algo: &dyn Localizer, scenario: &Scenario, trial: u64) -> TrialRecord {
    let (network, truth) = scenario.build_trial(trial);
    let result = algo.localize(&network, trial);
    let errors = localized_errors(&result.errors_for(&truth, Some(&network)));
    let n = network.len();
    TrialRecord {
        coverage: result.coverage(network.unknowns()),
        msgs_per_node: result.comm.messages_per_node(n),
        bytes_per_node: result.comm.bytes as f64 / n as f64,
        secs: result.elapsed_secs,
        iterations: result.iterations,
        converged: result.converged,
        errors,
    }
}

/// Evaluates `algo` over `trials` Monte-Carlo realizations of `scenario`.
pub fn evaluate(algo: &dyn Localizer, scenario: &Scenario, trials: u64) -> EvalOutcome {
    let records: Vec<TrialRecord> = (0..trials)
        .into_par_iter()
        .map(|t| run_trial(algo, scenario, t))
        .collect();

    let mut pooled = Vec::new();
    let mut mean_w = Welford::new();
    let mut cov_w = Welford::new();
    let mut msg_w = Welford::new();
    let mut byte_w = Welford::new();
    let mut sec_w = Welford::new();
    let mut iter_w = Welford::new();
    let mut conv_w = Welford::new();
    let mut per_trial_means = Vec::new();
    for r in &records {
        if let Some(m) = stats::mean(&r.errors) {
            mean_w.push(m);
            per_trial_means.push(m);
        }
        pooled.extend_from_slice(&r.errors);
        cov_w.push(r.coverage);
        msg_w.push(r.msgs_per_node);
        byte_w.push(r.bytes_per_node);
        sec_w.push(r.secs);
        iter_w.push(r.iterations as f64);
        conv_w.push(if r.converged { 1.0 } else { 0.0 });
    }

    EvalOutcome {
        algo: algo.name(),
        scenario: scenario.name.clone(),
        trials,
        pooled_errors: pooled,
        mean_error: mean_w.mean().unwrap_or(f64::NAN),
        mean_error_ci95: stats::ci95_half_width(&per_trial_means).unwrap_or(f64::NAN),
        coverage: cov_w.mean().unwrap_or(0.0),
        msgs_per_node: msg_w.mean().unwrap_or(0.0),
        bytes_per_node: byte_w.mean().unwrap_or(0.0),
        secs: sec_w.mean().unwrap_or(0.0),
        iterations: iter_w.mean().unwrap_or(0.0),
        converged_frac: conv_w.mean().unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsnloc_baselines::Centroid;
    use wsnloc_net::{AnchorStrategy, Deployment, RadioModel, RangingModel};

    fn tiny_scenario() -> Scenario {
        Scenario {
            name: "tiny".into(),
            deployment: Deployment::uniform_square(300.0),
            node_count: 40,
            anchors: AnchorStrategy::Random { count: 8 },
            radio: RadioModel::UnitDisk { range: 120.0 },
            ranging: RangingModel::Multiplicative { factor: 0.05 },
            seed: 7,
        }
    }

    #[test]
    fn evaluate_aggregates_trials() {
        let outcome = evaluate(&Centroid, &tiny_scenario(), 4);
        assert_eq!(outcome.trials, 4);
        assert_eq!(outcome.algo, "Centroid");
        assert!(!outcome.pooled_errors.is_empty());
        assert!(outcome.mean_error > 0.0);
        assert!(outcome.coverage > 0.3);
        assert!(outcome.msgs_per_node > 0.0);
        let s = outcome.summary().unwrap();
        assert!(s.median <= s.p90);
    }

    #[test]
    fn evaluate_is_deterministic_despite_parallelism() {
        let a = evaluate(&Centroid, &tiny_scenario(), 4);
        let b = evaluate(&Centroid, &tiny_scenario(), 4);
        assert_eq!(a.mean_error, b.mean_error);
        assert_eq!(a.pooled_errors.len(), b.pooled_errors.len());
    }

    #[test]
    fn normalized_summary_scales() {
        let outcome = evaluate(&Centroid, &tiny_scenario(), 2);
        let raw = outcome.summary().unwrap();
        let norm = outcome.normalized_summary(120.0).unwrap();
        assert!((norm.mean - raw.mean / 120.0).abs() < 1e-12);
    }

    #[test]
    fn run_trial_reports_comm() {
        let rec = run_trial(&Centroid, &tiny_scenario(), 0);
        assert!(rec.msgs_per_node > 0.0);
        assert!(rec.bytes_per_node > 0.0);
        assert_eq!(rec.iterations, 1);
        assert!(rec.converged);
    }
}
