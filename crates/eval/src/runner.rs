//! Monte-Carlo trial runner.
//!
//! [`evaluate`] runs a [`Localizer`] over independent trials of a
//! [`Scenario`] — trial `t` realizes the scenario with seed offset `t` and
//! localizes with algorithm seed `seed_base + t` — and aggregates errors,
//! coverage, communication, and runtime. How many trials, how they are
//! scheduled, and what telemetry they report is configured through
//! [`EvalConfig`]; `EvalConfig::trials(n)` reproduces the historical
//! positional call `evaluate(algo, scenario, n)`.
//!
//! Trials run in parallel through rayon by default; the per-trial seeds make
//! the aggregate independent of scheduling.

use rayon::prelude::*;
use rayon::PoolStats;
use std::sync::Arc;
use wsnloc::Localizer;
use wsnloc_geom::stats::{self, Welford};
use wsnloc_net::Scenario;
use wsnloc_obs::{
    FanoutObserver, InferenceObserver, MetricsObserver, MetricsSnapshot, ObsEvent, RunTrace,
    TraceObserver,
};

use crate::metrics::{localized_errors, ErrorSummary};

/// How [`evaluate`] schedules its trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Use whatever rayon pool is ambient (the default — trials fan out
    /// across the global pool, or the pool of an enclosing `install`).
    #[default]
    Ambient,
    /// Run trials one after another on the calling thread.
    Sequential,
    /// Run trials on a dedicated pool of this many threads. Falls back to
    /// the ambient pool if the pool cannot be built.
    Threads(usize),
}

/// Options for [`evaluate`]. `EvalConfig::trials(n)` matches the behavior
/// of the old positional `evaluate(algo, scenario, n)` signature exactly;
/// everything else is opt-in.
#[derive(Clone, Default)]
pub struct EvalConfig {
    /// Monte-Carlo trials to run.
    pub trials: u64,
    /// Added to the trial index to form both the scenario realization seed
    /// and the algorithm seed (default 0, the historical behavior).
    pub seed_base: u64,
    /// Observer attached to *every* trial's inference run. Because trials
    /// may run concurrently, a recording observer here sees interleaved
    /// runs — combine with [`Parallelism::Sequential`] for ordered traces,
    /// or use [`EvalConfig::collect_traces`], which records per trial.
    pub observer: Option<Arc<dyn InferenceObserver>>,
    /// Trial scheduling.
    pub parallelism: Parallelism,
    /// Record a [`RunTrace`] per trial (one private [`TraceObserver`] each,
    /// so parallel trials cannot interleave) and aggregate them into
    /// [`EvalOutcome::trace`]. Residual computation makes traced runs
    /// slower; leave off for timing-sensitive evaluations.
    pub collect_traces: bool,
    /// Fold a [`MetricsSnapshot`] per trial (one private
    /// [`MetricsObserver`] each) and aggregate them into
    /// [`EvalOutcome::metrics`], alongside the worker-pool dispatch
    /// counters for the whole evaluation. Enables residual computation,
    /// so metered runs are slower than bare ones.
    pub collect_metrics: bool,
}

impl std::fmt::Debug for EvalConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalConfig")
            .field("trials", &self.trials)
            .field("seed_base", &self.seed_base)
            .field("observer", &self.observer.as_ref().map(|_| "<dyn>"))
            .field("parallelism", &self.parallelism)
            .field("collect_traces", &self.collect_traces)
            .field("collect_metrics", &self.collect_metrics)
            .finish()
    }
}

impl EvalConfig {
    /// Configuration equivalent to the historical
    /// `evaluate(algo, scenario, trials)` call.
    pub fn trials(trials: u64) -> Self {
        EvalConfig {
            trials,
            ..EvalConfig::default()
        }
    }

    /// Sets the seed base (trial `t` uses seed `seed_base + t`).
    pub fn with_seed_base(mut self, seed_base: u64) -> Self {
        self.seed_base = seed_base;
        self
    }

    /// Attaches an observer to every trial's inference run.
    pub fn with_observer(mut self, observer: Arc<dyn InferenceObserver>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Sets the trial scheduling policy.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Enables per-trial trace recording into [`EvalOutcome::trace`].
    pub fn with_traces(mut self) -> Self {
        self.collect_traces = true;
        self
    }

    /// Enables per-trial metric folding into [`EvalOutcome::metrics`].
    pub fn with_metrics(mut self) -> Self {
        self.collect_metrics = true;
        self
    }
}

/// Metric snapshots folded across an evaluation (present on
/// [`EvalOutcome::metrics`] when [`EvalConfig::collect_metrics`] was
/// set).
#[derive(Debug, Clone, Default)]
pub struct MetricsAggregate {
    /// One snapshot per trial, in trial order, each folded by a private
    /// [`MetricsObserver`] so parallel trials cannot interleave.
    pub per_trial: Vec<MetricsSnapshot>,
    /// The trial snapshots merged ([`MetricsSnapshot::merge`]) — equal to
    /// what a single observer watching the trials back-to-back would have
    /// folded.
    pub overall: MetricsSnapshot,
    /// Worker-pool dispatch counters accumulated during this evaluation
    /// (process-wide: concurrent evaluations share the counters).
    pub pool: PoolStats,
}

/// Cross-trial aggregation of recorded [`RunTrace`]s (present on
/// [`EvalOutcome::trace`] when [`EvalConfig::collect_traces`] was set).
#[derive(Debug, Clone, Default)]
pub struct TraceAggregate {
    /// Inference runs traced (≥ trials; tracking localizers run several
    /// inference rounds per trial).
    pub runs: u64,
    /// Mean convergence curve: entry `i` averages the max per-node residual
    /// at iteration `i` over every run that reached iteration `i`.
    pub mean_residual_curve: Vec<f64>,
    /// Mean seconds per timed phase per run, keyed by the span's stable
    /// label (`"model_build"`, `"prior_init"`, …).
    pub mean_span_secs: Vec<(&'static str, f64)>,
    /// Structured events emitted across all runs.
    pub events: u64,
    /// The raw traces, in trial order — ready for
    /// [`wsnloc_obs::write_jsonl`].
    pub traces: Vec<RunTrace>,
}

impl TraceAggregate {
    fn from_traces(traces: Vec<RunTrace>) -> Self {
        let mut curve_w: Vec<Welford> = Vec::new();
        let mut span_sums: Vec<(&'static str, f64)> = Vec::new();
        let mut events = 0u64;
        for run in &traces {
            for (i, iter) in run.iterations.iter().enumerate() {
                if let Some(max) = iter.max_residual() {
                    if curve_w.len() <= i {
                        curve_w.resize_with(i + 1, Welford::new);
                    }
                    curve_w[i].push(max);
                }
            }
            for (kind, secs) in &run.spans {
                let label = kind.label();
                match span_sums.iter_mut().find(|(l, _)| *l == label) {
                    Some((_, total)) => *total += secs,
                    None => span_sums.push((label, *secs)),
                }
            }
            events += run.events.len() as u64;
        }
        let runs = traces.len() as u64;
        let denom = (runs as f64).max(1.0);
        TraceAggregate {
            runs,
            mean_residual_curve: curve_w.iter().filter_map(Welford::mean).collect(),
            mean_span_secs: span_sums
                .into_iter()
                .map(|(l, total)| (l, total / denom))
                .collect(),
            events,
            traces,
        }
    }
}

/// Aggregated evaluation of one algorithm on one scenario.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EvalOutcome {
    /// Algorithm display name.
    pub algo: String,
    /// Scenario name.
    pub scenario: String,
    /// Trials executed.
    pub trials: u64,
    /// All localized-node errors pooled across trials (meters).
    pub pooled_errors: Vec<f64>,
    /// Mean of per-trial mean errors (meters).
    pub mean_error: f64,
    /// 95% confidence half-width of `mean_error` across trials.
    pub mean_error_ci95: f64,
    /// Mean coverage (fraction of unknowns localized).
    pub coverage: f64,
    /// Mean messages per node per trial.
    pub msgs_per_node: f64,
    /// Mean bytes per node per trial.
    pub bytes_per_node: f64,
    /// Mean wall seconds per trial.
    pub secs: f64,
    /// Mean iterations per trial.
    pub iterations: f64,
    /// Mean fraction of trials that converged (iterative algorithms).
    pub converged_frac: f64,
    /// Convergence telemetry aggregated across trials; `Some` only when the
    /// evaluation ran with [`EvalConfig::collect_traces`].
    #[cfg_attr(feature = "serde", serde(skip))]
    pub trace: Option<TraceAggregate>,
    /// Per-trial metric snapshots and their merge; `Some` only when the
    /// evaluation ran with [`EvalConfig::collect_metrics`].
    #[cfg_attr(feature = "serde", serde(skip))]
    pub metrics: Option<MetricsAggregate>,
}

impl EvalOutcome {
    /// Summary of the pooled error distribution (meters).
    pub fn summary(&self) -> Option<ErrorSummary> {
        ErrorSummary::from_errors(&self.pooled_errors)
    }

    /// Summary normalized by `scale` (typically the radio range).
    pub fn normalized_summary(&self, scale: f64) -> Option<ErrorSummary> {
        self.summary().map(|s| s.normalized(scale))
    }
}

/// Per-trial raw record (used internally and by the scalability table).
#[derive(Debug, Clone)]
pub struct TrialRecord {
    /// Localized-node errors (meters).
    pub errors: Vec<f64>,
    /// Coverage over unknowns.
    pub coverage: f64,
    /// Messages per node.
    pub msgs_per_node: f64,
    /// Bytes per node.
    pub bytes_per_node: f64,
    /// Algorithm wall seconds.
    pub secs: f64,
    /// Iterations executed.
    pub iterations: usize,
    /// Converged flag.
    pub converged: bool,
}

/// Runs one trial of `algo` on `scenario`.
pub fn run_trial(algo: &dyn Localizer, scenario: &Scenario, trial: u64) -> TrialRecord {
    trial_record(algo, scenario, trial, None)
}

/// Like [`run_trial`], reporting inference telemetry into `observer`.
pub fn run_trial_observed(
    algo: &dyn Localizer,
    scenario: &Scenario,
    trial: u64,
    observer: &dyn InferenceObserver,
) -> TrialRecord {
    trial_record(algo, scenario, trial, Some(observer))
}

fn trial_record(
    algo: &dyn Localizer,
    scenario: &Scenario,
    trial: u64,
    observer: Option<&dyn InferenceObserver>,
) -> TrialRecord {
    let (network, truth) = scenario.build_trial(trial);
    let result = match observer {
        Some(obs) => algo.localize_with_observer(&network, trial, obs),
        None => algo.localize(&network, trial),
    };
    let errors = localized_errors(&result.errors_for(&truth, Some(&network)));
    let n = network.len();
    TrialRecord {
        coverage: result.coverage(network.unknowns()),
        msgs_per_node: result.comm.messages_per_node(n),
        bytes_per_node: result.comm.bytes as f64 / n as f64,
        secs: result.elapsed_secs,
        iterations: result.iterations,
        converged: result.converged,
        errors,
    }
}

/// Evaluates `algo` over Monte-Carlo realizations of `scenario` as
/// configured by `config`.
pub fn evaluate(algo: &dyn Localizer, scenario: &Scenario, config: &EvalConfig) -> EvalOutcome {
    type TrialOutput = (TrialRecord, Vec<RunTrace>, Option<MetricsSnapshot>);
    let run_one = |t: u64| -> TrialOutput {
        let seed = config.seed_base + t;
        let tracer = config.collect_traces.then(TraceObserver::new);
        let meter = config.collect_metrics.then(MetricsObserver::new);
        // Per-trial recorders first, shared external observer last; with
        // no recorders configured the bare (zero-cost) path is taken.
        let mut hooks: Vec<&dyn InferenceObserver> = Vec::new();
        if let Some(tracer) = tracer.as_ref() {
            hooks.push(tracer);
        }
        if let Some(meter) = meter.as_ref() {
            hooks.push(meter);
        }
        if let Some(ext) = config.observer.as_deref() {
            hooks.push(ext);
        }
        let record = match hooks.as_slice() {
            [] => run_trial(algo, scenario, seed),
            [only] => run_trial_observed(algo, scenario, seed, *only),
            _ => {
                let fan = FanoutObserver::new(hooks);
                run_trial_observed(algo, scenario, seed, &fan)
            }
        };
        (
            record,
            tracer.map(|t| t.take_runs()).unwrap_or_default(),
            meter.as_ref().map(MetricsObserver::snapshot),
        )
    };

    let pool_before = config.collect_metrics.then(rayon::pool_stats);
    let results: Vec<TrialOutput> = match config.parallelism {
        Parallelism::Sequential => (0..config.trials).map(run_one).collect(),
        Parallelism::Ambient => (0..config.trials).into_par_iter().map(run_one).collect(),
        Parallelism::Threads(n) => match rayon::ThreadPoolBuilder::new().num_threads(n).build() {
            Ok(pool) => pool.install(|| (0..config.trials).into_par_iter().map(run_one).collect()),
            Err(e) => {
                // The fallback to the ambient pool is benign for results
                // (per-trial seeds make the aggregate schedule-independent)
                // but must not be silent: scaling experiments comparing
                // thread counts would otherwise measure the wrong pool.
                if let Some(obs) = config.observer.as_deref() {
                    obs.on_event(&ObsEvent::ThreadPoolFallback {
                        requested: n,
                        error: e.to_string(),
                    });
                }
                (0..config.trials).into_par_iter().map(run_one).collect()
            }
        },
    };

    let mut pooled = Vec::new();
    let mut mean_w = Welford::new();
    let mut cov_w = Welford::new();
    let mut msg_w = Welford::new();
    let mut byte_w = Welford::new();
    let mut sec_w = Welford::new();
    let mut iter_w = Welford::new();
    let mut conv_w = Welford::new();
    let mut per_trial_means = Vec::new();
    let mut traces = Vec::new();
    let mut snapshots = Vec::new();
    for (r, trial_traces, trial_metrics) in results {
        if let Some(m) = stats::mean(&r.errors) {
            mean_w.push(m);
            per_trial_means.push(m);
        }
        pooled.extend_from_slice(&r.errors);
        cov_w.push(r.coverage);
        msg_w.push(r.msgs_per_node);
        byte_w.push(r.bytes_per_node);
        sec_w.push(r.secs);
        iter_w.push(r.iterations as f64);
        conv_w.push(if r.converged { 1.0 } else { 0.0 });
        traces.extend(trial_traces);
        snapshots.extend(trial_metrics);
    }
    let metrics = pool_before.map(|before| MetricsAggregate {
        overall: MetricsSnapshot::merge(&snapshots),
        per_trial: snapshots,
        pool: rayon::pool_stats().since(&before),
    });

    EvalOutcome {
        algo: algo.name(),
        scenario: scenario.name.clone(),
        trials: config.trials,
        pooled_errors: pooled,
        mean_error: mean_w.mean().unwrap_or(f64::NAN),
        mean_error_ci95: stats::ci95_half_width(&per_trial_means).unwrap_or(f64::NAN),
        coverage: cov_w.mean().unwrap_or(0.0),
        msgs_per_node: msg_w.mean().unwrap_or(0.0),
        bytes_per_node: byte_w.mean().unwrap_or(0.0),
        secs: sec_w.mean().unwrap_or(0.0),
        iterations: iter_w.mean().unwrap_or(0.0),
        converged_frac: conv_w.mean().unwrap_or(0.0),
        trace: config
            .collect_traces
            .then(|| TraceAggregate::from_traces(traces)),
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsnloc::{Backend, BnlLocalizer};
    use wsnloc_baselines::Centroid;
    use wsnloc_net::{AnchorStrategy, Deployment, RadioModel, RangingModel};

    fn tiny_scenario() -> Scenario {
        Scenario {
            name: "tiny".into(),
            deployment: Deployment::uniform_square(300.0),
            node_count: 40,
            anchors: AnchorStrategy::Random { count: 8 },
            radio: RadioModel::UnitDisk { range: 120.0 },
            ranging: RangingModel::Multiplicative { factor: 0.05 },
            seed: 7,
        }
    }

    #[test]
    fn evaluate_aggregates_trials() {
        let outcome = evaluate(&Centroid, &tiny_scenario(), &EvalConfig::trials(4));
        assert_eq!(outcome.trials, 4);
        assert_eq!(outcome.algo, "Centroid");
        assert!(!outcome.pooled_errors.is_empty());
        assert!(outcome.mean_error > 0.0);
        assert!(outcome.coverage > 0.3);
        assert!(outcome.msgs_per_node > 0.0);
        assert!(outcome.trace.is_none());
        let s = outcome.summary().unwrap();
        assert!(s.median <= s.p90);
    }

    #[test]
    fn evaluate_is_deterministic_despite_parallelism() {
        let a = evaluate(&Centroid, &tiny_scenario(), &EvalConfig::trials(4));
        let b = evaluate(&Centroid, &tiny_scenario(), &EvalConfig::trials(4));
        assert_eq!(a.mean_error, b.mean_error);
        assert_eq!(a.pooled_errors.len(), b.pooled_errors.len());
        // Scheduling policy changes nothing either.
        let c = evaluate(
            &Centroid,
            &tiny_scenario(),
            &EvalConfig::trials(4).with_parallelism(Parallelism::Sequential),
        );
        assert_eq!(a.mean_error, c.mean_error);
    }

    #[test]
    fn seed_base_shifts_the_trial_stream() {
        let a = evaluate(&Centroid, &tiny_scenario(), &EvalConfig::trials(2));
        let b = evaluate(
            &Centroid,
            &tiny_scenario(),
            &EvalConfig::trials(2).with_seed_base(100),
        );
        assert_ne!(a.mean_error, b.mean_error);
    }

    #[test]
    fn normalized_summary_scales() {
        let outcome = evaluate(&Centroid, &tiny_scenario(), &EvalConfig::trials(2));
        let raw = outcome.summary().unwrap();
        let norm = outcome.normalized_summary(120.0).unwrap();
        assert!((norm.mean - raw.mean / 120.0).abs() < 1e-12);
    }

    #[test]
    fn run_trial_reports_comm() {
        let rec = run_trial(&Centroid, &tiny_scenario(), 0);
        assert!(rec.msgs_per_node > 0.0);
        assert!(rec.bytes_per_node > 0.0);
        assert_eq!(rec.iterations, 1);
        assert!(rec.converged);
    }

    #[test]
    fn collect_traces_aggregates_per_trial_runs() {
        let algo = BnlLocalizer::builder(Backend::particle(60).expect("valid backend"))
            .max_iterations(3)
            .tolerance(0.0)
            .try_build()
            .expect("valid config");
        let outcome = evaluate(
            &algo,
            &tiny_scenario(),
            &EvalConfig::trials(3).with_traces(),
        );
        let agg = outcome.trace.as_ref().expect("traces collected");
        assert_eq!(agg.runs, 3);
        assert_eq!(agg.traces.len(), 3);
        assert_eq!(agg.mean_residual_curve.len(), 3);
        assert!(agg.mean_residual_curve.iter().all(|r| r.is_finite()));
        // Per-trial observers keep trial traces separate even under the
        // parallel scheduler: every trace is a complete run.
        for t in &agg.traces {
            assert_eq!(t.iterations.len(), 3);
            assert!(t.summary.is_some());
        }
        assert!(agg
            .mean_span_secs
            .iter()
            .any(|(label, _)| *label == "message_passing"));
        // Baselines have no inference loop: tracing them records nothing.
        let base = evaluate(
            &Centroid,
            &tiny_scenario(),
            &EvalConfig::trials(2).with_traces(),
        );
        assert_eq!(base.trace.expect("aggregate present").runs, 0);
    }

    #[test]
    fn collect_metrics_aggregates_per_trial_snapshots() {
        let algo = BnlLocalizer::builder(Backend::particle(60).expect("valid backend"))
            .max_iterations(3)
            .tolerance(0.0)
            .try_build()
            .expect("valid config");
        let outcome = evaluate(
            &algo,
            &tiny_scenario(),
            &EvalConfig::trials(3).with_metrics(),
        );
        let agg = outcome.metrics.as_ref().expect("metrics collected");
        assert_eq!(agg.per_trial.len(), 3);
        assert_eq!(agg.overall.runs, 3);
        assert_eq!(agg.overall.iterations, 9);
        assert!(!agg.overall.per_iteration.is_empty());
        assert!(agg.overall.per_iteration[0].residual_q50.is_some());
        // The merge equals the sum of the parts.
        let msgs: u64 = agg.per_trial.iter().map(|s| s.messages).sum();
        assert_eq!(agg.overall.messages, msgs);
        // Metrics and traces compose; without either flag both stay None.
        let both = evaluate(
            &algo,
            &tiny_scenario(),
            &EvalConfig::trials(1).with_metrics().with_traces(),
        );
        assert!(both.metrics.is_some() && both.trace.is_some());
        let bare = evaluate(&algo, &tiny_scenario(), &EvalConfig::trials(1));
        assert!(bare.metrics.is_none() && bare.trace.is_none());
    }

    #[test]
    fn shared_observer_sees_all_trials() {
        use std::sync::Arc;
        let algo = BnlLocalizer::builder(Backend::particle(40).expect("valid backend"))
            .max_iterations(2)
            .tolerance(0.0)
            .try_build()
            .expect("valid config");
        let obs = Arc::new(TraceObserver::new());
        let _ = evaluate(
            &algo,
            &tiny_scenario(),
            &EvalConfig::trials(3)
                .with_observer(obs.clone())
                .with_parallelism(Parallelism::Sequential),
        );
        assert_eq!(obs.run_count(), 3);
    }
}
