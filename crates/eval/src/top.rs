//! Client side of the live telemetry tier: a tiny HTTP GET client, an
//! OpenMetrics text parser, and the `repro top` dashboard renderer.
//!
//! `repro top ADDR` polls a [`TelemetryServer`](wsnloc_obs::TelemetryServer)
//! (`/metrics`, `/healthz`, `/tenants`) and renders a terminal rollup:
//! engine liveness, windowed tick-latency quantiles, a per-tenant table
//! (windowed solved/shed rates, queue depth, lifetime totals), and
//! per-shard boundary-message volume. Everything here returns strings —
//! the binary decides how to print them.

use std::collections::BTreeMap;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::Duration;

/// One parsed OpenMetrics sample: family name, sorted labels, value.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Metric (sample) name, e.g. `wsnloc_window_epochs_solved`.
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl MetricSample {
    /// The value of label `key`, if present.
    #[must_use]
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Issues one `GET path` against `addr` (`host:port`) and returns the
/// response body (headers stripped). Errors on connect failure or a
/// non-200 status line.
pub fn http_get(addr: &str, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let req = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(req.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let Some((head, body)) = response.split_once("\r\n\r\n") else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "malformed HTTP response (no header terminator)",
        ));
    };
    let status = head.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("{path}: {status}"),
        ));
    }
    Ok(body.to_owned())
}

/// Parses OpenMetrics exposition text into samples. Comment lines
/// (`# TYPE`/`# HELP`/`# UNIT`/`# EOF`) are skipped; label values are
/// unescaped (`\\`, `\"`, `\n`). Unparseable lines are ignored —
/// scrape clients must tolerate families they don't know.
#[must_use]
pub fn parse_openmetrics(text: &str) -> Vec<MetricSample> {
    let mut out = Vec::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(sample) = parse_sample_line(line) {
            out.push(sample);
        }
    }
    out
}

fn parse_sample_line(line: &str) -> Option<MetricSample> {
    // name{labels} value  |  name value
    let (name_part, rest) = match line.find('{') {
        Some(open) => {
            let close = find_label_close(line, open)?;
            (
                &line[..open],
                Some((&line[open + 1..close], &line[close + 1..])),
            )
        }
        None => {
            let sp = line.find(' ')?;
            (&line[..sp], None)
        }
    };
    let (labels, value_part) = match rest {
        Some((label_body, after)) => (parse_labels(label_body)?, after),
        None => (Vec::new(), &line[name_part.len()..]),
    };
    let value: f64 = value_part.split_whitespace().next()?.parse().ok()?;
    Some(MetricSample {
        name: name_part.to_owned(),
        labels,
        value,
    })
}

/// Index of the `}` closing the label block opened at `open`, honoring
/// quoted (and escaped) label values.
fn find_label_close(line: &str, open: usize) -> Option<usize> {
    let bytes = line.as_bytes();
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate().skip(open + 1) {
        if escaped {
            escaped = false;
            continue;
        }
        match b {
            b'\\' if in_quotes => escaped = true,
            b'"' => in_quotes = !in_quotes,
            b'}' if !in_quotes => return Some(i),
            _ => {}
        }
    }
    None
}

fn parse_labels(body: &str) -> Option<Vec<(String, String)>> {
    let mut labels = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest.find('=')?;
        let key = rest[..eq].trim().to_owned();
        let after_eq = &rest[eq + 1..];
        if !after_eq.starts_with('"') {
            return None;
        }
        let mut value = String::new();
        let mut chars = after_eq[1..].char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, other)) => value.push(other),
                    None => return None,
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                other => value.push(other),
            }
        }
        let end = end?;
        labels.push((key, value));
        rest = after_eq[1 + end + 1..].trim_start_matches(',');
    }
    Some(labels)
}

/// Extracts a string field from a flat JSON-ish document the telemetry
/// endpoints emit (`"key":value` with numeric/bool/null values). Good
/// enough for the two known shapes; not a general JSON parser.
fn json_scalar<'a>(doc: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = doc.find(&pat)? + pat.len();
    let rest = &doc[start..];
    let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// Per-tenant row accumulated from windowed series and the rollup.
#[derive(Debug, Default, Clone)]
struct TenantRow {
    window_solved: f64,
    window_shed: f64,
    queue_depth: f64,
    lifetime_solved: Option<String>,
    lifetime_shed: Option<String>,
    pending: Option<String>,
}

/// Renders the `repro top` dashboard from the three endpoint bodies.
/// Pure text-in/text-out so it is testable without sockets.
#[must_use]
pub fn render_top(metrics_body: &str, healthz_body: &str, tenants_body: &str) -> String {
    use std::fmt::Write as _;
    let samples = parse_openmetrics(metrics_body);
    let find = |name: &str| -> Option<f64> {
        samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .map(|s| s.value)
    };
    let quantile = |q: &str| -> Option<f64> {
        samples
            .iter()
            .find(|s| s.name == "wsnloc_window_tick_seconds" && s.label("quantile") == Some(q))
            .map(|s| s.value)
    };

    let mut out = String::new();
    let ticks = json_scalar(healthz_body, "ticks").unwrap_or("?");
    let age = json_scalar(healthz_body, "last_tick_age_secs").unwrap_or("?");
    let ok = json_scalar(healthz_body, "ok").unwrap_or("?");
    let _ = writeln!(out, "wsnloc live telemetry");
    let _ = writeln!(
        out,
        "  health: ok={ok}  ticks={ticks}  last_tick_age_s={age}"
    );
    let _ = writeln!(
        out,
        "  lifetime: solved={}  shed={}  bp_runs(win)={}",
        find("wsnloc_serve_epochs_solved_total").map_or_else(|| "?".into(), |v| format!("{v}")),
        find("wsnloc_serve_epochs_shed_total").map_or_else(|| "?".into(), |v| format!("{v}")),
        find("wsnloc_window_bp_runs").map_or_else(|| "?".into(), |v| format!("{v}")),
    );
    match (quantile("0.5"), quantile("0.9"), quantile("0.99")) {
        (Some(p50), Some(p90), Some(p99)) => {
            let _ = writeln!(
                out,
                "  tick latency (window): p50={p50:.4}s  p90={p90:.4}s  p99={p99:.4}s"
            );
        }
        _ => {
            let _ = writeln!(out, "  tick latency (window): no samples yet");
        }
    }

    // Per-tenant table: windowed series keyed by the tenant label,
    // merged with the lifetime rollup from /tenants.
    let mut tenants: BTreeMap<u64, TenantRow> = BTreeMap::new();
    for s in &samples {
        let Some(tenant) = s.label("tenant").and_then(|t| t.parse::<u64>().ok()) else {
            continue;
        };
        let row = tenants.entry(tenant).or_default();
        match s.name.as_str() {
            "wsnloc_window_epochs_solved" => row.window_solved = s.value,
            "wsnloc_window_epochs_shed" => row.window_shed = s.value,
            "wsnloc_window_queue_depth" => row.queue_depth = s.value,
            _ => {}
        }
    }
    // `/tenants` entries look like {"id":N,...}; walk them naively.
    for entry in tenants_body.split("{\"id\":").skip(1) {
        let Some(id) = entry
            .find(|c: char| !c.is_ascii_digit())
            .and_then(|e| entry[..e].parse::<u64>().ok())
        else {
            continue;
        };
        let row = tenants.entry(id).or_default();
        row.lifetime_solved = json_scalar(entry, "solved").map(str::to_owned);
        row.lifetime_shed = json_scalar(entry, "shed").map(str::to_owned);
        row.pending = json_scalar(entry, "pending").map(str::to_owned);
    }
    if tenants.is_empty() {
        let _ = writeln!(out, "  tenants: none yet");
    } else {
        let _ = writeln!(
            out,
            "  {:<10} {:>10} {:>10} {:>7} {:>9} {:>9} {:>8}",
            "tenant", "win_solved", "win_shed", "queue", "solved", "shed", "pending"
        );
        for (id, row) in &tenants {
            let _ = writeln!(
                out,
                "  {:<10} {:>10} {:>10} {:>7} {:>9} {:>9} {:>8}",
                format!("tenant-{id}"),
                row.window_solved,
                row.window_shed,
                row.queue_depth,
                row.lifetime_solved.as_deref().unwrap_or("?"),
                row.lifetime_shed.as_deref().unwrap_or("?"),
                row.pending.as_deref().unwrap_or("?"),
            );
        }
    }

    // Per-shard boundary traffic, when any tenant runs sharded BP.
    let mut shards: BTreeMap<u64, f64> = BTreeMap::new();
    for s in &samples {
        if s.name == "wsnloc_window_boundary_messages" {
            if let Some(shard) = s.label("shard").and_then(|v| v.parse::<u64>().ok()) {
                *shards.entry(shard).or_insert(0.0) += s.value;
            }
        }
    }
    if !shards.is_empty() {
        let _ = writeln!(out, "  {:<10} {:>18}", "shard", "boundary_msgs(win)");
        for (shard, msgs) in &shards {
            let _ = writeln!(out, "  {:<10} {:>18}", format!("shard-{shard}"), msgs);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_labeled_and_bare_samples() {
        let text = "# TYPE wsnloc_window_epochs_solved gauge\n\
                    wsnloc_window_epochs_solved{tenant=\"3\"} 7\n\
                    wsnloc_serve_ticks_total 12\n\
                    # EOF\n";
        let samples = parse_openmetrics(text);
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].name, "wsnloc_window_epochs_solved");
        assert_eq!(samples[0].label("tenant"), Some("3"));
        assert!((samples[0].value - 7.0).abs() < 1e-12);
        assert!(samples[1].labels.is_empty());
        assert!((samples[1].value - 12.0).abs() < 1e-12);
    }

    #[test]
    fn unescapes_label_values_and_handles_braces_in_quotes() {
        let text = "m{k=\"a\\\\b\\\"c\\nd}e\"} 1\n";
        let samples = parse_openmetrics(text);
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].label("k"), Some("a\\b\"c\nd}e"));
    }

    #[test]
    fn multiple_labels_parse_in_order() {
        let text = "m{a=\"1\",quantile=\"0.99\"} 0.5\n";
        let samples = parse_openmetrics(text);
        assert_eq!(samples[0].labels.len(), 2);
        assert_eq!(samples[0].label("quantile"), Some("0.99"));
    }

    #[test]
    fn garbage_lines_are_skipped_not_fatal() {
        let text = "not a metric at all\nm 3\nm{unterminated=\"x 4\n";
        let samples = parse_openmetrics(text);
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].name, "m");
    }

    #[test]
    fn render_top_rolls_up_tenants_and_shards() {
        let metrics = "wsnloc_serve_epochs_solved_total 5\n\
                       wsnloc_serve_epochs_shed_total 1\n\
                       wsnloc_window_epochs_solved{tenant=\"0\"} 3\n\
                       wsnloc_window_epochs_solved{tenant=\"1\"} 2\n\
                       wsnloc_window_epochs_shed{tenant=\"1\"} 1\n\
                       wsnloc_window_queue_depth{tenant=\"0\"} 4\n\
                       wsnloc_window_boundary_messages{shard=\"2\"} 17\n\
                       wsnloc_window_tick_seconds{quantile=\"0.5\"} 0.01\n\
                       wsnloc_window_tick_seconds{quantile=\"0.9\"} 0.02\n\
                       wsnloc_window_tick_seconds{quantile=\"0.99\"} 0.03\n\
                       # EOF\n";
        let healthz = "{\"ok\":true,\"ticks\":9,\"last_tick_age_secs\":0.4}";
        let tenants = "{\"tenants\":[{\"id\":0,\"pending\":2,\"warm\":true,\"solved\":3,\"shed\":0,\"next_epoch\":3},{\"id\":1,\"pending\":0,\"warm\":true,\"solved\":2,\"shed\":1,\"next_epoch\":3}],\"ticks\":9}";
        let out = render_top(metrics, healthz, tenants);
        assert!(out.contains("ok=true"));
        assert!(out.contains("ticks=9"));
        assert!(out.contains("tenant-0"));
        assert!(out.contains("tenant-1"));
        assert!(out.contains("shard-2"));
        assert!(out.contains("p99=0.0300s"));
        assert!(out.contains("solved=5"));
    }

    #[test]
    fn render_top_survives_empty_bodies() {
        let out = render_top("# EOF\n", "{}", "{}");
        assert!(out.contains("tenants: none yet"));
        assert!(out.contains("no samples yet"));
    }
}
