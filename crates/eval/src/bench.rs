//! Pinned perf benchmarks behind `repro bench`.
//!
//! Unlike the statistical harness in `crates/bench`, these run fixed
//! scenarios and emit compact JSON (`BENCH_grid.json`,
//! `BENCH_particle.json`, `BENCH_stream.json`) meant to be committed
//! alongside the code, so
//! the perf trajectory of the message-passing hot path is visible in
//! review diffs. The grid bench times the same inference twice — with
//! the per-run message cache (kernel stencils + hoisted priors/anchor
//! messages) and on the recompute-everything reference path — and
//! reports the speedup.

use std::sync::Arc;
use wsnloc_bayes::{
    BpEngine, BpOptions, CoarseToFine, GaussianBp, GaussianRange, GridBp, ParticleBp,
    ShardedEngine, SpatialMrf, UniformBoxUnary,
};
use wsnloc_geom::grid::SpatialGrid;
use wsnloc_geom::rng::Xoshiro256pp;
use wsnloc_geom::{Aabb, ShardLayout, Vec2};
use wsnloc_obs::{parse_json, JsonValue, Stopwatch};

/// Grid resolution of the pinned grid scenario (the workspace default).
pub const GRID_RESOLUTION: usize = 30;
/// Iteration cap of the pinned grid scenario.
pub const GRID_ITERATIONS: usize = 3;

/// Median wall seconds over `samples` executions of `f`.
fn median_secs(samples: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let start = Stopwatch::start();
            f();
            start.elapsed_secs()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// The pinned grid scenario: a 3×3 lattice (two opposite corners
/// anchored) on a 300×300 m field, ranging edges between lattice
/// neighbors — the `grid_bp_iteration_9nodes_30x30` microbench fixture
/// with a multi-iteration cap.
fn grid_fixture() -> (SpatialMrf, BpOptions) {
    let domain = Aabb::from_size(300.0, 300.0);
    let mut mrf = SpatialMrf::new(9, domain, Arc::new(UniformBoxUnary(domain)));
    let pts: Vec<Vec2> = (0..9)
        .map(|i| Vec2::new(50.0 + 100.0 * (i % 3) as f64, 50.0 + 100.0 * (i / 3) as f64))
        .collect();
    mrf.fix(0, pts[0]);
    mrf.fix(8, pts[8]);
    for i in 0..9 {
        for j in (i + 1)..9 {
            if pts[i].dist(pts[j]) < 150.0 {
                mrf.add_edge(
                    i,
                    j,
                    Arc::new(GaussianRange {
                        observed: pts[i].dist(pts[j]),
                        sigma: 5.0,
                    }),
                );
            }
        }
    }
    let opts = BpOptions::builder()
        .max_iterations(GRID_ITERATIONS)
        .tolerance(0.0)
        .try_build()
        .expect("pinned grid options are valid");
    (mrf, opts)
}

/// The pinned particle/Gaussian scenario: 25 random nodes (3 anchored)
/// on a 300×300 m field with 120 m ranging radius — the
/// `particle_bp_iteration_25nodes` microbench fixture.
fn cooperative_fixture() -> (SpatialMrf, BpOptions) {
    let domain = Aabb::from_size(300.0, 300.0);
    let mut mrf = SpatialMrf::new(25, domain, Arc::new(UniformBoxUnary(domain)));
    let mut rng = Xoshiro256pp::seed_from(9);
    let pts: Vec<Vec2> = (0..25)
        .map(|_| rng.point_in(domain.min, domain.max))
        .collect();
    for (i, &p) in pts.iter().enumerate().take(3) {
        mrf.fix(i, p);
    }
    for i in 0..25 {
        for j in (i + 1)..25 {
            if pts[i].dist(pts[j]) < 120.0 {
                mrf.add_edge(
                    i,
                    j,
                    Arc::new(GaussianRange {
                        observed: pts[i].dist(pts[j]),
                        sigma: 5.0,
                    }),
                );
            }
        }
    }
    let opts = BpOptions::builder()
        .max_iterations(1)
        .tolerance(0.0)
        .try_build()
        .expect("pinned cooperative options are valid");
    (mrf, opts)
}

/// Runs the grid message-passing bench (cached vs reference path) and
/// returns the `BENCH_grid.json` contents.
pub fn grid_bench_json(samples: usize) -> String {
    let (mrf, opts) = grid_fixture();
    let cached_engine = GridBp::with_resolution(GRID_RESOLUTION);
    let reference_engine = cached_engine.without_message_cache();
    let (_, outcome) = cached_engine.run(&mrf, &opts);
    let cached_secs = median_secs(samples, || {
        cached_engine.run(&mrf, &opts);
    });
    let uncached_secs = median_secs(samples, || {
        reference_engine.run(&mrf, &opts);
    });
    let speedup = if cached_secs > 0.0 {
        uncached_secs / cached_secs
    } else {
        f64::INFINITY
    };
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"grid_message_passing\",\n",
            "  \"scenario\": \"lattice_9nodes_300x300\",\n",
            "  \"resolution\": {resolution},\n",
            "  \"samples\": {samples},\n",
            "  \"iterations\": {iterations},\n",
            "  \"messages\": {messages},\n",
            "  \"cached_secs\": {cached:.6},\n",
            "  \"uncached_secs\": {uncached:.6},\n",
            "  \"speedup\": {speedup:.2}\n",
            "}}\n"
        ),
        resolution = GRID_RESOLUTION,
        samples = samples.max(1),
        iterations = outcome.iterations,
        messages = outcome.messages,
        cached = cached_secs,
        uncached = uncached_secs,
        speedup = speedup,
    )
}

/// Runs the particle and Gaussian benches on the pinned cooperative
/// scenario and returns the `BENCH_particle.json` contents.
pub fn particle_bench_json(samples: usize) -> String {
    let (mrf, opts) = cooperative_fixture();
    let particle_engine = ParticleBp::with_particles(100);
    let (_, particle_outcome) = particle_engine.run(&mrf, &opts);
    let particle_secs = median_secs(samples, || {
        particle_engine.run(&mrf, &opts);
    });
    let gaussian_engine = GaussianBp::default();
    let (_, gaussian_outcome) = gaussian_engine.run(&mrf, &opts);
    let gaussian_secs = median_secs(samples, || {
        gaussian_engine.run(&mrf, &opts);
    });
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"particle_and_gaussian_bp\",\n",
            "  \"scenario\": \"cooperative_25nodes_300x300\",\n",
            "  \"samples\": {samples},\n",
            "  \"particle\": {{\n",
            "    \"particles\": 100,\n",
            "    \"iterations\": {p_iters},\n",
            "    \"messages\": {p_msgs},\n",
            "    \"secs\": {p_secs:.6}\n",
            "  }},\n",
            "  \"gaussian\": {{\n",
            "    \"iterations\": {g_iters},\n",
            "    \"messages\": {g_msgs},\n",
            "    \"secs\": {g_secs:.6}\n",
            "  }}\n",
            "}}\n"
        ),
        samples = samples.max(1),
        p_iters = particle_outcome.iterations,
        p_msgs = particle_outcome.messages,
        p_secs = particle_secs,
        g_iters = gaussian_outcome.iterations,
        g_msgs = gaussian_outcome.messages,
        g_secs = gaussian_secs,
    )
}

/// Resolutions of the pinned scale sweep (`repro bench --scale`).
pub const SCALE_RESOLUTIONS: [usize; 4] = [15, 30, 60, 120];

/// Node counts of the sharded deployment sweep. The full sweep
/// (`BENCH_scale.json`) runs every entry; `--quick`
/// (`BENCH_scale_quick.json`, the CI lane) drops the million-node row.
pub const SHARD_SCALE_NODES: [usize; 4] = [1_000, 10_000, 100_000, 1_000_000];
/// Ranging/halo radius of the sharded sweep deployments (meters).
pub const SHARD_SCALE_RADIUS: f64 = 30.0;
/// Expected neighbors per node: the field side is sized so density stays
/// constant across node counts and the sweep isolates pure scale.
pub const SHARD_SCALE_DEGREE: f64 = 5.0;
/// Target nodes per shard handed to [`ShardLayout::tiles_for_target`].
pub const SHARD_SCALE_TARGET: usize = 500;
/// Per-node BP iteration budget of the sharded sweep (outer rounds ×
/// interior iterations with `interior = 1`).
pub const SHARD_SCALE_ITERATIONS: usize = 2;

/// A uniform random deployment at constant density with 2.5% anchors and
/// radius-limited range edges built through the spatial hash, plus the
/// shard layout the sharded engine executes over.
fn sharded_fixture(nodes: usize) -> (SpatialMrf, Arc<ShardLayout>) {
    let density = SHARD_SCALE_DEGREE / (std::f64::consts::PI * SHARD_SCALE_RADIUS.powi(2));
    let side = (nodes as f64 / density).sqrt();
    let domain = Aabb::from_size(side, side);
    let mut rng = Xoshiro256pp::seed_from(0x5CA1E ^ nodes as u64);
    let pts: Vec<Vec2> = (0..nodes)
        .map(|_| rng.point_in(domain.min, domain.max))
        .collect();
    let mut mrf = SpatialMrf::new(nodes, domain, Arc::new(UniformBoxUnary(domain)));
    for u in (0..nodes).step_by(40) {
        mrf.fix(u, pts[u]);
    }
    let grid = SpatialGrid::build(domain, SHARD_SCALE_RADIUS, &pts);
    for u in 0..nodes {
        for v in grid.within(pts[u], SHARD_SCALE_RADIUS) {
            if v > u {
                mrf.add_edge(
                    u,
                    v,
                    Arc::new(GaussianRange {
                        observed: pts[u].dist(pts[v]),
                        sigma: 5.0,
                    }),
                );
            }
        }
    }
    let (tiles_x, tiles_y) = ShardLayout::tiles_for_target(nodes, SHARD_SCALE_TARGET);
    let layout = Arc::new(ShardLayout::build(
        domain,
        tiles_x,
        tiles_y,
        &pts,
        SHARD_SCALE_RADIUS,
    ));
    (mrf, layout)
}

/// Kernel microbench context pinned alongside the sweep (static text so
/// `--check` compares it exactly; re-measure with
/// `cargo bench -p wsnloc-bench --bench stencil` when the kernels
/// change). The numbers summarize `crates/bench/benches/stencil.rs` on
/// the reference machine.
pub const SCALE_NOTES: &str = "stencil microbench (30x30 grid, r=9): \
separable 8.5x vs dense f64; mirrored matches dense speed at half the \
table footprint; f32 ~1.1x vs same-kind f64";

/// Runs the scale sweeps and returns the `BENCH_scale.json` (or, with
/// `quick`, `BENCH_scale_quick.json`) contents.
///
/// Two sections share the file. `grid` times each pinned resolution
/// twice — flat full-resolution inference and the coarse-to-fine
/// schedule ([`CoarseToFine::default`]) — with a single fine iteration,
/// so the sweep exposes how the scatter cost grows with cell count and
/// how much the adaptive schedule claws back once beliefs concentrate.
/// `sharded` runs constant-density uniform deployments from 1k nodes up
/// (to 1M in full mode) through the Gaussian backend twice — the flat
/// engine and [`ShardedEngine`] over a [`ShardLayout`] — so the pinned
/// rows track both the flat baseline and the sharded execution layer's
/// overhead/scaling on networks far beyond the experiment suite. Graph
/// shape fields (`edges`, `anchors`, `shards`) are exact-match pinned:
/// they regress only if deployment construction loses determinism.
pub fn scale_bench_json(samples: usize, quick: bool) -> String {
    let node_counts: &[usize] = if quick {
        &SHARD_SCALE_NODES[..SHARD_SCALE_NODES.len() - 1]
    } else {
        &SHARD_SCALE_NODES
    };
    scale_bench_json_for(samples, node_counts, if quick { "quick" } else { "full" })
}

/// [`scale_bench_json`] with the deployment list held open so the unit
/// suite can exercise the JSON shape without building 100k+ networks.
fn scale_bench_json_for(samples: usize, node_counts: &[usize], mode: &str) -> String {
    let (mrf, _) = grid_fixture();
    let opts = BpOptions::builder()
        .max_iterations(1)
        .tolerance(0.0)
        .try_build()
        .expect("pinned scale options are valid");
    let mut grid_rows = String::new();
    for (i, &resolution) in SCALE_RESOLUTIONS.iter().enumerate() {
        let dense = GridBp::with_resolution(resolution);
        let refined = dense.with_refinement(CoarseToFine::default());
        let dense_secs = median_secs(samples, || {
            dense.run(&mrf, &opts);
        });
        let refined_secs = median_secs(samples, || {
            refined.run(&mrf, &opts);
        });
        let comma = if i + 1 < SCALE_RESOLUTIONS.len() {
            ","
        } else {
            ""
        };
        grid_rows.push_str(&format!(
            "      {{ \"resolution\": {resolution}, \"dense_secs\": {dense_secs:.6}, \"refined_secs\": {refined_secs:.6} }}{comma}\n",
        ));
    }

    let shard_opts = BpOptions::builder()
        .max_iterations(SHARD_SCALE_ITERATIONS)
        .tolerance(0.0)
        .try_build()
        .expect("pinned sharded options are valid");
    let mut shard_rows = String::new();
    for (i, &nodes) in node_counts.iter().enumerate() {
        let (mrf, layout) = sharded_fixture(nodes);
        let flat = GaussianBp::default();
        let sharded = ShardedEngine::new(GaussianBp::default(), Arc::clone(&layout), 1)
            .expect("one interior iteration is valid");
        let flat_secs = median_secs(samples, || {
            flat.run(&mrf, &shard_opts);
        });
        let sharded_secs = median_secs(samples, || {
            sharded.run(&mrf, &shard_opts);
        });
        let comma = if i + 1 < node_counts.len() { "," } else { "" };
        shard_rows.push_str(&format!(
            "      {{ \"nodes\": {nodes}, \"edges\": {edges}, \"anchors\": {anchors}, \"shards\": {shards}, \"flat_secs\": {flat_secs:.6}, \"sharded_secs\": {sharded_secs:.6} }}{comma}\n",
            edges = mrf.edges().len(),
            anchors = nodes.div_ceil(40),
            shards = layout.occupied_shards(),
        ));
    }

    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"scale_sweep\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"samples\": {samples},\n",
            "  \"notes\": \"{notes}\",\n",
            "  \"grid\": {{\n",
            "    \"scenario\": \"lattice_9nodes_300x300\",\n",
            "    \"iterations\": 1,\n",
            "    \"resolutions\": [\n",
            "{grid_rows}",
            "    ]\n",
            "  }},\n",
            "  \"sharded\": {{\n",
            "    \"scenario\": \"uniform_drop_degree5_radius30\",\n",
            "    \"backend\": \"sharded-gaussian\",\n",
            "    \"iterations\": {shard_iters},\n",
            "    \"target_shard_nodes\": {target},\n",
            "    \"deployments\": [\n",
            "{shard_rows}",
            "    ]\n",
            "  }}\n",
            "}}\n"
        ),
        mode = mode,
        samples = samples.max(1),
        notes = SCALE_NOTES,
        grid_rows = grid_rows,
        shard_iters = SHARD_SCALE_ITERATIONS,
        target = SHARD_SCALE_TARGET,
        shard_rows = shard_rows,
    )
}

/// Tenant count of the pinned streaming scenario.
pub const STREAM_TENANTS: usize = 64;
/// Per-epoch BP iteration budget of the pinned streaming scenario.
pub const STREAM_ITERATIONS: usize = 2;
/// Ticks of the deterministic overload phase (capacity = half the
/// tenants), whose admitted/shed epoch counts are pinned exactly.
pub const OVERLOAD_TICKS: usize = 4;

/// Runs the streaming-engine bench and returns the `BENCH_stream.json`
/// contents: one engine hosting 64 tenant sessions (30-node networks,
/// particle backend, 2-iteration budget with belief carry-over), timed
/// over whole warm ticks — every tenant advancing one epoch — so the
/// pinned `epoch_secs` is the end-to-end cost of one tenant-epoch
/// including scheduling, belief predict, and the parallel BP batch.
pub fn stream_bench_json(samples: usize) -> String {
    use wsnloc_net::network::NetworkBuilder;
    use wsnloc_net::{AnchorStrategy, Deployment, Network, RadioModel, RangingModel};
    use wsnloc_serve::{EngineConfig, MeasurementEpoch, SessionConfig, StreamingEngine};

    const NODES: usize = 30;
    const PARTICLES: usize = 50;
    let networks: Vec<Network> = (0..STREAM_TENANTS as u64)
        .map(|t| {
            NetworkBuilder {
                deployment: Deployment::planned_square_drop(400.0, 3, 40.0),
                node_count: NODES,
                anchors: AnchorStrategy::Random { count: 5 },
                radio: RadioModel::UnitDisk { range: 150.0 },
                ranging: RangingModel::Multiplicative { factor: 0.1 },
            }
            .build(0xBE9C ^ t)
            .0
        })
        .collect();
    let localizer =
        wsnloc::BnlLocalizer::builder(wsnloc::Backend::particle(PARTICLES).expect("valid backend"))
            .max_iterations(STREAM_ITERATIONS)
            .tolerance(0.0)
            .try_build()
            .expect("valid config");
    let session_cfg =
        SessionConfig::new(localizer).with_motion(wsnloc_bayes::MotionModel::random_walk(2.0));
    let mut engine = StreamingEngine::new(EngineConfig::default());
    let ids: Vec<_> = (0..STREAM_TENANTS)
        .map(|_| engine.open_session(session_cfg.clone()))
        .collect();
    // Warm every session first so the timed ticks measure the
    // carried-belief steady state, not the cold start.
    for (u, id) in ids.iter().enumerate() {
        engine.submit(*id, MeasurementEpoch::new(networks[u].clone(), 0));
    }
    let warmed = engine.tick().len();
    // Per-sample tick latencies (not just the median) so the pinned
    // file also carries a tail figure: `p99_tick_secs` is what the live
    // `/metrics` endpoint reports as the windowed tick-latency p99.
    let mut epoch_seed = 1u64;
    let mut tick_samples: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            for (u, id) in ids.iter().enumerate() {
                engine.submit(*id, MeasurementEpoch::new(networks[u].clone(), epoch_seed));
            }
            epoch_seed += 1;
            let start = Stopwatch::start();
            engine.tick();
            start.elapsed_secs()
        })
        .collect();
    tick_samples.sort_by(f64::total_cmp);
    let tick_secs = tick_samples[tick_samples.len() / 2];
    let p99_tick_secs = wsnloc_geom::stats::quantile_sorted(&tick_samples, 0.99);
    let epoch_secs = tick_secs / STREAM_TENANTS as f64;

    // Overload phase: a second engine admits only half the tenants per
    // tick. Admission is deterministic round-robin, so the pinned
    // admitted/shed counts are exact-match fields for `bench --check` —
    // a scheduler change that alters shedding shape fails the gate.
    let mut overloaded = StreamingEngine::new(EngineConfig {
        capacity_per_tick: STREAM_TENANTS / 2,
        shed_policy: wsnloc_net::DropPolicy::DecayToPrior { decay: 0.5 },
    });
    let over_ids: Vec<_> = (0..STREAM_TENANTS)
        .map(|_| overloaded.open_session(session_cfg.clone()))
        .collect();
    let mut admitted_epochs = 0u64;
    let mut shed_epochs = 0u64;
    for epoch in 0..OVERLOAD_TICKS as u64 {
        for (u, id) in over_ids.iter().enumerate() {
            overloaded.submit(*id, MeasurementEpoch::new(networks[u].clone(), epoch));
        }
        for update in overloaded.tick() {
            if update.degraded {
                shed_epochs += 1;
            } else {
                admitted_epochs += 1;
            }
        }
    }

    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"streaming_engine\",\n",
            "  \"scenario\": \"stream_64tenants_30nodes\",\n",
            "  \"tenants\": {tenants},\n",
            "  \"nodes\": {nodes},\n",
            "  \"particles\": {particles},\n",
            "  \"iterations\": {iterations},\n",
            "  \"samples\": {samples},\n",
            "  \"warmed\": {warmed},\n",
            "  \"tick_secs\": {tick:.6},\n",
            "  \"p99_tick_secs\": {p99:.6},\n",
            "  \"epoch_secs\": {epoch:.6},\n",
            "  \"overload_ticks\": {overload_ticks},\n",
            "  \"overload_capacity\": {capacity},\n",
            "  \"admitted_epochs\": {admitted},\n",
            "  \"shed_epochs\": {shed}\n",
            "}}\n"
        ),
        tenants = STREAM_TENANTS,
        nodes = NODES,
        particles = PARTICLES,
        iterations = STREAM_ITERATIONS,
        samples = samples.max(1),
        warmed = warmed,
        tick = tick_secs,
        p99 = p99_tick_secs,
        epoch = epoch_secs,
        overload_ticks = OVERLOAD_TICKS,
        capacity = STREAM_TENANTS / 2,
        admitted = admitted_epochs,
        shed = shed_epochs,
    )
}

/// Compares a freshly-measured bench JSON against the pinned one.
///
/// Timing fields (keys ending in `secs`) regress only when the fresh
/// number exceeds `pinned * tolerance` — getting faster is never a
/// failure, and neither is a derived `speedup` shift. Every other field
/// (scenario shape, iteration and message counts) must match exactly:
/// a changed message count means the bench is no longer measuring the
/// same work, which would make the timing comparison meaningless.
///
/// Returns the list of regressions, empty on success.
pub fn check_bench_json(pinned: &str, fresh: &str, tolerance: f64) -> Result<Vec<String>, String> {
    let pinned = parse_json(pinned).map_err(|e| format!("pinned JSON: {e}"))?;
    let fresh = parse_json(fresh).map_err(|e| format!("fresh JSON: {e}"))?;
    let mut failures = Vec::new();
    check_value("", &pinned, &fresh, tolerance, &mut failures);
    Ok(failures)
}

fn check_value(
    path: &str,
    pinned: &JsonValue,
    fresh: &JsonValue,
    tolerance: f64,
    failures: &mut Vec<String>,
) {
    if path.ends_with("speedup") {
        return; // derived from the timings; checked via its inputs
    }
    if path.ends_with("secs") {
        match (pinned.as_f64(), fresh.as_f64()) {
            (Some(want), Some(got)) if got.is_finite() && want.is_finite() => {
                let budget = want * tolerance;
                if got > budget {
                    failures.push(format!(
                        "{path}: {got:.6}s exceeds pinned {want:.6}s x tolerance {tolerance} = {budget:.6}s"
                    ));
                }
            }
            _ => failures.push(format!("{path}: expected a finite timing in both files")),
        }
        return;
    }
    match pinned {
        JsonValue::Obj(fields) => {
            for (key, want) in fields {
                let child = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                match fresh.get(key) {
                    Some(got) => check_value(&child, want, got, tolerance, failures),
                    None => failures.push(format!("{child}: missing from fresh output")),
                }
            }
        }
        JsonValue::Arr(items) => match fresh {
            JsonValue::Arr(fresh_items) if fresh_items.len() == items.len() => {
                for (i, (want, got)) in items.iter().zip(fresh_items).enumerate() {
                    check_value(&format!("{path}[{i}]"), want, got, tolerance, failures);
                }
            }
            _ => failures.push(format!(
                "{path}: expected an array of {} elements in both files",
                items.len()
            )),
        },
        want => {
            if want != fresh {
                failures.push(format!("{path}: pinned {want:?} != fresh {fresh:?}"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_bench_reports_plausible_json() {
        let json = grid_bench_json(1);
        assert!(json.contains("\"bench\": \"grid_message_passing\""));
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"iterations\": 3"));
    }

    #[test]
    fn particle_bench_reports_both_backends() {
        let json = particle_bench_json(1);
        assert!(json.contains("\"particle\""));
        assert!(json.contains("\"gaussian\""));
    }

    #[test]
    fn stream_bench_reports_epoch_timing() {
        let json = stream_bench_json(1);
        assert!(json.contains("\"bench\": \"streaming_engine\""));
        assert!(json.contains(&format!("\"tenants\": {STREAM_TENANTS}")));
        assert!(json.contains(&format!("\"warmed\": {STREAM_TENANTS}")));
        assert!(json.contains("\"epoch_secs\""));
    }

    #[test]
    fn scale_bench_reports_grid_and_sharded_sections() {
        // Exercise the quick shape at tiny sample count; the unit test
        // must not build the 100k+ deployments, so assert shape through
        // a single small fixture plus the quick JSON's static fields.
        let json = scale_bench_json_for(1, &SHARD_SCALE_NODES[..1], "quick");
        assert!(json.contains("\"bench\": \"scale_sweep\""), "{json}");
        assert!(json.contains("\"mode\": \"quick\""));
        for r in SCALE_RESOLUTIONS {
            assert!(json.contains(&format!("\"resolution\": {r}")), "{json}");
        }
        assert!(json.contains("\"nodes\": 1000"), "{json}");
        assert!(json.contains("\"flat_secs\""));
        assert!(json.contains("\"sharded_secs\""));
        assert!(json.contains("\"notes\""));
        // The sweep output round-trips the checker against itself.
        let failures = check_bench_json(&json, &json, 1.0).expect("parses");
        assert!(failures.is_empty(), "self-check failed: {failures:?}");
    }

    #[test]
    fn sharded_fixture_is_deterministic_and_multi_shard() {
        let (mrf, layout) = sharded_fixture(1_000);
        let (mrf2, layout2) = sharded_fixture(1_000);
        assert_eq!(mrf.edges().len(), mrf2.edges().len());
        assert_eq!(layout.occupied_shards(), layout2.occupied_shards());
        assert!(
            layout.occupied_shards() > 1,
            "1k-node sweep row must exercise the multi-shard path"
        );
        // Constant-density sizing: mean degree near the target.
        let degree = 2.0 * mrf.edges().len() as f64 / mrf.len() as f64;
        assert!(
            (degree - SHARD_SCALE_DEGREE).abs() < 1.5,
            "mean degree {degree} drifted from target {SHARD_SCALE_DEGREE}"
        );
    }

    #[test]
    fn check_recurses_into_arrays_with_timing_tolerance() {
        let pinned =
            "{\"rows\":[{\"resolution\":15,\"secs\":0.010},{\"resolution\":30,\"secs\":0.020}]}";
        let faster =
            "{\"rows\":[{\"resolution\":15,\"secs\":0.001},{\"resolution\":30,\"secs\":0.002}]}";
        assert!(check_bench_json(pinned, faster, 1.5)
            .expect("parses")
            .is_empty());
        let slower =
            "{\"rows\":[{\"resolution\":15,\"secs\":0.040},{\"resolution\":30,\"secs\":0.020}]}";
        let failures = check_bench_json(pinned, slower, 1.5).expect("parses");
        assert_eq!(failures.len(), 1);
        assert!(failures[0].starts_with("rows[0].secs"), "{failures:?}");
        // Shape drift inside an element and a length mismatch both flag.
        let reshaped =
            "{\"rows\":[{\"resolution\":16,\"secs\":0.010},{\"resolution\":30,\"secs\":0.020}]}";
        let failures = check_bench_json(pinned, reshaped, 10.0).expect("parses");
        assert!(failures.iter().any(|f| f.starts_with("rows[0].resolution")));
        let truncated = "{\"rows\":[{\"resolution\":15,\"secs\":0.010}]}";
        let failures = check_bench_json(pinned, truncated, 10.0).expect("parses");
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("array of 2 elements"));
    }

    #[test]
    fn check_passes_identical_json_and_faster_timings() {
        let pinned = "{\"bench\":\"b\",\"messages\":10,\"cached_secs\":0.010}";
        assert_eq!(
            check_bench_json(pinned, pinned, 1.0).expect("parses"),
            Vec::<String>::new()
        );
        // Faster than pinned is fine even at tolerance 1.0.
        let fresh = "{\"bench\":\"b\",\"messages\":10,\"cached_secs\":0.002}";
        assert!(check_bench_json(pinned, fresh, 1.0)
            .expect("parses")
            .is_empty());
    }

    #[test]
    fn check_flags_slow_timings_within_tolerance_only() {
        let pinned = "{\"secs\":0.010}";
        let slower = "{\"secs\":0.018}";
        assert!(check_bench_json(pinned, slower, 2.0)
            .expect("parses")
            .is_empty());
        let failures = check_bench_json(pinned, slower, 1.5).expect("parses");
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("exceeds pinned"));
    }

    #[test]
    fn check_flags_shape_drift_and_missing_fields() {
        let pinned = "{\"messages\":10,\"nested\":{\"secs\":0.01,\"speedup\":9.0}}";
        let drifted = "{\"messages\":12,\"nested\":{\"speedup\":1.0}}";
        let failures = check_bench_json(pinned, drifted, 10.0).expect("parses");
        // messages mismatch + nested.secs missing; speedup is never checked.
        assert_eq!(failures.len(), 2);
        assert!(failures.iter().any(|f| f.starts_with("messages:")));
        assert!(failures.iter().any(|f| f.contains("nested.secs")));
        assert!(check_bench_json("{", "{}", 1.0).is_err());
    }

    #[test]
    fn fresh_bench_passes_against_its_own_output() {
        let json = grid_bench_json(1);
        // Same measurement vs itself with slack for noise: no failures.
        let failures = check_bench_json(&json, &json, 1.0).expect("parses");
        assert!(failures.is_empty(), "self-check failed: {failures:?}");
    }
}
