//! Pinned perf benchmarks behind `repro bench`.
//!
//! Unlike the statistical harness in `crates/bench`, these run fixed
//! scenarios and emit compact JSON (`BENCH_grid.json`,
//! `BENCH_particle.json`) meant to be committed alongside the code, so
//! the perf trajectory of the message-passing hot path is visible in
//! review diffs. The grid bench times the same inference twice — with
//! the per-run message cache (kernel stencils + hoisted priors/anchor
//! messages) and on the recompute-everything reference path — and
//! reports the speedup.

use std::sync::Arc;
use std::time::Instant;
use wsnloc_bayes::{
    BpEngine, BpOptions, GaussianBp, GaussianRange, GridBp, ParticleBp, SpatialMrf, UniformBoxUnary,
};
use wsnloc_geom::rng::Xoshiro256pp;
use wsnloc_geom::{Aabb, Vec2};

/// Grid resolution of the pinned grid scenario (the workspace default).
pub const GRID_RESOLUTION: usize = 30;
/// Iteration cap of the pinned grid scenario.
pub const GRID_ITERATIONS: usize = 3;

/// Median wall seconds over `samples` executions of `f`.
fn median_secs(samples: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// The pinned grid scenario: a 3×3 lattice (two opposite corners
/// anchored) on a 300×300 m field, ranging edges between lattice
/// neighbors — the `grid_bp_iteration_9nodes_30x30` microbench fixture
/// with a multi-iteration cap.
fn grid_fixture() -> (SpatialMrf, BpOptions) {
    let domain = Aabb::from_size(300.0, 300.0);
    let mut mrf = SpatialMrf::new(9, domain, Arc::new(UniformBoxUnary(domain)));
    let pts: Vec<Vec2> = (0..9)
        .map(|i| Vec2::new(50.0 + 100.0 * (i % 3) as f64, 50.0 + 100.0 * (i / 3) as f64))
        .collect();
    mrf.fix(0, pts[0]);
    mrf.fix(8, pts[8]);
    for i in 0..9 {
        for j in (i + 1)..9 {
            if pts[i].dist(pts[j]) < 150.0 {
                mrf.add_edge(
                    i,
                    j,
                    Arc::new(GaussianRange {
                        observed: pts[i].dist(pts[j]),
                        sigma: 5.0,
                    }),
                );
            }
        }
    }
    let opts = BpOptions::builder()
        .max_iterations(GRID_ITERATIONS)
        .tolerance(0.0)
        .try_build()
        .expect("pinned grid options are valid");
    (mrf, opts)
}

/// The pinned particle/Gaussian scenario: 25 random nodes (3 anchored)
/// on a 300×300 m field with 120 m ranging radius — the
/// `particle_bp_iteration_25nodes` microbench fixture.
fn cooperative_fixture() -> (SpatialMrf, BpOptions) {
    let domain = Aabb::from_size(300.0, 300.0);
    let mut mrf = SpatialMrf::new(25, domain, Arc::new(UniformBoxUnary(domain)));
    let mut rng = Xoshiro256pp::seed_from(9);
    let pts: Vec<Vec2> = (0..25)
        .map(|_| rng.point_in(domain.min, domain.max))
        .collect();
    for (i, &p) in pts.iter().enumerate().take(3) {
        mrf.fix(i, p);
    }
    for i in 0..25 {
        for j in (i + 1)..25 {
            if pts[i].dist(pts[j]) < 120.0 {
                mrf.add_edge(
                    i,
                    j,
                    Arc::new(GaussianRange {
                        observed: pts[i].dist(pts[j]),
                        sigma: 5.0,
                    }),
                );
            }
        }
    }
    let opts = BpOptions::builder()
        .max_iterations(1)
        .tolerance(0.0)
        .try_build()
        .expect("pinned cooperative options are valid");
    (mrf, opts)
}

/// Runs the grid message-passing bench (cached vs reference path) and
/// returns the `BENCH_grid.json` contents.
pub fn grid_bench_json(samples: usize) -> String {
    let (mrf, opts) = grid_fixture();
    let cached_engine = GridBp::with_resolution(GRID_RESOLUTION);
    let reference_engine = cached_engine.without_message_cache();
    let (_, outcome) = cached_engine.run(&mrf, &opts);
    let cached_secs = median_secs(samples, || {
        cached_engine.run(&mrf, &opts);
    });
    let uncached_secs = median_secs(samples, || {
        reference_engine.run(&mrf, &opts);
    });
    let speedup = if cached_secs > 0.0 {
        uncached_secs / cached_secs
    } else {
        f64::INFINITY
    };
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"grid_message_passing\",\n",
            "  \"scenario\": \"lattice_9nodes_300x300\",\n",
            "  \"resolution\": {resolution},\n",
            "  \"samples\": {samples},\n",
            "  \"iterations\": {iterations},\n",
            "  \"messages\": {messages},\n",
            "  \"cached_secs\": {cached:.6},\n",
            "  \"uncached_secs\": {uncached:.6},\n",
            "  \"speedup\": {speedup:.2}\n",
            "}}\n"
        ),
        resolution = GRID_RESOLUTION,
        samples = samples.max(1),
        iterations = outcome.iterations,
        messages = outcome.messages,
        cached = cached_secs,
        uncached = uncached_secs,
        speedup = speedup,
    )
}

/// Runs the particle and Gaussian benches on the pinned cooperative
/// scenario and returns the `BENCH_particle.json` contents.
pub fn particle_bench_json(samples: usize) -> String {
    let (mrf, opts) = cooperative_fixture();
    let particle_engine = ParticleBp::with_particles(100);
    let (_, particle_outcome) = particle_engine.run(&mrf, &opts);
    let particle_secs = median_secs(samples, || {
        particle_engine.run(&mrf, &opts);
    });
    let gaussian_engine = GaussianBp::default();
    let (_, gaussian_outcome) = gaussian_engine.run(&mrf, &opts);
    let gaussian_secs = median_secs(samples, || {
        gaussian_engine.run(&mrf, &opts);
    });
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"particle_and_gaussian_bp\",\n",
            "  \"scenario\": \"cooperative_25nodes_300x300\",\n",
            "  \"samples\": {samples},\n",
            "  \"particle\": {{\n",
            "    \"particles\": 100,\n",
            "    \"iterations\": {p_iters},\n",
            "    \"messages\": {p_msgs},\n",
            "    \"secs\": {p_secs:.6}\n",
            "  }},\n",
            "  \"gaussian\": {{\n",
            "    \"iterations\": {g_iters},\n",
            "    \"messages\": {g_msgs},\n",
            "    \"secs\": {g_secs:.6}\n",
            "  }}\n",
            "}}\n"
        ),
        samples = samples.max(1),
        p_iters = particle_outcome.iterations,
        p_msgs = particle_outcome.messages,
        p_secs = particle_secs,
        g_iters = gaussian_outcome.iterations,
        g_msgs = gaussian_outcome.messages,
        g_secs = gaussian_secs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_bench_reports_plausible_json() {
        let json = grid_bench_json(1);
        assert!(json.contains("\"bench\": \"grid_message_passing\""));
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"iterations\": 3"));
    }

    #[test]
    fn particle_bench_reports_both_backends() {
        let json = particle_bench_json(1);
        assert!(json.contains("\"particle\""));
        assert!(json.contains("\"gaussian\""));
    }
}
