//! Schedule-perturbation determinism audit (`repro audit-determinism`,
//! usually invoked as `cargo xtask audit-determinism`).
//!
//! The static lint tier can reject *patterns* that tend to break
//! determinism (unseeded RNG, `HashMap` iteration, unfenced atomics);
//! this module is the dynamic complement: it *executes* grid and
//! particle BP — plus a sharded-grid run (per-shard interior sweeps
//! fanned through the pool with cross-shard boundary exchanges) and a
//! multi-tenant streaming-engine scenario with belief carry-over and
//! overload shedding — under every combination of
//! worker-pool thread count and seeded schedule permutation (the `rayon`
//! shim's `set_schedule_permutation` hook shuffles the order chunk jobs
//! reach the shared queue) and asserts that beliefs and folded metrics
//! are **bit-identical** to a sequential reference run.
//!
//! Because the shim assigns each chunk a fixed output slot and drains
//! the batch latch before returning, a permuted schedule cannot change
//! results *through the pool*; any divergence this audit finds is an
//! order-dependence smuggled in by a caller — exactly the class of bug
//! thread-count sweeps alone can miss. It needs no nightly sanitizers
//! and runs offline, so it doubles as a poor-man's race detector in CI.

use wsnloc::prelude::*;
use wsnloc_obs::{MetricsObserver, MetricsSnapshot};
use wsnloc_serve::{EngineConfig, MeasurementEpoch, SessionConfig, StreamingEngine};

/// The perturbation matrix one audit run sweeps.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Worker-pool sizes to install, in order; the first entry paired
    /// with an unpermuted schedule is the reference run.
    pub thread_counts: Vec<usize>,
    /// Seeds for the shim's schedule-permutation hook. Each thread count
    /// also runs once unpermuted.
    pub permutation_seeds: Vec<u64>,
}

impl AuditConfig {
    /// The CI gate matrix: thread counts {1,2,4,8} × 8 seeded schedule
    /// permutations (plus the unpermuted schedule at each count).
    #[must_use]
    pub fn full() -> AuditConfig {
        AuditConfig {
            thread_counts: vec![1, 2, 4, 8],
            permutation_seeds: (0..8).map(|i| 0xA0D1_7000 + i * 7919).collect(),
        }
    }

    /// Reduced matrix for `--quick` smoke runs: {1,2,4} × 3 seeds.
    #[must_use]
    pub fn quick() -> AuditConfig {
        AuditConfig {
            thread_counts: vec![1, 2, 4],
            permutation_seeds: vec![0xA0D1_7000, 0xA0D1_8EEF, 0xA0D1_BEEF],
        }
    }
}

/// What one audit sweep observed.
#[derive(Debug)]
pub struct AuditOutcome {
    /// Localization runs executed (reference runs included).
    pub runs: usize,
    /// One line per diverging run: backend, thread count, permutation
    /// seed, and which fingerprint component differed.
    pub failures: Vec<String>,
}

impl AuditOutcome {
    /// `true` when every run matched the reference bit-for-bit.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Everything a run must reproduce exactly, with floats carried as raw
/// bits so `-0.0`/`NaN` cannot hide behind `PartialEq`.
#[derive(PartialEq)]
struct Fingerprint {
    estimates: Vec<Option<(u64, u64)>>,
    uncertainty: Vec<Option<u64>>,
    iterations: usize,
    converged: bool,
    metrics: MetricsSnapshot,
}

fn fingerprint(result: &LocalizationResult, metrics: MetricsSnapshot) -> Fingerprint {
    Fingerprint {
        estimates: result
            .estimates
            .iter()
            .map(|e| e.map(|p| (p.x.to_bits(), p.y.to_bits())))
            .collect(),
        uncertainty: result
            .uncertainty
            .iter()
            .map(|u| u.map(f64::to_bits))
            .collect(),
        iterations: result.iterations,
        converged: result.converged,
        metrics: normalize(metrics),
    }
}

/// Zeroes the one wall-clock field of a snapshot (span durations) so the
/// comparison is purely structural; call counts stay significant.
fn normalize(mut snapshot: MetricsSnapshot) -> MetricsSnapshot {
    for (_, secs, _) in &mut snapshot.span_secs {
        *secs = 0.0;
    }
    snapshot
}

/// The audited workload: same drop-cluster scenario the determinism
/// tier-1 tests pin, exercised by the iterative backends flat and (for
/// the grid engine) through the sharded execution layer.
fn audit_scenario() -> Scenario {
    Scenario {
        name: "audit-determinism".into(),
        deployment: Deployment::planned_square_drop(500.0, 3, 50.0),
        node_count: 50,
        anchors: AnchorStrategy::Random { count: 7 },
        radio: RadioModel::UnitDisk { range: 150.0 },
        ranging: RangingModel::Multiplicative { factor: 0.1 },
        seed: 0xA0D17,
    }
}

fn backends() -> Vec<(&'static str, BnlLocalizer)> {
    let prior = PriorModel::DropPoint { sigma: 50.0 };
    vec![
        (
            "grid",
            BnlLocalizer::builder(Backend::grid(25).expect("valid backend"))
                .prior(prior.clone())
                .max_iterations(4)
                .try_build()
                .expect("valid config"),
        ),
        (
            "particle",
            BnlLocalizer::builder(Backend::particle(100).expect("valid backend"))
                .prior(prior.clone())
                .max_iterations(5)
                .tolerance(0.0)
                .try_build()
                .expect("valid config"),
        ),
        // Sharded execution fans interior sweeps out per shard through
        // the worker pool — the layout splits the 50-node audit field
        // into a 2×2 tile grid, so cross-shard merge order is audited
        // under permutation too.
        (
            "sharded-grid",
            BnlLocalizer::builder(Backend::grid(25).expect("valid backend"))
                .prior(prior)
                .max_iterations(4)
                .shards(ShardPlan::target_nodes(16).expect("valid shard plan"))
                .try_build()
                .expect("valid config"),
        ),
    ]
}

/// The audited streaming workload: three tenant sessions on the audit
/// network (distinct per-tenant seeds), three epochs of belief
/// carry-over, and a per-tick capacity of two so the round-robin shed
/// path (decay-to-prior coasting) executes under perturbation too. The
/// fingerprint concatenates every update's estimates/uncertainty in
/// tenant order and merges the per-tenant metrics folds.
fn stream_fingerprint(network: &Network) -> Fingerprint {
    let mut engine = StreamingEngine::new(EngineConfig {
        capacity_per_tick: 2,
        shed_policy: DropPolicy::DecayToPrior { decay: 0.5 },
    });
    let localizer = BnlLocalizer::builder(Backend::particle(80).expect("valid backend"))
        .prior(PriorModel::DropPoint { sigma: 50.0 })
        .max_iterations(3)
        .tolerance(0.0)
        .try_build()
        .expect("valid config");
    let session_cfg = SessionConfig::new(localizer).with_motion(MotionModel::random_walk(4.0));
    let ids: Vec<_> = (0..3u64)
        .map(|_| engine.open_session(session_cfg.clone()))
        .collect();
    let mut estimates = Vec::new();
    let mut uncertainty = Vec::new();
    let mut iterations = 0;
    let mut converged = true;
    for e in 0..3u64 {
        for (u, id) in ids.iter().enumerate() {
            engine.submit(
                *id,
                MeasurementEpoch::new(network.clone(), 0xF1DE ^ (u as u64) ^ (e << 8)),
            );
        }
        for up in engine.tick() {
            estimates.extend(
                up.result
                    .estimates
                    .iter()
                    .map(|p| p.map(|p| (p.x.to_bits(), p.y.to_bits()))),
            );
            uncertainty.extend(up.result.uncertainty.iter().map(|u| u.map(f64::to_bits)));
            iterations += up.result.iterations;
            converged &= up.result.converged || up.degraded;
        }
    }
    let parts: Vec<MetricsSnapshot> = ids.iter().filter_map(|&id| engine.metrics(id)).collect();
    Fingerprint {
        estimates,
        uncertainty,
        iterations,
        converged,
        metrics: normalize(MetricsSnapshot::merge(&parts)),
    }
}

/// Runs the full perturbation sweep and reports every divergence.
///
/// The schedule-permutation hook is process-global; the sweep always
/// clears it before returning, including on the failure paths.
#[must_use]
pub fn audit_determinism(config: &AuditConfig) -> AuditOutcome {
    let mut outcome = AuditOutcome {
        runs: 0,
        failures: Vec::new(),
    };
    let scenario = audit_scenario();
    let (network, _truth) = scenario.build_trial(0);

    let run = |threads: usize, permutation: Option<u64>, algo: &BnlLocalizer| -> Fingerprint {
        rayon::set_schedule_permutation(permutation);
        let observer = MetricsObserver::new();
        let result = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("shim pool build is infallible")
            .install(|| algo.localize_with_observer(&network, 0xF1DE, &observer));
        rayon::set_schedule_permutation(None);
        fingerprint(&result, observer.snapshot())
    };

    for (label, algo) in backends() {
        let reference = run(
            config.thread_counts.first().copied().unwrap_or(1),
            None,
            &algo,
        );
        outcome.runs += 1;
        for &threads in &config.thread_counts {
            let schedules =
                std::iter::once(None).chain(config.permutation_seeds.iter().map(|&s| Some(s)));
            for permutation in schedules {
                let got = run(threads, permutation, &algo);
                outcome.runs += 1;
                if got != reference {
                    let schedule = permutation
                        .map_or_else(|| "input-order".to_string(), |s| format!("seed {s:#x}"));
                    let what = diverged(&reference, &got);
                    outcome.failures.push(format!(
                        "{label}: threads={threads} schedule={schedule}: {what} diverged from the sequential reference"
                    ));
                }
            }
        }
    }

    // Streaming workload: the multi-tenant engine batches whole tenant
    // solves through the pool, so its determinism deserves its own sweep.
    let stream_run = |threads: usize, permutation: Option<u64>| -> Fingerprint {
        rayon::set_schedule_permutation(permutation);
        let fp = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("shim pool build is infallible")
            .install(|| stream_fingerprint(&network));
        rayon::set_schedule_permutation(None);
        fp
    };
    let reference = stream_run(config.thread_counts.first().copied().unwrap_or(1), None);
    outcome.runs += 1;
    for &threads in &config.thread_counts {
        let schedules =
            std::iter::once(None).chain(config.permutation_seeds.iter().map(|&s| Some(s)));
        for permutation in schedules {
            let got = stream_run(threads, permutation);
            outcome.runs += 1;
            if got != reference {
                let schedule = permutation
                    .map_or_else(|| "input-order".to_string(), |s| format!("seed {s:#x}"));
                let what = diverged(&reference, &got);
                outcome.failures.push(format!(
                    "streaming: threads={threads} schedule={schedule}: {what} diverged from the sequential reference"
                ));
            }
        }
    }
    outcome
}

/// Names the first fingerprint component that differs, for actionable
/// failure lines.
fn diverged(reference: &Fingerprint, got: &Fingerprint) -> &'static str {
    if got.estimates != reference.estimates {
        "belief estimates"
    } else if got.uncertainty != reference.uncertainty {
        "belief uncertainty"
    } else if got.iterations != reference.iterations || got.converged != reference.converged {
        "convergence trajectory"
    } else {
        "metrics fold"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_matrix_is_bit_identical() {
        let outcome = audit_determinism(&AuditConfig {
            thread_counts: vec![1, 2],
            permutation_seeds: vec![0xA0D1_7000],
        });
        // 4 workloads (grid, particle, sharded-grid, streaming engine)
        // × (1 reference + 2 thread counts × 2 schedules).
        assert_eq!(outcome.runs, 20);
        assert!(outcome.passed(), "divergences: {:?}", outcome.failures);
    }

    #[test]
    fn normalize_zeroes_only_span_durations() {
        let observer = MetricsObserver::new();
        let snapshot = normalize(observer.snapshot());
        assert!(snapshot.span_secs.iter().all(|(_, secs, _)| *secs == 0.0));
    }
}
