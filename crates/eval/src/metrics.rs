//! Error metrics over localization results.

use wsnloc_geom::stats;

/// Summary statistics of a set of per-node localization errors (meters).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ErrorSummary {
    /// Number of localized nodes contributing errors.
    pub n: usize,
    /// Mean error.
    pub mean: f64,
    /// Median error.
    pub median: f64,
    /// 90th percentile error.
    pub p90: f64,
    /// Root mean square error.
    pub rmse: f64,
}

impl ErrorSummary {
    /// Summarizes raw errors; `None` when empty.
    pub fn from_errors(errors: &[f64]) -> Option<ErrorSummary> {
        if errors.is_empty() {
            return None;
        }
        Some(ErrorSummary {
            n: errors.len(),
            mean: stats::mean(errors)?,
            median: stats::median(errors)?,
            p90: stats::quantile(errors, 0.9)?,
            rmse: stats::rms(errors)?,
        })
    }

    /// The same summary with every statistic divided by `scale` (use the
    /// radio range to get the paper's normalized errors).
    pub fn normalized(&self, scale: f64) -> ErrorSummary {
        ErrorSummary {
            n: self.n,
            mean: self.mean / scale,
            median: self.median / scale,
            p90: self.p90 / scale,
            rmse: self.rmse / scale,
        }
    }
}

/// Flattens per-node `Option<f64>` errors into the localized subset.
pub fn localized_errors(per_node: &[Option<f64>]) -> Vec<f64> {
    per_node.iter().copied().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_statistics() {
        let errors = [1.0, 2.0, 3.0, 4.0, 10.0];
        let s = ErrorSummary::from_errors(&errors).unwrap();
        assert_eq!(s.n, 5);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert!((s.median - 3.0).abs() < 1e-12);
        assert!(s.p90 > 4.0 && s.p90 <= 10.0);
        assert!((s.rmse - (130.0f64 / 5.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_errors_give_none() {
        assert!(ErrorSummary::from_errors(&[]).is_none());
    }

    #[test]
    fn normalization_divides_everything() {
        let s = ErrorSummary::from_errors(&[10.0, 20.0])
            .unwrap()
            .normalized(10.0);
        assert!((s.mean - 1.5).abs() < 1e-12);
        assert!((s.median - 1.5).abs() < 1e-12);
        assert_eq!(s.n, 2);
    }

    #[test]
    fn localized_errors_drops_none() {
        let per_node = [Some(1.0), None, Some(3.0), None];
        assert_eq!(localized_errors(&per_node), vec![1.0, 3.0]);
    }
}
