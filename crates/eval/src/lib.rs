//! # wsnloc-eval
//!
//! Evaluation harness for the `wsnloc` reproduction: metrics, a Monte-Carlo
//! trial runner, table/CSV emitters, and one module per reconstructed table
//! or figure (see DESIGN.md §4).
//!
//! Run everything with the `repro` binary:
//!
//! ```text
//! cargo run -p wsnloc-eval --release --bin repro -- all
//! cargo run -p wsnloc-eval --release --bin repro -- f1 --trials 10
//! cargo run -p wsnloc-eval --release --bin repro -- t2 --quick
//! ```

#![warn(missing_docs)]

pub mod audit;
pub mod bench;
pub mod experiments;
pub mod metrics;
pub mod runner;
pub mod table;
pub mod top;

pub use audit::{audit_determinism, AuditConfig, AuditOutcome};
pub use metrics::ErrorSummary;
pub use runner::{
    evaluate, run_trial, run_trial_observed, EvalConfig, EvalOutcome, MetricsAggregate,
    Parallelism, TraceAggregate,
};
pub use table::Report;
pub use top::{http_get, parse_openmetrics, render_top, MetricSample};

/// Knobs shared by every experiment. `Default` gives the paper-scale
/// configuration; [`ExpConfig::quick`] is a smoke-test configuration used by
/// integration tests and `--quick` runs.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Monte-Carlo trials per configuration point.
    pub trials: u64,
    /// Particles per node for the particle backend.
    pub particles: usize,
    /// BP iteration cap.
    pub iterations: usize,
    /// Reduce sweep resolution for smoke tests.
    pub quick: bool,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            trials: 5,
            particles: 150,
            iterations: 8,
            quick: false,
        }
    }
}

impl ExpConfig {
    /// Tiny configuration for CI smoke tests: 2 trials, few particles.
    pub fn quick() -> Self {
        ExpConfig {
            trials: 2,
            particles: 60,
            iterations: 5,
            quick: true,
        }
    }
}
