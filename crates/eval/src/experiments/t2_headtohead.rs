//! T2 — head-to-head algorithm comparison at the standard configuration.
//!
//! Reproduction criterion: BNL-PK posts the lowest normalized error, NBP
//! second; the point-solvers and hop/spectral methods trail; proximity
//! methods (WCL/Centroid/Min-Max) are the floor. Coverage distinguishes the
//! cooperative methods (always 100%) from anchor-neighborhood methods.

use super::{full_roster, standard_scenario, RANGE};
use crate::{evaluate, EvalConfig, ExpConfig, Report};
use wsnloc_net::accounting::EnergyModel;

/// Runs the comparison table.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    let scenario = standard_scenario();
    let (net0, _) = scenario.build_trial(0);
    let avg_degree = net0.avg_degree();
    let energy = EnergyModel::default();
    let mut labels = Vec::new();
    let mut data = Vec::new();
    for algo in full_roster(cfg) {
        let outcome = evaluate(algo.as_ref(), &scenario, &EvalConfig::trials(cfg.trials));
        let s = outcome
            .normalized_summary(RANGE)
            .expect("standard scenario always localizes something");
        labels.push(outcome.algo.clone());
        let node_count = scenario.node_count as f64;
        let comm = wsnloc_net::accounting::CommStats {
            messages: (outcome.msgs_per_node * node_count) as u64,
            bytes: (outcome.bytes_per_node * node_count) as u64,
        };
        data.push(vec![
            s.mean,
            s.median,
            s.p90,
            s.rmse,
            outcome.coverage,
            outcome.msgs_per_node,
            outcome.bytes_per_node / 1024.0,
            energy.total_mj(&comm, RANGE, avg_degree) / node_count,
            outcome.secs,
            outcome.iterations,
        ]);
    }
    vec![Report::new(
        "t2",
        format!(
            "algorithm comparison, standard config ({} trials, errors /R)",
            cfg.trials
        ),
        "algorithm",
        vec![
            "mean/R".into(),
            "median/R".into(),
            "p90/R".into(),
            "rmse/R".into(),
            "coverage".into(),
            "msgs/node".into(),
            "KiB/node".into(),
            "mJ/node".into(),
            "secs".into(),
            "iters".into(),
        ],
        labels,
        data,
    )]
}
