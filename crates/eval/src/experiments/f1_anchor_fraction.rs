//! F1 — localization error vs anchor fraction.
//!
//! Reproduction criterion: every method improves with more anchors; the
//! BNL-PK-over-NBP advantage is *largest at low anchor density* (priors
//! substitute for missing anchors) and narrows as anchors saturate the
//! field; proximity methods stay poor throughout.

use super::{standard_scenario, sweep_roster, N, RANGE};
use crate::{evaluate, EvalConfig, ExpConfig, Report};

/// Runs the anchor-fraction sweep.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    let fractions: Vec<f64> = if cfg.quick {
        vec![0.06, 0.20]
    } else {
        vec![0.04, 0.08, 0.12, 0.16, 0.22, 0.30]
    };
    let roster = sweep_roster(cfg);
    let columns: Vec<String> = roster.iter().map(|a| a.name()).collect();
    let mut labels = Vec::new();
    let mut data = Vec::new();
    for f in fractions {
        let mut scenario = standard_scenario();
        let count = ((N as f64) * f).round().max(2.0) as usize;
        scenario.anchors = wsnloc_net::AnchorStrategy::Random { count };
        scenario.name = format!("anchors-{count}");
        labels.push(format!("{:.0}%", f * 100.0));
        let row: Vec<f64> = roster
            .iter()
            .map(|algo| {
                evaluate(algo.as_ref(), &scenario, &EvalConfig::trials(cfg.trials))
                    .normalized_summary(RANGE)
                    .map_or(f64::NAN, |s| s.mean)
            })
            .collect();
        data.push(row);
    }
    vec![Report::new(
        "f1",
        format!("mean error/R vs anchor fraction ({} trials)", cfg.trials),
        "anchors",
        columns,
        labels,
        data,
    )]
}
