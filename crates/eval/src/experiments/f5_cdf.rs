//! F5 — per-node error CDF at the standard configuration.
//!
//! Reproduction criterion: the BNL-PK curve dominates (lies left of / above)
//! every other curve; cooperative curves reach 1.0 (full coverage) while
//! anchor-neighborhood methods saturate below 1.0 at their coverage level.
//! Unlocalized nodes are charged an infinite error, so a curve's plateau
//! *is* its coverage.

use super::{full_roster, standard_scenario, RANGE};
use crate::{evaluate, EvalConfig, ExpConfig, Report};

/// Runs the CDF table. Levels are multiples of R from 0 to 2R.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    let scenario = standard_scenario();
    let points = if cfg.quick { 5 } else { 21 };
    let roster = full_roster(cfg);
    let columns: Vec<String> = roster.iter().map(|a| a.name()).collect();

    // Pool errors and coverage per algorithm.
    let mut pooled: Vec<Vec<f64>> = Vec::new();
    let mut unknown_totals: Vec<f64> = Vec::new();
    for algo in &roster {
        let outcome = evaluate(algo.as_ref(), &scenario, &EvalConfig::trials(cfg.trials));
        // Reconstruct the unknown-node total from coverage so the CDF
        // accounts for unlocalized nodes.
        let total = if outcome.coverage > 0.0 {
            outcome.pooled_errors.len() as f64 / outcome.coverage
        } else {
            outcome.pooled_errors.len() as f64
        };
        pooled.push(outcome.pooled_errors);
        unknown_totals.push(total);
    }

    let mut labels = Vec::new();
    let mut data = Vec::new();
    for i in 0..points {
        let level = 2.0 * RANGE * i as f64 / (points - 1) as f64;
        labels.push(format!("{:.2}R", level / RANGE));
        let row: Vec<f64> = pooled
            .iter()
            .zip(&unknown_totals)
            .map(|(errors, &total)| {
                if total <= 0.0 {
                    return f64::NAN;
                }
                let count = errors.iter().filter(|&&e| e <= level).count();
                count as f64 / total
            })
            .collect();
        data.push(row);
    }
    vec![Report::new(
        "f5",
        format!(
            "empirical CDF of per-node error, standard config ({} trials; plateau = coverage)",
            cfg.trials
        ),
        "error level",
        columns,
        labels,
        data,
    )]
}
