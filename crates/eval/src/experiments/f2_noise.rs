//! F2 — localization error vs ranging-noise level.
//!
//! Reproduction criterion: all range-based methods degrade as the noise
//! factor grows; Bayesian fusion degrades *gracefully* (priors and
//! redundancy absorb noise) while the point-solver NLS degrades fastest;
//! DV-Hop, which ignores ranges, is nearly flat.

use super::{bnl, nbp, standard_scenario, RANGE};
use crate::{evaluate, EvalConfig, ExpConfig, Report};
use wsnloc::Localizer;
use wsnloc_net::RangingModel;

/// Runs the noise sweep.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    let factors: Vec<f64> = if cfg.quick {
        vec![0.05, 0.3]
    } else {
        vec![0.02, 0.05, 0.10, 0.20, 0.30, 0.40]
    };
    let roster: Vec<Box<dyn Localizer>> = vec![
        Box::new(bnl(cfg)),
        Box::new(nbp(cfg)),
        Box::new(wsnloc_baselines::Multilateration::nls()),
        Box::new(wsnloc_baselines::DvHop::default()),
    ];
    let columns: Vec<String> = roster.iter().map(|a| a.name()).collect();
    let mut labels = Vec::new();
    let mut data = Vec::new();
    for factor in factors {
        let mut scenario = standard_scenario();
        scenario.ranging = RangingModel::Multiplicative { factor };
        scenario.name = format!("noise-{factor}");
        labels.push(format!("{:.0}%", factor * 100.0));
        data.push(
            roster
                .iter()
                .map(|algo| {
                    evaluate(algo.as_ref(), &scenario, &EvalConfig::trials(cfg.trials))
                        .normalized_summary(RANGE)
                        .map_or(f64::NAN, |s| s.mean)
                })
                .collect(),
        );
    }
    vec![Report::new(
        "f2",
        format!(
            "mean error/R vs ranging noise factor ({} trials)",
            cfg.trials
        ),
        "noise",
        columns,
        labels,
        data,
    )]
}
