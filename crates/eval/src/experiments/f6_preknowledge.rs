//! F6 — the value of pre-knowledge: prior quality and prior coverage.
//!
//! Two sweeps, both over BNL-PK at the standard configuration (true
//! deployment scatter σ* = 100 m):
//!
//! - **Quality** (`f6a`): the assumed prior σ sweeps from over-confident
//!   (25 m ≪ σ*) through well-specified (100 m) to weak (400 m).
//!   Reproduction criterion: a U-ish curve — over-confident priors *hurt*
//!   (they contradict the measurements), the well-specified prior is
//!   optimal, weak priors asymptote to the NBP (no-pre-knowledge) error,
//!   which is reported as the last row.
//! - **Coverage** (`f6b`): the fraction of nodes holding a (well-specified)
//!   prior sweeps 0 → 1. Criterion: error falls monotonically with
//!   coverage; even partial pre-knowledge helps neighbors *without* priors
//!   through message passing.

use super::{built, nbp, particles, standard_scenario, PRIOR_SIGMA, RANGE};
use crate::{evaluate, EvalConfig, ExpConfig, Report};
use wsnloc::{BnlLocalizer, PriorModel};

/// Runs both pre-knowledge sweeps.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    let scenario = standard_scenario();

    // --- f6a: prior quality -------------------------------------------
    let sigmas: Vec<f64> = if cfg.quick {
        vec![50.0, 100.0, 400.0]
    } else {
        vec![25.0, 50.0, 100.0, 200.0, 400.0]
    };
    let mut labels = Vec::new();
    let mut data = Vec::new();
    for sigma in sigmas {
        let algo = built(
            BnlLocalizer::builder(particles(cfg.particles))
                .prior(PriorModel::DropPoint { sigma })
                .max_iterations(cfg.iterations)
                .tolerance(RANGE * 0.02),
        );
        let outcome = evaluate(&algo, &scenario, &EvalConfig::trials(cfg.trials));
        labels.push(format!("σ={sigma:.0}"));
        data.push(vec![outcome
            .normalized_summary(RANGE)
            .map_or(f64::NAN, |s| s.mean)]);
    }
    // Reference row: no pre-knowledge at all.
    let none = evaluate(&nbp(cfg), &scenario, &EvalConfig::trials(cfg.trials));
    labels.push("none".into());
    data.push(vec![none
        .normalized_summary(RANGE)
        .map_or(f64::NAN, |s| s.mean)]);
    let quality = Report::new(
        "f6a",
        format!(
            "mean error/R vs prior σ (true scatter {PRIOR_SIGMA} m, {} trials)",
            cfg.trials
        ),
        "prior",
        vec!["BNL-PK mean/R".into()],
        labels,
        data,
    );

    // --- f6b: prior coverage ------------------------------------------
    let coverages: Vec<f64> = if cfg.quick {
        vec![0.0, 1.0]
    } else {
        vec![0.0, 0.25, 0.5, 0.75, 1.0]
    };
    let mut labels = Vec::new();
    let mut data = Vec::new();
    for coverage in coverages {
        let algo = built(
            BnlLocalizer::builder(particles(cfg.particles))
                .prior(PriorModel::PartialDropPoint {
                    sigma: PRIOR_SIGMA,
                    coverage,
                    seed: 0xC0FFEE,
                })
                .max_iterations(cfg.iterations)
                .tolerance(RANGE * 0.02),
        );
        let outcome = evaluate(&algo, &scenario, &EvalConfig::trials(cfg.trials));
        labels.push(format!("{:.0}%", coverage * 100.0));
        data.push(vec![outcome
            .normalized_summary(RANGE)
            .map_or(f64::NAN, |s| s.mean)]);
    }
    let coverage_report = Report::new(
        "f6b",
        format!(
            "mean error/R vs pre-knowledge coverage ({} trials)",
            cfg.trials
        ),
        "coverage",
        vec!["BNL-PK mean/R".into()],
        labels,
        data,
    );

    vec![quality, coverage_report]
}
