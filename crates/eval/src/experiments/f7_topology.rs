//! F7 — irregular deployment fields: square vs C-shape vs O-shape.
//!
//! On non-convex fields, shortest network paths detour around the holes, so
//! hop/path-based distance estimates (DV-Hop, MDS-MAP) inflate badly, while
//! message-passing methods only rely on one-hop ranges and degrade far
//! less. Pre-knowledge here is the *region itself*: BNL-PK receives the
//! field shape as a uniform region prior (knowing "nodes are in the C" is
//! legitimate deployment knowledge); NBP only knows the bounding box.
//!
//! Reproduction criterion: the C/O columns hurt DV-Hop and MDS-MAP by a
//! large factor while BNL-PK/NBP move comparatively little, and BNL-PK's
//! shape prior buys extra accuracy exactly where the bounding box is most
//! wrong (the hole).

use super::{built, particles, ANCHORS, FIELD, N, NOISE, RANGE};
use crate::{evaluate, EvalConfig, ExpConfig, Report};
use wsnloc::prelude::*;
use wsnloc_geom::Shape;

fn scenario_for(shape: Shape, name: &str) -> Scenario {
    Scenario {
        name: name.into(),
        deployment: Deployment::Uniform(shape),
        node_count: N,
        anchors: AnchorStrategy::Random { count: ANCHORS },
        radio: RadioModel::UnitDisk { range: RANGE },
        ranging: RangingModel::Multiplicative { factor: NOISE },
        seed: 0x70B0,
    }
}

/// Runs the topology comparison.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    let shapes: Vec<(&str, Shape)> = if cfg.quick {
        vec![
            (
                "square",
                Shape::Rect(wsnloc_geom::Aabb::from_size(FIELD, FIELD)),
            ),
            ("C-shape", Shape::standard_c(FIELD)),
        ]
    } else {
        vec![
            (
                "square",
                Shape::Rect(wsnloc_geom::Aabb::from_size(FIELD, FIELD)),
            ),
            ("C-shape", Shape::standard_c(FIELD)),
            ("O-shape", Shape::standard_o(FIELD)),
        ]
    };

    let columns = vec![
        "BNL-PK(region)".to_string(),
        "NBP".to_string(),
        "DV-Hop".to_string(),
        "MDS-MAP".to_string(),
    ];
    let mut labels = Vec::new();
    let mut data = Vec::new();
    for (name, shape) in shapes {
        let scenario = scenario_for(shape.clone(), name);
        labels.push(name.to_string());
        let bnl_region = built(
            BnlLocalizer::builder(particles(cfg.particles))
                .prior(PriorModel::Region(shape))
                .max_iterations(cfg.iterations)
                .tolerance(RANGE * 0.02),
        );
        let nbp = built(
            BnlLocalizer::builder(particles(cfg.particles))
                .max_iterations(cfg.iterations)
                .tolerance(RANGE * 0.02),
        );
        let algos: Vec<&dyn Localizer> = vec![
            &bnl_region,
            &nbp,
            &wsnloc_baselines::DvHop { refine: true },
            &wsnloc_baselines::MdsMap,
        ];
        data.push(
            algos
                .into_iter()
                .map(|algo| {
                    evaluate(algo, &scenario, &EvalConfig::trials(cfg.trials))
                        .normalized_summary(RANGE)
                        .map_or(f64::NAN, |s| s.mean)
                })
                .collect(),
        );
    }
    vec![Report::new(
        "f7",
        format!("mean error/R vs field topology ({} trials)", cfg.trials),
        "field",
        columns,
        labels,
        data,
    )]
}
