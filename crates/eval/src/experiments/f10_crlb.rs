//! F10 — achieved error against the Cramér–Rao lower bound.
//!
//! For each anchor fraction, the table reports the mean CRLB with and
//! without the pre-knowledge prior term and the achieved BNL-PK / NBP
//! errors. Reproduction criteria: (a) every achieved error sits above its
//! matching bound; (b) the *gap between the two bounds* — the information
//! content of pre-knowledge — widens as anchors get scarce, mirroring the
//! F1 behaviour of the algorithms themselves.

use super::{bnl, nbp, standard_scenario, N, PRIOR_SIGMA, RANGE};
use crate::{evaluate, EvalConfig, ExpConfig, Report};
use wsnloc::crlb::mean_crlb;
use wsnloc_geom::stats;

/// Runs the CRLB comparison.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    let fractions: Vec<f64> = if cfg.quick {
        vec![0.08, 0.22]
    } else {
        vec![0.04, 0.08, 0.12, 0.16, 0.22, 0.30]
    };
    let mut labels = Vec::new();
    let mut data = Vec::new();
    for f in fractions {
        let mut scenario = standard_scenario();
        let count = ((N as f64) * f).round().max(2.0) as usize;
        scenario.anchors = wsnloc_net::AnchorStrategy::Random { count };
        scenario.name = format!("crlb-anchors-{count}");
        labels.push(format!("{:.0}%", f * 100.0));

        // Bounds averaged over trials.
        let mut with_prior = Vec::new();
        let mut without_prior = Vec::new();
        for t in 0..cfg.trials {
            let (net, truth) = scenario.build_trial(t);
            if let Some(b) = mean_crlb(&net, &truth, Some(PRIOR_SIGMA)) {
                with_prior.push(b);
            }
            if let Some(b) = mean_crlb(&net, &truth, None) {
                without_prior.push(b);
            }
        }
        let bnl_err = evaluate(&bnl(cfg), &scenario, &EvalConfig::trials(cfg.trials))
            .normalized_summary(RANGE)
            .map_or(f64::NAN, |s| s.mean);
        let nbp_err = evaluate(&nbp(cfg), &scenario, &EvalConfig::trials(cfg.trials))
            .normalized_summary(RANGE)
            .map_or(f64::NAN, |s| s.mean);
        data.push(vec![
            stats::mean(&with_prior).unwrap_or(f64::NAN) / RANGE,
            bnl_err,
            stats::mean(&without_prior).unwrap_or(f64::NAN) / RANGE,
            nbp_err,
        ]);
    }
    vec![Report::new(
        "f10",
        format!(
            "CRLB vs achieved error by anchor fraction ({} trials, /R)",
            cfg.trials
        ),
        "anchors",
        vec![
            "CRLB(prior)".into(),
            "BNL-PK".into(),
            "CRLB(none)".into(),
            "NBP".into(),
        ],
        labels,
        data,
    )]
}
