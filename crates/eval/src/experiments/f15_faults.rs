//! F15 — fault tolerance: localization under message loss and node death.
//!
//! The BP engines exchange beliefs over the `Transport` seam, which a
//! seeded [`FaultPlan`] degrades per iteration: i.i.d. message loss with
//! either the hold-last or the decay-to-prior substitution policy, and a
//! random fraction of free nodes dying before the first exchange. The
//! non-iterative baselines (NLS, DV-Hop) cannot lose per-iteration
//! messages, so they face the *persistent* equivalent —
//! [`FaultPlan::degrade_network`] removes each measurement with the
//! long-run loss probability and every measurement touching a dead node.
//!
//! Reproduction criterion: BNL-PK's mean error degrades gracefully and
//! monotonically as the loss rate climbs 0→50% and stays finite even
//! when half the cooperating neighbors fall silent; the least-squares
//! baseline loses measurements it cannot re-request and degrades faster.
//! The third report counts the injected faults as seen through the
//! observer stream (dropped / died / stale), confirming the telemetry
//! path end to end.

use super::{built, particles, standard_scenario, PRIOR_SIGMA, RANGE};
use crate::{evaluate, EvalConfig, ExpConfig, Report};
use wsnloc::obs::TraceObserver;
use wsnloc::prelude::*;

/// Seed for every fault plan in this experiment (mixed with the trial
/// seed by the transport layer, so trials still decorrelate).
const FAULT_SEED: u64 = 0xFA17;

/// A non-iterative baseline facing the persistent equivalent of a fault
/// plan: it localizes the degraded network instead of losing messages.
struct DegradedBaseline<L> {
    inner: L,
    plan: FaultPlan,
}

impl<L: Localizer> Localizer for DegradedBaseline<L> {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn localize(&self, network: &Network, seed: u64) -> LocalizationResult {
        self.inner
            .localize(&self.plan.degrade_network(network, seed), seed)
    }
}

/// Builder for BNL-PK with the standard pre-knowledge configuration and
/// a fault plan, open for per-report overrides.
fn bnl_with_plan(cfg: &ExpConfig, plan: FaultPlan) -> BnlLocalizerBuilder {
    BnlLocalizer::builder(particles(cfg.particles))
        .prior(PriorModel::DropPoint { sigma: PRIOR_SIGMA })
        .max_iterations(cfg.iterations)
        .tolerance(RANGE * 0.02)
        .fault_plan(plan)
}

/// Mean error/R of `algo` on the standard scenario.
fn mean_err(algo: &dyn Localizer, cfg: &ExpConfig) -> f64 {
    evaluate(algo, &standard_scenario(), &EvalConfig::trials(cfg.trials))
        .normalized_summary(RANGE)
        .map_or(f64::NAN, |s| s.mean)
}

/// Mean error/R vs i.i.d. loss rate, hold-last and decay policies
/// against persistently degraded baselines.
fn loss_sweep(cfg: &ExpConfig) -> Report {
    let rates: Vec<f64> = if cfg.quick {
        vec![0.0, 0.3]
    } else {
        vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5]
    };
    let columns = vec![
        "BNL-PK (hold-last)".to_string(),
        "BNL-PK (decay)".to_string(),
        "NLS".to_string(),
        "DV-Hop".to_string(),
    ];
    let mut labels = Vec::new();
    let mut data = Vec::new();
    for &rate in &rates {
        labels.push(format!("{:.0}%", rate * 100.0));
        let hold = built(bnl_with_plan(cfg, FaultPlan::iid_loss(FAULT_SEED, rate)));
        let decay = built(bnl_with_plan(
            cfg,
            FaultPlan::iid_loss(FAULT_SEED, rate)
                .with_drop_policy(DropPolicy::DecayToPrior { decay: 0.6 }),
        ));
        let nls = DegradedBaseline {
            inner: wsnloc_baselines::Multilateration::nls(),
            plan: FaultPlan::iid_loss(FAULT_SEED, rate),
        };
        let dvhop = DegradedBaseline {
            inner: wsnloc_baselines::DvHop::default(),
            plan: FaultPlan::iid_loss(FAULT_SEED, rate),
        };
        let algos: Vec<&dyn Localizer> = vec![&hold, &decay, &nls, &dvhop];
        data.push(algos.into_iter().map(|a| mean_err(a, cfg)).collect());
    }
    Report::new(
        "f15",
        format!("mean error/R vs message-loss rate ({} trials)", cfg.trials),
        "loss rate",
        columns,
        labels,
        data,
    )
}

/// Mean error/R vs the fraction of free nodes dead from iteration 0.
fn death_sweep(cfg: &ExpConfig) -> Report {
    let fractions: Vec<f64> = if cfg.quick {
        vec![0.0, 0.2]
    } else {
        vec![0.0, 0.1, 0.2, 0.3, 0.5]
    };
    let columns = vec![
        "BNL-PK".to_string(),
        "NLS".to_string(),
        "DV-Hop".to_string(),
    ];
    let mut labels = Vec::new();
    let mut data = Vec::new();
    for &fraction in &fractions {
        labels.push(format!("{:.0}%", fraction * 100.0));
        let plan = FaultPlan::iid_loss(FAULT_SEED, 0.0).with_deaths(DeathModel::Random {
            fraction,
            at_iteration: 0,
        });
        let bnl = built(bnl_with_plan(cfg, plan.clone()));
        let nls = DegradedBaseline {
            inner: wsnloc_baselines::Multilateration::nls(),
            plan: plan.clone(),
        };
        let dvhop = DegradedBaseline {
            inner: wsnloc_baselines::DvHop::default(),
            plan,
        };
        let algos: Vec<&dyn Localizer> = vec![&bnl, &nls, &dvhop];
        data.push(algos.into_iter().map(|a| mean_err(a, cfg)).collect());
    }
    Report::new(
        "f15",
        format!(
            "mean error/R vs dead free-node fraction ({} trials)",
            cfg.trials
        ),
        "dead fraction",
        columns,
        labels,
        data,
    )
}

/// Fault events observed during a single probe run per loss rate: every
/// injected fault must surface through the observer stream.
fn event_probe(cfg: &ExpConfig) -> Report {
    let rates: Vec<f64> = if cfg.quick {
        vec![0.3]
    } else {
        vec![0.1, 0.3, 0.5]
    };
    let columns = vec![
        "messages dropped".to_string(),
        "nodes died".to_string(),
        "stale deliveries".to_string(),
    ];
    let (net, _) = standard_scenario().build_trial(0);
    let mut labels = Vec::new();
    let mut data = Vec::new();
    for &rate in &rates {
        labels.push(format!("{:.0}%", rate * 100.0));
        let plan = FaultPlan::iid_loss(FAULT_SEED, rate)
            .with_stale_prob(0.05)
            .with_deaths(DeathModel::Random {
                fraction: 0.1,
                at_iteration: 1,
            });
        let loc = built(bnl_with_plan(cfg, plan).tolerance(0.0));
        let obs = TraceObserver::new();
        let _ = loc.localize_with_observer(&net, 0, &obs);
        let run = obs.last_run();
        let events = run.map(|r| r.events).unwrap_or_default();
        let mut dropped = 0u64;
        let mut died = 0u64;
        let mut stale = 0u64;
        for e in &events {
            match e {
                wsnloc::obs::ObsEvent::MessageDropped { count, .. } => dropped += count,
                wsnloc::obs::ObsEvent::NodeDied { .. } => died += 1,
                wsnloc::obs::ObsEvent::StaleMessageUsed { count, .. } => stale += count,
                _ => {}
            }
        }
        data.push(vec![dropped as f64, died as f64, stale as f64]);
    }
    Report::new(
        "f15",
        "fault events seen by the observer (single probe run)".to_string(),
        "loss rate",
        columns,
        labels,
        data,
    )
}

/// Runs the fault-tolerance sweeps.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    vec![loss_sweep(cfg), death_sweep(cfg), event_probe(cfg)]
}
