//! F16 — streaming service: multi-tenant epoch sessions with belief
//! carry-over under a tight per-epoch budget.
//!
//! Several independent mobile networks (tenants) stream measurement
//! epochs into one [`StreamingEngine`]. Each tenant's session carries its
//! posterior beliefs across epochs through a random-walk motion model, so
//! 3 BP iterations per epoch suffice once the stream warms up:
//!
//! - **Session (3 it)** — streaming engine, belief carry-over;
//! - **Memoryless (3 it)** — per-epoch re-localization, same budget;
//! - **Memoryless (full)** — per-epoch re-localization with the standard
//!   budget, as the accuracy reference.
//!
//! Reproduction criterion: post-warmup, the session RMSE stays within 5%
//! of the memoryless full-budget reference while the equal-budget
//! memoryless run is far worse. The second report overloads the engine
//! (capacity below the tenant count) and shows graceful degradation:
//! shed tenants coast on their motion model (decay-to-prior) and the
//! aggregate RMSE grows smoothly with the shed fraction rather than
//! collapsing.

use super::{built, particles, RANGE};
use crate::{ExpConfig, Report};
use wsnloc::prelude::*;
use wsnloc_geom::stats;
use wsnloc_geom::{Aabb, Shape};
use wsnloc_net::mobility::{MobileWorld, RandomWaypoint};
use wsnloc_obs::TelemetryHub;
use wsnloc_serve::{EngineConfig, MeasurementEpoch, SessionConfig, StreamingEngine};

/// Node speed (m/s) for every tenant's mobility model.
const SPEED: f64 = 5.0;
/// Epochs excluded from scoring while the carried beliefs warm up.
const WARMUP: usize = 2;

fn mobile_world(tenant: u64) -> MobileWorld {
    MobileWorld::new(
        Shape::Rect(Aabb::from_size(600.0, 600.0)),
        80,
        10,
        RadioModel::UnitDisk { range: RANGE },
        RangingModel::Multiplicative { factor: 0.1 },
        RandomWaypoint {
            min_speed: SPEED,
            max_speed: SPEED,
            pause: 0.0,
        },
        1.0,
        0xF16 ^ (tenant.wrapping_mul(7919)),
    )
}

/// The tight per-epoch budget every streaming session runs under.
fn session_localizer(cfg: &ExpConfig) -> BnlLocalizer {
    built(
        BnlLocalizer::builder(particles(cfg.particles))
            .max_iterations(3)
            .tolerance(0.0),
    )
}

fn session_config(cfg: &ExpConfig) -> SessionConfig {
    SessionConfig::new(session_localizer(cfg)).with_motion(MotionModel::random_walk(SPEED * 1.5))
}

/// Per-tenant session config for telemetry runs: tenant 0 solves with
/// sharded BP (same budget) so the live `/metrics` endpoint carries
/// per-shard boundary-exchange series alongside the per-tenant ones.
fn telemetry_session_config(cfg: &ExpConfig, tenant: usize) -> SessionConfig {
    if tenant == 0 {
        let sharded = built(
            BnlLocalizer::builder(particles(cfg.particles))
                .max_iterations(3)
                .tolerance(0.0)
                .shards(ShardPlan::target_nodes(20).expect("valid shard plan")),
        );
        SessionConfig::new(sharded).with_motion(MotionModel::random_walk(SPEED * 1.5))
    } else {
        session_config(cfg)
    }
}

/// Builds a report engine, publishing into `hub` when telemetry is on.
fn engine_for(config: EngineConfig, hub: Option<&TelemetryHub>) -> StreamingEngine {
    match hub {
        Some(h) => StreamingEngine::builder(config)
            .hub(h.clone())
            .build()
            .unwrap_or_else(|_| unreachable!("no listener to bind")),
        None => StreamingEngine::new(config),
    }
}

/// Session config chooser shared by both reports.
fn config_for(cfg: &ExpConfig, tenant: usize, telemetry: bool) -> SessionConfig {
    if telemetry {
        telemetry_session_config(cfg, tenant)
    } else {
        session_config(cfg)
    }
}

/// World chooser: telemetry runs mark the initial placement as the
/// deployment plan so the shard layout can spread tenant 0's mobile
/// free nodes across tiles (otherwise they all collapse to the field
/// center and no boundary traffic flows).
fn world_for(tenant: u64, telemetry: bool) -> MobileWorld {
    let world = mobile_world(tenant);
    if telemetry {
        world.with_deployment_plan()
    } else {
        world
    }
}

fn node_errors(r: &LocalizationResult, truth: &GroundTruth, net: &Network) -> Vec<f64> {
    r.errors_for(truth, Some(net))
        .into_iter()
        .flatten()
        .collect()
}

fn rmse(errs: &[f64]) -> f64 {
    let sq: Vec<f64> = errs.iter().map(|e| e * e).collect();
    stats::mean(&sq).map_or(f64::NAN, f64::sqrt)
}

fn sizes(cfg: &ExpConfig) -> (usize, usize) {
    if cfg.quick {
        (2, 5)
    } else {
        (4, 8)
    }
}

/// Per-tenant steady-state RMSE/R: streaming session vs equal-budget and
/// full-budget memoryless re-localization.
fn budget_report(cfg: &ExpConfig, hub: Option<&TelemetryHub>) -> Report {
    let (tenants, epochs) = sizes(cfg);
    let tight = session_localizer(cfg);
    let full = built(
        BnlLocalizer::builder(particles(cfg.particles))
            .max_iterations(cfg.iterations)
            .tolerance(RANGE * 0.02),
    );

    let mut engine = engine_for(EngineConfig::default(), hub);
    let ids: Vec<_> = (0..tenants)
        .map(|u| engine.open_session(config_for(cfg, u, hub.is_some())))
        .collect();
    let mut worlds: Vec<MobileWorld> = (0..tenants as u64)
        .map(|t| world_for(t, hub.is_some()))
        .collect();

    let mut session_err = vec![Vec::new(); tenants];
    let mut tight_err = vec![Vec::new(); tenants];
    let mut full_err = vec![Vec::new(); tenants];
    for e in 0..epochs as u64 {
        let mut snapshots = Vec::with_capacity(tenants);
        for (u, w) in worlds.iter_mut().enumerate() {
            let net = w.step();
            let truth = GroundTruth::from_positions(w.positions().to_vec());
            engine.submit(ids[u], MeasurementEpoch::new(net.clone(), e));
            snapshots.push((net, truth));
        }
        for up in engine.tick() {
            let u = up.tenant.raw() as usize;
            if (e as usize) < WARMUP {
                continue;
            }
            let (net, truth) = &snapshots[u];
            session_err[u].extend(node_errors(&up.result, truth, net));
            tight_err[u].extend(node_errors(&tight.localize(net, e), truth, net));
            full_err[u].extend(node_errors(&full.localize(net, e), truth, net));
        }
    }

    let mut labels: Vec<String> = (0..tenants).map(|u| format!("tenant-{u}")).collect();
    labels.push("all tenants".to_string());
    let mut data: Vec<Vec<f64>> = (0..tenants)
        .map(|u| {
            vec![
                rmse(&session_err[u]) / RANGE,
                rmse(&tight_err[u]) / RANGE,
                rmse(&full_err[u]) / RANGE,
            ]
        })
        .collect();
    let flat = |per: &[Vec<f64>]| per.iter().flatten().copied().collect::<Vec<f64>>();
    data.push(vec![
        rmse(&flat(&session_err)) / RANGE,
        rmse(&flat(&tight_err)) / RANGE,
        rmse(&flat(&full_err)) / RANGE,
    ]);
    Report::new(
        "f16",
        format!(
            "streaming sessions: steady-state RMSE/R, {tenants} tenants × {epochs} epochs, 3-iteration budget"
        ),
        "tenant",
        vec![
            "Session(3 it)".into(),
            "Memoryless(3 it)".into(),
            "Memoryless(full)".into(),
        ],
        labels,
        data,
    )
}

/// Aggregate RMSE/R and shed counts as the per-tick solve capacity drops
/// below the tenant count (decay-to-prior shed policy).
fn overload_report(cfg: &ExpConfig, hub: Option<&TelemetryHub>) -> Report {
    let (tenants, epochs) = sizes(cfg);
    let mut caps: Vec<usize> = vec![0, tenants.saturating_sub(1).max(1), 1];
    caps.dedup();
    let mut labels = Vec::new();
    let mut data = Vec::new();
    for &cap in &caps {
        let mut engine = engine_for(
            EngineConfig {
                capacity_per_tick: cap,
                shed_policy: DropPolicy::DecayToPrior { decay: 0.5 },
            },
            hub,
        );
        let ids: Vec<_> = (0..tenants)
            .map(|u| engine.open_session(config_for(cfg, u, hub.is_some())))
            .collect();
        let mut worlds: Vec<MobileWorld> = (0..tenants as u64)
            .map(|t| world_for(t, hub.is_some()))
            .collect();
        let mut errs = Vec::new();
        let mut solved = 0u64;
        let mut shed = 0u64;
        for e in 0..epochs as u64 {
            let mut snapshots = Vec::with_capacity(tenants);
            for (u, w) in worlds.iter_mut().enumerate() {
                let net = w.step();
                let truth = GroundTruth::from_positions(w.positions().to_vec());
                engine.submit(ids[u], MeasurementEpoch::new(net.clone(), e));
                snapshots.push((net, truth));
            }
            for up in engine.tick() {
                if up.degraded {
                    shed += 1;
                } else {
                    solved += 1;
                }
                if (e as usize) < WARMUP {
                    continue;
                }
                let (net, truth) = &snapshots[up.tenant.raw() as usize];
                errs.extend(node_errors(&up.result, truth, net));
            }
        }
        labels.push(if cap == 0 {
            "unlimited".to_string()
        } else {
            format!("{cap}/tick")
        });
        data.push(vec![solved as f64, shed as f64, rmse(&errs) / RANGE]);
    }
    Report::new(
        "f16",
        format!("overload shedding: {tenants} tenants, decay-to-prior policy"),
        "capacity",
        vec![
            "epochs solved".into(),
            "epochs shed".into(),
            "RMSE/R".into(),
        ],
        labels,
        data,
    )
}

/// Runs the streaming-service reports.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    vec![budget_report(cfg, None), overload_report(cfg, None)]
}

/// [`run`] with every engine publishing live telemetry into `hub` (the
/// caller owns the [`TelemetryServer`](wsnloc_obs::TelemetryServer)
/// scraping it). Tenant 0 solves with sharded BP so per-shard
/// boundary-exchange series appear on `/metrics` alongside the
/// per-tenant windowed series.
pub fn run_with_telemetry(cfg: &ExpConfig, hub: &TelemetryHub) -> Vec<Report> {
    vec![
        budget_report(cfg, Some(hub)),
        overload_report(cfg, Some(hub)),
    ]
}
