//! F4 — convergence: error vs BP iteration, BNL-PK against NBP.
//!
//! Reproduction criterion: BNL-PK *starts* lower (its iteration-0 beliefs
//! are already prior-centered) and reaches its plateau in fewer iterations;
//! NBP needs several flooding rounds before anchor information reaches
//! interior nodes.

use super::{bnl_builder, built, nbp_builder, standard_scenario, RANGE};
use crate::{ExpConfig, Report};
use wsnloc::BnlLocalizerBuilder;
use wsnloc_geom::stats;
use wsnloc_net::Scenario;

fn curve(
    localizer: BnlLocalizerBuilder,
    scenario: &Scenario,
    iterations: usize,
    trials: u64,
) -> Vec<f64> {
    let mut per_iter: Vec<Vec<f64>> = vec![Vec::new(); iterations];
    let fixed = built(
        localizer.max_iterations(iterations).tolerance(0.0), // force the full trajectory
    );
    for t in 0..trials {
        let (net, truth) = scenario.build_trial(t);
        let _ = fixed.localize_observed(&net, t, |iter, estimates| {
            let mut errs = Vec::new();
            for id in net.unknowns() {
                if let Some(e) = estimates[id] {
                    errs.push(e.dist(truth.position(id)));
                }
            }
            if let Some(m) = stats::mean(&errs) {
                per_iter[iter].push(m);
            }
        });
    }
    per_iter
        .into_iter()
        .map(|v| stats::mean(&v).unwrap_or(f64::NAN) / RANGE)
        .collect()
}

/// Runs the convergence curves.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    let iterations = if cfg.quick { 5 } else { 12 };
    let scenario = standard_scenario();
    let pk = curve(bnl_builder(cfg), &scenario, iterations, cfg.trials);
    let plain = curve(nbp_builder(cfg), &scenario, iterations, cfg.trials);
    let labels: Vec<String> = (1..=iterations).map(|i| i.to_string()).collect();
    let data: Vec<Vec<f64>> = pk.into_iter().zip(plain).map(|(a, b)| vec![a, b]).collect();
    vec![Report::new(
        "f4",
        format!("mean error/R vs BP iteration ({} trials)", cfg.trials),
        "iteration",
        vec!["BNL-PK".into(), "NBP".into()],
        labels,
        data,
    )]
}
