//! One module per reconstructed table/figure (DESIGN.md §4).
//!
//! Every experiment exposes `run(cfg: &ExpConfig) -> Vec<Report>`; the
//! [`by_id`]/[`all`] registry is what the `repro` binary and the benches
//! drive. Errors are reported normalized by the nominal radio range (the
//! "error/R" convention of the localization literature).

pub mod f10_crlb;
pub mod f11_backends;
pub mod f12_nlos;
pub mod f13_schedule;
pub mod f14_tracking;
pub mod f15_faults;
pub mod f16_streaming;
pub mod f1_anchor_fraction;
pub mod f2_noise;
pub mod f3_connectivity;
pub mod f4_convergence;
pub mod f5_cdf;
pub mod f6_preknowledge;
pub mod f7_topology;
pub mod f8_particles;
pub mod f9_grid;
pub mod t2_headtohead;
pub mod t3_scalability;

use crate::{ExpConfig, Report};
use wsnloc::prelude::*;

/// Standard-field side length (meters).
pub const FIELD: f64 = 1000.0;
/// Standard node count.
pub const N: usize = 225;
/// Standard radio range (meters) — the error normalization constant.
pub const RANGE: f64 = 150.0;
/// Standard anchor count (10% of N).
pub const ANCHORS: usize = 22;
/// Standard multiplicative ranging-noise factor.
pub const NOISE: f64 = 0.10;
/// Standard drop-grid resolution (5×5 planned drop points).
pub const DROP_GRID: usize = 5;
/// Standard deployment scatter and matching prior σ (meters).
pub const PRIOR_SIGMA: f64 = 100.0;

/// The standard scenario: drop-point deployment so pre-knowledge exists.
pub fn standard_scenario() -> Scenario {
    Scenario {
        name: "standard".into(),
        deployment: Deployment::planned_square_drop(FIELD, DROP_GRID, PRIOR_SIGMA),
        node_count: N,
        anchors: AnchorStrategy::Random { count: ANCHORS },
        radio: RadioModel::UnitDisk { range: RANGE },
        ranging: RangingModel::Multiplicative { factor: NOISE },
        seed: 0x5EED,
    }
}

/// Particle backend for `count` particles; experiment particle counts
/// are compile-time-positive, so construction cannot fail.
pub fn particles(count: usize) -> Backend {
    Backend::particle(count).expect("positive particle count")
}

/// Grid backend at `resolution`; experiment resolutions are
/// compile-time ≥ 2, so construction cannot fail.
pub fn grid(resolution: usize) -> Backend {
    Backend::grid(resolution).expect("valid grid resolution")
}

/// Finishes a localizer builder whose knobs came from experiment
/// constants — by construction a valid configuration.
pub fn built(builder: BnlLocalizerBuilder) -> BnlLocalizer {
    builder.try_build().expect("valid experiment configuration")
}

/// Builder for BNL-PK: the paper's algorithm (particle backend,
/// drop-point priors), open for per-experiment overrides.
pub fn bnl_builder(cfg: &ExpConfig) -> BnlLocalizerBuilder {
    BnlLocalizer::builder(particles(cfg.particles))
        .prior(PriorModel::DropPoint { sigma: PRIOR_SIGMA })
        .max_iterations(cfg.iterations)
        .tolerance(RANGE * 0.02)
}

/// BNL-PK with the standard experiment configuration.
pub fn bnl(cfg: &ExpConfig) -> BnlLocalizer {
    built(bnl_builder(cfg))
}

/// Builder for NBP: the ablation without pre-knowledge.
pub fn nbp_builder(cfg: &ExpConfig) -> BnlLocalizerBuilder {
    BnlLocalizer::builder(particles(cfg.particles))
        .max_iterations(cfg.iterations)
        .tolerance(RANGE * 0.02)
}

/// NBP with the standard experiment configuration.
pub fn nbp(cfg: &ExpConfig) -> BnlLocalizer {
    built(nbp_builder(cfg))
}

/// The full comparison roster used by T2/F5.
pub fn full_roster(cfg: &ExpConfig) -> Vec<Box<dyn Localizer>> {
    vec![
        Box::new(bnl(cfg)),
        Box::new(nbp(cfg)),
        Box::new(wsnloc_baselines::Multilateration::iterative()),
        Box::new(wsnloc_baselines::Multilateration::nls()),
        Box::new(wsnloc_baselines::DvHop::default()),
        Box::new(wsnloc_baselines::MdsMap),
        Box::new(wsnloc_baselines::WeightedCentroid),
        Box::new(wsnloc_baselines::Centroid),
        Box::new(wsnloc_baselines::MinMax),
    ]
}

/// The reduced roster for sweep figures.
pub fn sweep_roster(cfg: &ExpConfig) -> Vec<Box<dyn Localizer>> {
    vec![
        Box::new(bnl(cfg)),
        Box::new(nbp(cfg)),
        Box::new(wsnloc_baselines::Multilateration::nls()),
        Box::new(wsnloc_baselines::DvHop::default()),
        Box::new(wsnloc_baselines::MdsMap),
        Box::new(wsnloc_baselines::WeightedCentroid),
    ]
}

/// Every experiment id, in report order.
pub fn ids() -> Vec<&'static str> {
    vec![
        "t2", "t3", "f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8", "f9", "f10", "f11", "f12",
        "f13", "f14", "f15", "f16",
    ]
}

/// Runs one experiment by id; `None` for unknown ids.
pub fn by_id(id: &str, cfg: &ExpConfig) -> Option<Vec<Report>> {
    Some(match id {
        "t2" => t2_headtohead::run(cfg),
        "t3" => t3_scalability::run(cfg),
        "f1" => f1_anchor_fraction::run(cfg),
        "f2" => f2_noise::run(cfg),
        "f3" => f3_connectivity::run(cfg),
        "f4" => f4_convergence::run(cfg),
        "f5" => f5_cdf::run(cfg),
        "f6" => f6_preknowledge::run(cfg),
        "f7" => f7_topology::run(cfg),
        "f8" => f8_particles::run(cfg),
        "f9" => f9_grid::run(cfg),
        "f10" => f10_crlb::run(cfg),
        "f11" => f11_backends::run(cfg),
        "f12" => f12_nlos::run(cfg),
        "f13" => f13_schedule::run(cfg),
        "f14" => f14_tracking::run(cfg),
        "f15" => f15_faults::run(cfg),
        "f16" => f16_streaming::run(cfg),
        _ => return None,
    })
}

/// Runs the whole suite.
pub fn all(cfg: &ExpConfig) -> Vec<Report> {
    ids()
        .into_iter()
        .flat_map(|id| by_id(id, cfg).expect("registered id"))
        .collect()
}
