//! F9 — ablation: grid resolution for the discrete-Bayesian-network
//! backend.
//!
//! The grid backend is the literal finite formulation of the paper's model;
//! its accuracy is floored by the cell size (an estimate cannot beat
//! ~cell/2 systematic error) and its cost grows with the fourth power of
//! resolution (source cells × kernel cells). Run on a reduced network so
//! the sweep stays tractable — the comparison across resolutions, not the
//! absolute scale, is the result.
//!
//! Reproduction criterion: error falls as resolution rises until the
//! cell-quantization floor meets the measurement-noise floor, while runtime
//! explodes — motivating the particle backend as the practical choice.

use super::{built, grid, PRIOR_SIGMA, RANGE};
use crate::{evaluate, EvalConfig, ExpConfig, Report};
use wsnloc::prelude::*;

fn small_scenario() -> Scenario {
    Scenario {
        name: "grid-ablation".into(),
        deployment: Deployment::planned_square_drop(500.0, 3, PRIOR_SIGMA / 2.0),
        node_count: 64,
        anchors: AnchorStrategy::Random { count: 8 },
        radio: RadioModel::UnitDisk { range: 150.0 },
        ranging: RangingModel::Multiplicative { factor: 0.1 },
        seed: 0x9812D,
    }
}

/// Runs the grid-resolution ablation.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    let resolutions: Vec<usize> = if cfg.quick {
        vec![15, 25]
    } else {
        vec![15, 20, 30, 40, 60]
    };
    let scenario = small_scenario();
    let mut labels = Vec::new();
    let mut data = Vec::new();
    for res in resolutions {
        let algo = built(
            BnlLocalizer::builder(grid(res))
                .prior(PriorModel::DropPoint {
                    sigma: PRIOR_SIGMA / 2.0,
                })
                .max_iterations(cfg.iterations.min(6))
                .tolerance(RANGE * 0.02),
        );
        let outcome = evaluate(&algo, &scenario, &EvalConfig::trials(cfg.trials.min(3)));
        let cell = 500.0 / res as f64;
        labels.push(format!("{res}x{res}"));
        data.push(vec![
            cell,
            outcome
                .normalized_summary(RANGE)
                .map_or(f64::NAN, |s| s.mean),
            outcome.secs,
        ]);
    }
    vec![Report::new(
        "f9",
        "grid-backend accuracy/runtime vs resolution (64-node field)".to_string(),
        "grid",
        vec!["cell (m)".into(), "mean/R".into(), "secs".into()],
        labels,
        data,
    )]
}
