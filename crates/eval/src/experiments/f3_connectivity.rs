//! F3 — localization error vs connectivity (radio-range sweep).
//!
//! Reproduction criterion: errors normalized by the *standard* range fall
//! steeply as connectivity rises from the sparse regime, then flatten once
//! the graph is well connected; cooperative methods exploit the extra edges
//! most. The table also reports the realized average degree per range.

use super::{bnl, nbp, standard_scenario, RANGE};
use crate::{evaluate, EvalConfig, ExpConfig, Report};
use wsnloc::Localizer;
use wsnloc_net::RadioModel;

/// Runs the connectivity sweep.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    let ranges: Vec<f64> = if cfg.quick {
        vec![120.0, 200.0]
    } else {
        vec![100.0, 125.0, 150.0, 175.0, 200.0, 250.0]
    };
    let roster: Vec<Box<dyn Localizer>> = vec![
        Box::new(bnl(cfg)),
        Box::new(nbp(cfg)),
        Box::new(wsnloc_baselines::DvHop::default()),
        Box::new(wsnloc_baselines::MdsMap),
    ];
    let mut columns: Vec<String> = vec!["avg degree".into()];
    columns.extend(roster.iter().map(|a| a.name()));
    let mut labels = Vec::new();
    let mut data = Vec::new();
    for r in ranges {
        let mut scenario = standard_scenario();
        scenario.radio = RadioModel::UnitDisk { range: r };
        scenario.name = format!("range-{r}");
        labels.push(format!("{r:.0} m"));
        // Realized degree from the first trial.
        let (net, _) = scenario.build_trial(0);
        let mut row = vec![net.avg_degree()];
        // Errors stay normalized by the standard range so rows compare.
        row.extend(roster.iter().map(|algo| {
            evaluate(algo.as_ref(), &scenario, &EvalConfig::trials(cfg.trials))
                .normalized_summary(RANGE)
                .map_or(f64::NAN, |s| s.mean)
        }));
        data.push(row);
    }
    vec![Report::new(
        "f3",
        format!(
            "mean error/R vs radio range ({} trials; /R uses the standard R = {RANGE} m)",
            cfg.trials
        ),
        "radio range",
        columns,
        labels,
        data,
    )]
}
