//! F8 — ablation: particle count vs accuracy and runtime.
//!
//! Reproduction criterion: error falls steeply up to a few hundred
//! particles then saturates, while runtime grows linearly — the knee is
//! where a deployment should operate.

use super::{built, particles as particle_backend, standard_scenario, PRIOR_SIGMA, RANGE};
use crate::{evaluate, EvalConfig, ExpConfig, Report};
use wsnloc::{BnlLocalizer, PriorModel};

/// Runs the particle-count ablation.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    let counts: Vec<usize> = if cfg.quick {
        vec![50, 150]
    } else {
        vec![50, 100, 200, 400, 800]
    };
    let scenario = standard_scenario();
    let mut labels = Vec::new();
    let mut data = Vec::new();
    for particles in counts {
        let algo = built(
            BnlLocalizer::builder(particle_backend(particles))
                .prior(PriorModel::DropPoint { sigma: PRIOR_SIGMA })
                .max_iterations(cfg.iterations)
                .tolerance(RANGE * 0.02),
        );
        let outcome = evaluate(&algo, &scenario, &EvalConfig::trials(cfg.trials));
        labels.push(particles.to_string());
        data.push(vec![
            outcome
                .normalized_summary(RANGE)
                .map_or(f64::NAN, |s| s.mean),
            outcome
                .normalized_summary(RANGE)
                .map_or(f64::NAN, |s| s.p90),
            outcome.secs,
        ]);
    }
    vec![Report::new(
        "f8",
        format!(
            "BNL-PK accuracy/runtime vs particle count ({} trials)",
            cfg.trials
        ),
        "particles",
        vec!["mean/R".into(), "p90/R".into(), "secs".into()],
        labels,
        data,
    )]
}
