//! F13 — ablation of the BP design choices DESIGN.md calls out: update
//! schedule (synchronous flooding vs sequential sweep) and belief damping.
//!
//! Reproduction criterion: the sweep schedule reaches a given accuracy in
//! fewer iterations (each update sees fresher neighbors) at the price of
//! being inherently sequential; moderate damping slows convergence slightly
//! but does not hurt final accuracy (it exists to stabilize oscillation in
//! loopier graphs). Final accuracy should be schedule-insensitive — both
//! fixed points approximate the same posterior.

use super::{built, particles, standard_scenario, PRIOR_SIGMA, RANGE};
use crate::{evaluate, EvalConfig, ExpConfig, Report};
use wsnloc::prelude::*;

/// Runs the schedule/damping ablation.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    let scenario = standard_scenario();
    let configs: Vec<(String, Schedule, f64)> = if cfg.quick {
        vec![
            ("sync".into(), Schedule::Synchronous, 0.0),
            ("sweep".into(), Schedule::Sweep, 0.0),
        ]
    } else {
        vec![
            ("sync".into(), Schedule::Synchronous, 0.0),
            ("sync+damp 0.25".into(), Schedule::Synchronous, 0.25),
            ("sync+damp 0.5".into(), Schedule::Synchronous, 0.5),
            ("sweep".into(), Schedule::Sweep, 0.0),
            ("sweep+damp 0.25".into(), Schedule::Sweep, 0.25),
        ]
    };
    let mut labels = Vec::new();
    let mut data = Vec::new();
    for (label, schedule, damping) in configs {
        let algo = built(
            BnlLocalizer::builder(particles(cfg.particles))
                .prior(PriorModel::DropPoint { sigma: PRIOR_SIGMA })
                .max_iterations(cfg.iterations * 2)
                .schedule(schedule)
                .damping(damping)
                .tolerance(RANGE * 0.02),
        );
        let outcome = evaluate(&algo, &scenario, &EvalConfig::trials(cfg.trials));
        labels.push(label);
        data.push(vec![
            outcome
                .normalized_summary(RANGE)
                .map_or(f64::NAN, |s| s.mean),
            outcome.iterations,
            outcome.converged_frac,
            outcome.secs,
        ]);
    }
    vec![Report::new(
        "f13",
        format!("schedule & damping ablation ({} trials)", cfg.trials),
        "configuration",
        vec![
            "mean/R".into(),
            "iters".into(),
            "converged".into(),
            "secs".into(),
        ],
        labels,
        data,
    )]
}
