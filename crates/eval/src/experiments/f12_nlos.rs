//! F12 — robustness to NLOS (outlier) ranging.
//!
//! The ranging channel becomes a mixture: with probability `p` a
//! measurement carries a large positive excess delay (non-line-of-sight
//! detour). The Bayesian localizer *knows the mixture* — its likelihood is
//! the same two-component density the simulator draws from — while the
//! least-squares solver implicitly assumes clean Gaussian ranges.
//!
//! Reproduction criterion: as `p` grows, NLS error climbs steeply (every
//! outlier drags the quadratic fit), BNL-PK degrades slowly (the mixture
//! likelihood discounts implausible ranges), the parametric Gaussian
//! backend sits between (it inflates variances but stays unimodal), and
//! range-free DV-Hop is flat by construction.

use super::{built, particles, standard_scenario, PRIOR_SIGMA, RANGE};
use crate::{evaluate, EvalConfig, ExpConfig, Report};
use wsnloc::prelude::*;

/// Runs the NLOS robustness sweep.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    let probs: Vec<f64> = if cfg.quick {
        vec![0.0, 0.2]
    } else {
        vec![0.0, 0.05, 0.1, 0.2, 0.3]
    };
    let prior = PriorModel::DropPoint { sigma: PRIOR_SIGMA };
    let bnl = built(
        BnlLocalizer::builder(particles(cfg.particles))
            .prior(prior.clone())
            .max_iterations(cfg.iterations)
            .tolerance(RANGE * 0.02),
    );
    let gaussian = built(
        BnlLocalizer::builder(Backend::gaussian())
            .prior(prior)
            .max_iterations(cfg.iterations * 3)
            .tolerance(RANGE * 0.02),
    );
    let nls = wsnloc_baselines::Multilateration::nls();
    let dvhop = wsnloc_baselines::DvHop::default();

    let columns = vec![
        "BNL-PK".to_string(),
        "Gaussian-BP".to_string(),
        nls.name(),
        dvhop.name(),
    ];
    let mut labels = Vec::new();
    let mut data = Vec::new();
    for p in probs {
        let mut scenario = standard_scenario();
        scenario.ranging = RangingModel::NlosMixture {
            factor: 0.1,
            outlier_prob: p,
            outlier_scale: RANGE * 0.8,
        };
        scenario.name = format!("nlos-{p}");
        labels.push(format!("{:.0}%", p * 100.0));
        let algos: Vec<&dyn Localizer> = vec![&bnl, &gaussian, &nls, &dvhop];
        data.push(
            algos
                .into_iter()
                .map(|algo| {
                    evaluate(algo, &scenario, &EvalConfig::trials(cfg.trials))
                        .normalized_summary(RANGE)
                        .map_or(f64::NAN, |s| s.mean)
                })
                .collect(),
        );
    }
    vec![Report::new(
        "f12",
        format!(
            "mean error/R vs NLOS outlier probability ({} trials)",
            cfg.trials
        ),
        "NLOS prob",
        columns,
        labels,
        data,
    )]
}
