//! T3 — scalability of BNL-PK with network size, plus the rayon scaling
//! ablation.
//!
//! Node density is held constant (the field grows with N) so the message
//! graph stays comparable; wall time should grow ~linearly in N (nodes ×
//! bounded degree). The "speedup" column compares the default rayon pool
//! against a forced single-thread pool — on a single-core host it reads
//! ≈ 1.0 by construction, on a multi-core host it approaches the core
//! count for the larger networks.

use super::{bnl, ANCHORS, FIELD, N, NOISE, PRIOR_SIGMA, RANGE};
use crate::runner::run_trial;
use crate::{ExpConfig, Report};
use wsnloc::prelude::*;
use wsnloc_geom::stats;

fn scenario_for(n: usize) -> Scenario {
    // Constant density: field side scales with sqrt(n / N).
    let side = FIELD * (n as f64 / N as f64).sqrt();
    let drop_grid = ((n as f64).sqrt() / 3.0).round().max(2.0) as usize;
    Scenario {
        name: format!("scale-{n}"),
        deployment: Deployment::planned_square_drop(side, drop_grid, PRIOR_SIGMA),
        node_count: n,
        anchors: AnchorStrategy::Random {
            count: (n as f64 * ANCHORS as f64 / N as f64).round() as usize,
        },
        radio: RadioModel::UnitDisk { range: RANGE },
        ranging: RangingModel::Multiplicative { factor: NOISE },
        seed: 0x5CA1E,
    }
}

/// Runs the scalability table.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    let sizes: Vec<usize> = if cfg.quick {
        vec![64, 144]
    } else {
        vec![100, 225, 400, 625]
    };
    let algo = bnl(cfg);
    let mut labels = Vec::new();
    let mut data = Vec::new();
    for n in sizes {
        let scenario = scenario_for(n);
        // Parallel (default pool) timing.
        let mut par_secs = Vec::new();
        let mut errs = Vec::new();
        let mut msgs = Vec::new();
        for t in 0..cfg.trials {
            let rec = run_trial(&algo, &scenario, t);
            par_secs.push(rec.secs);
            msgs.push(rec.msgs_per_node);
            if let Some(m) = stats::mean(&rec.errors) {
                errs.push(m);
            }
        }
        // Forced single-thread timing (one trial is enough for the ratio).
        let seq_pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("pool construction");
        let seq_secs = seq_pool.install(|| run_trial(&algo, &scenario, 0).secs);
        let par_mean = stats::mean(&par_secs).unwrap_or(f64::NAN);
        labels.push(n.to_string());
        data.push(vec![
            stats::mean(&errs).unwrap_or(f64::NAN) / RANGE,
            par_mean,
            seq_secs,
            seq_secs / par_mean,
            stats::mean(&msgs).unwrap_or(f64::NAN),
        ]);
    }
    vec![Report::new(
        "t3",
        format!(
            "BNL-PK scalability at constant density ({} trials; speedup = 1-thread / default pool)",
            cfg.trials
        ),
        "nodes",
        vec![
            "mean/R".into(),
            "secs(par)".into(),
            "secs(1thr)".into(),
            "speedup".into(),
            "msgs/node".into(),
        ],
        labels,
        data,
    )]
}
