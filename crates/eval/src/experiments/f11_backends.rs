//! F11 — belief-representation ablation: particle vs grid vs Gaussian.
//!
//! All three backends run the *same* Bayesian network; only the belief
//! representation differs. Reproduction criterion: the nonparametric
//! backends (particle, grid) land close to each other; the parametric
//! Gaussian backend is dramatically cheaper in bandwidth and time but
//! loses accuracy wherever posteriors are multi-modal — its p90 error
//! blows up even when its median stays respectable, which is precisely the
//! argument for the paper's nonparametric formulation.

use super::{built, grid, particles, PRIOR_SIGMA, RANGE};
use crate::{evaluate, EvalConfig, ExpConfig, Report};
use wsnloc::prelude::*;

fn scenario() -> Scenario {
    // Reduced field keeps the grid backend tractable while every backend
    // sees the same world.
    Scenario {
        name: "backends".into(),
        deployment: Deployment::planned_square_drop(600.0, 4, PRIOR_SIGMA / 2.0),
        node_count: 100,
        anchors: AnchorStrategy::Random { count: 10 },
        radio: RadioModel::UnitDisk { range: 150.0 },
        ranging: RangingModel::Multiplicative { factor: 0.1 },
        seed: 0xBAC6,
    }
}

/// Runs the backend comparison.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    let scenario = scenario();
    let prior = PriorModel::DropPoint {
        sigma: PRIOR_SIGMA / 2.0,
    };
    let iters = cfg.iterations;
    let tol = RANGE * 0.02;
    let backends: Vec<(String, BnlLocalizer)> = vec![
        (
            format!("particle-{}", cfg.particles),
            built(
                BnlLocalizer::builder(particles(cfg.particles))
                    .prior(prior.clone())
                    .max_iterations(iters)
                    .tolerance(tol),
            ),
        ),
        (
            "particle-50".into(),
            built(
                BnlLocalizer::builder(particles(50))
                    .prior(prior.clone())
                    .max_iterations(iters)
                    .tolerance(tol),
            ),
        ),
        (
            "grid-30".into(),
            built(
                BnlLocalizer::builder(grid(30))
                    .prior(prior.clone())
                    .max_iterations(iters.min(6))
                    .tolerance(tol),
            ),
        ),
        (
            "gaussian".into(),
            built(
                BnlLocalizer::builder(Backend::gaussian())
                    .prior(prior.clone())
                    .max_iterations(iters * 3) // cheap iterations
                    .tolerance(tol),
            ),
        ),
    ];

    let mut labels = Vec::new();
    let mut data = Vec::new();
    for (label, algo) in backends {
        let outcome = evaluate(&algo, &scenario, &EvalConfig::trials(cfg.trials));
        let s = outcome.normalized_summary(RANGE);
        labels.push(label);
        data.push(vec![
            s.map_or(f64::NAN, |s| s.mean),
            s.map_or(f64::NAN, |s| s.median),
            s.map_or(f64::NAN, |s| s.p90),
            outcome.bytes_per_node / 1024.0,
            outcome.secs,
        ]);
    }
    vec![Report::new(
        "f11",
        format!(
            "belief-backend ablation on a 100-node field ({} trials)",
            cfg.trials
        ),
        "backend",
        vec![
            "mean/R".into(),
            "median/R".into(),
            "p90/R".into(),
            "KiB/node".into(),
            "secs".into(),
        ],
        labels,
        data,
    )]
}
