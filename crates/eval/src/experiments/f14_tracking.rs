//! F14 — temporal tracking of mobile networks (future-work extension).
//!
//! Nodes move by random waypoint; each time step yields a fresh network
//! snapshot. Three per-step strategies under the same *tight* inference
//! budget (2 BP iterations per step):
//!
//! - **Track** — [`wsnloc::TrackingLocalizer`]: previous posterior (+motion
//!   inflation) as the next prior;
//! - **Memoryless** — full re-localization from an uninformative prior;
//! - **Memoryless (full budget)** — re-localization with the standard
//!   iteration budget, as the accuracy reference.
//!
//! Reproduction criterion: under the tight budget, tracking approaches the
//! full-budget reference while memoryless-tight collapses; the gap grows
//! with node speed until motion outruns the temporal prior.

use super::{built, particles, RANGE};
use crate::{ExpConfig, Report};
use wsnloc::prelude::*;
use wsnloc::TrackingLocalizer;
use wsnloc_geom::stats;
use wsnloc_geom::{Aabb, Shape};
use wsnloc_net::mobility::{MobileWorld, RandomWaypoint};

const STEPS: usize = 8;
const WARMUP: usize = 2;

fn run_world(speed: f64, trial: u64, cfg: &ExpConfig) -> (f64, f64, f64) {
    let mut world = MobileWorld::new(
        Shape::Rect(Aabb::from_size(600.0, 600.0)),
        80,
        10,
        RadioModel::UnitDisk { range: RANGE },
        RangingModel::Multiplicative { factor: 0.1 },
        RandomWaypoint {
            min_speed: speed.max(0.1),
            max_speed: speed.max(0.1),
            pause: 0.0,
        },
        1.0,
        0xF14 ^ trial,
    );
    let tight = built(
        BnlLocalizer::builder(particles(cfg.particles))
            .max_iterations(2)
            .tolerance(0.0),
    );
    let full = built(
        BnlLocalizer::builder(particles(cfg.particles))
            .max_iterations(cfg.iterations)
            .tolerance(RANGE * 0.02),
    );
    let mut tracker = TrackingLocalizer::builder(tight.clone())
        .motion_per_step(speed.max(0.1) * 1.5)
        .try_build()
        .expect("valid tracker");

    let mut track_err = Vec::new();
    let mut tight_err = Vec::new();
    let mut full_err = Vec::new();
    for t in 0..STEPS as u64 {
        let net = world.step();
        let truth = GroundTruth::from_positions(world.positions().to_vec());
        let score = |r: &wsnloc::LocalizationResult| {
            let errs: Vec<f64> = r
                .errors_for(&truth, Some(&net))
                .into_iter()
                .flatten()
                .collect();
            stats::mean(&errs).unwrap_or(f64::NAN)
        };
        let a = score(&tracker.step(&net, t));
        let b = score(&tight.localize(&net, t));
        let c = score(&full.localize(&net, t));
        if t as usize >= WARMUP {
            track_err.push(a);
            tight_err.push(b);
            full_err.push(c);
        }
    }
    (
        stats::mean(&track_err).unwrap_or(f64::NAN),
        stats::mean(&tight_err).unwrap_or(f64::NAN),
        stats::mean(&full_err).unwrap_or(f64::NAN),
    )
}

/// Runs the mobility/tracking sweep over node speed.
pub fn run(cfg: &ExpConfig) -> Vec<Report> {
    let speeds: Vec<f64> = if cfg.quick {
        vec![5.0, 20.0]
    } else {
        vec![2.0, 5.0, 10.0, 20.0, 40.0]
    };
    let mut labels = Vec::new();
    let mut data = Vec::new();
    for speed in speeds {
        let mut a = Vec::new();
        let mut b = Vec::new();
        let mut c = Vec::new();
        for trial in 0..cfg.trials.min(3) {
            let (x, y, z) = run_world(speed, trial, cfg);
            a.push(x);
            b.push(y);
            c.push(z);
        }
        labels.push(format!("{speed:.0} m/s"));
        data.push(vec![
            stats::mean(&a).unwrap_or(f64::NAN) / RANGE,
            stats::mean(&b).unwrap_or(f64::NAN) / RANGE,
            stats::mean(&c).unwrap_or(f64::NAN) / RANGE,
        ]);
    }
    vec![Report::new(
        "f14",
        format!(
            "mobile tracking: steady-state error/R vs node speed ({} steps, 2-iter budget, {} trials)",
            STEPS,
            cfg.trials.min(3)
        ),
        "speed",
        vec![
            "Track(2 it)".into(),
            "Memoryless(2 it)".into(),
            "Memoryless(full)".into(),
        ],
        labels,
        data,
    )]
}
