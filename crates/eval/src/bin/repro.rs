//! `repro` — regenerates every table and figure of the reproduction.
//!
//! ```text
//! repro all                 # full suite (release build strongly advised)
//! repro t2 f1 f6            # selected experiments
//! repro f4 --trials 10      # override Monte-Carlo trials
//! repro all --quick         # smoke-test resolution
//! repro list                # print the experiment index
//! repro all --out results/  # also write one CSV per report
//! repro trace               # record BP telemetry to trace.jsonl
//! repro trace --backend grid --out traces/  # per-backend trace file
//! repro analyze trace.jsonl # replay a trace into convergence/fault/flame tables
//! repro bench               # write BENCH_grid.json / BENCH_particle.json / BENCH_stream.json
//! repro bench --scale       # also run the grid-resolution + sharded 1k-1M
//!                           # deployment sweeps into BENCH_scale.json
//! repro bench --scale --quick  # sharded sweep capped at 100k nodes, into
//!                              # BENCH_scale_quick.json (the CI lane)
//! repro bench --out perf/   # same, into a directory
//! repro bench --check --tolerance 2.0  # compare fresh numbers to the pinned JSONs
//! repro audit-determinism             # schedule-perturbation determinism audit
//! repro audit-determinism --quick     # reduced matrix for CI smoke jobs
//! ```
//!
//! The `trace` subcommand runs the standard scenario with a recording
//! observer attached and writes a replayable `trace.jsonl` (schema: see the
//! README's "Observability" section) with one JSON record per line —
//! `run_start`, per-iteration residual/communication records, timing
//! spans, structured events, and `run_end`.
//!
//! The `analyze` subcommand replays a recorded trace through the *same*
//! `MetricsObserver`/`SpanProfiler` pair a live run uses, so its tables
//! match the live snapshot exactly (the fold is order-insensitive and
//! the JSONL encoder round-trips every finite float).

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;
use wsnloc::prelude::*;
use wsnloc_eval::{bench, evaluate, experiments, top, EvalConfig, ExpConfig, Parallelism};
use wsnloc_obs::{
    write_jsonl, MetricsRegistry, Stopwatch, TelemetryHub, TelemetryServer, WindowedMetrics,
};

fn usage() -> &'static str {
    "usage: repro <list | trace | analyze [FILE] [--follow] | top ADDR | bench [--check] [--scale] | audit-determinism | all | ids...> [--trials N] [--particles N] [--iterations N] [--backend particle|grid|gaussian] [--quick] [--tolerance R] [--out DIR] [--telemetry ADDR] [--telemetry-linger SECS] [--interval SECS] [--once] [--idle-timeout SECS]"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }

    let mut cfg = ExpConfig::default();
    let mut out_dir: Option<PathBuf> = None;
    let mut backend = String::from("particle");
    let mut check = false;
    let mut scale = false;
    let mut tolerance = 1.5f64;
    let mut telemetry_addr: Option<String> = None;
    let mut linger = 0.0f64;
    let mut interval = 2.0f64;
    let mut once = false;
    let mut follow = false;
    let mut idle_timeout = 5.0f64;
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => check = true,
            "--scale" => scale = true,
            "--once" => once = true,
            "--follow" => follow = true,
            "--telemetry" => {
                i += 1;
                telemetry_addr = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--telemetry needs host:port")),
                );
            }
            "--telemetry-linger" => {
                i += 1;
                linger = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|s: &f64| s.is_finite() && *s >= 0.0)
                    .unwrap_or_else(|| die("--telemetry-linger needs seconds"));
            }
            "--interval" => {
                i += 1;
                interval = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|s: &f64| s.is_finite() && *s > 0.0)
                    .unwrap_or_else(|| die("--interval needs positive seconds"));
            }
            "--idle-timeout" => {
                i += 1;
                idle_timeout = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|s: &f64| s.is_finite() && *s > 0.0)
                    .unwrap_or_else(|| die("--idle-timeout needs positive seconds"));
            }
            "--tolerance" => {
                i += 1;
                tolerance = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|t: &f64| t.is_finite() && *t > 0.0)
                    .unwrap_or_else(|| die("--tolerance needs a positive ratio"));
            }
            "--quick" => {
                cfg = ExpConfig {
                    quick: true,
                    ..ExpConfig::quick()
                }
            }
            "--trials" => {
                i += 1;
                cfg.trials = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--trials needs a number"));
            }
            "--particles" => {
                i += 1;
                cfg.particles = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--particles needs a number"));
            }
            "--iterations" => {
                i += 1;
                cfg.iterations = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--iterations needs a number"));
            }
            "--out" => {
                i += 1;
                out_dir = Some(PathBuf::from(
                    args.get(i)
                        .unwrap_or_else(|| die("--out needs a directory")),
                ));
            }
            "--backend" => {
                i += 1;
                backend = args
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| die("--backend needs particle|grid|gaussian"));
            }
            other => ids.push(other.to_string()),
        }
        i += 1;
    }

    if ids.iter().any(|id| id == "list") {
        println!("experiments: {}", experiments::ids().join(", "));
        println!("(see DESIGN.md §4 for what each one reproduces)");
        return ExitCode::SUCCESS;
    }

    if ids.iter().any(|id| id == "trace") {
        return run_trace(&cfg, &backend, out_dir.as_deref());
    }

    if let Some(pos) = ids.iter().position(|id| id == "top") {
        let Some(addr) = ids.get(pos + 1).cloned().or(telemetry_addr) else {
            eprintln!("top needs a telemetry address (repro top HOST:PORT)");
            return ExitCode::FAILURE;
        };
        let refreshes = if once { 1 } else { cfg.iterations.max(1) };
        return run_top(&addr, interval, refreshes);
    }

    if let Some(pos) = ids.iter().position(|id| id == "analyze") {
        let path = ids
            .get(pos + 1)
            .map_or_else(|| PathBuf::from("trace.jsonl"), PathBuf::from);
        if follow {
            return run_analyze_follow(&path, interval.min(1.0), idle_timeout, out_dir.as_deref());
        }
        return run_analyze(&path, out_dir.as_deref());
    }

    if ids.iter().any(|id| id == "bench") {
        return run_bench(out_dir.as_deref(), check, scale, cfg.quick, tolerance);
    }

    if ids.iter().any(|id| id == "audit-determinism") {
        return run_audit(cfg.quick);
    }

    let selected: Vec<String> = if ids.iter().any(|id| id == "all") {
        experiments::ids()
            .iter()
            .map(std::string::ToString::to_string)
            .collect()
    } else {
        ids
    };
    if selected.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }

    eprintln!(
        "config: trials={} particles={} iterations={} quick={}",
        cfg.trials, cfg.particles, cfg.iterations, cfg.quick
    );

    // With --telemetry, experiments that support live publication (the
    // streaming service) share one hub whose scrape endpoint outlives the
    // individual engines; `--telemetry-linger` keeps it up after the last
    // report so external scrapers can catch the final window.
    let mut server: Option<TelemetryServer> = None;
    let hub = telemetry_addr.as_deref().map(|addr| {
        let hub = TelemetryHub::new(
            Arc::new(MetricsRegistry::new()),
            Arc::new(WindowedMetrics::new(64)),
        );
        match TelemetryServer::start(addr, hub.clone()) {
            Ok(srv) => {
                eprintln!("telemetry listening on {}", srv.local_addr());
                server = Some(srv);
            }
            Err(e) => die(&format!("failed to bind telemetry on {addr}: {e}")),
        }
        hub
    });

    for id in &selected {
        let reports = match (id.as_str(), &hub) {
            ("f16", Some(hub)) => Some(experiments::f16_streaming::run_with_telemetry(&cfg, hub)),
            _ => experiments::by_id(id, &cfg),
        };
        let Some(reports) = reports else {
            eprintln!("unknown experiment id: {id} (try `repro list`)");
            return ExitCode::FAILURE;
        };
        for report in reports {
            println!("{}", report.to_ascii());
            if let Some(dir) = &out_dir {
                match report.write_csv(dir) {
                    Ok(path) => eprintln!("wrote {}", path.display()),
                    Err(e) => eprintln!("failed to write {}: {e}", report.id),
                }
            }
        }
    }
    if let Some(mut srv) = server {
        if linger > 0.0 {
            eprintln!("telemetry lingering for {linger}s on {}", srv.local_addr());
            std::thread::sleep(Duration::from_secs_f64(linger));
        }
        srv.shutdown();
        eprintln!("telemetry stopped");
    }
    ExitCode::SUCCESS
}

/// Runs the schedule-perturbation determinism audit (the dynamic half of
/// the correctness gate; see `wsnloc_eval::audit`).
fn run_audit(quick: bool) -> ExitCode {
    let config = if quick {
        wsnloc_eval::AuditConfig::quick()
    } else {
        wsnloc_eval::AuditConfig::full()
    };
    eprintln!(
        "audit-determinism: threads {:?} x {} schedule permutations (+ input order), grid + particle + sharded-grid BP + streaming engine",
        config.thread_counts,
        config.permutation_seeds.len()
    );
    let outcome = wsnloc_eval::audit_determinism(&config);
    if outcome.passed() {
        eprintln!(
            "audit-determinism: {} runs, all bit-identical to the sequential reference",
            outcome.runs
        );
        ExitCode::SUCCESS
    } else {
        for failure in &outcome.failures {
            eprintln!("audit-determinism: FAIL {failure}");
        }
        eprintln!(
            "audit-determinism: {} of {} runs diverged",
            outcome.failures.len(),
            outcome.runs
        );
        ExitCode::FAILURE
    }
}

/// Runs the standard scenario with a recording observer and writes the
/// collected runs to `trace.jsonl` (in `out_dir` when given).
fn run_trace(cfg: &ExpConfig, backend: &str, out_dir: Option<&std::path::Path>) -> ExitCode {
    let backend = match backend {
        "particle" => experiments::particles(cfg.particles),
        "grid" => experiments::grid(30),
        "gaussian" => Backend::gaussian(),
        other => {
            eprintln!("unknown backend: {other} (want particle|grid|gaussian)");
            return ExitCode::FAILURE;
        }
    };
    let algo = match BnlLocalizer::builder(backend)
        .prior(PriorModel::DropPoint {
            sigma: experiments::PRIOR_SIGMA,
        })
        .max_iterations(cfg.iterations)
        .tolerance(experiments::RANGE * 0.02)
        .try_build()
    {
        Ok(algo) => algo,
        Err(e) => {
            eprintln!("invalid localizer configuration: {e}");
            return ExitCode::FAILURE;
        }
    };

    let scenario = experiments::standard_scenario();
    eprintln!(
        "tracing {} on '{}': trials={} iterations={}",
        algo.name(),
        scenario.name,
        cfg.trials,
        cfg.iterations
    );
    // Sequential trials keep the trace file in trial order; metrics ride
    // along so the live snapshot can be compared against `repro analyze`.
    let outcome = evaluate(
        &algo,
        &scenario,
        &EvalConfig::trials(cfg.trials)
            .with_traces()
            .with_metrics()
            .with_parallelism(Parallelism::Sequential),
    );
    let Some(agg) = outcome.trace.as_ref() else {
        eprintln!("no traces were collected");
        return ExitCode::FAILURE;
    };

    let path = out_dir.map_or_else(|| PathBuf::from("trace.jsonl"), |d| d.join("trace.jsonl"));
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("failed to create {}: {e}", parent.display());
                return ExitCode::FAILURE;
            }
        }
    }
    let lines = match JsonlSink::create(&path).and_then(|mut sink| {
        let lines = write_jsonl(&agg.traces, &mut sink)?;
        // Surface buffered-write errors now instead of losing them in drop.
        sink.finish()?;
        Ok(lines)
    }) {
        Ok(lines) => lines,
        Err(e) => {
            eprintln!("failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "wrote {} lines ({} runs) to {}",
        lines,
        agg.runs,
        path.display()
    );
    for (label, secs) in &agg.mean_span_secs {
        eprintln!("  span {label}: {:.1} ms/run", secs * 1e3);
    }
    if let Some(last) = agg.mean_residual_curve.last() {
        eprintln!(
            "  mean max-residual: {:.3} (iter 0) -> {:.3} (iter {})",
            agg.mean_residual_curve.first().copied().unwrap_or(f64::NAN),
            last,
            agg.mean_residual_curve.len() - 1
        );
    }
    if let Some(metrics) = outcome.metrics.as_ref() {
        println!("{}", metrics.overall.convergence_table());
    }
    ExitCode::SUCCESS
}

/// Live terminal view of a running telemetry endpoint: polls `/metrics`,
/// `/healthz`, and `/tenants` every `interval` seconds and redraws the
/// rollup, `refreshes` times (`--once` sets 1; `--iterations N` sets N).
fn run_top(addr: &str, interval: f64, refreshes: usize) -> ExitCode {
    for refresh in 0..refreshes {
        let scraped = top::http_get(addr, "/metrics").and_then(|metrics| {
            let healthz = top::http_get(addr, "/healthz")?;
            let tenants = top::http_get(addr, "/tenants")?;
            Ok((metrics, healthz, tenants))
        });
        match scraped {
            Ok((metrics, healthz, tenants)) => {
                if refreshes > 1 {
                    // Clear the screen and home the cursor between redraws.
                    print!("\x1b[2J\x1b[H");
                }
                print!("{}", top::render_top(&metrics, &healthz, &tenants));
                println!("  [{addr}  refresh {}/{refreshes}]", refresh + 1);
            }
            Err(e) => {
                eprintln!("scrape of {addr} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        if refresh + 1 < refreshes {
            std::thread::sleep(Duration::from_secs_f64(interval));
        }
    }
    ExitCode::SUCCESS
}

/// Tails a growing `trace.jsonl`: polls for appended complete lines,
/// reports progress as runs land, and prints the full analysis tables
/// once the file has been idle for `idle_timeout` seconds.
fn run_analyze_follow(
    path: &std::path::Path,
    poll: f64,
    idle_timeout: f64,
    out_dir: Option<&std::path::Path>,
) -> ExitCode {
    use std::io::{Read as _, Seek as _, SeekFrom};
    eprintln!(
        "following {} (idle timeout {idle_timeout}s)...",
        path.display()
    );
    let mut buffered = String::new();
    let mut complete_len = 0usize; // prefix of `buffered` ending in '\n'
    let mut offset = 0u64;
    let mut reported_runs = 0usize;
    let mut idle = Stopwatch::start();
    loop {
        let mut grew = false;
        if let Ok(mut file) = std::fs::File::open(path) {
            let len = file.metadata().map_or(0, |m| m.len());
            if len < offset {
                // Truncated/rewritten upstream: start over.
                eprintln!("{} shrank; restarting tail", path.display());
                buffered.clear();
                complete_len = 0;
                offset = 0;
            }
            if len > offset && file.seek(SeekFrom::Start(offset)).is_ok() {
                let mut chunk = String::new();
                if file.read_to_string(&mut chunk).is_ok() && !chunk.is_empty() {
                    offset += chunk.len() as u64;
                    buffered.push_str(&chunk);
                    if let Some(nl) = buffered.rfind('\n') {
                        complete_len = nl + 1;
                    }
                    grew = true;
                }
            }
        }
        if grew {
            idle = Stopwatch::start();
            let runs = buffered[..complete_len]
                .lines()
                .filter(|l| l.contains("\"run_end\""))
                .count();
            if runs > reported_runs {
                reported_runs = runs;
                let lines = buffered[..complete_len].lines().count();
                eprintln!("  {runs} runs complete ({lines} lines)");
            }
        } else if idle.elapsed_secs() >= idle_timeout {
            break;
        }
        std::thread::sleep(Duration::from_secs_f64(poll));
    }
    if complete_len == 0 {
        eprintln!("no complete trace lines appeared in {}", path.display());
        return ExitCode::FAILURE;
    }
    buffered.truncate(complete_len);
    analyze_text(&buffered, path, out_dir)
}

/// Replays a recorded `trace.jsonl` through the live analytics path and
/// prints convergence, fault, and span tables. With `--out DIR`, also
/// writes the OpenMetrics rendering to `DIR/metrics.prom`.
fn run_analyze(path: &std::path::Path, out_dir: Option<&std::path::Path>) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("failed to read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    analyze_text(&text, path, out_dir)
}

/// The shared tail of `analyze` and `analyze --follow`: parse, print
/// tables, optionally export the OpenMetrics rendering.
fn analyze_text(text: &str, path: &std::path::Path, out_dir: Option<&std::path::Path>) -> ExitCode {
    let analysis = match wsnloc_obs::analyze_str(text) {
        Ok(analysis) => analysis,
        Err(e) => {
            eprintln!("failed to parse {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "analyzed {}: {} runs ({} incomplete)",
        path.display(),
        analysis.runs,
        analysis.incomplete_runs
    );
    println!("{}", analysis.snapshot.convergence_table());
    println!("{}", analysis.snapshot.fault_table());
    println!("{}", analysis.flame_table);
    if let Some(dir) = out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("failed to create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        let prom = dir.join("metrics.prom");
        if let Err(e) = std::fs::write(&prom, &analysis.openmetrics) {
            eprintln!("failed to write {}: {e}", prom.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", prom.display());
    }
    ExitCode::SUCCESS
}

/// Runs the pinned perf benches. Default mode writes `BENCH_grid.json` /
/// `BENCH_particle.json` / `BENCH_stream.json` — plus `BENCH_scale.json`
/// with `--scale` — (into `out_dir` when given) so the perf
/// trajectory is tracked in version control; `--check` mode instead
/// compares the fresh numbers against the pinned files (read from
/// `out_dir` or the working directory) and exits nonzero on regression.
///
/// `--scale --quick` swaps the scale target to `BENCH_scale_quick.json`,
/// whose sharded deployment sweep stops at 100k nodes — the CI lane; the
/// full file's million-node row is a local pin
/// (`cargo run --release -p wsnloc-eval --bin repro -- bench --scale`).
fn run_bench(
    out_dir: Option<&std::path::Path>,
    check: bool,
    scale: bool,
    quick: bool,
    tolerance: f64,
) -> ExitCode {
    const SAMPLES: usize = 5;
    /// The scale sweep times up to 120×120 cells per row, so it runs
    /// fewer repetitions than the small pinned scenarios.
    const SCALE_SAMPLES: usize = 3;
    let dir = out_dir.unwrap_or_else(|| std::path::Path::new("."));
    if !check && !dir.as_os_str().is_empty() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("failed to create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    eprintln!("grid message-passing bench: cached vs reference path ({SAMPLES} samples each)...");
    let grid = bench::grid_bench_json(SAMPLES);
    eprintln!("particle/gaussian bench ({SAMPLES} samples each)...");
    let particle = bench::particle_bench_json(SAMPLES);
    eprintln!(
        "streaming engine bench: {} warm tenant epochs per tick ({SAMPLES} samples)...",
        bench::STREAM_TENANTS
    );
    let stream = bench::stream_bench_json(SAMPLES);
    let scale_json;
    let mut outputs = vec![
        ("BENCH_grid.json", &grid),
        ("BENCH_particle.json", &particle),
        ("BENCH_stream.json", &stream),
    ];
    if scale {
        eprintln!(
            "scale sweep: grid resolutions {:?} dense vs coarse-to-fine, sharded deployments {:?}{} flat vs sharded-gaussian ({SCALE_SAMPLES} samples each)...",
            bench::SCALE_RESOLUTIONS,
            if quick {
                &bench::SHARD_SCALE_NODES[..bench::SHARD_SCALE_NODES.len() - 1]
            } else {
                &bench::SHARD_SCALE_NODES[..]
            },
            if quick { " (quick)" } else { "" },
        );
        scale_json = bench::scale_bench_json(SCALE_SAMPLES, quick);
        outputs.push((
            if quick {
                "BENCH_scale_quick.json"
            } else {
                "BENCH_scale.json"
            },
            &scale_json,
        ));
    }
    if check {
        let mut regressed = false;
        for (name, fresh) in outputs {
            let path = dir.join(name);
            let pinned = match std::fs::read_to_string(&path) {
                Ok(pinned) => pinned,
                Err(e) => {
                    eprintln!("failed to read pinned {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            match bench::check_bench_json(&pinned, fresh, tolerance) {
                Ok(failures) if failures.is_empty() => {
                    eprintln!("{name}: ok (tolerance {tolerance})");
                }
                Ok(failures) => {
                    regressed = true;
                    for failure in failures {
                        eprintln!("{name}: REGRESSION {failure}");
                    }
                }
                Err(e) => {
                    eprintln!("{name}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        return if regressed {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }
    for (name, contents) in outputs {
        let path = dir.join(name);
        if let Err(e) = std::fs::write(&path, contents) {
            eprintln!("failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
        print!("{contents}");
    }
    ExitCode::SUCCESS
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!("{}", usage());
    std::process::exit(2)
}
