//! `repro` — regenerates every table and figure of the reproduction.
//!
//! ```text
//! repro all                 # full suite (release build strongly advised)
//! repro t2 f1 f6            # selected experiments
//! repro f4 --trials 10      # override Monte-Carlo trials
//! repro all --quick         # smoke-test resolution
//! repro list                # print the experiment index
//! repro all --out results/  # also write one CSV per report
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use wsnloc_eval::{experiments, ExpConfig};

fn usage() -> &'static str {
    "usage: repro <list | all | ids...> [--trials N] [--particles N] [--iterations N] [--quick] [--out DIR]"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }

    let mut cfg = ExpConfig::default();
    let mut out_dir: Option<PathBuf> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                cfg = ExpConfig {
                    quick: true,
                    ..ExpConfig::quick()
                }
            }
            "--trials" => {
                i += 1;
                cfg.trials = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--trials needs a number"));
            }
            "--particles" => {
                i += 1;
                cfg.particles = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--particles needs a number"));
            }
            "--iterations" => {
                i += 1;
                cfg.iterations = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--iterations needs a number"));
            }
            "--out" => {
                i += 1;
                out_dir = Some(PathBuf::from(
                    args.get(i)
                        .unwrap_or_else(|| die("--out needs a directory")),
                ));
            }
            other => ids.push(other.to_string()),
        }
        i += 1;
    }

    if ids.iter().any(|id| id == "list") {
        println!("experiments: {}", experiments::ids().join(", "));
        println!("(see DESIGN.md §4 for what each one reproduces)");
        return ExitCode::SUCCESS;
    }

    let selected: Vec<String> = if ids.iter().any(|id| id == "all") {
        experiments::ids()
            .iter()
            .map(std::string::ToString::to_string)
            .collect()
    } else {
        ids
    };
    if selected.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }

    eprintln!(
        "config: trials={} particles={} iterations={} quick={}",
        cfg.trials, cfg.particles, cfg.iterations, cfg.quick
    );
    for id in &selected {
        let Some(reports) = experiments::by_id(id, &cfg) else {
            eprintln!("unknown experiment id: {id} (try `repro list`)");
            return ExitCode::FAILURE;
        };
        for report in reports {
            println!("{}", report.to_ascii());
            if let Some(dir) = &out_dir {
                match report.write_csv(dir) {
                    Ok(path) => eprintln!("wrote {}", path.display()),
                    Err(e) => eprintln!("failed to write {}: {e}", report.id),
                }
            }
        }
    }
    ExitCode::SUCCESS
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!("{}", usage());
    std::process::exit(2)
}
