//! One benchmark per reproduced table/figure (DESIGN.md §4).
//!
//! Each bench measures a single representative trial of the corresponding
//! experiment's dominant workload, so regressions in any experiment's cost
//! show up individually. Full tables come from the `repro` binary.

use std::hint::black_box;
use std::time::Duration;
use wsnloc::crlb::mean_crlb;
use wsnloc::prelude::*;
use wsnloc_baselines::{DvHop, MdsMap, WeightedCentroid};
use wsnloc_bench::harness::{BatchSize, Criterion};
use wsnloc_bench::{bench_bnl, bench_scenario};
use wsnloc_bench::{criterion_group, criterion_main};

const NODES: usize = 100;
const PARTICLES: usize = 100;
const ITERS: usize = 5;

use wsnloc_bench::harness::measurement::WallTime;
use wsnloc_bench::harness::BenchmarkGroup;

fn configure(c: &mut Criterion) -> BenchmarkGroup<'_, WallTime> {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    g.warm_up_time(Duration::from_secs(1));
    g
}

fn benches(c: &mut Criterion) {
    let scenario = bench_scenario(NODES, 0xBE);
    let (net, truth) = scenario.build_trial(0);
    let mut g = configure(c);

    // T2: the head-to-head table is dominated by one BNL-PK run.
    g.bench_function("bench_t2_headtohead_bnl_trial", |b| {
        let algo = bench_bnl(PARTICLES, ITERS);
        b.iter(|| black_box(algo.localize(&net, 0)));
    });

    // T3: scalability — one larger-network trial.
    g.bench_function("bench_t3_scalability_225", |b| {
        let big = bench_scenario(225, 0xBE);
        let (bignet, _) = big.build_trial(0);
        let algo = bench_bnl(PARTICLES, ITERS);
        b.iter(|| black_box(algo.localize(&bignet, 0)));
    });

    // F1: anchor sweep — the low-anchor point is the hardest workload.
    g.bench_function("bench_f1_low_anchor_bnl", |b| {
        let mut sparse = bench_scenario(NODES, 0xF1);
        sparse.anchors = AnchorStrategy::Random { count: 4 };
        let (snet, _) = sparse.build_trial(0);
        let algo = bench_bnl(PARTICLES, ITERS);
        b.iter(|| black_box(algo.localize(&snet, 0)));
    });

    // F2: noise sweep — high-noise NLS + BNL trial.
    g.bench_function("bench_f2_high_noise_bnl", |b| {
        let mut noisy = bench_scenario(NODES, 0xF2);
        noisy.ranging = RangingModel::Multiplicative { factor: 0.4 };
        let (nnet, _) = noisy.build_trial(0);
        let algo = bench_bnl(PARTICLES, ITERS);
        b.iter(|| black_box(algo.localize(&nnet, 0)));
    });

    // F3: connectivity sweep — the dense-radio point has the most edges.
    g.bench_function("bench_f3_dense_radio_bnl", |b| {
        let mut dense = bench_scenario(NODES, 0xF3);
        dense.radio = RadioModel::UnitDisk { range: 250.0 };
        let (dnet, _) = dense.build_trial(0);
        let algo = bench_bnl(PARTICLES, ITERS);
        b.iter(|| black_box(algo.localize(&dnet, 0)));
    });

    // F4: convergence — the observed variant (callback per iteration).
    g.bench_function("bench_f4_convergence_observed", |b| {
        let algo = bench_bnl(PARTICLES, ITERS);
        b.iter(|| {
            let mut sink = 0usize;
            let r = algo.localize_observed(&net, 0, |iter, _| sink += iter);
            black_box((r, sink))
        });
    });

    // F5: CDF — pooled-error bookkeeping over one full roster pass of the
    // cheap algorithms (the BP cost is covered by T2).
    g.bench_function("bench_f5_cheap_roster", |b| {
        b.iter(|| {
            black_box((
                DvHop::default().localize(&net, 0),
                MdsMap.localize(&net, 0),
                WeightedCentroid.localize(&net, 0),
            ))
        });
    });

    // F6: pre-knowledge sweep — a tight-prior run (different mixing path).
    g.bench_function("bench_f6_tight_prior_bnl", |b| {
        let algo = BnlLocalizer::builder(Backend::particle(PARTICLES).expect("valid backend"))
            .prior(PriorModel::DropPoint { sigma: 25.0 })
            .max_iterations(ITERS)
            .tolerance(0.0)
            .try_build()
            .expect("valid config");
        b.iter(|| black_box(algo.localize(&net, 0)));
    });

    // F7: topology — C-shape with a region prior (rejection sampling path).
    g.bench_function("bench_f7_cshape_region_prior", |b| {
        let shape = Shape::standard_c(700.0);
        let cs = Scenario {
            name: "bench-c".into(),
            deployment: Deployment::Uniform(shape.clone()),
            node_count: NODES,
            anchors: AnchorStrategy::Random { count: 10 },
            radio: RadioModel::UnitDisk { range: 150.0 },
            ranging: RangingModel::Multiplicative { factor: 0.1 },
            seed: 0xF7,
        };
        let (cnet, _) = cs.build_trial(0);
        let algo = BnlLocalizer::builder(Backend::particle(PARTICLES).expect("valid backend"))
            .prior(PriorModel::Region(shape))
            .max_iterations(ITERS)
            .tolerance(0.0)
            .try_build()
            .expect("valid config");
        b.iter(|| black_box(algo.localize(&cnet, 0)));
    });

    // F8: particle ablation — the high-particle end.
    g.bench_function("bench_f8_400_particles", |b| {
        let algo = bench_bnl(400, 3);
        b.iter(|| black_box(algo.localize(&net, 0)));
    });

    // F9: grid ablation — one grid-backend run.
    g.bench_function("bench_f9_grid_backend", |b| {
        let small = bench_scenario(49, 0xF9);
        let (snet, _) = small.build_trial(0);
        let algo = BnlLocalizer::builder(Backend::grid(30).expect("valid backend"))
            .prior(PriorModel::DropPoint { sigma: 100.0 })
            .max_iterations(4)
            .tolerance(0.0)
            .try_build()
            .expect("valid config");
        b.iter(|| black_box(algo.localize(&snet, 0)));
    });

    // F11: the parametric Gaussian backend (cheapest inference loop).
    g.bench_function("bench_f11_gaussian_backend", |b| {
        let algo = BnlLocalizer::builder(Backend::gaussian())
            .prior(PriorModel::DropPoint { sigma: 100.0 })
            .max_iterations(ITERS * 3)
            .tolerance(0.0)
            .try_build()
            .expect("valid config");
        b.iter(|| black_box(algo.localize(&net, 0)));
    });

    // F12: NLOS mixture likelihood path through BNL-PK.
    g.bench_function("bench_f12_nlos_bnl", |b| {
        let mut nlos = bench_scenario(NODES, 0xF12);
        nlos.ranging = RangingModel::NlosMixture {
            factor: 0.1,
            outlier_prob: 0.2,
            outlier_scale: 120.0,
        };
        let (nnet, _) = nlos.build_trial(0);
        let algo = bench_bnl(PARTICLES, ITERS);
        b.iter(|| black_box(algo.localize(&nnet, 0)));
    });

    // F14: one tracking step over a mobility snapshot (tight budget).
    g.bench_function("bench_f14_tracking_step", |b| {
        use wsnloc::TrackingLocalizer;
        use wsnloc_net::mobility::{MobileWorld, RandomWaypoint};
        let mut world = MobileWorld::new(
            Shape::Rect(wsnloc_geom::Aabb::from_size(600.0, 600.0)),
            80,
            10,
            RadioModel::UnitDisk { range: 150.0 },
            RangingModel::Multiplicative { factor: 0.1 },
            RandomWaypoint {
                min_speed: 10.0,
                max_speed: 10.0,
                pause: 0.0,
            },
            1.0,
            0xF14,
        );
        let snapshot = world.step();
        let engine = BnlLocalizer::builder(Backend::particle(PARTICLES).expect("valid backend"))
            .max_iterations(2)
            .tolerance(0.0)
            .try_build()
            .expect("valid config");
        let mut tracker = TrackingLocalizer::builder(engine)
            .motion_per_step(15.0)
            .try_build()
            .expect("valid tracker");
        // Warm the tracker so the bench measures the steady-state step.
        let _ = tracker.step(&snapshot, 0);
        b.iter(|| black_box(tracker.step(&snapshot, 1)));
    });

    // F10: the CRLB assembly + SPD inversion.
    g.bench_function("bench_f10_crlb", |b| {
        b.iter_batched(
            || (net.clone(), truth.clone()),
            |(n, t)| black_box(mean_crlb(&n, &t, Some(100.0))),
            BatchSize::LargeInput,
        );
    });

    g.finish();
}

criterion_group!(experiment_benches, benches);
criterion_main!(experiment_benches);
