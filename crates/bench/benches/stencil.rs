//! Microbenchmarks of the grid-BP stencil scatter kernels in isolation:
//! the three classified forms (dense / mirrored / separable) at both
//! cell precisions (f64 / f32), on the engine's default 30×30 grid with
//! a radius-9 kernel — the same shape the pinned `BENCH_grid.json`
//! scenario runs. The scatter entry points are `#[inline(never)]`, so
//! these numbers time exactly the code the engine dispatches to.
//!
//! Dense and mirrored share one radially-symmetric table (identical
//! arithmetic, different storage and accumulate direction); separable
//! uses a rank-1 Gaussian of the same radius (the two-pass form does
//! fundamentally less work, which is the point being measured).

use std::hint::black_box;
use std::time::Duration;
use wsnloc_bayes::cellbuf::Cell;
use wsnloc_bayes::KernelStencil;
use wsnloc_bench::harness::Criterion;
use wsnloc_bench::{criterion_group, criterion_main};
use wsnloc_geom::rng::Xoshiro256pp;

const NX: usize = 30;
const NY: usize = 30;
const R: usize = 9;

/// A radially symmetric ring kernel (Gaussian around distance 5 cells):
/// bit-exactly mirror-symmetric, not rank-1 — classifies mirrored.
fn ring_table() -> Vec<f64> {
    let w = 2 * R + 1;
    (0..w * w)
        .map(|i| {
            let oy = (i / w) as f64 - R as f64;
            let ox = (i % w) as f64 - R as f64;
            let d = ox.hypot(oy);
            (-0.5 * ((d - 5.0) / 2.0).powi(2)).exp()
        })
        .collect()
}

/// Rank-1 Gaussian factors of the same radius for the separable form.
fn gaussian_factors() -> (Vec<f64>, Vec<f64>) {
    let axis: Vec<f64> = (0..2 * R + 1)
        .map(|i| (-0.5 * ((i as f64 - R as f64) / 3.0).powi(2)).exp())
        .collect();
    (axis.clone(), axis)
}

/// A normalized random source plane with sub-floor cells sprinkled in,
/// matching what a mid-run belief looks like to the scatter loop.
fn source_plane() -> Vec<f64> {
    let mut rng = Xoshiro256pp::seed_from(17);
    let mut src: Vec<f64> = (0..NX * NY).map(|_| rng.range(0.0, 1.0)).collect();
    for i in (0..src.len()).step_by(7) {
        src[i] = 1e-9;
    }
    let total: f64 = src.iter().sum();
    for m in &mut src {
        *m /= total;
    }
    src
}

fn bench_form<C: Cell>(
    c: &mut wsnloc_bench::harness::BenchmarkGroup<'_, wsnloc_bench::harness::measurement::WallTime>,
    name: &str,
    st: &KernelStencil<C>,
) {
    let src64 = source_plane();
    let src: Vec<C> = C::from_f64_vec(src64);
    let floor = C::from_f64(1e-4 / (NX * NY) as f64);
    let mut out = vec![C::ZERO; NX * NY];
    let mut temp: Vec<C> = Vec::new();
    c.bench_function(name, |b| {
        b.iter(|| {
            out.fill(C::ZERO);
            st.scatter(black_box(&src), NX, floor, &mut out, &mut temp);
            black_box(out[0])
        });
    });
}

fn benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("stencil");
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_millis(500));

    let table = ring_table();
    let dense = KernelStencil::dense(R, R, table.clone());
    let mirrored = KernelStencil::classify(R, R, table);
    assert_eq!(mirrored.kind_name(), "mirrored");
    let (row, col) = gaussian_factors();
    let separable = KernelStencil::separable(R, R, row, col);

    bench_form::<f64>(&mut g, "scatter_dense_f64_30x30_r9", &dense);
    bench_form::<f64>(&mut g, "scatter_mirrored_f64_30x30_r9", &mirrored);
    bench_form::<f64>(&mut g, "scatter_separable_f64_30x30_r9", &separable);
    bench_form::<f32>(
        &mut g,
        "scatter_dense_f32_30x30_r9",
        &dense.converted::<f32>(),
    );
    bench_form::<f32>(
        &mut g,
        "scatter_mirrored_f32_30x30_r9",
        &mirrored.converted::<f32>(),
    );
    bench_form::<f32>(
        &mut g,
        "scatter_separable_f32_30x30_r9",
        &separable.converted::<f32>(),
    );

    g.finish();
}

criterion_group!(stencil_benches, benches);
criterion_main!(stencil_benches);
