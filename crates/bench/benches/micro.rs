//! Microbenchmarks for the computational kernels under the localization
//! stack: RNG sampling, KDE evaluation, dense solves, graph primitives,
//! resampling, and single-iteration BP updates for both backends.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;
use wsnloc_bayes::{
    BpEngine, BpOptions, GaussianRange, GridBp, ParticleBp, SpatialMrf, UniformBoxUnary,
};
use wsnloc_bench::harness::Criterion;
use wsnloc_bench::{criterion_group, criterion_main};
use wsnloc_geom::kde::Kde;
use wsnloc_geom::matrix::Matrix;
use wsnloc_geom::rng::{systematic_resample, Xoshiro256pp};
use wsnloc_geom::{Aabb, Vec2};
use wsnloc_net::topology::Topology;
use wsnloc_obs::{NullObserver, TraceObserver};

/// Shared 25-node fixture for the particle-BP iteration benches so the
/// plain / null-observer / trace-observer variants time identical work.
fn particle_bench_fixture() -> (SpatialMrf, ParticleBp, BpOptions) {
    let domain = Aabb::from_size(300.0, 300.0);
    let mut mrf = SpatialMrf::new(25, domain, Arc::new(UniformBoxUnary(domain)));
    let mut rng = Xoshiro256pp::seed_from(9);
    let pts: Vec<Vec2> = (0..25)
        .map(|_| rng.point_in(domain.min, domain.max))
        .collect();
    for (i, &p) in pts.iter().enumerate().take(3) {
        mrf.fix(i, p);
    }
    for i in 0..25 {
        for j in (i + 1)..25 {
            if pts[i].dist(pts[j]) < 120.0 {
                mrf.add_edge(
                    i,
                    j,
                    Arc::new(GaussianRange {
                        observed: pts[i].dist(pts[j]),
                        sigma: 5.0,
                    }),
                );
            }
        }
    }
    let engine = ParticleBp::with_particles(100);
    let opts = BpOptions::builder()
        .max_iterations(1)
        .tolerance(0.0)
        .try_build()
        .expect("valid options");
    (mrf, engine, opts)
}

fn benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro");
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_millis(500));

    g.bench_function("rng_gaussian_1k", |b| {
        let mut rng = Xoshiro256pp::seed_from(1);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1000 {
                acc += rng.gaussian();
            }
            black_box(acc)
        });
    });

    g.bench_function("rng_weighted_index_100", |b| {
        let mut rng = Xoshiro256pp::seed_from(2);
        let weights: Vec<f64> = (0..100).map(|i| (i as f64).sin().abs() + 0.01).collect();
        b.iter(|| black_box(rng.weighted_index(&weights)));
    });

    g.bench_function("systematic_resample_300", |b| {
        let mut rng = Xoshiro256pp::seed_from(3);
        let weights: Vec<f64> = (0..300).map(|i| ((i * 7) % 13) as f64 + 0.1).collect();
        b.iter(|| black_box(systematic_resample(&mut rng, &weights, 300)));
    });

    g.bench_function("kde_density_300pts", |b| {
        let mut rng = Xoshiro256pp::seed_from(4);
        let pts: Vec<Vec2> = (0..300)
            .map(|_| rng.point_in(Vec2::ZERO, Vec2::splat(100.0)))
            .collect();
        let kde = Kde::from_points(pts, 1.0);
        b.iter(|| black_box(kde.density(Vec2::new(50.0, 50.0))));
    });

    g.bench_function("cholesky_solve_64", |b| {
        // SPD matrix: diagonally dominant.
        let n = 64;
        let mut a = Matrix::identity(n).scaled(10.0);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    a[(i, j)] = 1.0 / (1.0 + (i as f64 - j as f64).abs());
                }
            }
        }
        let rhs = vec![1.0; n];
        b.iter(|| black_box(a.solve_spd(&rhs)));
    });

    g.bench_function("jacobi_eigen_32", |b| {
        let n = 32;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = 1.0 / (1.0 + (i + j) as f64);
            }
        }
        b.iter(|| black_box(a.symmetric_eigen()));
    });

    g.bench_function("bfs_hops_1k_nodes", |b| {
        // Ring + chords graph with 1000 nodes.
        let n = 1000;
        let mut edges = Vec::new();
        for i in 0..n {
            edges.push((i, (i + 1) % n));
            edges.push((i, (i + 37) % n));
        }
        let t = Topology::from_edges(n, &edges);
        b.iter(|| black_box(t.hops_from(0)));
    });

    // Single synchronous BP iteration, particle backend, 25-node clique-ish
    // MRF (the inner loop of every experiment).
    g.bench_function("particle_bp_iteration_25nodes", |b| {
        let (mrf, engine, opts) = particle_bench_fixture();
        b.iter(|| black_box(engine.run(&mrf, &opts)));
    });

    // Observer-overhead pair: the same particle BP iteration through the
    // explicit observer entry point, first with the default `NullObserver`
    // (must be indistinguishable from `run`) and then with a recording
    // `TraceObserver` (the price of full telemetry).
    g.bench_function("particle_bp_iteration_null_observer", |b| {
        let (mrf, engine, opts) = particle_bench_fixture();
        b.iter(|| black_box(engine.run_with(&mrf, &opts, &NullObserver)));
    });

    g.bench_function("particle_bp_iteration_trace_observer", |b| {
        let (mrf, engine, opts) = particle_bench_fixture();
        b.iter(|| {
            let tracer = TraceObserver::new();
            black_box(engine.run_with(&mrf, &opts, &tracer));
            black_box(tracer.take_runs())
        });
    });

    g.bench_function("gaussian_bp_iteration_25nodes", |b| {
        use wsnloc_bayes::GaussianBp;
        let domain = Aabb::from_size(300.0, 300.0);
        let mut mrf = SpatialMrf::new(25, domain, Arc::new(UniformBoxUnary(domain)));
        let mut rng = Xoshiro256pp::seed_from(10);
        let pts: Vec<Vec2> = (0..25)
            .map(|_| rng.point_in(domain.min, domain.max))
            .collect();
        for (i, &p) in pts.iter().enumerate().take(3) {
            mrf.fix(i, p);
        }
        for i in 0..25 {
            for j in (i + 1)..25 {
                if pts[i].dist(pts[j]) < 120.0 {
                    mrf.add_edge(
                        i,
                        j,
                        Arc::new(GaussianRange {
                            observed: pts[i].dist(pts[j]),
                            sigma: 5.0,
                        }),
                    );
                }
            }
        }
        let engine = GaussianBp::default();
        let opts = BpOptions::builder()
            .max_iterations(1)
            .tolerance(0.0)
            .try_build()
            .expect("valid options");
        b.iter(|| black_box(engine.run(&mrf, &opts)));
    });

    g.bench_function("grid_bp_iteration_9nodes_30x30", |b| {
        let domain = Aabb::from_size(300.0, 300.0);
        let mut mrf = SpatialMrf::new(9, domain, Arc::new(UniformBoxUnary(domain)));
        let pts: Vec<Vec2> = (0..9)
            .map(|i| Vec2::new(50.0 + 100.0 * (i % 3) as f64, 50.0 + 100.0 * (i / 3) as f64))
            .collect();
        mrf.fix(0, pts[0]);
        mrf.fix(8, pts[8]);
        for i in 0..9 {
            for j in (i + 1)..9 {
                if pts[i].dist(pts[j]) < 150.0 {
                    mrf.add_edge(
                        i,
                        j,
                        Arc::new(GaussianRange {
                            observed: pts[i].dist(pts[j]),
                            sigma: 5.0,
                        }),
                    );
                }
            }
        }
        let engine = GridBp::with_resolution(30);
        let opts = BpOptions::builder()
            .max_iterations(1)
            .tolerance(0.0)
            .try_build()
            .expect("valid options");
        b.iter(|| black_box(engine.run(&mrf, &opts)));
    });

    g.finish();
}

criterion_group!(micro_benches, benches);
criterion_main!(micro_benches);
