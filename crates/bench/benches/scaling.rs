//! Scaling benchmarks: BNL-PK wall time vs network size at constant
//! density, and vs rayon pool size (the HPC-parallel angle — on a
//! multi-core host the per-node belief updates of the synchronous schedule
//! parallelize embarrassingly; on a single-core host the pools tie).

use std::hint::black_box;
use std::time::Duration;
use wsnloc::Localizer as _;
use wsnloc_bench::harness::{BenchmarkId, Criterion};
use wsnloc_bench::{bench_bnl, bench_scenario};
use wsnloc_bench::{criterion_group, criterion_main};

fn size_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling/size");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    g.warm_up_time(Duration::from_secs(1));
    for &nodes in &[50usize, 100, 200] {
        let scenario = bench_scenario(nodes, 0x5C);
        let (net, _) = scenario.build_trial(0);
        let algo = bench_bnl(80, 4);
        g.bench_with_input(BenchmarkId::from_parameter(nodes), &net, |b, net| {
            b.iter(|| black_box(algo.localize(net, 0)));
        });
    }
    g.finish();
}

fn thread_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling/threads");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    g.warm_up_time(Duration::from_secs(1));
    let scenario = bench_scenario(150, 0x77);
    let (net, _) = scenario.build_trial(0);
    let algo = bench_bnl(80, 4);
    for &threads in &[1usize, 2, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        g.bench_with_input(BenchmarkId::from_parameter(threads), &net, |b, net| {
            b.iter(|| pool.install(|| black_box(algo.localize(net, 0))));
        });
    }
    g.finish();
}

criterion_group!(scaling_benches, size_scaling, thread_scaling);
criterion_main!(scaling_benches);
