//! A miniature wall-clock benchmarking harness with a criterion-shaped API.
//!
//! The workspace builds without registry access, so `criterion` is
//! unavailable; this module implements the slice of its API the bench
//! suites use (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `iter`, `iter_batched`, the two macros) over `std::time::Instant`.
//! Numbers are medians over `sample_size` samples, each sample timing a
//! batch sized to fill `measurement_time / sample_size`. There is no
//! statistical outlier analysis — treat results as indicative, and switch
//! the dependency back to real criterion when the registry returns.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement marker types, mirroring `criterion::measurement`.
pub mod measurement {
    /// Wall-clock measurement (the only one the harness supports).
    #[derive(Debug)]
    pub struct WallTime;
}

/// Top-level harness handle, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Harness configured from `cargo bench` CLI arguments: the first
    /// non-flag argument becomes a substring filter on benchmark names.
    pub fn from_args() -> Criterion {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        Criterion { filter }
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            group: name.to_string(),
            filter: self.filter.clone(),
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
            _marker: std::marker::PhantomData,
        }
    }
}

/// A group of benchmarks sharing timing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a, M> {
    group: String,
    filter: Option<String>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _marker: std::marker::PhantomData<&'a M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Time spent running the routine before timing starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{name}", self.group);
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(&full);
        self
    }

    /// Runs one benchmark parameterized by an input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(&id.0, |b| f(b, input))
    }

    /// Ends the group (kept for criterion API compatibility).
    pub fn finish(&mut self) {}
}

/// A benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identifier rendered from a bench parameter (e.g. a size).
    pub fn from_parameter<D: Display>(param: D) -> BenchmarkId {
        BenchmarkId(param.to_string())
    }

    /// Identifier from a function name and a parameter.
    pub fn new<D: Display>(name: &str, param: D) -> BenchmarkId {
        BenchmarkId(format!("{name}/{param}"))
    }
}

/// Controls how much setup output `iter_batched` amortizes per batch.
/// The harness always uses one setup per routine call, so the variants
/// only document intent.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small input: criterion would batch many per setup.
    SmallInput,
    /// Large input: one setup per call (what the harness does anyway).
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Timing driver handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, called back-to-back in calibrated batches.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up, and a cost estimate from its last invocation.
        let warm_start = Instant::now();
        let mut est;
        loop {
            let t = Instant::now();
            std::hint::black_box(routine());
            est = t.elapsed().max(Duration::from_nanos(1));
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let per_sample = self.measurement_time / self.sample_size as u32;
        let iters = (per_sample.as_nanos() / est.as_nanos()).clamp(1, 1_000_000) as usize;
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Times `routine` on fresh values from `setup`; setup time excluded.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let warm_start = Instant::now();
        let mut est;
        loop {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            est = t.elapsed().max(Duration::from_nanos(1));
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let per_sample = self.measurement_time / self.sample_size as u32;
        let iters = (per_sample.as_nanos() / est.as_nanos()).clamp(1, 100_000) as usize;
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    fn report(&self, name: &str) {
        if self.samples_ns.is_empty() {
            println!("{name:<44} (no samples)");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        println!(
            "{name:<44} median {} (min {}, max {}, {} samples)",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(max),
            sorted.len()
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a named group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::harness::Criterion::from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_records_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(1));
        let mut ran = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                ran
            });
        });
        assert!(ran > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("only-this".to_string()),
        };
        let mut g = c.benchmark_group("t");
        let mut ran = false;
        g.bench_function("other", |b| {
            b.iter(|| ran = true);
        });
        assert!(!ran);
    }

    #[test]
    fn iter_batched_consumes_fresh_inputs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1));
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8, 2, 3],
                |v| v.into_iter().map(u64::from).sum::<u64>(),
                BatchSize::LargeInput,
            );
        });
    }
}
