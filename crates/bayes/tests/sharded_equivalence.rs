//! Cross-crate contract tests for the sharded execution layer: the
//! [`ShardedEngine`] must degenerate to the flat engine bit-for-bit on
//! single-shard layouts for *every* backend, track the flat fixed point
//! on multi-shard layouts under the synchronous schedule, and stay
//! finite when the boundary exchange runs over a degraded transport.

use std::sync::Arc;
use wsnloc_bayes::{
    Belief, BpEngine, BpOptions, GaussianBp, GaussianRange, GridBp, ParticleBp, Schedule,
    ShardedEngine, SpatialMrf, Transport, UniformBoxUnary,
};
use wsnloc_geom::rng::Xoshiro256pp;
use wsnloc_geom::{Aabb, ShardLayout, Vec2};
use wsnloc_net::faults::FaultPlan;

/// A jittered lattice with a sparse anchor sub-lattice and
/// radius-limited range edges — the same shape the unit suite uses, but
/// rebuilt here so this file only exercises the public API.
fn deployment(side: usize, spacing: f64, seed: u64) -> (SpatialMrf, Vec<Vec2>) {
    let extent = spacing * side as f64;
    let domain = Aabb::from_size(extent, extent);
    let mut rng = Xoshiro256pp::seed_from(seed);
    let positions: Vec<Vec2> = (0..side * side)
        .map(|i| {
            let x = (i % side) as f64 * spacing + spacing / 2.0;
            let y = (i / side) as f64 * spacing + spacing / 2.0;
            Vec2::new(
                x + rng.range(-0.2, 0.2) * spacing,
                y + rng.range(-0.2, 0.2) * spacing,
            )
        })
        .collect();
    let mut mrf = SpatialMrf::new(positions.len(), domain, Arc::new(UniformBoxUnary(domain)));
    for (i, &p) in positions.iter().enumerate() {
        if (i % side).is_multiple_of(3) && (i / side).is_multiple_of(3) {
            mrf.fix(i, p);
        }
    }
    let radius = spacing * 1.6;
    for u in 0..positions.len() {
        for v in (u + 1)..positions.len() {
            let d = positions[u].dist(positions[v]);
            if d <= radius {
                mrf.add_edge(
                    u,
                    v,
                    Arc::new(GaussianRange {
                        observed: d,
                        sigma: 0.5,
                    }),
                );
            }
        }
    }
    (mrf, positions)
}

fn layout_for(positions: &[Vec2], domain: Aabb, tiles: usize, radius: f64) -> Arc<ShardLayout> {
    Arc::new(ShardLayout::build(domain, tiles, tiles, positions, radius))
}

/// Sharded over a single-tile layout must be indistinguishable from the
/// flat engine — same RNG streams, same iteration trajectory, beliefs
/// bit-identical — for all three backends.
fn assert_single_shard_identity<E>(make: impl Fn() -> E, label: &str)
where
    E: BpEngine + Sync,
    E::Belief: wsnloc_bayes::TemperBelief,
{
    let (mrf, positions) = deployment(5, 10.0, 0x51DE);
    let layout = layout_for(&positions, mrf.domain(), 1, 16.0);
    let opts = BpOptions::builder()
        .max_iterations(5)
        .tolerance(0.0)
        .try_build()
        .expect("valid options");
    let sharded = ShardedEngine::new(make(), layout, 2).expect("valid config");
    let (fb, fo) = make().run(&mrf, &opts);
    let (sb, so) = sharded.run(&mrf, &opts);
    assert_eq!(fo.iterations, so.iterations, "{label}: iteration count");
    assert_eq!(fo.messages, so.messages, "{label}: message count");
    for (u, (f, s)) in fb.iter().zip(&sb).enumerate() {
        let (fm, sm) = (f.mean(), s.mean());
        assert_eq!(
            (fm.x.to_bits(), fm.y.to_bits()),
            (sm.x.to_bits(), sm.y.to_bits()),
            "{label}: node {u} mean must be bit-identical"
        );
    }
}

#[test]
fn single_shard_grid_is_bit_identical_to_flat() {
    assert_single_shard_identity(|| GridBp::with_resolution(20), "grid");
}

#[test]
fn single_shard_particle_is_bit_identical_to_flat() {
    assert_single_shard_identity(|| ParticleBp::with_particles(60), "particle");
}

#[test]
fn single_shard_gaussian_is_bit_identical_to_flat() {
    assert_single_shard_identity(GaussianBp::default, "gaussian");
}

/// Synchronous schedule + one interior iteration per outer round +
/// perfect transport: every member update reads exactly the state the
/// flat iteration reads, so the sharded grid run lands on the flat
/// answer to floating-point noise.
#[test]
fn multi_shard_grid_tracks_flat_under_synchronous_schedule() {
    let (mrf, positions) = deployment(7, 10.0, 0x7E57);
    let layout = layout_for(&positions, mrf.domain(), 2, 16.0);
    assert!(layout.occupied_shards() > 1, "layout must actually shard");
    let opts = BpOptions::builder()
        .max_iterations(4)
        .tolerance(0.0)
        .schedule(Schedule::Synchronous)
        .try_build()
        .expect("valid options");
    let flat = GridBp::with_resolution(18);
    let sharded = ShardedEngine::new(GridBp::with_resolution(18), layout, 1).expect("valid config");
    let (fb, _) = flat.run(&mrf, &opts);
    let (sb, _) = sharded.run(&mrf, &opts);
    for (u, (f, s)) in fb.iter().zip(&sb).enumerate() {
        let d = f.mean().dist(s.mean());
        assert!(d < 1e-9, "node {u}: sharded mean drifted {d} m from flat");
    }
}

/// Boundary messages ride the transport seam, so a lossy fault plan
/// degrades cross-shard freshness; beliefs must stay finite and the run
/// must still burn its full iteration budget.
#[test]
fn faulted_boundary_exchange_keeps_beliefs_finite() {
    let (mrf, positions) = deployment(6, 10.0, 0xFA57);
    let layout = layout_for(&positions, mrf.domain(), 2, 16.0);
    assert!(layout.occupied_shards() > 1);
    let opts = BpOptions::builder()
        .max_iterations(6)
        .tolerance(0.0)
        .try_build()
        .expect("valid options");
    let sharded =
        ShardedEngine::new(GaussianBp::default(), Arc::clone(&layout), 1).expect("valid config");
    let transport = Transport::faulted(Arc::new(FaultPlan::iid_loss(0xFA57, 0.4)));
    let out = sharded.run_transported(
        &mrf,
        &opts,
        &transport,
        &wsnloc_obs::NullObserver,
        |_, _| {},
    );
    assert_eq!(out.bp.iterations, 6);
    for (u, b) in out.beliefs.iter().enumerate() {
        let m = b.mean();
        assert!(
            m.x.is_finite() && m.y.is_finite(),
            "node {u}: belief mean went non-finite under 40% boundary loss"
        );
    }
}

/// Larger interior batches trade boundary freshness for fewer
/// synchronization points, but the total interior iteration budget must
/// still equal the flat cap exactly.
#[test]
fn interior_batching_preserves_the_iteration_budget() {
    let (mrf, positions) = deployment(6, 10.0, 0xB47C);
    let layout = layout_for(&positions, mrf.domain(), 2, 16.0);
    for interior in [1usize, 2, 3, 5] {
        let sharded =
            ShardedEngine::new(GridBp::with_resolution(16), Arc::clone(&layout), interior)
                .expect("valid config");
        let opts = BpOptions::builder()
            .max_iterations(5)
            .tolerance(0.0)
            .try_build()
            .expect("valid options");
        let (_, outcome) = sharded.run(&mrf, &opts);
        assert_eq!(
            outcome.iterations, 5,
            "interior={interior}: total interior iterations must match the flat cap"
        );
    }
}
