//! Property-based tests for the Bayesian-network substrate.

use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;
use wsnloc_bayes::discrete::{BayesNet, Cpt, Evidence, Variable};
use wsnloc_bayes::discrete_ext::{d_separated, markov_blanket};
use wsnloc_bayes::{
    BpOptions, GaussianRange, GaussianUnary, GridBelief, ParticleBelief, SpatialMrf,
    UniformBoxUnary,
};
use wsnloc_geom::rng::Xoshiro256pp;
use wsnloc_geom::{Aabb, Vec2};

/// Random two-layer BN: `roots` root variables, `leaves` leaf variables,
/// each leaf with 1–2 random root parents and random (normalized) CPTs.
fn random_bn(seed: u64, roots: usize, leaves: usize) -> BayesNet {
    let mut rng = Xoshiro256pp::seed_from(seed);
    let n = roots + leaves;
    let mut variables = Vec::with_capacity(n);
    let mut cpts = Vec::with_capacity(n);
    for i in 0..n {
        variables.push(Variable {
            name: format!("v{i}"),
            cardinality: 2,
        });
    }
    for _ in 0..roots {
        let p = 0.2 + 0.6 * rng.f64();
        cpts.push(Cpt {
            parents: vec![],
            table: vec![1.0 - p, p],
        });
    }
    for _ in 0..leaves {
        let parent_count = 1 + rng.index(2.min(roots));
        let parents = rng.sample_indices(roots, parent_count);
        let rows = 1usize << parents.len();
        let mut table = Vec::with_capacity(rows * 2);
        for _ in 0..rows {
            let p = 0.05 + 0.9 * rng.f64();
            table.push(1.0 - p);
            table.push(p);
        }
        cpts.push(Cpt { parents, table });
    }
    BayesNet::new(variables, cpts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ve_matches_enumeration_on_random_networks(seed in any::<u64>(), query in 0usize..6) {
        let net = random_bn(seed, 3, 3);
        let query = query % net.len();
        for evidence in [Evidence::new(), [( (query + 1) % net.len(), 1usize)].into()] {
            if evidence.contains_key(&query) { continue; }
            let e = net.query_enumeration(query, &evidence);
            let v = net.query_variable_elimination(query, &evidence);
            for (a, b) in e.iter().zip(&v) {
                prop_assert!((a - b).abs() < 1e-9, "{e:?} vs {v:?}");
            }
        }
    }

    #[test]
    fn posteriors_are_normalized(seed in any::<u64>()) {
        let net = random_bn(seed, 3, 3);
        let post = net.query_enumeration(0, &[(4usize, 1usize)].into());
        prop_assert!((post.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for p in post {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
        }
    }

    #[test]
    fn forward_samples_have_positive_probability(seed in any::<u64>()) {
        let net = random_bn(seed, 3, 3);
        let mut rng = Xoshiro256pp::seed_from(seed ^ 0xABCD);
        for _ in 0..20 {
            let s = net.sample(&mut rng);
            prop_assert!(net.joint_prob(&s) > 0.0);
        }
    }

    #[test]
    fn d_separation_is_symmetric(seed in any::<u64>(), x in 0usize..6, y in 0usize..6) {
        let net = random_bn(seed, 3, 3);
        let (x, y) = (x % net.len(), y % net.len());
        if x == y { return Ok(()); }
        for z in [HashSet::new(), HashSet::from([(x + 1) % net.len()])] {
            let z: HashSet<usize> = z.into_iter().filter(|&v| v != x && v != y).collect();
            prop_assert_eq!(
                d_separated(&net, x, y, &z),
                d_separated(&net, y, x, &z)
            );
        }
    }

    #[test]
    fn markov_blanket_never_contains_self(seed in any::<u64>(), v in 0usize..6) {
        let net = random_bn(seed, 3, 3);
        let v = v % net.len();
        prop_assert!(!markov_blanket(&net, v).contains(&v));
    }

    #[test]
    fn grid_belief_mass_is_normalized(nx in 2usize..20, ny in 2usize..20, mx in 0.0..100.0f64, my in 0.0..100.0f64, sigma in 1.0..50.0f64) {
        let domain = Aabb::from_size(100.0, 100.0);
        let b = GridBelief::from_unary(
            &GaussianUnary { mean: Vec2::new(mx, my), sigma },
            domain, nx, ny,
        );
        prop_assert!((b.mass().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(b.mass().iter().all(|&m| m >= 0.0));
        // Mean inside the domain.
        prop_assert!(domain.contains(b.mean()));
    }

    #[test]
    fn grid_cell_roundtrip(nx in 1usize..30, ny in 1usize..30, idx in any::<u32>()) {
        let b = GridBelief::uniform(Aabb::from_size(57.0, 31.0), nx, ny);
        let i = idx as usize % (nx * ny);
        prop_assert_eq!(b.cell_of(b.cell_center(i)), i);
    }

    #[test]
    fn particle_belief_resample_preserves_support(seed in any::<u64>(), n in 1usize..200) {
        let mut rng = Xoshiro256pp::seed_from(seed);
        let pts: Vec<Vec2> = (0..n).map(|_| rng.point_in(Vec2::ZERO, Vec2::splat(10.0))).collect();
        let weights: Vec<f64> = (0..n).map(|_| rng.f64() + 1e-9).collect();
        let b = ParticleBelief::new(pts.clone(), weights);
        let r = b.resampled(n, &mut rng);
        // Every resampled particle is one of the originals.
        for p in r.particles() {
            prop_assert!(pts.iter().any(|q| q == p));
        }
        prop_assert!((r.weights().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn particle_ess_bounded(seed in any::<u64>(), n in 2usize..100) {
        let mut rng = Xoshiro256pp::seed_from(seed);
        let pts = vec![Vec2::ZERO; n];
        let weights: Vec<f64> = (0..n).map(|_| rng.f64() + 1e-12).collect();
        let b = ParticleBelief::new(pts, weights);
        let ess = b.effective_sample_size();
        prop_assert!(ess >= 1.0 - 1e-9 && ess <= n as f64 + 1e-9, "ess {ess}");
    }

    #[test]
    fn bp_single_anchor_ring_distance_recovered(seed in any::<u64>(), d in 10.0..40.0f64) {
        // One anchor + ring measurement: the belief should concentrate at
        // the right *distance* from the anchor, whatever the bearing.
        let domain = Aabb::from_size(100.0, 100.0);
        let mut mrf = SpatialMrf::new(2, domain, Arc::new(UniformBoxUnary(domain)));
        let anchor = Vec2::new(50.0, 50.0);
        mrf.fix(0, anchor);
        mrf.add_edge(0, 1, Arc::new(GaussianRange { observed: d, sigma: 1.5 }));
        let engine = wsnloc_bayes::ParticleBp::with_particles(200);
        let (beliefs, _) = engine.run(&mrf, &BpOptions {
            max_iterations: 8,
            tolerance: 0.0,
            seed,
            ..BpOptions::default()
        });
        // Weighted mean distance of particles to the anchor ≈ d.
        let mean_dist: f64 = beliefs[1]
            .particles()
            .iter()
            .zip(beliefs[1].weights())
            .map(|(p, w)| w * p.dist(anchor))
            .sum();
        prop_assert!((mean_dist - d).abs() < 6.0, "mean ring distance {mean_dist} vs {d}");
    }
}
