//! Property-based tests for the Bayesian-network substrate, on the
//! in-tree `wsnloc_geom::check` harness (the workspace builds offline,
//! without `proptest`).

use std::collections::BTreeSet;
use std::sync::Arc;
use wsnloc_bayes::discrete::{BayesNet, Cpt, Evidence, Variable};
use wsnloc_bayes::discrete_ext::{d_separated, markov_blanket};
use wsnloc_bayes::{
    BpEngine, BpOptions, GaussianRange, GaussianUnary, GridBelief, ParticleBelief, SpatialMrf,
    UniformBoxUnary,
};
use wsnloc_geom::check;
use wsnloc_geom::rng::Xoshiro256pp;
use wsnloc_geom::{Aabb, Vec2};

const CASES: u64 = 24;

/// Random two-layer BN: `roots` root variables, `leaves` leaf variables,
/// each leaf with 1–2 random root parents and random (normalized) CPTs.
fn random_bn(seed: u64, roots: usize, leaves: usize) -> BayesNet {
    let mut rng = Xoshiro256pp::seed_from(seed);
    let n = roots + leaves;
    let mut variables = Vec::with_capacity(n);
    let mut cpts = Vec::with_capacity(n);
    for i in 0..n {
        variables.push(Variable {
            name: format!("v{i}"),
            cardinality: 2,
        });
    }
    for _ in 0..roots {
        let p = 0.2 + 0.6 * rng.f64();
        cpts.push(Cpt {
            parents: vec![],
            table: vec![1.0 - p, p],
        });
    }
    for _ in 0..leaves {
        let parent_count = 1 + rng.index(2.min(roots));
        let parents = rng.sample_indices(roots, parent_count);
        let rows = 1usize << parents.len();
        let mut table = Vec::with_capacity(rows * 2);
        for _ in 0..rows {
            let p = 0.05 + 0.9 * rng.f64();
            table.push(1.0 - p);
            table.push(p);
        }
        cpts.push(Cpt { parents, table });
    }
    BayesNet::new(variables, cpts)
}

#[test]
fn ve_matches_enumeration_on_random_networks() {
    check::cases(CASES, |_, rng| {
        let net = random_bn(rng.next_u64(), 3, 3);
        let query = rng.index(net.len());
        for evidence in [Evidence::new(), [((query + 1) % net.len(), 1usize)].into()] {
            if evidence.contains_key(&query) {
                continue;
            }
            let e = net.query_enumeration(query, &evidence);
            let v = net.query_variable_elimination(query, &evidence);
            for (a, b) in e.iter().zip(&v) {
                assert!((a - b).abs() < 1e-9, "{e:?} vs {v:?}");
            }
        }
    });
}

#[test]
fn posteriors_are_normalized() {
    check::cases(CASES, |_, rng| {
        let net = random_bn(rng.next_u64(), 3, 3);
        let post = net.query_enumeration(0, &[(4usize, 1usize)].into());
        assert!((post.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for p in post {
            assert!((0.0..=1.0 + 1e-12).contains(&p));
        }
    });
}

#[test]
fn forward_samples_have_positive_probability() {
    check::cases(CASES, |_, rng| {
        let net = random_bn(rng.next_u64(), 3, 3);
        let mut sampler = Xoshiro256pp::seed_from(rng.next_u64() ^ 0xABCD);
        for _ in 0..20 {
            let s = net.sample(&mut sampler);
            assert!(net.joint_prob(&s) > 0.0);
        }
    });
}

#[test]
fn d_separation_is_symmetric() {
    check::cases(CASES, |_, rng| {
        let net = random_bn(rng.next_u64(), 3, 3);
        let x = rng.index(net.len());
        let y = rng.index(net.len());
        if x == y {
            return;
        }
        for z in [BTreeSet::new(), BTreeSet::from([(x + 1) % net.len()])] {
            let z: BTreeSet<usize> = z.into_iter().filter(|&v| v != x && v != y).collect();
            assert_eq!(d_separated(&net, x, y, &z), d_separated(&net, y, x, &z));
        }
    });
}

#[test]
fn markov_blanket_never_contains_self() {
    check::cases(CASES, |_, rng| {
        let net = random_bn(rng.next_u64(), 3, 3);
        let v = rng.index(net.len());
        assert!(!markov_blanket(&net, v).contains(&v));
    });
}

#[test]
fn grid_belief_mass_is_normalized() {
    check::cases(CASES, |_, rng| {
        let nx = 2 + rng.index(18);
        let ny = 2 + rng.index(18);
        let mean = Vec2::new(rng.range(0.0, 100.0), rng.range(0.0, 100.0));
        let sigma = rng.range(1.0, 50.0);
        let domain = Aabb::from_size(100.0, 100.0);
        let b = GridBelief::from_unary(&GaussianUnary { mean, sigma }, domain, nx, ny);
        assert!((b.mass().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(b.mass().iter().all(|&m| m >= 0.0));
        // Mean inside the domain.
        assert!(domain.contains(b.mean()));
    });
}

#[test]
fn grid_cell_roundtrip() {
    check::cases(CASES, |_, rng| {
        let nx = 1 + rng.index(29);
        let ny = 1 + rng.index(29);
        let b = GridBelief::uniform(Aabb::from_size(57.0, 31.0), nx, ny);
        let i = rng.index(nx * ny);
        assert_eq!(b.cell_of(b.cell_center(i)), i);
    });
}

#[test]
fn particle_belief_resample_preserves_support() {
    check::cases(CASES, |_, rng| {
        let n = 1 + rng.index(199);
        let pts: Vec<Vec2> = (0..n)
            .map(|_| rng.point_in(Vec2::ZERO, Vec2::splat(10.0)))
            .collect();
        let weights: Vec<f64> = (0..n).map(|_| rng.f64() + 1e-9).collect();
        let b = ParticleBelief::new(pts.clone(), weights);
        let r = b.resampled(n, rng);
        // Every resampled particle is one of the originals.
        for p in r.particles() {
            assert!(pts.iter().any(|q| q == p));
        }
        assert!((r.weights().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    });
}

#[test]
fn particle_ess_bounded() {
    check::cases(CASES, |_, rng| {
        let n = 2 + rng.index(98);
        let pts = vec![Vec2::ZERO; n];
        let weights: Vec<f64> = (0..n).map(|_| rng.f64() + 1e-12).collect();
        let b = ParticleBelief::new(pts, weights);
        let ess = b.effective_sample_size();
        assert!(ess >= 1.0 - 1e-9 && ess <= n as f64 + 1e-9, "ess {ess}");
    });
}

#[test]
fn bp_single_anchor_ring_distance_recovered() {
    check::cases(CASES, |_, rng| {
        // One anchor + ring measurement: the belief should concentrate at
        // the right *distance* from the anchor, whatever the bearing.
        let d = rng.range(10.0, 40.0);
        let domain = Aabb::from_size(100.0, 100.0);
        let mut mrf = SpatialMrf::new(2, domain, Arc::new(UniformBoxUnary(domain)));
        let anchor = Vec2::new(50.0, 50.0);
        mrf.fix(0, anchor);
        mrf.add_edge(
            0,
            1,
            Arc::new(GaussianRange {
                observed: d,
                sigma: 1.5,
            }),
        );
        let engine = wsnloc_bayes::ParticleBp::with_particles(200);
        let (beliefs, _) = engine.run(
            &mrf,
            &BpOptions::builder()
                .max_iterations(8)
                .tolerance(0.0)
                .seed(rng.next_u64())
                .try_build()
                .expect("valid options"),
        );
        // Weighted mean distance of particles to the anchor ≈ d.
        let mean_dist: f64 = beliefs[1]
            .particles()
            .iter()
            .zip(beliefs[1].weights())
            .map(|(p, w)| w * p.dist(anchor))
            .sum();
        assert!(
            (mean_dist - d).abs() < 6.0,
            "mean ring distance {mean_dist} vs {d}"
        );
    });
}
