//! Validator coverage: every backend's posterior must pass
//! [`DistributionAudit`], and corrupted inputs must be rejected with the
//! right [`ValidationError`] variant.

use std::sync::Arc;
use wsnloc_bayes::discrete::{BayesNet, Cpt, Variable};
use wsnloc_bayes::{
    BpEngine, BpOptions, DistributionAudit, GaussianBp, GaussianRange, GraphAudit, GridBp,
    ParticleBp, SpatialMrf, UniformBoxUnary, ValidationError,
};
use wsnloc_geom::check;
use wsnloc_geom::rng::Xoshiro256pp;
use wsnloc_geom::{Aabb, Vec2};

const CASES: u64 = 16;

/// A random anchored MRF: 2 fixed anchors plus free nodes with noisy
/// ring measurements to each anchor.
fn random_mrf(rng: &mut Xoshiro256pp) -> SpatialMrf {
    let domain = Aabb::from_size(100.0, 100.0);
    let n = 3 + rng.index(4);
    let mut mrf = SpatialMrf::new(n, domain, Arc::new(UniformBoxUnary(domain)));
    let anchors = [
        Vec2::new(rng.range(5.0, 45.0), rng.range(5.0, 95.0)),
        Vec2::new(rng.range(55.0, 95.0), rng.range(5.0, 95.0)),
    ];
    mrf.fix(0, anchors[0]);
    mrf.fix(1, anchors[1]);
    for u in 2..n {
        let truth = Vec2::new(rng.range(10.0, 90.0), rng.range(10.0, 90.0));
        for (a, &p) in anchors.iter().enumerate() {
            mrf.add_edge(
                a,
                u,
                Arc::new(GaussianRange {
                    observed: (truth.dist(p) + rng.gaussian()).max(0.5),
                    sigma: 2.0,
                }),
            );
        }
    }
    mrf
}

fn options(rng: &mut Xoshiro256pp) -> BpOptions {
    BpOptions::builder()
        .max_iterations(4)
        .tolerance(0.0)
        .seed(rng.next_u64())
        .try_build()
        .expect("valid options")
}

#[test]
fn grid_posteriors_pass_distribution_audit() {
    check::cases(CASES, |_, rng| {
        let mrf = random_mrf(rng);
        let (beliefs, _) = GridBp::with_resolution(20).run(&mrf, &options(rng));
        let audit = DistributionAudit::default();
        for (u, b) in beliefs.iter().enumerate() {
            audit
                .check_grid(&format!("grid belief[{u}]"), b)
                .expect("grid posterior must be a valid distribution");
        }
    });
}

#[test]
fn particle_posteriors_pass_distribution_audit() {
    check::cases(CASES, |_, rng| {
        let mrf = random_mrf(rng);
        let (beliefs, _) = ParticleBp::with_particles(80).run(&mrf, &options(rng));
        let audit = DistributionAudit::default();
        for (u, b) in beliefs.iter().enumerate() {
            audit
                .check_particles(&format!("particle belief[{u}]"), b)
                .expect("particle posterior must be a valid distribution");
        }
    });
}

#[test]
fn gaussian_posteriors_pass_distribution_audit() {
    check::cases(CASES, |_, rng| {
        let mrf = random_mrf(rng);
        let (beliefs, _) = GaussianBp::default().run(&mrf, &options(rng));
        let audit = DistributionAudit::default();
        for (u, b) in beliefs.iter().enumerate() {
            audit
                .check_gaussian(&format!("gaussian belief[{u}]"), b)
                .expect("gaussian posterior must have valid moments");
        }
    });
}

#[test]
fn discrete_posteriors_pass_distribution_audit() {
    check::cases(CASES, |_, rng| {
        let p = 0.1 + 0.8 * rng.f64();
        let q = 0.1 + 0.8 * rng.f64();
        let net = BayesNet::new(
            vec![
                Variable {
                    name: "cause".into(),
                    cardinality: 2,
                },
                Variable {
                    name: "effect".into(),
                    cardinality: 2,
                },
            ],
            vec![
                Cpt {
                    parents: vec![],
                    table: vec![1.0 - p, p],
                },
                Cpt {
                    parents: vec![0],
                    table: vec![1.0 - q, q, q, 1.0 - q],
                },
            ],
        );
        let audit = DistributionAudit::default();
        let no_evidence = wsnloc_bayes::discrete::Evidence::new();
        let observed: wsnloc_bayes::discrete::Evidence = [(1usize, 1usize)].into();
        for evidence in [&no_evidence, &observed] {
            for query in [0, 1] {
                if evidence.contains_key(&query) {
                    continue;
                }
                let post = net.query_enumeration(query, evidence);
                audit
                    .check_masses("enumeration posterior", &post)
                    .expect("posterior must be a valid distribution");
                let post = net.query_variable_elimination(query, evidence);
                audit
                    .check_masses("VE posterior", &post)
                    .expect("posterior must be a valid distribution");
            }
        }
    });
}

#[test]
fn nan_range_rejected() {
    let domain = Aabb::from_size(10.0, 10.0);
    let mut mrf = SpatialMrf::new(2, domain, Arc::new(UniformBoxUnary(domain)));
    mrf.fix(0, Vec2::new(1.0, 1.0));
    mrf.add_edge(
        0,
        1,
        Arc::new(GaussianRange {
            observed: f64::NAN,
            sigma: 1.0,
        }),
    );
    assert!(matches!(
        GraphAudit.check_mrf(&mrf),
        Err(ValidationError::NonFiniteRange { factor: 0, .. })
    ));
}

#[test]
fn negative_variance_rejected() {
    let domain = Aabb::from_size(10.0, 10.0);
    let mut mrf = SpatialMrf::new(2, domain, Arc::new(UniformBoxUnary(domain)));
    mrf.add_edge(
        0,
        1,
        Arc::new(GaussianRange {
            observed: 3.0,
            sigma: 0.0,
        }),
    );
    assert!(matches!(
        GraphAudit.check_mrf(&mrf),
        Err(ValidationError::NonPositiveSigma { factor: 0, .. })
    ));
}

#[test]
fn dangling_factor_rejected() {
    let result = BayesNet::try_new(
        vec![Variable {
            name: "only".into(),
            cardinality: 2,
        }],
        vec![Cpt {
            parents: vec![3],
            table: vec![0.5, 0.5, 0.5, 0.5],
        }],
    );
    assert!(matches!(
        result,
        Err(ValidationError::DanglingFactor {
            factor: 0,
            endpoint: 3,
            len: 1,
        })
    ));
}

#[test]
fn cyclic_network_rejected_with_typed_error() {
    let two_state = |name: &str| Variable {
        name: name.into(),
        cardinality: 2,
    };
    let result = BayesNet::try_new(
        vec![two_state("a"), two_state("b")],
        vec![
            Cpt {
                parents: vec![1],
                table: vec![0.5, 0.5, 0.5, 0.5],
            },
            Cpt {
                parents: vec![0],
                table: vec![0.5, 0.5, 0.5, 0.5],
            },
        ],
    );
    assert_eq!(result.unwrap_err(), ValidationError::CyclicNetwork);
}

#[test]
fn anchorless_graph_rejected_when_anchors_required() {
    let domain = Aabb::from_size(10.0, 10.0);
    let mrf = SpatialMrf::new(3, domain, Arc::new(UniformBoxUnary(domain)));
    assert_eq!(
        GraphAudit.check_anchored_mrf(&mrf),
        Err(ValidationError::NoAnchors)
    );
}

#[test]
fn nan_weight_rejected_by_distribution_audit() {
    let audit = DistributionAudit::default();
    let masses = [0.5, f64::NAN, 0.5];
    match audit.check_masses("weights", &masses) {
        Err(ValidationError::NonFinite { index, .. }) => assert_eq!(index, 1),
        other => unreachable!("expected NonFinite, got {other:?}"),
    }
}
