//! Equivalence of the grid backend's per-run message cache against the
//! reference (recompute-everything) path, on randomized MRFs.
//!
//! The hoisted prior beliefs and anchor messages are pure-function reuse
//! and therefore bit-identical to the reference computation. The kernel
//! stencil evaluates the same potential at offset distances computed as
//! `‖(Δx·dx, Δy·dy)‖` instead of as a cell-center difference, which can
//! differ in the last ulp — so cached beliefs are compared per-cell with
//! a 1e-12 tolerance. A potential that opts out of discretization
//! (`discretized_kernel → None`) exercises the cached run's pointwise
//! fallback, which must be *bit*-identical to the reference.

use std::sync::Arc;
use wsnloc_bayes::{
    BpEngine, BpOptions, GaussianRange, GaussianUnary, GridBelief, GridBp, PairPotential, Schedule,
    SpatialMrf, UniformBoxUnary,
};
use wsnloc_geom::check;
use wsnloc_geom::rng::Xoshiro256pp;
use wsnloc_geom::{Aabb, Vec2};

const CASES: u64 = 16;
const PER_CELL_TOLERANCE: f64 = 1e-12;

/// A Gaussian range potential that refuses stencil discretization,
/// forcing the cached engine through the pointwise kernel path.
#[derive(Debug)]
struct OptOutRange(GaussianRange);

impl PairPotential for OptOutRange {
    fn log_likelihood(&self, d: f64) -> f64 {
        self.0.log_likelihood(d)
    }

    fn sample_distance(&self, rng: &mut Xoshiro256pp) -> f64 {
        self.0.sample_distance(rng)
    }

    fn max_distance(&self) -> Option<f64> {
        self.0.max_distance()
    }

    fn discretized_kernel(&self, _dx: f64, _dy: f64, _rx: usize, _ry: usize) -> Option<Vec<f64>> {
        None
    }
}

/// A random connected-ish localization MRF: 4–7 nodes in a 100×100 m
/// field, 2 fixed anchors, noisy ranging edges between nodes within
/// 60 m plus a spanning chain so no node is isolated.
fn random_mrf(rng: &mut Xoshiro256pp, opt_out: bool) -> SpatialMrf {
    let domain = Aabb::from_size(100.0, 100.0);
    let n = 4 + rng.index(4);
    let mut mrf = SpatialMrf::new(n, domain, Arc::new(UniformBoxUnary(domain)));
    let pts: Vec<Vec2> = (0..n)
        .map(|_| rng.point_in(domain.min, domain.max))
        .collect();
    mrf.fix(0, pts[0]);
    mrf.fix(1, pts[1]);
    for (u, pt) in pts.iter().enumerate().skip(2) {
        if rng.f64() < 0.5 {
            mrf.set_unary(
                u,
                Arc::new(GaussianUnary {
                    mean: *pt + Vec2::new(rng.gaussian() * 5.0, rng.gaussian() * 5.0),
                    sigma: 8.0 + 10.0 * rng.f64(),
                }),
            );
        }
    }
    let add = |mrf: &mut SpatialMrf, u: usize, v: usize, rng: &mut Xoshiro256pp| {
        let base = GaussianRange {
            observed: (pts[u].dist(pts[v]) + rng.gaussian() * 2.0).max(1.0),
            sigma: 2.0 + 4.0 * rng.f64(),
        };
        let potential: Arc<dyn PairPotential> = if opt_out {
            Arc::new(OptOutRange(base))
        } else {
            Arc::new(base)
        };
        mrf.add_edge(u, v, potential);
    };
    // Spanning chain keeps every node reachable from the anchors.
    for u in 1..n {
        add(&mut mrf, u - 1, u, rng);
    }
    for u in 0..n {
        for v in (u + 2)..n {
            if pts[u].dist(pts[v]) < 60.0 && rng.f64() < 0.6 {
                add(&mut mrf, u, v, rng);
            }
        }
    }
    mrf
}

fn assert_beliefs_close(cached: &[GridBelief], reference: &[GridBelief], tolerance: f64) {
    assert_eq!(cached.len(), reference.len());
    for (u, (c, r)) in cached.iter().zip(reference).enumerate() {
        for (i, (a, b)) in c.mass().iter().zip(r.mass()).enumerate() {
            assert!(
                (a - b).abs() <= tolerance,
                "belief[{u}] cell {i}: cached {a} vs reference {b} (tol {tolerance})"
            );
        }
    }
}

fn options(schedule: Schedule, damping: f64) -> BpOptions {
    BpOptions::builder()
        .max_iterations(5)
        .tolerance(0.0)
        .schedule(schedule)
        .damping(damping)
        .try_build()
        .expect("valid options")
}

#[test]
fn cached_beliefs_match_reference_on_random_mrfs() {
    check::cases(CASES, |_, rng| {
        let mrf = random_mrf(rng, false);
        let engine = GridBp::with_resolution(18);
        for schedule in [Schedule::Synchronous, Schedule::Sweep] {
            for damping in [0.0, 0.3] {
                let opts = options(schedule, damping);
                let (cached, co) = engine.run(&mrf, &opts);
                let (reference, ro) = engine.without_message_cache().run(&mrf, &opts);
                assert_eq!(co.iterations, ro.iterations);
                assert_eq!(co.converged, ro.converged);
                assert_beliefs_close(&cached, &reference, PER_CELL_TOLERANCE);
            }
        }
    });
}

#[test]
fn opt_out_potentials_are_bit_identical_to_reference() {
    check::cases(CASES / 2, |_, rng| {
        let mrf = random_mrf(rng, true);
        let engine = GridBp::with_resolution(18);
        for schedule in [Schedule::Synchronous, Schedule::Sweep] {
            let opts = options(schedule, 0.2);
            let (cached, _) = engine.run(&mrf, &opts);
            let (reference, _) = engine.without_message_cache().run(&mrf, &opts);
            // Pointwise fallback + hoisted priors/anchors: pure-function
            // reuse, so equality is exact.
            assert_beliefs_close(&cached, &reference, 0.0);
        }
    });
}

#[test]
fn cached_run_is_deterministic() {
    check::cases(4, |_, rng| {
        let mrf = random_mrf(rng, false);
        let engine = GridBp::with_resolution(16);
        let opts = options(Schedule::Synchronous, 0.1);
        let (a, _) = engine.run(&mrf, &opts);
        let (b, _) = engine.run(&mrf, &opts);
        assert_beliefs_close(&a, &b, 0.0);
    });
}
