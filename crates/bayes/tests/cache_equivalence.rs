//! Equivalence of the grid backend's per-run message cache against the
//! reference (recompute-everything) path, on randomized MRFs.
//!
//! The hoisted prior beliefs and anchor messages are pure-function reuse
//! and therefore bit-identical to the reference computation. The kernel
//! stencil evaluates the same potential at offset distances computed as
//! `‖(Δx·dx, Δy·dy)‖` instead of as a cell-center difference, which can
//! differ in the last ulp — so cached beliefs are compared per-cell with
//! a 1e-12 tolerance. A potential that opts out of discretization
//! (`discretized_kernel → None`) exercises the cached run's pointwise
//! fallback, which must be *bit*-identical to the reference.

use std::sync::Arc;
use wsnloc_bayes::{
    BpEngine, BpOptions, GaussianProximity, GaussianRange, GaussianUnary, GridBelief, GridBp,
    GridPrecision, KernelStencil, PairPotential, Schedule, SpatialMrf, UniformBoxUnary,
};
use wsnloc_geom::check;
use wsnloc_geom::rng::Xoshiro256pp;
use wsnloc_geom::{Aabb, Vec2};

const CASES: u64 = 16;
const PER_CELL_TOLERANCE: f64 = 1e-12;
/// The f32 hot path accumulates single-precision rounding across five
/// product/normalize iterations; per-cell drift stays well under 1e-3
/// on these masses (each ≤ 1) while the default f64 path keeps the
/// 1e-12 contract above.
const PER_CELL_TOLERANCE_F32: f64 = 1e-3;

/// A Gaussian range potential that refuses stencil discretization,
/// forcing the cached engine through the pointwise kernel path.
#[derive(Debug)]
struct OptOutRange(GaussianRange);

impl PairPotential for OptOutRange {
    fn log_likelihood(&self, d: f64) -> f64 {
        self.0.log_likelihood(d)
    }

    fn sample_distance(&self, rng: &mut Xoshiro256pp) -> f64 {
        self.0.sample_distance(rng)
    }

    fn max_distance(&self) -> Option<f64> {
        self.0.max_distance()
    }

    fn discretized_kernel(&self, _dx: f64, _dy: f64, _rx: usize, _ry: usize) -> Option<Vec<f64>> {
        None
    }
}

/// A random connected-ish localization MRF: 4–7 nodes in a 100×100 m
/// field, 2 fixed anchors, noisy ranging edges between nodes within
/// 60 m plus a spanning chain so no node is isolated.
fn random_mrf(rng: &mut Xoshiro256pp, opt_out: bool) -> SpatialMrf {
    let domain = Aabb::from_size(100.0, 100.0);
    let n = 4 + rng.index(4);
    let mut mrf = SpatialMrf::new(n, domain, Arc::new(UniformBoxUnary(domain)));
    let pts: Vec<Vec2> = (0..n)
        .map(|_| rng.point_in(domain.min, domain.max))
        .collect();
    mrf.fix(0, pts[0]);
    mrf.fix(1, pts[1]);
    for (u, pt) in pts.iter().enumerate().skip(2) {
        if rng.f64() < 0.5 {
            mrf.set_unary(
                u,
                Arc::new(GaussianUnary {
                    mean: *pt + Vec2::new(rng.gaussian() * 5.0, rng.gaussian() * 5.0),
                    sigma: 8.0 + 10.0 * rng.f64(),
                }),
            );
        }
    }
    let add = |mrf: &mut SpatialMrf, u: usize, v: usize, rng: &mut Xoshiro256pp| {
        let base = GaussianRange {
            observed: (pts[u].dist(pts[v]) + rng.gaussian() * 2.0).max(1.0),
            sigma: 2.0 + 4.0 * rng.f64(),
        };
        let potential: Arc<dyn PairPotential> = if opt_out {
            Arc::new(OptOutRange(base))
        } else {
            Arc::new(base)
        };
        mrf.add_edge(u, v, potential);
    };
    // Spanning chain keeps every node reachable from the anchors.
    for u in 1..n {
        add(&mut mrf, u - 1, u, rng);
    }
    for u in 0..n {
        for v in (u + 2)..n {
            if pts[u].dist(pts[v]) < 60.0 && rng.f64() < 0.6 {
                add(&mut mrf, u, v, rng);
            }
        }
    }
    mrf
}

fn assert_beliefs_close(cached: &[GridBelief], reference: &[GridBelief], tolerance: f64) {
    assert_eq!(cached.len(), reference.len());
    for (u, (c, r)) in cached.iter().zip(reference).enumerate() {
        for (i, (a, b)) in c.mass().iter().zip(r.mass()).enumerate() {
            assert!(
                (a - b).abs() <= tolerance,
                "belief[{u}] cell {i}: cached {a} vs reference {b} (tol {tolerance})"
            );
        }
    }
}

fn options(schedule: Schedule, damping: f64) -> BpOptions {
    BpOptions::builder()
        .max_iterations(5)
        .tolerance(0.0)
        .schedule(schedule)
        .damping(damping)
        .try_build()
        .expect("valid options")
}

#[test]
fn cached_beliefs_match_reference_on_random_mrfs() {
    check::cases(CASES, |_, rng| {
        let mrf = random_mrf(rng, false);
        let engine = GridBp::with_resolution(18);
        for schedule in [Schedule::Synchronous, Schedule::Sweep] {
            for damping in [0.0, 0.3] {
                let opts = options(schedule, damping);
                let (cached, co) = engine.run(&mrf, &opts);
                let (reference, ro) = engine.without_message_cache().run(&mrf, &opts);
                assert_eq!(co.iterations, ro.iterations);
                assert_eq!(co.converged, ro.converged);
                assert_beliefs_close(&cached, &reference, PER_CELL_TOLERANCE);
            }
        }
    });
}

#[test]
fn opt_out_potentials_are_bit_identical_to_reference() {
    check::cases(CASES / 2, |_, rng| {
        let mrf = random_mrf(rng, true);
        let engine = GridBp::with_resolution(18);
        for schedule in [Schedule::Synchronous, Schedule::Sweep] {
            let opts = options(schedule, 0.2);
            let (cached, _) = engine.run(&mrf, &opts);
            let (reference, _) = engine.without_message_cache().run(&mrf, &opts);
            // Pointwise fallback + hoisted priors/anchors: pure-function
            // reuse, so equality is exact.
            assert_beliefs_close(&cached, &reference, 0.0);
        }
    });
}

/// The same random geometry as [`random_mrf`] but with proximity
/// potentials, whose kernels factorize exactly — the cached engine runs
/// them through the two-pass separable scatter.
fn random_proximity_mrf(rng: &mut Xoshiro256pp) -> SpatialMrf {
    let domain = Aabb::from_size(100.0, 100.0);
    let n = 4 + rng.index(4);
    let mut mrf = SpatialMrf::new(n, domain, Arc::new(UniformBoxUnary(domain)));
    let pts: Vec<Vec2> = (0..n)
        .map(|_| rng.point_in(domain.min, domain.max))
        .collect();
    mrf.fix(0, pts[0]);
    mrf.fix(1, pts[1]);
    for u in 1..n {
        let sigma = 6.0 + 10.0 * rng.f64();
        mrf.add_edge(u - 1, u, Arc::new(GaussianProximity { sigma }));
    }
    for u in 0..n {
        for v in (u + 2)..n {
            if pts[u].dist(pts[v]) < 60.0 && rng.f64() < 0.5 {
                let sigma = 6.0 + 10.0 * rng.f64();
                mrf.add_edge(u, v, Arc::new(GaussianProximity { sigma }));
            }
        }
    }
    mrf
}

/// Separable-vs-dense: proximity kernels classify separable (asserted),
/// and the cached two-pass scatter matches the reference pointwise path
/// within the f64 contract.
#[test]
fn separable_kernels_match_reference_on_random_mrfs() {
    check::cases(CASES / 2, |_, rng| {
        let sigma = 6.0 + 10.0 * rng.f64();
        let st = KernelStencil::build(
            &GaussianProximity { sigma },
            18,
            18,
            100.0 / 18.0,
            100.0 / 18.0,
        )
        .expect("proximity potential discretizes");
        assert_eq!(st.kind_name(), "separable");
        let mrf = random_proximity_mrf(rng);
        let engine = GridBp::with_resolution(18);
        for schedule in [Schedule::Synchronous, Schedule::Sweep] {
            let opts = options(schedule, 0.2);
            let (cached, co) = engine.run(&mrf, &opts);
            let (reference, ro) = engine.without_message_cache().run(&mrf, &opts);
            assert_eq!(co.iterations, ro.iterations);
            assert_beliefs_close(&cached, &reference, PER_CELL_TOLERANCE);
        }
    });
}

/// Mirrored-vs-full: the default ring kernels of [`random_mrf`] classify
/// mirrored (quadrant storage), and the main equivalence property above
/// already pins their cached runs to the reference within 1e-12 — this
/// test makes the classification explicit so a regression to the dense
/// path can't silently pass the tolerance check.
#[test]
fn range_kernels_classify_mirrored() {
    check::cases(CASES / 2, |_, rng| {
        let pot = GaussianRange {
            observed: 10.0 + 50.0 * rng.f64(),
            sigma: 2.0 + 4.0 * rng.f64(),
        };
        let st =
            KernelStencil::build(&pot, 18, 18, 100.0 / 18.0, 100.0 / 18.0).expect("discretizes");
        assert_eq!(st.kind_name(), "mirrored");
        let full = (2 * st.rx() as usize + 1) * (2 * st.ry() as usize + 1);
        assert!(st.stored_len() < full);
    });
}

/// A potential publishing a randomized *asymmetric* kernel table: no
/// radial symmetry, no rank-1 structure. Classification must fall back
/// to the dense scatter rather than mis-folding the table.
#[derive(Debug)]
struct AsymmetricKernel {
    seed: u64,
    radius: f64,
}

impl PairPotential for AsymmetricKernel {
    fn log_likelihood(&self, d: f64) -> f64 {
        -d / self.radius
    }

    fn sample_distance(&self, rng: &mut Xoshiro256pp) -> f64 {
        rng.range(0.0, self.radius)
    }

    fn max_distance(&self) -> Option<f64> {
        Some(self.radius)
    }

    fn discretized_kernel(&self, _dx: f64, _dy: f64, rx: usize, ry: usize) -> Option<Vec<f64>> {
        let mut rng = Xoshiro256pp::seed_from(self.seed);
        Some(
            (0..(2 * rx + 1) * (2 * ry + 1))
                .map(|_| rng.range(0.1, 1.0))
                .collect(),
        )
    }
}

/// Dense-fallback proof: randomized asymmetric kernels classify dense,
/// and the dense scatter reproduces the brute-force table scatter
/// exactly (same table values, same accumulation targets).
#[test]
fn asymmetric_kernels_fall_back_to_dense_scatter() {
    check::cases(8, |case, rng| {
        let (nx, ny) = (14, 11);
        let (dx, dy) = (100.0 / nx as f64, 100.0 / ny as f64);
        let pot = AsymmetricKernel {
            seed: 0xA5A5 + case,
            radius: 15.0 + 20.0 * rng.f64(),
        };
        let st = KernelStencil::build(&pot, nx, ny, dx, dy).expect("kernel table provided");
        assert_eq!(st.kind_name(), "dense");
        let (rx, ry) = (st.rx() as usize, st.ry() as usize);
        let table = pot
            .discretized_kernel(dx, dy, rx, ry)
            .expect("table exists");
        let src: Vec<f64> = (0..nx * ny).map(|_| rng.range(0.0, 1.0)).collect();
        let mut out = vec![0.0f64; nx * ny];
        let mut scratch = Vec::new();
        st.scatter(&src, nx, 0.0, &mut out, &mut scratch);
        // Brute-force reference straight off the published table.
        let mut want = vec![0.0f64; nx * ny];
        let w = 2 * rx + 1;
        for (s, &m) in src.iter().enumerate() {
            let (sx, sy) = ((s % nx) as isize, (s / nx) as isize);
            for oy in -(ry as isize)..=(ry as isize) {
                let y = sy + oy;
                if y < 0 || y >= ny as isize {
                    continue;
                }
                for ox in -(rx as isize)..=(rx as isize) {
                    let x = sx + ox;
                    if x < 0 || x >= nx as isize {
                        continue;
                    }
                    let k = table[(oy + ry as isize) as usize * w + (ox + rx as isize) as usize];
                    want[y as usize * nx + x as usize] += m * k;
                }
            }
        }
        for (t, (a, b)) in out.iter().zip(&want).enumerate() {
            assert!(
                (a - b).abs() <= 1e-12 * b.abs().max(1.0),
                "cell {t}: scatter {a} vs brute force {b}"
            );
        }
    });
}

/// The opt-in f32 hot path tracks the f64 reference within the
/// documented single-precision tolerance on the same randomized MRFs.
#[test]
fn f32_cached_beliefs_track_reference_within_documented_tolerance() {
    check::cases(CASES / 2, |_, rng| {
        let mrf = random_mrf(rng, false);
        let opts = options(Schedule::Synchronous, 0.1);
        let (reference, ro) = GridBp::with_resolution(18)
            .without_message_cache()
            .run(&mrf, &opts);
        let (f32_run, fo) = GridBp::with_resolution(18)
            .with_precision(GridPrecision::F32)
            .run(&mrf, &opts);
        assert_eq!(ro.iterations, fo.iterations);
        assert_beliefs_close(&f32_run, &reference, PER_CELL_TOLERANCE_F32);
    });
}

#[test]
fn cached_run_is_deterministic() {
    check::cases(4, |_, rng| {
        let mrf = random_mrf(rng, false);
        let engine = GridBp::with_resolution(16);
        let opts = options(Schedule::Synchronous, 0.1);
        let (a, _) = engine.run(&mrf, &opts);
        let (b, _) = engine.run(&mrf, &opts);
        assert_beliefs_close(&a, &b, 0.0);
    });
}
