//! The unified BP-engine abstraction.
//!
//! The three backends (grid, particle, Gaussian) historically exposed
//! three copy-pasted `run`/`run_with`/`run_observed`/`run_full` entry
//! points each. [`BpEngine`] collapses that surface: each backend
//! implements exactly one required method — [`BpEngine::run_warm`],
//! the superset entry point taking a [`Transport`] and a [`WarmStart`]
//! describing how beliefs are seeded (cold, epoch carry-over, or
//! mid-run state resume) — and inherits the rest. Callers that only
//! need beliefs keep the old
//! tuple-returning convenience methods; callers that inject faults or
//! need structured telemetry use [`BpEngine::run_transported`] and get
//! a [`RunOutcome`]; streaming/tracking callers thread last epoch's
//! posterior (motion-convolved) back in through `run_carried`.
//!
//! [`Belief`] is the minimal read surface the core localizer needs to
//! turn a backend's belief into a point estimate without knowing which
//! backend produced it.

use crate::mrf::{BpOptions, BpOutcome, SpatialMrf};
use crate::transport::Transport;
use wsnloc_geom::Vec2;
use wsnloc_obs::{InferenceObserver, NullObserver};

/// Backend-agnostic read access to a posterior position belief.
pub trait Belief {
    /// Whether [`Belief::map_estimate`] can return `Some` for this
    /// representation (only the grid backend has a mode extractor).
    const SUPPORTS_MAP: bool;

    /// MMSE point estimate: the posterior mean.
    fn mean(&self) -> Vec2;

    /// Scalar positional uncertainty (RMS spread, meters).
    fn spread(&self) -> f64;

    /// MAP point estimate, for representations that support one.
    fn map_estimate(&self) -> Option<Vec2>;
}

/// Everything one BP run produced.
#[derive(Debug, Clone)]
pub struct RunOutcome<B> {
    /// Final beliefs, indexed by MRF variable.
    pub beliefs: Vec<B>,
    /// Iteration/convergence/message counters.
    pub bp: BpOutcome,
}

/// How a run seeds its beliefs relative to the model's priors.
///
/// The two slices answer two different questions:
///
/// - `prior` — *what does each free node believe before this epoch's
///   measurements?* When supplied, it replaces the unary-derived base
///   in every update product (epoch carry-over: a posterior carried in
///   from a previous epoch must not be re-multiplied by the
///   pre-knowledge unary it already absorbed).
/// - `state` — *where does the message-passing state start?* When
///   supplied, it seeds the initial belief vector only; the update base
///   stays whatever `prior` (or, absent one, the unary) says. This is
///   the resume semantics sharded execution needs: an outer round
///   continues a run mid-flight without double-counting measurements.
///
/// [`WarmStart::carried`] sets both to the same slice — the historical
/// `run_carried` behavior, bit for bit. [`WarmStart::resume`] sets only
/// `state`. Both slices, when present, must hold one belief per MRF
/// variable; entries for fixed (anchor) variables are ignored.
#[derive(Debug)]
pub struct WarmStart<'a, B> {
    /// Epoch prior shadowing each free node's unary in updates.
    pub prior: Option<&'a [B]>,
    /// Initial belief state (message sources at iteration 0).
    pub state: Option<&'a [B]>,
}

impl<B> Clone for WarmStart<'_, B> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<B> Copy for WarmStart<'_, B> {}

impl<'a, B> WarmStart<'a, B> {
    /// A cold start: priors from the model, state from the priors.
    #[must_use]
    pub fn cold() -> Self {
        WarmStart {
            prior: None,
            state: None,
        }
    }

    /// Epoch carry-over: `beliefs` replace both the prior-derived
    /// initial state *and* the unary in every update (the historical
    /// warm-start semantics of `run_carried`).
    #[must_use]
    pub fn carried(beliefs: &'a [B]) -> Self {
        WarmStart {
            prior: Some(beliefs),
            state: Some(beliefs),
        }
    }

    /// Mid-run resume: `state` seeds the beliefs that messages are
    /// computed from, while updates keep multiplying against the
    /// model's own priors — iteration `k+1` of a flat run is exactly a
    /// one-iteration resume from its iteration-`k` beliefs.
    #[must_use]
    pub fn resume(state: &'a [B]) -> Self {
        WarmStart {
            prior: None,
            state: Some(state),
        }
    }

    /// True when neither slice is supplied (the historical cold path).
    #[must_use]
    pub fn is_cold(&self) -> bool {
        self.prior.is_none() && self.state.is_none()
    }
}

/// A loopy-BP inference engine over a [`SpatialMrf`].
///
/// One required method; the convenience quartet is provided. All
/// engines are deterministic in (`mrf`, `opts`, transport plan, warm
/// beliefs): the same inputs give bit-identical beliefs.
pub trait BpEngine {
    /// The belief representation this engine produces.
    type Belief: Belief + Clone + Send + Sync;

    /// Stable backend name, as reported in run telemetry ("grid",
    /// "particle", "gaussian").
    fn backend_name(&self) -> &'static str;

    /// The superset entry point: runs BP with every inter-node message
    /// routed through `transport`, seeding beliefs per `warm` (epoch
    /// prior and/or resumed state — see [`WarmStart`]), reporting
    /// structured telemetry into `obs` and invoking
    /// `on_iter(iteration, beliefs)` after every iteration.
    ///
    /// With [`WarmStart::cold`] this is exactly the historical
    /// cold-start path, bit for bit — per-node RNG streams are split,
    /// not advanced, so skipping a node's initial sampling cannot
    /// perturb any other node.
    fn run_warm<F>(
        &self,
        mrf: &SpatialMrf,
        opts: &BpOptions,
        transport: &Transport,
        warm: WarmStart<'_, Self::Belief>,
        obs: &dyn InferenceObserver,
        on_iter: F,
    ) -> RunOutcome<Self::Belief>
    where
        F: FnMut(usize, &[Self::Belief]);

    /// Epoch carry-over entry point: each free variable's carried
    /// belief replaces its prior-derived initial belief *and* acts as
    /// the epoch prior in every update, so a posterior carried over
    /// from a previous epoch (convolved with a motion model by the
    /// caller) is not double-counted against the pre-knowledge unary it
    /// already absorbed. `warm = None` is the cold start.
    fn run_carried<F>(
        &self,
        mrf: &SpatialMrf,
        opts: &BpOptions,
        transport: &Transport,
        warm: Option<&[Self::Belief]>,
        obs: &dyn InferenceObserver,
        on_iter: F,
    ) -> RunOutcome<Self::Belief>
    where
        F: FnMut(usize, &[Self::Belief]),
    {
        let warm = match warm {
            Some(w) => WarmStart::carried(w),
            None => WarmStart::cold(),
        };
        self.run_warm(mrf, opts, transport, warm, obs, on_iter)
    }

    /// Runs BP with every inter-node message routed through
    /// `transport`, reporting structured telemetry into `obs` and
    /// invoking `on_iter(iteration, beliefs)` after every iteration.
    ///
    /// With [`Transport::perfect`] this is the exact fault-free code
    /// path (bit-identical to the pre-transport engines); a faulted
    /// transport drops/delays/weakens messages per its `FaultPlan`
    /// while the engine keeps beliefs normalized and finite.
    fn run_transported<F>(
        &self,
        mrf: &SpatialMrf,
        opts: &BpOptions,
        transport: &Transport,
        obs: &dyn InferenceObserver,
        on_iter: F,
    ) -> RunOutcome<Self::Belief>
    where
        F: FnMut(usize, &[Self::Belief]),
    {
        self.run_carried(mrf, opts, transport, None, obs, on_iter)
    }

    /// Runs BP to convergence or `opts.max_iterations`.
    fn run(&self, mrf: &SpatialMrf, opts: &BpOptions) -> (Vec<Self::Belief>, BpOutcome) {
        let out = self.run_transported(mrf, opts, &Transport::perfect(), &NullObserver, |_, _| {});
        (out.beliefs, out.bp)
    }

    /// Runs BP, reporting telemetry into `obs` (run metadata, spans,
    /// per-iteration residuals and communication counts).
    fn run_with(
        &self,
        mrf: &SpatialMrf,
        opts: &BpOptions,
        obs: &dyn InferenceObserver,
    ) -> (Vec<Self::Belief>, BpOutcome) {
        let out = self.run_transported(mrf, opts, &Transport::perfect(), obs, |_, _| {});
        (out.beliefs, out.bp)
    }

    /// Runs BP, invoking `observer(iteration, beliefs)` after every
    /// iteration (belief-level hook for convergence experiments; for
    /// structured telemetry use [`BpEngine::run_with`]).
    fn run_observed<F>(
        &self,
        mrf: &SpatialMrf,
        opts: &BpOptions,
        observer: F,
    ) -> (Vec<Self::Belief>, BpOutcome)
    where
        F: FnMut(usize, &[Self::Belief]),
    {
        let out = self.run_transported(mrf, opts, &Transport::perfect(), &NullObserver, observer);
        (out.beliefs, out.bp)
    }

    /// Runs BP with both a structured telemetry observer and a
    /// belief-level per-iteration closure, on the perfect transport.
    fn run_full<F>(
        &self,
        mrf: &SpatialMrf,
        opts: &BpOptions,
        obs: &dyn InferenceObserver,
        on_iter: F,
    ) -> (Vec<Self::Belief>, BpOutcome)
    where
        F: FnMut(usize, &[Self::Belief]),
    {
        let out = self.run_transported(mrf, opts, &Transport::perfect(), obs, on_iter);
        (out.beliefs, out.bp)
    }
}
