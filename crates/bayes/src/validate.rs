//! Numerical-invariant audits for beliefs and factor graphs.
//!
//! Inference bugs in this stack rarely crash — they silently produce
//! denormalized beliefs, NaN-poisoned weights, or factors pointing at
//! variables that do not exist, and the experiment tables downstream just
//! get quietly wrong. This module centralizes the invariants every belief
//! representation and graph must satisfy:
//!
//! - **Distributions** ([`DistributionAudit`]): masses/weights are finite,
//!   non-negative, and normalized within an epsilon; positions and moments
//!   are finite and bounded (a divergence check on the message norms across
//!   BP iterations).
//! - **Graphs** ([`GraphAudit`]): factors reference existing variables, no
//!   self-factors, Gaussian range parameters are finite with positive
//!   sigma, fixed (anchor) positions are finite, and — where an anchor set
//!   is required — it is non-empty.
//!
//! The BP engines run these audits after every iteration when compiled with
//! debug assertions or with the `strict-validate` feature (which extends
//! the checks to release builds, e.g. for long repro runs). In ordinary
//! release builds the audits compile out entirely.

use crate::gaussian::GaussianBelief;
use crate::grid::GridBelief;
use crate::mrf::SpatialMrf;
use crate::particle::ParticleBelief;
use std::fmt;

/// Whether invariant audits are compiled into this build.
pub const AUDITS_ENABLED: bool = cfg!(any(debug_assertions, feature = "strict-validate"));

/// A violated inference invariant.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationError {
    /// A mass, weight, coordinate, or moment is NaN or ±infinite.
    NonFinite {
        /// What was being audited (e.g. `"belief[3] weights"`).
        context: String,
        /// Offending flat index within the audited slice.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A probability mass or weight is negative.
    NegativeMass {
        /// What was being audited.
        context: String,
        /// Offending flat index.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A distribution's total mass is not 1 within the audit's epsilon.
    NotNormalized {
        /// What was being audited.
        context: String,
        /// The actual total mass.
        total: f64,
        /// The tolerance that was applied.
        epsilon: f64,
    },
    /// A distribution has no support at all.
    EmptyDistribution {
        /// What was being audited.
        context: String,
    },
    /// A coordinate or mean exceeds the divergence bound — the usual
    /// signature of a message-norm blow-up across BP iterations.
    Diverged {
        /// What was being audited.
        context: String,
        /// The offending magnitude.
        magnitude: f64,
        /// The bound it exceeded.
        bound: f64,
    },
    /// A covariance matrix is asymmetric, non-finite, or indefinite.
    InvalidCovariance {
        /// What was being audited.
        context: String,
        /// The covariance entries, row-major.
        cov: [f64; 4],
    },
    /// A factor references a variable outside the graph.
    DanglingFactor {
        /// Index of the offending factor.
        factor: usize,
        /// The out-of-range variable id it references.
        endpoint: usize,
        /// Number of variables actually in the graph.
        len: usize,
    },
    /// A pairwise factor connects a variable to itself.
    SelfFactor {
        /// Index of the offending factor.
        factor: usize,
        /// The repeated variable id.
        node: usize,
    },
    /// A range factor carries a NaN or infinite observed distance.
    NonFiniteRange {
        /// Index of the offending factor.
        factor: usize,
        /// The observed distance.
        observed: f64,
    },
    /// A range factor carries a zero, negative, or non-finite sigma.
    NonPositiveSigma {
        /// Index of the offending factor.
        factor: usize,
        /// The sigma (variance would be its square).
        sigma: f64,
    },
    /// A fixed (anchor) position is NaN or infinite.
    NonFiniteAnchor {
        /// The anchored variable id.
        node: usize,
    },
    /// The graph has no anchors but the caller requires at least one.
    NoAnchors,
    /// A directed network's parent relation contains a cycle.
    CyclicNetwork,
    /// A builder was handed a configuration value outside its valid range.
    InvalidOption {
        /// The option's field name (e.g. `"damping"`).
        option: &'static str,
        /// The rejected value, widened to `f64` for uniform reporting.
        value: f64,
        /// Human-readable statement of the valid range.
        requirement: &'static str,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::NonFinite {
                context,
                index,
                value,
            } => write!(f, "{context}: non-finite value {value} at index {index}"),
            ValidationError::NegativeMass {
                context,
                index,
                value,
            } => write!(f, "{context}: negative mass {value} at index {index}"),
            ValidationError::NotNormalized {
                context,
                total,
                epsilon,
            } => write!(
                f,
                "{context}: total mass {total} differs from 1 by more than {epsilon}"
            ),
            ValidationError::EmptyDistribution { context } => {
                write!(f, "{context}: distribution has no support")
            }
            ValidationError::Diverged {
                context,
                magnitude,
                bound,
            } => write!(
                f,
                "{context}: magnitude {magnitude} exceeds divergence bound {bound}"
            ),
            ValidationError::InvalidCovariance { context, cov } => {
                write!(f, "{context}: invalid covariance {cov:?}")
            }
            ValidationError::DanglingFactor {
                factor,
                endpoint,
                len,
            } => write!(
                f,
                "factor {factor} references variable {endpoint}, but the graph has {len}"
            ),
            ValidationError::SelfFactor { factor, node } => {
                write!(f, "factor {factor} connects variable {node} to itself")
            }
            ValidationError::NonFiniteRange { factor, observed } => {
                write!(f, "factor {factor}: non-finite observed range {observed}")
            }
            ValidationError::NonPositiveSigma { factor, sigma } => {
                write!(
                    f,
                    "factor {factor}: sigma {sigma} is not a positive finite value"
                )
            }
            ValidationError::NonFiniteAnchor { node } => {
                write!(f, "anchor {node} has a non-finite position")
            }
            ValidationError::NoAnchors => write!(f, "graph has no anchors"),
            ValidationError::CyclicNetwork => {
                write!(
                    f,
                    "parent relation contains a cycle (network must be a DAG)"
                )
            }
            ValidationError::InvalidOption {
                option,
                value,
                requirement,
            } => {
                write!(f, "option `{option}` = {value} is invalid: {requirement}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Invariant checks on probability distributions and beliefs.
#[derive(Debug, Clone, Copy)]
pub struct DistributionAudit {
    /// Tolerance on `|Σ mass − 1|`.
    pub epsilon: f64,
    /// Divergence bound on coordinate/mean magnitudes. Positions beyond
    /// this are treated as a blown-up message product, not a real estimate.
    pub max_magnitude: f64,
}

impl Default for DistributionAudit {
    fn default() -> Self {
        DistributionAudit {
            epsilon: 1e-6,
            max_magnitude: 1e12,
        }
    }
}

impl DistributionAudit {
    /// Checks a raw mass/weight vector: non-empty, finite, non-negative,
    /// normalized within [`Self::epsilon`].
    pub fn check_masses(&self, context: &str, masses: &[f64]) -> Result<(), ValidationError> {
        if masses.is_empty() {
            return Err(ValidationError::EmptyDistribution {
                context: context.to_string(),
            });
        }
        let mut total = 0.0;
        for (index, &value) in masses.iter().enumerate() {
            if !value.is_finite() {
                return Err(ValidationError::NonFinite {
                    context: context.to_string(),
                    index,
                    value,
                });
            }
            if value < 0.0 {
                return Err(ValidationError::NegativeMass {
                    context: context.to_string(),
                    index,
                    value,
                });
            }
            total += value;
        }
        if (total - 1.0).abs() > self.epsilon {
            return Err(ValidationError::NotNormalized {
                context: context.to_string(),
                total,
                epsilon: self.epsilon,
            });
        }
        Ok(())
    }

    /// Checks a set of 2-D points for finiteness and the divergence bound.
    pub fn check_points(
        &self,
        context: &str,
        points: &[wsnloc_geom::Vec2],
    ) -> Result<(), ValidationError> {
        for (index, p) in points.iter().enumerate() {
            if !p.is_finite() {
                return Err(ValidationError::NonFinite {
                    context: context.to_string(),
                    index,
                    value: if p.x.is_finite() { p.y } else { p.x },
                });
            }
            let magnitude = p.norm();
            if magnitude > self.max_magnitude {
                return Err(ValidationError::Diverged {
                    context: context.to_string(),
                    magnitude,
                    bound: self.max_magnitude,
                });
            }
        }
        Ok(())
    }

    /// Audits a grid belief: normalized non-negative cell masses.
    pub fn check_grid(&self, context: &str, belief: &GridBelief) -> Result<(), ValidationError> {
        self.check_masses(context, belief.mass())
    }

    /// Audits a particle belief: normalized weights and finite, bounded
    /// particle positions.
    pub fn check_particles(
        &self,
        context: &str,
        belief: &ParticleBelief,
    ) -> Result<(), ValidationError> {
        self.check_masses(context, belief.weights())?;
        self.check_points(context, belief.particles())
    }

    /// Audits a Gaussian belief: finite bounded mean; finite, symmetric,
    /// positive-semidefinite covariance.
    pub fn check_gaussian(
        &self,
        context: &str,
        belief: &GaussianBelief,
    ) -> Result<(), ValidationError> {
        self.check_points(context, std::slice::from_ref(&belief.mean))?;
        let c = belief.cov;
        let finite = c.iter().all(|v| v.is_finite());
        let symmetric = finite && (c[1] - c[2]).abs() <= self.epsilon * (1.0 + c[1].abs());
        let det = c[0] * c[3] - c[1] * c[2];
        let psd =
            symmetric && c[0] >= 0.0 && c[3] >= 0.0 && det >= -self.epsilon * (1.0 + det.abs());
        if !psd {
            return Err(ValidationError::InvalidCovariance {
                context: context.to_string(),
                cov: c,
            });
        }
        Ok(())
    }
}

/// Invariant checks on factor-graph structure.
#[derive(Debug, Clone, Copy, Default)]
pub struct GraphAudit;

impl GraphAudit {
    /// Checks raw factor endpoints against a variable count: every factor
    /// must reference existing, distinct variables.
    pub fn check_factor_refs<I>(&self, len: usize, factors: I) -> Result<(), ValidationError>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        for (factor, (u, v)) in factors.into_iter().enumerate() {
            for endpoint in [u, v] {
                if endpoint >= len {
                    return Err(ValidationError::DanglingFactor {
                        factor,
                        endpoint,
                        len,
                    });
                }
            }
            if u == v {
                return Err(ValidationError::SelfFactor { factor, node: u });
            }
        }
        Ok(())
    }

    /// Audits an MRF's structure: factor endpoints, range-factor
    /// parameters, and anchor positions.
    pub fn check_mrf(&self, mrf: &SpatialMrf) -> Result<(), ValidationError> {
        self.check_factor_refs(mrf.len(), mrf.edges().iter().map(|e| (e.u, e.v)))?;
        for (factor, edge) in mrf.edges().iter().enumerate() {
            if let Some((observed, sigma)) = edge.potential.gaussian_range() {
                if !observed.is_finite() {
                    return Err(ValidationError::NonFiniteRange { factor, observed });
                }
                if !(sigma.is_finite() && sigma > 0.0) {
                    return Err(ValidationError::NonPositiveSigma { factor, sigma });
                }
            }
        }
        for node in 0..mrf.len() {
            if let Some(p) = mrf.fixed(node) {
                if !p.is_finite() {
                    return Err(ValidationError::NonFiniteAnchor { node });
                }
            }
        }
        Ok(())
    }

    /// Audits an MRF that is required to contain at least one anchor, on
    /// top of [`Self::check_mrf`]. Cooperative localization without any
    /// fixed reference has an unresolvable global translation/rotation —
    /// callers that need absolute coordinates should demand anchors.
    pub fn check_anchored_mrf(&self, mrf: &SpatialMrf) -> Result<(), ValidationError> {
        self.check_mrf(mrf)?;
        if (0..mrf.len()).all(|u| mrf.fixed(u).is_none()) {
            return Err(ValidationError::NoAnchors);
        }
        Ok(())
    }

    /// Checks discrete-CPT structure against a variable list: parents must
    /// exist and differ from the child, and every CPT row must be a valid
    /// normalized distribution. This is the `Result`-typed counterpart of
    /// the assertions in [`crate::discrete::BayesNet::new`].
    pub fn check_cpts(
        &self,
        cardinalities: &[usize],
        cpts: &[crate::discrete::Cpt],
        epsilon: f64,
    ) -> Result<(), ValidationError> {
        let n = cardinalities.len();
        let audit = DistributionAudit {
            epsilon,
            ..DistributionAudit::default()
        };
        for (i, cpt) in cpts.iter().enumerate() {
            let card = *cardinalities.get(i).unwrap_or(&0);
            if card == 0 {
                return Err(ValidationError::EmptyDistribution {
                    context: format!("variable {i}"),
                });
            }
            let mut rows = 1usize;
            for &p in &cpt.parents {
                if p >= n {
                    return Err(ValidationError::DanglingFactor {
                        factor: i,
                        endpoint: p,
                        len: n,
                    });
                }
                if p == i {
                    return Err(ValidationError::SelfFactor { factor: i, node: p });
                }
                rows *= cardinalities[p];
            }
            if cpt.table.len() != rows * card {
                return Err(ValidationError::EmptyDistribution {
                    context: format!("CPT of variable {i} has wrong size {}", cpt.table.len()),
                });
            }
            for r in 0..rows {
                audit.check_masses(
                    &format!("CPT row {r} of variable {i}"),
                    &cpt.table[r * card..(r + 1) * card],
                )?;
            }
        }
        Ok(())
    }
}

/// Aborts with a validation error. The single escape hatch for
/// constructors whose documented contract is to panic on invalid
/// programmer input (e.g. [`crate::discrete::BayesNet::new`]); every other
/// caller should propagate the [`ValidationError`] instead.
pub(crate) fn fail(context: &str, e: &ValidationError) -> ! {
    panic!("wsnloc-bayes: {context}: {e}")
}

/// Runs `check` and aborts with its error when audits are compiled in
/// (debug builds or the `strict-validate` feature); free in ordinary
/// release builds. Invariant violations are programming errors, never
/// recoverable runtime conditions, so failing fast is the point.
#[inline]
pub(crate) fn enforce<F>(context: &str, check: F)
where
    F: FnOnce() -> Result<(), ValidationError>,
{
    #[cfg(any(debug_assertions, feature = "strict-validate"))]
    {
        if let Err(e) = check() {
            fail(context, &e);
        }
    }
    #[cfg(not(any(debug_assertions, feature = "strict-validate")))]
    {
        let _ = (context, check);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::potential::{GaussianRange, UniformBoxUnary};
    use std::sync::Arc;
    use wsnloc_geom::{Aabb, Vec2};

    fn audit() -> DistributionAudit {
        DistributionAudit::default()
    }

    #[test]
    fn masses_accept_normalized() {
        assert_eq!(audit().check_masses("t", &[0.25; 4]), Ok(()));
    }

    #[test]
    fn masses_reject_nan() {
        match audit().check_masses("t", &[0.5, f64::NAN, 0.5]) {
            Err(ValidationError::NonFinite { index: 1, .. }) => {}
            other => unreachable!("expected NonFinite, got {other:?}"),
        }
    }

    #[test]
    fn masses_reject_negative() {
        match audit().check_masses("t", &[1.2, -0.2]) {
            Err(ValidationError::NegativeMass { index: 1, .. }) => {}
            other => unreachable!("expected NegativeMass, got {other:?}"),
        }
    }

    #[test]
    fn masses_reject_denormalized() {
        match audit().check_masses("t", &[0.3, 0.3]) {
            Err(ValidationError::NotNormalized { total, .. }) => {
                assert!((total - 0.6).abs() < 1e-12);
            }
            other => unreachable!("expected NotNormalized, got {other:?}"),
        }
    }

    #[test]
    fn masses_reject_empty() {
        assert!(matches!(
            audit().check_masses("t", &[]),
            Err(ValidationError::EmptyDistribution { .. })
        ));
    }

    #[test]
    fn points_reject_divergence() {
        let pts = [Vec2::new(1e13, 0.0)];
        assert!(matches!(
            audit().check_points("t", &pts),
            Err(ValidationError::Diverged { .. })
        ));
    }

    #[test]
    fn gaussian_rejects_negative_variance() {
        let b = GaussianBelief {
            mean: Vec2::ZERO,
            cov: [-1.0, 0.0, 0.0, 1.0],
        };
        assert!(matches!(
            audit().check_gaussian("t", &b),
            Err(ValidationError::InvalidCovariance { .. })
        ));
    }

    #[test]
    fn gaussian_rejects_asymmetric_covariance() {
        let b = GaussianBelief {
            mean: Vec2::ZERO,
            cov: [1.0, 0.5, -0.5, 1.0],
        };
        assert!(matches!(
            audit().check_gaussian("t", &b),
            Err(ValidationError::InvalidCovariance { .. })
        ));
    }

    #[test]
    fn factor_refs_reject_dangling() {
        let g = GraphAudit;
        match g.check_factor_refs(3, [(0, 1), (2, 7)]) {
            Err(ValidationError::DanglingFactor {
                factor: 1,
                endpoint: 7,
                len: 3,
            }) => {}
            other => unreachable!("expected DanglingFactor, got {other:?}"),
        }
    }

    #[test]
    fn factor_refs_reject_self_edge() {
        let g = GraphAudit;
        assert!(matches!(
            g.check_factor_refs(3, [(2, 2)]),
            Err(ValidationError::SelfFactor { factor: 0, node: 2 })
        ));
    }

    #[test]
    fn mrf_audit_rejects_nan_range() {
        let domain = Aabb::from_size(10.0, 10.0);
        let mut mrf = SpatialMrf::new(2, domain, Arc::new(UniformBoxUnary(domain)));
        mrf.add_edge(
            0,
            1,
            Arc::new(GaussianRange {
                observed: f64::NAN,
                sigma: 1.0,
            }),
        );
        assert!(matches!(
            GraphAudit.check_mrf(&mrf),
            Err(ValidationError::NonFiniteRange { factor: 0, .. })
        ));
    }

    #[test]
    fn mrf_audit_rejects_nonpositive_sigma() {
        let domain = Aabb::from_size(10.0, 10.0);
        let mut mrf = SpatialMrf::new(2, domain, Arc::new(UniformBoxUnary(domain)));
        mrf.add_edge(
            0,
            1,
            Arc::new(GaussianRange {
                observed: 5.0,
                sigma: -2.0,
            }),
        );
        assert!(matches!(
            GraphAudit.check_mrf(&mrf),
            Err(ValidationError::NonPositiveSigma { factor: 0, .. })
        ));
    }

    #[test]
    fn anchored_audit_requires_anchors() {
        let domain = Aabb::from_size(10.0, 10.0);
        let mut mrf = SpatialMrf::new(2, domain, Arc::new(UniformBoxUnary(domain)));
        assert_eq!(
            GraphAudit.check_anchored_mrf(&mrf),
            Err(ValidationError::NoAnchors)
        );
        mrf.fix(0, Vec2::new(1.0, 1.0));
        assert_eq!(GraphAudit.check_anchored_mrf(&mrf), Ok(()));
    }

    #[test]
    fn cpt_audit_rejects_dangling_parent() {
        use crate::discrete::Cpt;
        let g = GraphAudit;
        let cpts = vec![
            Cpt {
                parents: vec![],
                table: vec![0.5, 0.5],
            },
            Cpt {
                parents: vec![5],
                table: vec![0.5, 0.5, 0.5, 0.5],
            },
        ];
        assert!(matches!(
            g.check_cpts(&[2, 2], &cpts, 1e-9),
            Err(ValidationError::DanglingFactor { endpoint: 5, .. })
        ));
    }

    #[test]
    fn cpt_audit_rejects_denormalized_row() {
        use crate::discrete::Cpt;
        let g = GraphAudit;
        let cpts = vec![Cpt {
            parents: vec![],
            table: vec![0.7, 0.7],
        }];
        assert!(matches!(
            g.check_cpts(&[2], &cpts, 1e-9),
            Err(ValidationError::NotNormalized { .. })
        ));
    }

    #[test]
    fn errors_display_their_context() {
        let e = ValidationError::NotNormalized {
            context: "belief[4]".into(),
            total: 0.5,
            epsilon: 1e-6,
        };
        assert!(e.to_string().contains("belief[4]"));
        let e = ValidationError::DanglingFactor {
            factor: 2,
            endpoint: 9,
            len: 4,
        };
        assert!(e.to_string().contains("factor 2"));
    }
}
