//! Spatial Markov random field description and shared BP plumbing.
//!
//! [`SpatialMrf`] is the inference-side model: one 2-D position variable per
//! node, unary potentials (pre-knowledge priors / anchor deltas), and
//! pairwise distance potentials (measurements). The two engines —
//! [`crate::grid::GridBp`] and [`crate::particle::ParticleBp`] — consume the
//! same description, which is what lets experiments swap the belief
//! representation without touching the model.

use crate::potential::{PairPotential, UnaryPotential};
use crate::validate::ValidationError;
use std::sync::Arc;
use wsnloc_geom::{Aabb, Vec2};

/// A pairwise factor between two variables.
pub struct MrfEdge {
    /// First endpoint.
    pub u: usize,
    /// Second endpoint.
    pub v: usize,
    /// Distance potential.
    pub potential: Arc<dyn PairPotential>,
}

/// A pairwise MRF over 2-D position variables.
///
/// ```
/// use std::sync::Arc;
/// use wsnloc_bayes::{BpEngine, BpOptions, GaussianRange, ParticleBp, SpatialMrf, UniformBoxUnary};
/// use wsnloc_geom::{Aabb, Vec2};
///
/// // One anchor at (50,50); one unknown measured 20 m away.
/// let domain = Aabb::from_size(100.0, 100.0);
/// let mut mrf = SpatialMrf::new(2, domain, Arc::new(UniformBoxUnary(domain)));
/// mrf.fix(0, Vec2::new(50.0, 50.0));
/// mrf.add_edge(0, 1, Arc::new(GaussianRange { observed: 20.0, sigma: 2.0 }));
///
/// let opts = BpOptions::builder().max_iterations(6).try_build().unwrap();
/// let (beliefs, outcome) = ParticleBp::with_particles(200).run(&mrf, &opts);
/// assert!(outcome.iterations >= 1);
/// // The belief concentrates on the 20 m ring around the anchor.
/// let mean_ring: f64 = beliefs[1].particles().iter()
///     .zip(beliefs[1].weights())
///     .map(|(p, w)| w * p.dist(Vec2::new(50.0, 50.0)))
///     .sum();
/// assert!((mean_ring - 20.0).abs() < 8.0);
/// ```
pub struct SpatialMrf {
    domain: Aabb,
    unaries: Vec<Arc<dyn UnaryPotential>>,
    fixed: Vec<Option<Vec2>>,
    edges: Vec<MrfEdge>,
    adj: Vec<Vec<usize>>,
}

impl SpatialMrf {
    /// Creates an MRF over `n` variables with the given spatial domain.
    /// Every variable starts with `default_unary` and no fixed value.
    pub fn new(n: usize, domain: Aabb, default_unary: Arc<dyn UnaryPotential>) -> Self {
        SpatialMrf {
            domain,
            unaries: vec![default_unary; n],
            fixed: vec![None; n],
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.unaries.len()
    }

    /// `true` iff the MRF has no variables.
    pub fn is_empty(&self) -> bool {
        self.unaries.is_empty()
    }

    /// The spatial domain (support of uninformative beliefs).
    pub fn domain(&self) -> Aabb {
        self.domain
    }

    /// Sets the prior of variable `u`.
    pub fn set_unary(&mut self, u: usize, unary: Arc<dyn UnaryPotential>) {
        self.unaries[u] = unary;
    }

    /// Prior of variable `u`.
    pub fn unary(&self, u: usize) -> &Arc<dyn UnaryPotential> {
        &self.unaries[u]
    }

    /// Fixes variable `u` to a known position (anchor). Fixed variables emit
    /// messages but are never updated.
    pub fn fix(&mut self, u: usize, position: Vec2) {
        self.fixed[u] = Some(position);
    }

    /// The fixed position of `u`, if any.
    pub fn fixed(&self, u: usize) -> Option<Vec2> {
        self.fixed[u]
    }

    /// Ids of non-fixed variables.
    pub fn free_vars(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&u| self.fixed[u].is_none())
            .collect()
    }

    /// Adds a pairwise factor; self-edges are rejected.
    pub fn add_edge(&mut self, u: usize, v: usize, potential: Arc<dyn PairPotential>) {
        assert!(u != v, "self-edges are not meaningful");
        assert!(
            u < self.len() && v < self.len(),
            "edge endpoint out of range"
        );
        let id = self.edges.len();
        self.edges.push(MrfEdge { u, v, potential });
        self.adj[u].push(id);
        self.adj[v].push(id);
    }

    /// All pairwise factors.
    pub fn edges(&self) -> &[MrfEdge] {
        &self.edges
    }

    /// Edge ids incident to `u`.
    pub fn edges_of(&self, u: usize) -> &[usize] {
        &self.adj[u]
    }

    /// For edge `e` incident to `u`, the opposite endpoint.
    pub fn other_end(&self, e: usize, u: usize) -> usize {
        let edge = &self.edges[e];
        if edge.u == u {
            edge.v
        } else {
            debug_assert_eq!(edge.v, u);
            edge.u
        }
    }
}

/// Update schedule for loopy BP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// All beliefs update simultaneously from the previous iteration's
    /// beliefs (flooding). Deterministically parallelizable — this is the
    /// schedule the rayon path uses.
    Synchronous,
    /// Beliefs update in index order within an iteration, each seeing the
    /// freshest neighbor beliefs. Usually converges in fewer iterations but
    /// is inherently sequential.
    Sweep,
}

impl Schedule {
    /// Stable snake_case label used in telemetry and trace output.
    pub fn name(self) -> &'static str {
        match self {
            Schedule::Synchronous => "synchronous",
            Schedule::Sweep => "sweep",
        }
    }
}

/// Options shared by all BP engines.
///
/// Construct through [`BpOptions::builder`] (or start from
/// [`BpOptions::default`] and pass the result through
/// [`BpOptions::validated`]). The struct is `#[non_exhaustive]`: fields
/// stay publicly *readable* — engines consume them directly — but
/// struct-literal construction outside this crate is a compile error,
/// so every externally built value has gone through range validation.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct BpOptions {
    /// Maximum belief-update iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the largest belief-mean displacement
    /// between consecutive iterations, in domain units (meters).
    pub tolerance: f64,
    /// Fraction (0..1) of the previous belief retained each update; 0
    /// disables damping.
    pub damping: f64,
    /// Update order.
    pub schedule: Schedule,
    /// Seed for all stochastic parts of inference (particle proposals).
    pub seed: u64,
    /// Wire bytes one belief broadcast costs in the distributed protocol
    /// being simulated. Engines multiply it into the per-iteration byte
    /// counts reported to observers; 0 (the default) means "no
    /// communication accounting attached".
    pub message_bytes: u64,
}

impl Default for BpOptions {
    fn default() -> Self {
        BpOptions {
            max_iterations: 20,
            tolerance: 1.0,
            damping: 0.0,
            schedule: Schedule::Synchronous,
            seed: 0xB007,
            message_bytes: 0,
        }
    }
}

impl BpOptions {
    /// Starts a validated builder seeded with [`BpOptions::default`].
    ///
    /// The builder (or [`BpOptions::validated`]) is the only external
    /// construction path — the struct is `#[non_exhaustive]`, so
    /// struct-literal construction that would bypass range validation
    /// no longer compiles outside this crate.
    pub fn builder() -> BpOptionsBuilder {
        BpOptionsBuilder {
            opts: BpOptions::default(),
        }
    }

    /// Validates every field, returning `self` unchanged on success. This
    /// is the same check [`BpOptionsBuilder::try_build`] applies; exposed so
    /// higher-level builders can validate options they assembled elsewhere.
    pub fn validated(self) -> Result<BpOptions, ValidationError> {
        if self.max_iterations == 0 {
            return Err(ValidationError::InvalidOption {
                option: "max_iterations",
                value: 0.0,
                requirement: "must be at least 1",
            });
        }
        if !self.tolerance.is_finite() || self.tolerance < 0.0 {
            return Err(ValidationError::InvalidOption {
                option: "tolerance",
                value: self.tolerance,
                requirement: "must be finite and non-negative",
            });
        }
        if !self.damping.is_finite() || !(0.0..1.0).contains(&self.damping) {
            return Err(ValidationError::InvalidOption {
                option: "damping",
                value: self.damping,
                requirement: "must lie in [0, 1)",
            });
        }
        Ok(self)
    }
}

/// Builder for [`BpOptions`] with typed validation at
/// [`BpOptionsBuilder::try_build`].
///
/// ```
/// use wsnloc_bayes::{BpOptions, Schedule};
/// let opts = BpOptions::builder()
///     .max_iterations(12)
///     .tolerance(0.5)
///     .damping(0.3)
///     .schedule(Schedule::Sweep)
///     .seed(7)
///     .try_build()
///     .expect("valid options");
/// assert_eq!(opts.max_iterations, 12);
/// assert!(BpOptions::builder().damping(1.5).try_build().is_err());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BpOptionsBuilder {
    opts: BpOptions,
}

impl BpOptionsBuilder {
    /// Maximum belief-update iterations (must be at least 1).
    pub fn max_iterations(mut self, n: usize) -> Self {
        self.opts.max_iterations = n;
        self
    }

    /// Convergence threshold in domain units (finite and non-negative).
    pub fn tolerance(mut self, t: f64) -> Self {
        self.opts.tolerance = t;
        self
    }

    /// Damping factor (in `[0, 1)`).
    pub fn damping(mut self, d: f64) -> Self {
        self.opts.damping = d;
        self
    }

    /// Update schedule.
    pub fn schedule(mut self, s: Schedule) -> Self {
        self.opts.schedule = s;
        self
    }

    /// Seed for the stochastic parts of inference.
    pub fn seed(mut self, s: u64) -> Self {
        self.opts.seed = s;
        self
    }

    /// Wire bytes per belief broadcast (for observer byte accounting).
    pub fn message_bytes(mut self, b: u64) -> Self {
        self.opts.message_bytes = b;
        self
    }

    /// Validates every field and returns the finished options.
    pub fn try_build(self) -> Result<BpOptions, ValidationError> {
        self.opts.validated()
    }
}

/// What a BP run reports alongside the final beliefs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BpOutcome {
    /// Iterations actually executed.
    pub iterations: usize,
    /// Whether the tolerance was met before `max_iterations`.
    pub converged: bool,
    /// Belief broadcasts that a distributed implementation would have sent
    /// (one per free variable per iteration).
    pub messages: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::potential::{GaussianRange, UniformBoxUnary};

    fn mrf3() -> SpatialMrf {
        let domain = Aabb::from_size(100.0, 100.0);
        let mut mrf = SpatialMrf::new(3, domain, Arc::new(UniformBoxUnary(domain)));
        mrf.fix(0, Vec2::new(10.0, 10.0));
        mrf.add_edge(
            0,
            1,
            Arc::new(GaussianRange {
                observed: 20.0,
                sigma: 2.0,
            }),
        );
        mrf.add_edge(
            1,
            2,
            Arc::new(GaussianRange {
                observed: 30.0,
                sigma: 2.0,
            }),
        );
        mrf
    }

    #[test]
    fn structure_queries() {
        let mrf = mrf3();
        assert_eq!(mrf.len(), 3);
        assert_eq!(mrf.edges().len(), 2);
        assert_eq!(mrf.edges_of(1), &[0, 1]);
        assert_eq!(mrf.other_end(0, 1), 0);
        assert_eq!(mrf.other_end(0, 0), 1);
        assert_eq!(mrf.fixed(0), Some(Vec2::new(10.0, 10.0)));
        assert_eq!(mrf.fixed(1), None);
        assert_eq!(mrf.free_vars(), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "self-edges")]
    fn self_edge_rejected() {
        let domain = Aabb::from_size(1.0, 1.0);
        let mut mrf = SpatialMrf::new(2, domain, Arc::new(UniformBoxUnary(domain)));
        mrf.add_edge(
            1,
            1,
            Arc::new(GaussianRange {
                observed: 1.0,
                sigma: 1.0,
            }),
        );
    }

    #[test]
    fn default_options_are_reasonable() {
        let opts = BpOptions::default();
        assert!(opts.max_iterations > 0);
        assert!(opts.tolerance > 0.0);
        assert_eq!(opts.schedule, Schedule::Synchronous);
        assert!((0.0..1.0).contains(&opts.damping));
        assert_eq!(opts.message_bytes, 0);
    }

    #[test]
    fn builder_roundtrips_valid_options() {
        let opts = BpOptions::builder()
            .max_iterations(7)
            .tolerance(0.25)
            .damping(0.5)
            .schedule(Schedule::Sweep)
            .seed(123)
            .message_bytes(40)
            .try_build()
            .unwrap();
        assert_eq!(opts.max_iterations, 7);
        assert_eq!(opts.tolerance, 0.25);
        assert_eq!(opts.damping, 0.5);
        assert_eq!(opts.schedule, Schedule::Sweep);
        assert_eq!(opts.seed, 123);
        assert_eq!(opts.message_bytes, 40);
    }

    #[test]
    fn builder_rejects_out_of_range_options() {
        assert!(matches!(
            BpOptions::builder().max_iterations(0).try_build(),
            Err(ValidationError::InvalidOption {
                option: "max_iterations",
                ..
            })
        ));
        assert!(matches!(
            BpOptions::builder().tolerance(f64::NAN).try_build(),
            Err(ValidationError::InvalidOption {
                option: "tolerance",
                ..
            })
        ));
        assert!(matches!(
            BpOptions::builder().damping(1.0).try_build(),
            Err(ValidationError::InvalidOption {
                option: "damping",
                ..
            })
        ));
        assert!(matches!(
            BpOptions::builder().damping(-0.1).try_build(),
            Err(ValidationError::InvalidOption {
                option: "damping",
                ..
            })
        ));
    }

    #[test]
    fn schedule_names_are_stable() {
        assert_eq!(Schedule::Synchronous.name(), "synchronous");
        assert_eq!(Schedule::Sweep.name(), "sweep");
    }
}
