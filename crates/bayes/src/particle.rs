//! Particle (nonparametric) beliefs and belief propagation.
//!
//! The scalable counterpart to [`crate::grid`]: beliefs are weighted particle
//! sets and each BP iteration is an importance-sampling update in the style
//! of nonparametric BP / SPAWN:
//!
//! 1. **Propose** candidate positions from three sources — jittered current
//!    particles (exploitation), neighbor-ring proposals (a neighbor particle
//!    plus a distance drawn from the edge potential at a random bearing),
//!    and fresh prior samples (support maintenance).
//! 2. **Weight** each candidate by its prior density times, per neighbor,
//!    the mixture likelihood of the candidate against the neighbor's belief
//!    (a subsample of its particles pushed through the edge potential).
//! 3. **Resample** systematically back to the configured particle count.
//!
//! The update uses neighbor *beliefs* rather than exclusive messages (the
//! standard SPAWN simplification); the resulting fixed point slightly
//! overcounts loops but converges fast and matches the distributed protocol
//! a WSN would actually run.

use crate::engine::{BpEngine, RunOutcome, WarmStart};
use crate::mrf::{BpOptions, BpOutcome, Schedule, SpatialMrf};
use crate::potential::{PairPotential, UnaryPotential};
use crate::transport::{Transport, TransportSession, Verdict};
use crate::validate::{self, DistributionAudit, GraphAudit};
use rayon::prelude::*;
use wsnloc_geom::kde::silverman_bandwidth;
use wsnloc_geom::rng::{systematic_resample, Xoshiro256pp};
use wsnloc_geom::{Matrix, Vec2};
use wsnloc_obs::Stopwatch;
use wsnloc_obs::{
    CommStats, InferenceObserver, IterationRecord, NodeResidual, RunInfo, RunSummary, SpanKind,
};

/// A weighted particle representation of a position belief.
#[derive(Debug, Clone, PartialEq)]
pub struct ParticleBelief {
    particles: Vec<Vec2>,
    /// Normalized weights (sum to 1).
    weights: Vec<f64>,
}

impl ParticleBelief {
    /// Builds from particles and (unnormalized, non-negative) weights.
    /// All-zero weights become uniform.
    pub fn new(particles: Vec<Vec2>, weights: Vec<f64>) -> Self {
        assert_eq!(particles.len(), weights.len(), "length mismatch");
        assert!(!particles.is_empty(), "belief needs at least one particle");
        let mut b = ParticleBelief { particles, weights };
        b.normalize();
        b
    }

    /// Equal-weight belief over the given support.
    pub fn from_points(particles: Vec<Vec2>) -> Self {
        let n = particles.len();
        ParticleBelief::new(particles, vec![1.0 / n as f64; n])
    }

    /// A single-particle (anchor) belief.
    pub fn point(p: Vec2) -> Self {
        ParticleBelief {
            particles: vec![p],
            weights: vec![1.0],
        }
    }

    /// The particle support.
    pub fn particles(&self) -> &[Vec2] {
        &self.particles
    }

    /// The normalized weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.particles.len()
    }

    /// `true` iff the belief holds no particles (never constructed so).
    pub fn is_empty(&self) -> bool {
        self.particles.is_empty()
    }

    fn normalize(&mut self) {
        let total: f64 = self.weights.iter().map(|w| w.max(0.0)).sum();
        if total > 0.0 && total.is_finite() {
            for w in &mut self.weights {
                *w = w.max(0.0) / total;
            }
        } else {
            let n = self.weights.len();
            self.weights.fill(1.0 / n as f64);
        }
    }

    /// MMSE point estimate: the weighted mean.
    pub fn mean(&self) -> Vec2 {
        self.particles
            .iter()
            .zip(&self.weights)
            .fold(Vec2::ZERO, |acc, (&p, &w)| acc + p * w)
    }

    /// Weighted covariance (2×2).
    pub fn covariance(&self) -> Matrix {
        let mean = self.mean();
        let mut cov = Matrix::zeros(2, 2);
        for (&p, &w) in self.particles.iter().zip(&self.weights) {
            let d = p - mean;
            cov[(0, 0)] += w * d.x * d.x;
            cov[(0, 1)] += w * d.x * d.y;
            cov[(1, 1)] += w * d.y * d.y;
        }
        cov[(1, 0)] = cov[(0, 1)];
        cov
    }

    /// RMS spread: `sqrt(trace(cov))`.
    pub fn spread(&self) -> f64 {
        self.covariance().trace().sqrt()
    }

    /// Effective sample size `(Σw)²/Σw²` — `len()` for uniform weights,
    /// 1 for a degenerate belief.
    pub fn effective_sample_size(&self) -> f64 {
        let sum_sq: f64 = self.weights.iter().map(|w| w * w).sum();
        if sum_sq > 0.0 {
            1.0 / sum_sq
        } else {
            0.0
        }
    }

    /// Systematic resample to `count` equally weighted particles.
    pub fn resampled(&self, count: usize, rng: &mut Xoshiro256pp) -> ParticleBelief {
        let particles: Vec<Vec2> = match systematic_resample(rng, &self.weights, count) {
            Some(idx) => idx.into_iter().map(|i| self.particles[i]).collect(),
            // Total weight collapsed to zero (weights are normalized at
            // construction, so this is a numerical edge case): recycle the
            // existing support instead of panicking mid-inference.
            None => (0..count)
                .map(|k| self.particles[k % self.particles.len()])
                .collect(),
        };
        ParticleBelief::from_points(particles)
    }

    /// A Silverman-rule kernel bandwidth for this belief, floored.
    pub fn bandwidth(&self, min: f64) -> f64 {
        silverman_bandwidth(&self.particles, &self.weights, min)
    }

    /// KDE log-density at `x`: `log Σᵢ wᵢ·N(x; pᵢ, h²I)` with an
    /// isotropic Gaussian kernel of bandwidth `h` (log-sum-exp
    /// stabilized). This is what lets a carried particle set act as a
    /// *prior* in a later importance-weighting pass, not just as a
    /// sample support.
    pub fn kde_log_density(&self, x: Vec2, bandwidth: f64) -> f64 {
        let h2 = bandwidth.max(1e-9).powi(2);
        let log_norm = -(std::f64::consts::TAU * h2).ln();
        let log_kernel = |p: Vec2, w: f64| w.ln() - 0.5 * x.dist_sq(p) / h2;
        let mut max_l = f64::NEG_INFINITY;
        for (&p, &w) in self.particles.iter().zip(&self.weights) {
            if w > 0.0 {
                max_l = max_l.max(log_kernel(p, w));
            }
        }
        if max_l == f64::NEG_INFINITY {
            return f64::NEG_INFINITY;
        }
        let sum: f64 = self
            .particles
            .iter()
            .zip(&self.weights)
            .filter(|&(_, &w)| w > 0.0)
            .map(|(&p, &w)| (log_kernel(p, w) - max_l).exp())
            .sum();
        max_l + sum.ln() + log_norm
    }
}

/// Whole-number share of the particle budget: `round(n * fraction)`.
///
/// Fractions come from validated configuration in `[0, 1]`, and the cast
/// happens once per node update — never in a per-particle loop.
fn share(n: usize, fraction: f64) -> usize {
    ((n as f64) * fraction).round() as usize
}

impl crate::engine::Belief for ParticleBelief {
    const SUPPORTS_MAP: bool = false;

    fn mean(&self) -> Vec2 {
        ParticleBelief::mean(self)
    }

    fn spread(&self) -> f64 {
        ParticleBelief::spread(self)
    }

    fn map_estimate(&self) -> Option<Vec2> {
        None
    }
}

/// Per-edge neighbor context resolved once per node update: the
/// neighbor belief the transport delivered (live on the perfect path, a
/// held snapshot under faults), its potential, its anchor position when
/// fixed, and the staleness discount. Hoisting this out of the
/// per-candidate loops removes the repeated edge-table and fixed-map
/// lookups from the weighting hot path; edges whose link has never
/// delivered are absent entirely.
struct EdgeCtx<'a> {
    /// The neighbor belief to propose from and weight against.
    belief: &'a ParticleBelief,
    /// The edge's distance potential.
    potential: &'a dyn PairPotential,
    /// The neighbor's position when it is a fixed anchor.
    fixed: Option<Vec2>,
    /// Staleness discount on the edge's log-likelihood contribution
    /// (1.0 on the perfect transport).
    alpha: f64,
}

/// The effective per-epoch prior of one node: the MRF unary on a cold
/// start, or the carried (motion-predicted) belief on a warm start.
/// Both proposal refreshes and the prior term of the importance
/// weights go through this, so a carried posterior is never
/// re-multiplied by the pre-knowledge unary it already absorbed.
enum EpochPrior<'a> {
    /// Cold start: sample and weight against the node's unary.
    Unary(&'a dyn UnaryPotential),
    /// Warm start: sample and weight against the carried belief's KDE.
    Carried {
        /// The carried particle set.
        belief: &'a ParticleBelief,
        /// KDE kernel bandwidth for sampling and density evaluation.
        bandwidth: f64,
    },
}

impl EpochPrior<'_> {
    fn sample(&self, rng: &mut Xoshiro256pp) -> Vec2 {
        match self {
            EpochPrior::Unary(u) => u.sample(rng),
            EpochPrior::Carried { belief, bandwidth } => {
                let idx = rng.weighted_index(belief.weights()).unwrap_or(0);
                rng.gaussian_point(belief.particles()[idx], *bandwidth)
            }
        }
    }

    fn log_density(&self, x: Vec2) -> f64 {
        match self {
            EpochPrior::Unary(u) => u.log_density(x),
            EpochPrior::Carried { belief, bandwidth } => belief.kde_log_density(x, *bandwidth),
        }
    }
}

/// Loopy belief propagation with particle beliefs.
#[derive(Debug, Clone, Copy)]
pub struct ParticleBp {
    /// Particles per free variable.
    pub particles: usize,
    /// Neighbor particles subsampled when evaluating mixture likelihoods
    /// (caps the O(particles × neighbors × mixture) inner loop).
    pub mixture_samples: usize,
    /// Fraction of candidates proposed from the prior each iteration.
    pub prior_fraction: f64,
    /// Fraction of candidates proposed from neighbor rings.
    pub neighbor_fraction: f64,
}

impl Default for ParticleBp {
    fn default() -> Self {
        ParticleBp {
            particles: 300,
            mixture_samples: 24,
            prior_fraction: 0.1,
            neighbor_fraction: 0.4,
        }
    }
}

impl ParticleBp {
    /// Engine with the given particle count and default proposal mix.
    pub fn with_particles(n: usize) -> Self {
        ParticleBp {
            particles: n,
            ..ParticleBp::default()
        }
    }
}

impl BpEngine for ParticleBp {
    type Belief = ParticleBelief;

    fn backend_name(&self) -> &'static str {
        "particle"
    }

    /// The superset entry point the core localizer drives: structured
    /// telemetry observer, belief-level per-iteration closure, a
    /// message [`Transport`], and a [`WarmStart`]. With the perfect
    /// transport and a cold start this is bit-identical to the
    /// pre-transport engine; under a fault plan, undelivered neighbor
    /// beliefs are replaced by held snapshots (their log-likelihood
    /// contribution discounted by `alpha`), never-received links drop
    /// out of the proposal/weighting mix, and dead nodes freeze. A
    /// `warm.prior` particle set's KDE stands in for the unary in
    /// proposal refreshes and importance weights — the particle-filter
    /// predict/update recursion, with propagation and jitter applied by
    /// the caller before the run — while `warm.state` (or, absent one,
    /// `warm.prior`) replaces the prior-sampled initial belief.
    fn run_warm<F>(
        &self,
        mrf: &SpatialMrf,
        opts: &BpOptions,
        transport: &Transport,
        warm: WarmStart<'_, ParticleBelief>,
        obs: &dyn InferenceObserver,
        mut on_iter: F,
    ) -> RunOutcome<ParticleBelief>
    where
        F: FnMut(usize, &[ParticleBelief]),
    {
        assert!(self.particles > 0, "need at least one particle");
        validate::enforce("ParticleBp::run", || GraphAudit.check_mrf(mrf));
        let root = Xoshiro256pp::seed_from(opts.seed);
        let free = mrf.free_vars();
        obs.on_run_start(&RunInfo {
            backend: "particle",
            nodes: mrf.len(),
            free: free.len(),
            edges: mrf.edges().len(),
            max_iterations: opts.max_iterations,
            tolerance: opts.tolerance,
            damping: opts.damping,
            schedule: opts.schedule.name(),
            message_bytes: opts.message_bytes,
            seed: opts.seed,
        });
        let wants_residuals = obs.wants_residuals();
        // Fault state for this run; `None` on the perfect transport.
        let mut session = transport.session::<ParticleBelief>(mrf, opts.seed);

        // Initialize: fixed vars are points, free vars take the resumed
        // state (or carried prior), else sample their unary.
        let init_start = Stopwatch::start();
        let seed_beliefs = warm.state.or(warm.prior);
        let mut beliefs: Vec<ParticleBelief> = (0..mrf.len())
            .map(|u| match (mrf.fixed(u), seed_beliefs) {
                (Some(p), _) => ParticleBelief::point(p),
                // Carried-over or resumed particle set, already
                // propagated + jittered by the caller. Skipping the
                // init sampling is safe for determinism because `split`
                // derives, not advances, the per-node streams.
                (None, Some(w)) => w[u].clone(),
                (None, None) => {
                    let mut rng = root.split(u as u64);
                    let pts: Vec<Vec2> = (0..self.particles)
                        .map(|_| mrf.unary(u).sample(&mut rng))
                        .collect();
                    ParticleBelief::from_points(pts)
                }
            })
            .collect();
        // Per-node epoch priors: carried beliefs shadow the unary for
        // free nodes; the KDE bandwidth matches the walk-jitter floor.
        // A state-only resume keeps the unary — the resumed state is
        // mid-run message progress, not a new epoch's prior.
        let epoch_priors: Vec<EpochPrior<'_>> = (0..mrf.len())
            .map(|u| match warm.prior {
                Some(w) if mrf.fixed(u).is_none() => EpochPrior::Carried {
                    belief: &w[u],
                    bandwidth: w[u].bandwidth(1e-3).max(mrf.domain().diagonal() * 1e-4),
                },
                _ => EpochPrior::Unary(mrf.unary(u).as_ref()),
            })
            .collect();
        obs.on_span(SpanKind::PriorInit, init_start.elapsed_secs());

        let mut outcome = BpOutcome {
            iterations: 0,
            converged: false,
            messages: 0,
        };

        let loop_start = Stopwatch::start();
        for iter in 0..opts.max_iterations {
            let iter_start = Stopwatch::start();
            // Roll this iteration's link fates and deaths (sequentially,
            // before the parallel updates); dead nodes stop updating.
            if let Some(s) = session.as_mut() {
                s.begin_iteration(iter, &beliefs, obs);
            }
            let active_owned: Option<Vec<usize>> = session
                .as_ref()
                .map(|s| free.iter().copied().filter(|&u| s.node_alive(u)).collect());
            let active: &[usize] = active_owned.as_deref().unwrap_or(&free);
            let prev_means: Vec<Vec2> = free.iter().map(|&u| beliefs[u].mean()).collect();
            // Per-iteration, per-node deterministic RNG streams.
            let iter_tag = (iter as u64 + 1) << 32;

            let update_one = |u: usize, beliefs: &Vec<ParticleBelief>| -> ParticleBelief {
                let mut rng = root.split(iter_tag | u as u64);
                self.update_node(
                    mrf,
                    u,
                    beliefs,
                    session.as_ref(),
                    opts,
                    &epoch_priors[u],
                    &mut rng,
                )
            };

            match opts.schedule {
                Schedule::Synchronous => {
                    let new: Vec<(usize, ParticleBelief)> = active
                        .par_iter()
                        .map(|&u| (u, update_one(u, &beliefs)))
                        .collect();
                    for (u, b) in new {
                        beliefs[u] = b;
                    }
                }
                Schedule::Sweep => {
                    for &u in active {
                        beliefs[u] = update_one(u, &beliefs);
                    }
                }
            }

            outcome.iterations = iter + 1;
            outcome.messages += active.len() as u64;
            validate::enforce("ParticleBp iteration", || {
                let audit = DistributionAudit::default();
                for (u, b) in beliefs.iter().enumerate() {
                    audit.check_particles(&format!("belief[{u}] at iteration {iter}"), b)?;
                }
                Ok(())
            });
            on_iter(iter, &beliefs);

            let max_shift = free
                .iter()
                .zip(&prev_means)
                .map(|(&u, &prev)| beliefs[u].mean().dist(prev))
                .fold(0.0, f64::max);
            // Residuals (belief-mean displacement per node) are computed
            // only when the observer asks — the zero-cost contract.
            let residuals: Vec<NodeResidual> = if wants_residuals {
                wsnloc_obs::accounting::note_residual_buffer();
                free.iter()
                    .zip(&prev_means)
                    .map(|(&u, &prev)| NodeResidual {
                        node: u,
                        residual: beliefs[u].mean().dist(prev),
                        kl: None,
                    })
                    .collect()
            } else {
                Vec::new()
            };
            obs.on_iteration(&IterationRecord {
                iteration: iter,
                max_shift,
                comm: CommStats {
                    messages: active.len() as u64,
                    bytes: active.len() as u64 * opts.message_bytes,
                },
                damping: opts.damping,
                schedule: opts.schedule.name(),
                secs: iter_start.elapsed_secs(),
                residuals,
            });
            if max_shift < opts.tolerance {
                outcome.converged = true;
                break;
            }
        }
        obs.on_span(SpanKind::MessagePassing, loop_start.elapsed_secs());
        obs.on_run_end(&RunSummary {
            iterations: outcome.iterations,
            converged: outcome.converged,
            comm: CommStats {
                messages: outcome.messages,
                bytes: outcome.messages * opts.message_bytes,
            },
        });
        RunOutcome {
            beliefs,
            bp: outcome,
        }
    }
}

impl ParticleBp {
    /// One SPAWN-style importance update of node `u`, against the
    /// neighbor beliefs the transport session delivered (or the live
    /// beliefs on the perfect transport). `prior` is the node's epoch
    /// prior — its unary on a cold start, the carried belief's KDE on a
    /// warm start.
    #[allow(clippy::too_many_arguments)]
    fn update_node(
        &self,
        mrf: &SpatialMrf,
        u: usize,
        beliefs: &[ParticleBelief],
        session: Option<&TransportSession<ParticleBelief>>,
        opts: &BpOptions,
        prior: &EpochPrior<'_>,
        rng: &mut Xoshiro256pp,
    ) -> ParticleBelief {
        let current = &beliefs[u];
        let edges = mrf.edges_of(u);
        let n = self.particles;
        let domain = mrf.domain();

        // Neighbor context — delivered belief, potential, anchor position,
        // staleness discount — is invariant across the proposal and
        // weighting loops below; resolve it once per update instead of
        // per candidate. On the perfect transport the RNG call sequence
        // is untouched, so results stay bit-identical; under faults,
        // never-received links are filtered out here.
        let ctx: Vec<EdgeCtx<'_>> = edges
            .iter()
            .filter_map(|&e| {
                let v = mrf.other_end(e, u);
                let mut alpha = 1.0;
                let mut held: Option<&ParticleBelief> = None;
                if let Some(s) = session {
                    let into_v = mrf.edges()[e].v == u;
                    match s.verdict(e, into_v) {
                        Verdict::Skip => return None,
                        Verdict::Deliver { alpha: a } => {
                            alpha = a;
                            held = s.snapshot(e, into_v);
                        }
                    }
                }
                Some(EdgeCtx {
                    belief: held.unwrap_or(&beliefs[v]),
                    potential: mrf.edges()[e].potential.as_ref(),
                    fixed: mrf.fixed(v),
                    alpha,
                })
            })
            .collect();

        // --- Proposal ---------------------------------------------------
        let n_prior = share(n, self.prior_fraction);
        let n_neighbor = if ctx.is_empty() {
            0
        } else {
            share(n, self.neighbor_fraction)
        };
        let n_walk = n.saturating_sub(n_prior + n_neighbor);

        let mut candidates = Vec::with_capacity(n);
        // (a) jittered current particles — random walk exploitation.
        let jitter = (current.bandwidth(1e-3)).max(domain.diagonal() * 1e-4);
        for _ in 0..n_walk {
            let idx = rng.weighted_index(current.weights()).unwrap_or(0);
            candidates.push(rng.gaussian_point(current.particles()[idx], jitter));
        }
        // (b) neighbor-ring proposals.
        for _ in 0..n_neighbor {
            let c = &ctx[rng.index(ctx.len())];
            let anchor_point = match c.fixed {
                Some(p) => p,
                None => {
                    let nb = c.belief;
                    let idx = rng.weighted_index(nb.weights()).unwrap_or(0);
                    nb.particles()[idx]
                }
            };
            let d = c.potential.sample_distance(rng);
            let theta = rng.range(0.0, std::f64::consts::TAU);
            candidates.push(anchor_point + Vec2::from_angle(theta) * d);
        }
        // (c) prior refreshes.
        for _ in 0..n_prior {
            candidates.push(prior.sample(rng));
        }
        // Pad in the unlikely rounding shortfall.
        while candidates.len() < n {
            candidates.push(prior.sample(rng));
        }

        // --- Weighting ----------------------------------------------------
        let log_weights: Vec<f64> = candidates
            .iter()
            .map(|&x| {
                let mut lw = prior.log_density(x);
                for c in &ctx {
                    // alpha == 1 multiplies exactly (IEEE), so the
                    // perfect path stays bit-identical.
                    lw += c.alpha
                        * self.mixture_log_likelihood(x, c.belief, c.fixed, c.potential, rng);
                }
                lw
            })
            .collect();

        let max_lw = log_weights
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let weights: Vec<f64> = if max_lw == f64::NEG_INFINITY {
            vec![1.0; candidates.len()]
        } else {
            log_weights.iter().map(|lw| (lw - max_lw).exp()).collect()
        };

        let weighted = ParticleBelief::new(candidates, weights);

        // --- Resample (with damping: retain a slice of the old support) ---
        let keep_old = share(n, opts.damping);
        let mut resampled = weighted.resampled(n - keep_old.min(n), rng);
        if keep_old > 0 {
            let old = current.resampled(keep_old, rng);
            let mut pts = resampled.particles.clone();
            pts.extend_from_slice(old.particles());
            resampled = ParticleBelief::from_points(pts);
        }
        resampled
    }

    /// `log Σ_k w_k ψ(‖x − y_k‖)` against a (subsampled) neighbor belief.
    fn mixture_log_likelihood(
        &self,
        x: Vec2,
        neighbor: &ParticleBelief,
        neighbor_fixed: Option<Vec2>,
        potential: &dyn PairPotential,
        rng: &mut Xoshiro256pp,
    ) -> f64 {
        if let Some(p) = neighbor_fixed {
            return potential.log_likelihood(x.dist(p));
        }
        let m = neighbor.len();
        let take = self.mixture_samples.min(m);
        let mut acc = 0.0f64;
        if take == m {
            for (&p, &w) in neighbor.particles().iter().zip(neighbor.weights()) {
                acc += w * potential.likelihood(x.dist(p));
            }
        } else {
            // Uniform-stride subsample with a random phase keeps the
            // estimate unbiased without per-candidate index draws.
            let stride = m / take;
            let phase = rng.index(stride.max(1));
            let mut total_w = 0.0;
            for k in 0..take {
                let idx = (phase + k * stride) % m;
                let w = neighbor.weights()[idx];
                total_w += w;
                acc += w * potential.likelihood(x.dist(neighbor.particles()[idx]));
            }
            if total_w > 0.0 {
                acc /= total_w;
            }
        }
        acc.max(1e-300).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::potential::{GaussianRange, GaussianUnary, UniformBoxUnary};
    use std::sync::Arc;
    use wsnloc_geom::Aabb;

    fn domain() -> Aabb {
        Aabb::from_size(100.0, 100.0)
    }

    #[test]
    fn belief_mean_and_weights() {
        let b = ParticleBelief::new(vec![Vec2::ZERO, Vec2::new(10.0, 0.0)], vec![1.0, 3.0]);
        assert!((b.mean().x - 7.5).abs() < 1e-12);
        assert!((b.weights()[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn zero_weights_become_uniform() {
        let b = ParticleBelief::new(vec![Vec2::ZERO, Vec2::new(2.0, 0.0)], vec![0.0, 0.0]);
        assert!((b.weights()[0] - 0.5).abs() < 1e-12);
        assert!((b.mean().x - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ess_detects_degeneracy() {
        let uniform = ParticleBelief::from_points(vec![Vec2::ZERO; 100]);
        assert!((uniform.effective_sample_size() - 100.0).abs() < 1e-9);
        let degenerate = ParticleBelief::new(
            vec![Vec2::ZERO; 100],
            std::iter::once(1.0)
                .chain(std::iter::repeat_n(1e-12, 99))
                .collect(),
        );
        assert!(degenerate.effective_sample_size() < 1.5);
    }

    #[test]
    fn resample_concentrates_on_heavy_particles() {
        let mut rng = Xoshiro256pp::seed_from(1);
        let b = ParticleBelief::new(vec![Vec2::ZERO, Vec2::new(50.0, 0.0)], vec![0.05, 0.95]);
        let r = b.resampled(1000, &mut rng);
        let heavy = r.particles().iter().filter(|p| p.x > 25.0).count();
        assert!((heavy as f64 / 1000.0 - 0.95).abs() < 0.03);
        // Resampled weights are uniform.
        assert!((r.weights()[0] - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn covariance_of_axis_spread() {
        let pts: Vec<Vec2> = (0..100).map(|i| Vec2::new(i as f64, 0.0)).collect();
        let b = ParticleBelief::from_points(pts);
        let cov = b.covariance();
        assert!(cov[(0, 0)] > 100.0);
        assert!(cov[(1, 1)].abs() < 1e-9);
        assert!(b.spread() > 10.0);
    }

    #[test]
    fn bp_fuses_prior_and_anchor_ring() {
        let dom = domain();
        let mut mrf = SpatialMrf::new(2, dom, Arc::new(UniformBoxUnary(dom)));
        mrf.fix(0, Vec2::new(50.0, 50.0));
        mrf.set_unary(
            1,
            Arc::new(GaussianUnary {
                mean: Vec2::new(80.0, 50.0),
                sigma: 8.0,
            }),
        );
        mrf.add_edge(
            0,
            1,
            Arc::new(GaussianRange {
                observed: 20.0,
                sigma: 2.0,
            }),
        );
        let engine = ParticleBp::with_particles(400);
        let (beliefs, outcome) = engine.run(
            &mrf,
            &BpOptions::builder()
                .max_iterations(15)
                .tolerance(0.3)
                .seed(42)
                .try_build()
                .expect("valid options"),
        );
        assert!(outcome.iterations >= 2);
        let est = beliefs[1].mean();
        assert!(est.dist(Vec2::new(70.0, 50.0)) < 5.0, "estimate {est}");
    }

    #[test]
    fn bp_trilateration_with_three_anchors() {
        let dom = domain();
        let truth = Vec2::new(40.0, 60.0);
        let anchors = [
            Vec2::new(10.0, 10.0),
            Vec2::new(90.0, 20.0),
            Vec2::new(50.0, 90.0),
        ];
        let mut mrf = SpatialMrf::new(4, dom, Arc::new(UniformBoxUnary(dom)));
        for (i, &a) in anchors.iter().enumerate() {
            mrf.fix(i, a);
            mrf.add_edge(
                i,
                3,
                Arc::new(GaussianRange {
                    observed: truth.dist(a),
                    sigma: 1.5,
                }),
            );
        }
        let engine = ParticleBp::with_particles(500);
        let (beliefs, _) = engine.run(
            &mrf,
            &BpOptions::builder()
                .max_iterations(12)
                .tolerance(0.2)
                .seed(7)
                .try_build()
                .expect("valid options"),
        );
        let est = beliefs[3].mean();
        assert!(est.dist(truth) < 4.0, "estimate {est} vs truth {truth}");
    }

    #[test]
    fn bp_cooperative_chain_localizes_middle_node() {
        // anchor — u1 — u2 — anchor: u1/u2 have no direct anchor pair
        // coverage; only cooperation localizes them along the chain.
        let dom = domain();
        let p = [
            Vec2::new(10.0, 50.0),
            Vec2::new(37.0, 50.0),
            Vec2::new(63.0, 50.0),
            Vec2::new(90.0, 50.0),
        ];
        let mut mrf = SpatialMrf::new(4, dom, Arc::new(UniformBoxUnary(dom)));
        mrf.fix(0, p[0]);
        mrf.fix(3, p[3]);
        for (a, b) in [(0, 1), (1, 2), (2, 3)] {
            mrf.add_edge(
                a,
                b,
                Arc::new(GaussianRange {
                    observed: p[a].dist(p[b]),
                    sigma: 1.0,
                }),
            );
        }
        let engine = ParticleBp::with_particles(600);
        let (beliefs, _) = engine.run(
            &mrf,
            &BpOptions::builder()
                .max_iterations(25)
                .tolerance(0.2)
                .seed(3)
                .try_build()
                .expect("valid options"),
        );
        // x coordinates should be recovered; y has a reflection ambiguity
        // mitigated only by the chain being collinear with the anchors.
        assert!(
            (beliefs[1].mean().x - 37.0).abs() < 6.0,
            "{}",
            beliefs[1].mean()
        );
        assert!(
            (beliefs[2].mean().x - 63.0).abs() < 6.0,
            "{}",
            beliefs[2].mean()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let dom = domain();
        let mut mrf = SpatialMrf::new(2, dom, Arc::new(UniformBoxUnary(dom)));
        mrf.fix(0, Vec2::new(50.0, 50.0));
        mrf.add_edge(
            0,
            1,
            Arc::new(GaussianRange {
                observed: 15.0,
                sigma: 2.0,
            }),
        );
        let engine = ParticleBp::with_particles(200);
        let opts = BpOptions::builder()
            .max_iterations(5)
            .seed(99)
            .try_build()
            .expect("valid options");
        let (b1, _) = engine.run(&mrf, &opts);
        let (b2, _) = engine.run(&mrf, &opts);
        assert_eq!(b1[1], b2[1]);
    }

    #[test]
    fn sync_parallel_matches_itself_across_runs() {
        // The rayon path must not introduce scheduling nondeterminism.
        let dom = domain();
        let mut mrf = SpatialMrf::new(6, dom, Arc::new(UniformBoxUnary(dom)));
        mrf.fix(0, Vec2::new(10.0, 10.0));
        mrf.fix(1, Vec2::new(90.0, 10.0));
        for u in 2..6 {
            mrf.add_edge(
                0,
                u,
                Arc::new(GaussianRange {
                    observed: 40.0,
                    sigma: 3.0,
                }),
            );
            mrf.add_edge(
                1,
                u,
                Arc::new(GaussianRange {
                    observed: 60.0,
                    sigma: 3.0,
                }),
            );
        }
        let engine = ParticleBp::with_particles(150);
        let opts = BpOptions::builder()
            .max_iterations(6)
            .seed(5)
            .try_build()
            .expect("valid options");
        let (b1, _) = engine.run(&mrf, &opts);
        let (b2, _) = engine.run(&mrf, &opts);
        for (x, y) in b1.iter().zip(&b2) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn damping_retains_old_support() {
        let dom = domain();
        let mut mrf = SpatialMrf::new(2, dom, Arc::new(UniformBoxUnary(dom)));
        mrf.fix(0, Vec2::new(50.0, 50.0));
        mrf.add_edge(
            0,
            1,
            Arc::new(GaussianRange {
                observed: 10.0,
                sigma: 1.0,
            }),
        );
        let engine = ParticleBp::with_particles(100);
        let (b, _) = engine.run(
            &mrf,
            &BpOptions::builder()
                .max_iterations(3)
                .damping(0.5)
                .seed(11)
                .tolerance(0.0)
                .try_build()
                .expect("valid options"),
        );
        assert_eq!(b[1].len(), 100);
    }

    #[test]
    fn isolated_node_keeps_prior() {
        let dom = domain();
        let prior_mean = Vec2::new(25.0, 75.0);
        let mut mrf = SpatialMrf::new(1, dom, Arc::new(UniformBoxUnary(dom)));
        mrf.set_unary(
            0,
            Arc::new(GaussianUnary {
                mean: prior_mean,
                sigma: 5.0,
            }),
        );
        let engine = ParticleBp::with_particles(300);
        let (b, _) = engine.run(
            &mrf,
            &BpOptions::builder()
                .max_iterations(4)
                .seed(2)
                .try_build()
                .expect("valid options"),
        );
        assert!(b[0].mean().dist(prior_mean) < 2.0);
    }
}
