//! Potentials for spatial Markov random fields.
//!
//! The localization posterior factorizes as
//! `p(x₁..x_N) ∝ Π_u φ_u(x_u) · Π_(u,v) ψ_uv(‖x_u − x_v‖)`:
//!
//! - **Unary potentials** `φ_u` ([`UnaryPotential`]) encode everything known
//!   about a node *before* measurements — this is exactly the paper's
//!   "pre-knowledge". Implementations: delta (anchors), Gaussian drop-point
//!   priors, uniform boxes/shapes, and mixtures.
//! - **Pairwise potentials** `ψ_uv` ([`PairPotential`]) encode measurements.
//!   They depend on the two positions only through their distance, which is
//!   what makes message passing tractable. Implementations here cover the
//!   Gaussian range observation; the core crate adapts its richer noise
//!   models through the same trait.

use wsnloc_geom::rng::Xoshiro256pp;
use wsnloc_geom::{Aabb, Shape, Vec2};

/// Prior knowledge about a single node position.
pub trait UnaryPotential: Send + Sync {
    /// Unnormalized log density at `x`. `-inf` is allowed (outside support).
    fn log_density(&self, x: Vec2) -> f64;

    /// Draws a sample from (an approximation of) the prior.
    fn sample(&self, rng: &mut Xoshiro256pp) -> Vec2;

    /// A representative point (mode/mean) if one exists — used to seed
    /// deterministic initializations.
    fn mode_hint(&self) -> Option<Vec2> {
        None
    }
}

/// A measurement potential over the distance between two nodes.
pub trait PairPotential: Send + Sync {
    /// Unnormalized log likelihood of the potential at inter-node distance
    /// `d`.
    fn log_likelihood(&self, d: f64) -> f64;

    /// Likelihood (convenience; exponentiated [`PairPotential::log_likelihood`]).
    fn likelihood(&self, d: f64) -> f64 {
        self.log_likelihood(d).exp()
    }

    /// Draws a distance hypothesis compatible with the potential — the
    /// proposal used by particle message passing ("my neighbor is *about
    /// this far* in some direction").
    fn sample_distance(&self, rng: &mut Xoshiro256pp) -> f64;

    /// Distance beyond which the likelihood is negligible; `None` means
    /// unbounded. Grid message convolution truncates kernels here.
    fn max_distance(&self) -> Option<f64>;

    /// If this potential is (approximately) a Gaussian range observation,
    /// its `(observed distance, noise standard deviation)` — consumed by
    /// the parametric [`crate::gaussian::GaussianBp`] backend, which skips
    /// potentials that return `None`.
    fn gaussian_range(&self) -> Option<(f64, f64)> {
        None
    }

    /// Translation-invariance hook for the grid backend's stencil cache.
    ///
    /// On a regular grid a distance-only potential depends on a cell pair
    /// only through the integer offset `(Δx, Δy)` between the cells, so
    /// the grid engine can precompute the likelihood once per offset
    /// instead of once per (source cell × kernel cell) pair. This method
    /// returns that table for cell sizes `(dx, dy)` and half-extents
    /// `(rx, ry)`: a row-major `(2·ry + 1) × (2·rx + 1)` vector where the
    /// entry for offset `(ox, oy)` (each in `−r..=r`) lives at
    /// `(oy + ry) · (2·rx + 1) + (ox + rx)` and holds
    /// `likelihood(‖(ox·dx, oy·dy)‖)`.
    ///
    /// The default evaluates [`PairPotential::likelihood`] per offset,
    /// which is exact for every distance-only potential. Override to
    /// return `None` for a potential whose discretization must *not*
    /// assume pure distance dependence (an anisotropic or
    /// position-dependent factor adapted through this trait); the grid
    /// engine then falls back to the per-pair evaluation path for that
    /// potential's edges.
    fn discretized_kernel(&self, dx: f64, dy: f64, rx: usize, ry: usize) -> Option<Vec<f64>> {
        let w = 2 * rx + 1;
        let h = 2 * ry + 1;
        let mut table = Vec::with_capacity(w * h);
        for iy in 0..h {
            let oy = iy as isize - ry as isize;
            for ix in 0..w {
                let ox = ix as isize - rx as isize;
                let d = Vec2::new(ox as f64 * dx, oy as f64 * dy).norm();
                table.push(self.likelihood(d));
            }
        }
        Some(table)
    }

    /// Separability hook for the grid backend's stencil classifier.
    ///
    /// When the discretized kernel factorizes exactly as a rank-1 outer
    /// product `K(Δx, Δy) = col(Δy) · row(Δx)`, the 2-D message scatter
    /// collapses into two 1-D passes — `(2rx+1) + (2ry+1)` multiply–adds
    /// per cell instead of `(2rx+1) · (2ry+1)`. Return
    /// `Some((row, col))` with `row.len() == 2·rx + 1` (offset `ox` at
    /// index `ox + rx`, in cells of size `dx`) and
    /// `col.len() == 2·ry + 1` (likewise for `oy`, `dy`) to declare the
    /// factors directly; malformed factors (wrong length or non-finite)
    /// demote the potential's edges to the pointwise evaluation path.
    ///
    /// The default returns `None`, which is *not* a claim of
    /// non-separability: the stencil classifier still runs a numeric
    /// rank-1 test on the tabulated kernel and factors it when the test
    /// passes. Override only when exact closed-form factors are
    /// available (see [`GaussianProximity`]).
    fn discretized_kernel_separable(
        &self,
        dx: f64,
        dy: f64,
        rx: usize,
        ry: usize,
    ) -> Option<(Vec<f64>, Vec<f64>)> {
        let _ = (dx, dy, rx, ry);
        None
    }
}

/// Exactly-known position (anchors enter the graph as delta priors).
#[derive(Debug, Clone, Copy)]
pub struct DeltaUnary(pub Vec2);

impl UnaryPotential for DeltaUnary {
    fn log_density(&self, x: Vec2) -> f64 {
        // A numerical delta: extremely tight Gaussian so grid cells
        // containing the anchor dominate without producing actual infinities.
        -x.dist_sq(self.0) / (2.0 * 1e-6)
    }

    fn sample(&self, _rng: &mut Xoshiro256pp) -> Vec2 {
        self.0
    }

    fn mode_hint(&self) -> Option<Vec2> {
        Some(self.0)
    }
}

/// Isotropic Gaussian prior — the drop-point pre-knowledge model.
#[derive(Debug, Clone, Copy)]
pub struct GaussianUnary {
    /// Prior mean (the planned drop coordinate).
    pub mean: Vec2,
    /// Per-axis standard deviation.
    pub sigma: f64,
}

impl UnaryPotential for GaussianUnary {
    fn log_density(&self, x: Vec2) -> f64 {
        -x.dist_sq(self.mean) / (2.0 * self.sigma * self.sigma)
    }

    fn sample(&self, rng: &mut Xoshiro256pp) -> Vec2 {
        rng.gaussian_point(self.mean, self.sigma)
    }

    fn mode_hint(&self) -> Option<Vec2> {
        Some(self.mean)
    }
}

/// Uniform prior over an axis-aligned box — the uninformative default
/// ("somewhere in the field").
#[derive(Debug, Clone, Copy)]
pub struct UniformBoxUnary(pub Aabb);

impl UnaryPotential for UniformBoxUnary {
    fn log_density(&self, x: Vec2) -> f64 {
        if self.0.contains(x) {
            0.0
        } else {
            f64::NEG_INFINITY
        }
    }

    fn sample(&self, rng: &mut Xoshiro256pp) -> Vec2 {
        rng.point_in(self.0.min, self.0.max)
    }

    fn mode_hint(&self) -> Option<Vec2> {
        Some(self.0.center())
    }
}

/// Uniform prior over an arbitrary region — corridor/zone pre-knowledge
/// ("this node is somewhere in sector 7").
#[derive(Debug, Clone)]
pub struct UniformShapeUnary(pub Shape);

impl UnaryPotential for UniformShapeUnary {
    fn log_density(&self, x: Vec2) -> f64 {
        if self.0.contains(x) {
            0.0
        } else {
            f64::NEG_INFINITY
        }
    }

    fn sample(&self, rng: &mut Xoshiro256pp) -> Vec2 {
        self.0.sample(rng)
    }

    fn mode_hint(&self) -> Option<Vec2> {
        Some(self.0.bounding_box().center())
    }
}

/// Weighted mixture of priors — e.g. "dropped from pass A or pass B".
pub struct MixtureUnary {
    components: Vec<(f64, Box<dyn UnaryPotential>)>,
}

impl MixtureUnary {
    /// Builds a mixture; weights are normalized. Panics when empty or when
    /// weights do not sum to a positive value.
    pub fn new(components: Vec<(f64, Box<dyn UnaryPotential>)>) -> Self {
        assert!(!components.is_empty(), "mixture needs components");
        let total: f64 = components.iter().map(|(w, _)| *w).sum();
        assert!(total > 0.0, "mixture weights must sum to a positive value");
        MixtureUnary {
            components: components
                .into_iter()
                .map(|(w, c)| (w / total, c))
                .collect(),
        }
    }
}

impl UnaryPotential for MixtureUnary {
    fn log_density(&self, x: Vec2) -> f64 {
        // log-sum-exp over components.
        let logs: Vec<f64> = self
            .components
            .iter()
            .map(|(w, c)| w.ln() + c.log_density(x))
            .collect();
        let m = logs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if m == f64::NEG_INFINITY {
            return f64::NEG_INFINITY;
        }
        m + logs.iter().map(|l| (l - m).exp()).sum::<f64>().ln()
    }

    fn sample(&self, rng: &mut Xoshiro256pp) -> Vec2 {
        let weights: Vec<f64> = self.components.iter().map(|(w, _)| *w).collect();
        // Weights are normalized at construction; fall back to the first
        // component if the mass has degenerated.
        let idx = rng.weighted_index(&weights).unwrap_or(0);
        self.components[idx].1.sample(rng)
    }
}

/// Gaussian range observation: `observed ~ N(true distance, sigma²)`.
#[derive(Debug, Clone, Copy)]
pub struct GaussianRange {
    /// The measured distance.
    pub observed: f64,
    /// Measurement noise standard deviation.
    pub sigma: f64,
}

impl PairPotential for GaussianRange {
    fn log_likelihood(&self, d: f64) -> f64 {
        let z = (self.observed - d) / self.sigma;
        -0.5 * z * z
    }

    fn sample_distance(&self, rng: &mut Xoshiro256pp) -> f64 {
        rng.normal(self.observed, self.sigma).max(1e-3)
    }

    fn max_distance(&self) -> Option<f64> {
        Some(self.observed + 5.0 * self.sigma)
    }

    fn gaussian_range(&self) -> Option<(f64, f64)> {
        Some((self.observed, self.sigma))
    }
}

/// Gaussian proximity potential: `ψ(d) = exp(−d² / 2σ²)` — a soft
/// "these nodes are near each other" constraint (connectivity-style
/// evidence rather than a measured range).
///
/// Unlike [`GaussianRange`], whose ring-shaped kernel is genuinely
/// two-dimensional, this kernel factorizes exactly over the grid axes:
/// `exp(−(Δx² + Δy²)/2σ²) = exp(−Δx²/2σ²) · exp(−Δy²/2σ²)`, so it
/// declares closed-form factors through
/// [`PairPotential::discretized_kernel_separable`] and the grid backend
/// scatters it with two 1-D passes.
#[derive(Debug, Clone, Copy)]
pub struct GaussianProximity {
    /// Per-axis standard deviation of the proximity falloff (meters).
    pub sigma: f64,
}

impl PairPotential for GaussianProximity {
    fn log_likelihood(&self, d: f64) -> f64 {
        -d * d / (2.0 * self.sigma * self.sigma)
    }

    fn sample_distance(&self, rng: &mut Xoshiro256pp) -> f64 {
        rng.normal(0.0, self.sigma).abs().max(1e-3)
    }

    fn max_distance(&self) -> Option<f64> {
        Some(5.0 * self.sigma)
    }

    fn discretized_kernel_separable(
        &self,
        dx: f64,
        dy: f64,
        rx: usize,
        ry: usize,
    ) -> Option<(Vec<f64>, Vec<f64>)> {
        let axis = |n: usize, step: f64| -> Vec<f64> {
            (0..2 * n + 1)
                .map(|i| {
                    let o = (i as isize - n as isize) as f64 * step;
                    (-o * o / (2.0 * self.sigma * self.sigma)).exp()
                })
                .collect()
        };
        Some((axis(rx, dx), axis(ry, dy)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_concentrates_all_mass() {
        let d = DeltaUnary(Vec2::new(3.0, 4.0));
        assert_eq!(d.log_density(Vec2::new(3.0, 4.0)), 0.0);
        assert!(d.log_density(Vec2::new(3.1, 4.0)) < -100.0);
        let mut rng = Xoshiro256pp::seed_from(1);
        assert_eq!(d.sample(&mut rng), Vec2::new(3.0, 4.0));
        assert_eq!(d.mode_hint(), Some(Vec2::new(3.0, 4.0)));
    }

    #[test]
    fn gaussian_prior_shape() {
        let g = GaussianUnary {
            mean: Vec2::new(10.0, 10.0),
            sigma: 2.0,
        };
        assert_eq!(g.log_density(g.mean), 0.0);
        // One sigma out: log density -0.5.
        assert!((g.log_density(Vec2::new(12.0, 10.0)) + 0.5).abs() < 1e-12);
        let mut rng = Xoshiro256pp::seed_from(2);
        let n = 20_000;
        let mean_dist: f64 =
            (0..n).map(|_| g.sample(&mut rng).dist(g.mean)).sum::<f64>() / n as f64;
        // Rayleigh mean = σ·sqrt(π/2) ≈ 2.5066.
        assert!((mean_dist - 2.0 * (std::f64::consts::PI / 2.0).sqrt()).abs() < 0.05);
    }

    #[test]
    fn uniform_box_support() {
        let u = UniformBoxUnary(Aabb::from_size(10.0, 10.0));
        assert_eq!(u.log_density(Vec2::new(5.0, 5.0)), 0.0);
        assert_eq!(u.log_density(Vec2::new(-1.0, 5.0)), f64::NEG_INFINITY);
        let mut rng = Xoshiro256pp::seed_from(3);
        for _ in 0..1000 {
            let s = u.sample(&mut rng);
            assert!(u.log_density(s) == 0.0);
        }
    }

    #[test]
    fn uniform_shape_support() {
        let u = UniformShapeUnary(Shape::Disk {
            center: Vec2::new(5.0, 5.0),
            radius: 2.0,
        });
        assert_eq!(u.log_density(Vec2::new(5.0, 5.0)), 0.0);
        assert_eq!(u.log_density(Vec2::new(9.0, 5.0)), f64::NEG_INFINITY);
        let mut rng = Xoshiro256pp::seed_from(4);
        for _ in 0..500 {
            assert!(u.log_density(u.sample(&mut rng)).is_finite());
        }
    }

    #[test]
    fn mixture_combines_components() {
        let m = MixtureUnary::new(vec![
            (
                1.0,
                Box::new(GaussianUnary {
                    mean: Vec2::ZERO,
                    sigma: 1.0,
                }) as Box<dyn UnaryPotential>,
            ),
            (
                3.0,
                Box::new(GaussianUnary {
                    mean: Vec2::new(100.0, 0.0),
                    sigma: 1.0,
                }),
            ),
        ]);
        // Density near both modes, higher (by weight) at the second.
        let d0 = m.log_density(Vec2::ZERO);
        let d1 = m.log_density(Vec2::new(100.0, 0.0));
        assert!(d1 > d0);
        assert!((d1 - d0 - (3.0f64).ln()).abs() < 1e-9);
        // Samples split ~1:3.
        let mut rng = Xoshiro256pp::seed_from(5);
        let n = 20_000;
        let right = (0..n).filter(|_| m.sample(&mut rng).x > 50.0).count();
        assert!((right as f64 / n as f64 - 0.75).abs() < 0.02);
    }

    #[test]
    fn mixture_log_density_outside_all_support() {
        let m = MixtureUnary::new(vec![(
            1.0,
            Box::new(UniformBoxUnary(Aabb::from_size(1.0, 1.0))) as Box<dyn UnaryPotential>,
        )]);
        assert_eq!(m.log_density(Vec2::new(5.0, 5.0)), f64::NEG_INFINITY);
    }

    #[test]
    fn discretized_kernel_matches_pointwise_likelihood() {
        let g = GaussianRange {
            observed: 10.0,
            sigma: 3.0,
        };
        let (dx, dy, rx, ry) = (2.0, 2.5, 6usize, 5usize);
        let table = g.discretized_kernel(dx, dy, rx, ry).expect("default table");
        assert_eq!(table.len(), (2 * rx + 1) * (2 * ry + 1));
        for oy in -(ry as isize)..=(ry as isize) {
            for ox in -(rx as isize)..=(rx as isize) {
                let idx = (oy + ry as isize) as usize * (2 * rx + 1) + (ox + rx as isize) as usize;
                let d = Vec2::new(ox as f64 * dx, oy as f64 * dy).norm();
                assert_eq!(table[idx].to_bits(), g.likelihood(d).to_bits());
            }
        }
    }

    #[test]
    fn gaussian_range_peaks_at_observation() {
        let g = GaussianRange {
            observed: 50.0,
            sigma: 5.0,
        };
        assert_eq!(g.log_likelihood(50.0), 0.0);
        assert!(g.log_likelihood(45.0) < 0.0);
        assert!((g.likelihood(55.0) - (-0.5f64).exp()).abs() < 1e-12);
        assert_eq!(g.max_distance(), Some(75.0));
        let mut rng = Xoshiro256pp::seed_from(6);
        let mean: f64 = (0..20_000)
            .map(|_| g.sample_distance(&mut rng))
            .sum::<f64>()
            / 20_000.0;
        assert!((mean - 50.0).abs() < 0.2);
    }

    #[test]
    fn proximity_factors_reproduce_dense_kernel() {
        let g = GaussianProximity { sigma: 8.0 };
        let (dx, dy, rx, ry) = (3.0, 2.0, 5usize, 7usize);
        let (row, col) = g
            .discretized_kernel_separable(dx, dy, rx, ry)
            .expect("separable factors");
        assert_eq!(row.len(), 2 * rx + 1);
        assert_eq!(col.len(), 2 * ry + 1);
        let table = g.discretized_kernel(dx, dy, rx, ry).expect("dense table");
        for oy in 0..2 * ry + 1 {
            for ox in 0..2 * rx + 1 {
                let dense = table[oy * (2 * rx + 1) + ox];
                let sep = col[oy] * row[ox];
                assert!(
                    (dense - sep).abs() <= 1e-14 * dense.max(1e-300),
                    "offset ({ox},{oy}): dense {dense} vs factored {sep}"
                );
            }
        }
        // Proximity peaks at zero distance and is bounded by 5σ.
        assert_eq!(g.log_likelihood(0.0), 0.0);
        assert_eq!(g.max_distance(), Some(40.0));
        let mut rng = Xoshiro256pp::seed_from(11);
        for _ in 0..1000 {
            assert!(g.sample_distance(&mut rng) > 0.0);
        }
    }

    #[test]
    fn sampled_distances_positive() {
        let g = GaussianRange {
            observed: 1.0,
            sigma: 10.0,
        };
        let mut rng = Xoshiro256pp::seed_from(7);
        for _ in 0..5_000 {
            assert!(g.sample_distance(&mut rng) > 0.0);
        }
    }
}
