//! Translation-invariant kernel stencils for grid message passing.
//!
//! A distance-only [`PairPotential`](crate::potential::PairPotential)
//! depends on a cell pair only through the integer offset `(Δx, Δy)`, so
//! the grid engine tabulates its likelihood once per run and the
//! per-message scatter becomes table-lookup multiply–adds. This module
//! classifies each table at build time into the cheapest of three forms:
//!
//! - **Separable** — the table is (numerically) a rank-1 outer product
//!   `K(Δx, Δy) = row(Δx) · col(Δy)` (detected by a max-pivot rank test,
//!   or declared exactly via
//!   [`PairPotential::discretized_kernel_separable`](crate::potential::PairPotential::discretized_kernel_separable)).
//!   The 2-D scatter collapses into a horizontal pass followed by a
//!   vertical pass: `(2rx+1) + (2ry+1)` multiply–adds per cell instead of
//!   `(2rx+1)·(2ry+1)`.
//! - **Mirrored** — the table is bit-exactly symmetric under `Δx → −Δx`
//!   and `Δy → −Δy` (true for every distance-only kernel, whose entries
//!   are functions of `|Δ|`). Only the non-negative quadrant
//!   `(rx+1) × (ry+1)` is stored — ~4× smaller, so hot tables stay cache
//!   resident — and rows are indexed with `|Δx|, |Δy|` via a reversed and
//!   a forward accumulate per target row.
//! - **Dense** — anything else (asymmetric custom tables) keeps the full
//!   `(2ry+1) × (2rx+1)` table and the original row-sliced scatter.
//!
//! All three scatter kernels are generic over [`Cell`] (f64 or f32) and
//! drive the runtime-dispatched SIMD accumulates in [`crate::cellbuf`].
//! They are `#[inline(never)]` and public so `crates/bench` can
//! microbenchmark each form in isolation; the module is not a
//! stability-guaranteed API.

use crate::cellbuf::Cell;
use crate::potential::PairPotential;

/// Storage form of a classified kernel table.
#[derive(Debug, Clone)]
enum StencilKind<C> {
    /// Full `(2ry+1) × (2rx+1)` table, row-major by `Δy`.
    Dense { table: Vec<C> },
    /// Non-negative quadrant `(ry+1) × (rx+1)`, row-major by `|Δy|`.
    Mirrored { quadrant: Vec<C> },
    /// Rank-1 factors: `row` over `Δx ∈ −rx..=rx`, `col` over
    /// `Δy ∈ −ry..=ry`; the kernel entry is `col[Δy+ry] · row[Δx+rx]`.
    Separable { row: Vec<C>, col: Vec<C> },
}

/// A classified, possibly down-converted kernel table with its support
/// radii in cells.
#[derive(Debug, Clone)]
pub struct KernelStencil<C> {
    rx: isize,
    ry: isize,
    kind: StencilKind<C>,
}

impl KernelStencil<f64> {
    /// Tabulates and classifies `potential` for an `nx × ny` grid with
    /// cell size `(dx, dy)`. `None` when the potential opts out of
    /// discretization or returns a malformed table/factors (callers then
    /// scatter through the pointwise path).
    ///
    /// The support radius is clamped to `nx − 1` / `ny − 1`: the furthest
    /// reachable offset between two cells of an `n`-wide axis is `n − 1`,
    /// so an oversized `max_distance` cannot tabulate unreachable
    /// offsets (a previous clamp to `n` kept one dead row and column per
    /// axis).
    pub fn build(
        potential: &dyn PairPotential,
        nx: usize,
        ny: usize,
        dx: f64,
        dy: f64,
    ) -> Option<KernelStencil<f64>> {
        let (rx, ry) = match potential.max_distance() {
            Some(r) => ((r / dx).ceil() as isize, (r / dy).ceil() as isize),
            None => (nx as isize, ny as isize),
        };
        let rx = rx.clamp(0, nx as isize - 1) as usize;
        let ry = ry.clamp(0, ny as isize - 1) as usize;
        if let Some((row, col)) = potential.discretized_kernel_separable(dx, dy, rx, ry) {
            if row.len() == 2 * rx + 1
                && col.len() == 2 * ry + 1
                && row.iter().chain(&col).all(|v| v.is_finite())
            {
                return Some(KernelStencil::separable(rx, ry, row, col));
            }
            return None; // malformed custom factors: pointwise fallback
        }
        let table = potential.discretized_kernel(dx, dy, rx, ry)?;
        if table.len() != (2 * rx + 1) * (2 * ry + 1) {
            return None; // malformed custom kernel: pointwise fallback
        }
        Some(KernelStencil::classify(rx, ry, table))
    }

    /// Classifies a full `(2ry+1) × (2rx+1)` table into the cheapest
    /// stencil form: separable when it passes the rank-1 test, mirrored
    /// when it is bit-exactly symmetric in both axes, dense otherwise.
    ///
    /// # Panics
    /// When `table.len() != (2rx+1)·(2ry+1)`.
    pub fn classify(rx: usize, ry: usize, table: Vec<f64>) -> KernelStencil<f64> {
        assert_eq!(
            table.len(),
            (2 * rx + 1) * (2 * ry + 1),
            "kernel table shape mismatch"
        );
        if let Some((row, col)) = try_separate(&table, rx, ry) {
            return KernelStencil::separable(rx, ry, row, col);
        }
        if let Some(quadrant) = fold_quadrant(&table, rx, ry) {
            return KernelStencil::mirrored(rx, ry, quadrant);
        }
        KernelStencil::dense(rx, ry, table)
    }

    /// Converts the f64 classification into cell type `D`, rounding every
    /// stored table entry (the identity for `D = f64`).
    pub fn converted<D: Cell>(&self) -> KernelStencil<D> {
        let conv = |v: &[f64]| v.iter().map(|&x| D::from_f64(x)).collect::<Vec<D>>();
        let kind = match &self.kind {
            StencilKind::Dense { table } => StencilKind::Dense { table: conv(table) },
            StencilKind::Mirrored { quadrant } => StencilKind::Mirrored {
                quadrant: conv(quadrant),
            },
            StencilKind::Separable { row, col } => StencilKind::Separable {
                row: conv(row),
                col: conv(col),
            },
        };
        KernelStencil {
            rx: self.rx,
            ry: self.ry,
            kind,
        }
    }
}

impl<C: Cell> KernelStencil<C> {
    /// A dense stencil from a full `(2ry+1) × (2rx+1)` table.
    ///
    /// # Panics
    /// When the table length does not match the radii.
    pub fn dense(rx: usize, ry: usize, table: Vec<C>) -> KernelStencil<C> {
        assert_eq!(
            table.len(),
            (2 * rx + 1) * (2 * ry + 1),
            "dense table shape mismatch"
        );
        KernelStencil {
            rx: rx as isize,
            ry: ry as isize,
            kind: StencilKind::Dense { table },
        }
    }

    /// A mirrored stencil from a `(ry+1) × (rx+1)` quadrant table.
    ///
    /// # Panics
    /// When the quadrant length does not match the radii.
    pub fn mirrored(rx: usize, ry: usize, quadrant: Vec<C>) -> KernelStencil<C> {
        assert_eq!(
            quadrant.len(),
            (rx + 1) * (ry + 1),
            "quadrant table shape mismatch"
        );
        KernelStencil {
            rx: rx as isize,
            ry: ry as isize,
            kind: StencilKind::Mirrored { quadrant },
        }
    }

    /// A separable stencil from rank-1 factors.
    ///
    /// # Panics
    /// When the factor lengths do not match the radii.
    pub fn separable(rx: usize, ry: usize, row: Vec<C>, col: Vec<C>) -> KernelStencil<C> {
        assert_eq!(row.len(), 2 * rx + 1, "row factor shape mismatch");
        assert_eq!(col.len(), 2 * ry + 1, "column factor shape mismatch");
        KernelStencil {
            rx: rx as isize,
            ry: ry as isize,
            kind: StencilKind::Separable { row, col },
        }
    }

    /// Support radius in cells along x.
    pub fn rx(&self) -> isize {
        self.rx
    }

    /// Support radius in cells along y.
    pub fn ry(&self) -> isize {
        self.ry
    }

    /// The classified form: `"dense"`, `"mirrored"`, or `"separable"`.
    pub fn kind_name(&self) -> &'static str {
        match self.kind {
            StencilKind::Dense { .. } => "dense",
            StencilKind::Mirrored { .. } => "mirrored",
            StencilKind::Separable { .. } => "separable",
        }
    }

    /// Total stored table entries (full table, quadrant, or both
    /// factors) — what the classification actually keeps resident.
    pub fn stored_len(&self) -> usize {
        match &self.kind {
            StencilKind::Dense { table } => table.len(),
            StencilKind::Mirrored { quadrant } => quadrant.len(),
            StencilKind::Separable { row, col } => row.len() + col.len(),
        }
    }

    /// Scatters `src` (row-major `nx`-wide cell masses) into `out`
    /// through this stencil, skipping source cells below `floor`. `out`
    /// must be zeroed by the caller; `temp` is scratch reused across
    /// calls (only the separable form touches it).
    pub fn scatter(&self, src: &[C], nx: usize, floor: C, out: &mut [C], temp: &mut Vec<C>) {
        match &self.kind {
            StencilKind::Dense { table } => {
                scatter_dense(self.rx, self.ry, table, src, nx, floor, out);
            }
            StencilKind::Mirrored { quadrant } => {
                scatter_mirrored(self.rx, self.ry, quadrant, src, nx, floor, out, temp);
            }
            StencilKind::Separable { row, col } => {
                scatter_separable(self.rx, self.ry, row, col, src, nx, floor, out, temp);
            }
        }
    }
}

/// Max-pivot rank-1 test: factors the table as `col ⊗ row` anchored at
/// its largest-magnitude entry and accepts when every entry matches the
/// outer product within `1e-13 · max|entry|`. Non-finite or all-zero
/// tables are rejected (they classify onward as mirrored/dense).
fn try_separate(table: &[f64], rx: usize, ry: usize) -> Option<(Vec<f64>, Vec<f64>)> {
    let w = 2 * rx + 1;
    let h = 2 * ry + 1;
    let mut pi = 0usize;
    let mut pmax = 0.0f64;
    for (i, &v) in table.iter().enumerate() {
        if !v.is_finite() {
            return None;
        }
        if v.abs() > pmax {
            pmax = v.abs();
            pi = i;
        }
    }
    if pmax <= 0.0 {
        return None; // all-zero table: nothing to factor
    }
    let (py, px) = (pi / w, pi % w);
    let pivot = table[py * w + px];
    let row: Vec<f64> = table[py * w..py * w + w].to_vec();
    let col: Vec<f64> = (0..h).map(|y| table[y * w + px] / pivot).collect();
    let tol = 1e-13 * pmax;
    for y in 0..h {
        for x in 0..w {
            if (table[y * w + x] - col[y] * row[x]).abs() > tol {
                return None;
            }
        }
    }
    Some((row, col))
}

/// Folds a bit-exactly axis-symmetric table down to its non-negative
/// quadrant (`|Δy|` rows × `|Δx|` columns); `None` when any entry
/// differs from its mirror.
fn fold_quadrant(table: &[f64], rx: usize, ry: usize) -> Option<Vec<f64>> {
    let w = 2 * rx + 1;
    let h = 2 * ry + 1;
    for y in 0..h {
        for x in 0..w {
            let v = table[y * w + x];
            let mx = table[y * w + (w - 1 - x)];
            let my = table[(h - 1 - y) * w + x];
            if v.to_bits() != mx.to_bits() || v.to_bits() != my.to_bits() {
                return None;
            }
        }
    }
    let mut quadrant = Vec::with_capacity((rx + 1) * (ry + 1));
    for qy in 0..=ry {
        for qx in 0..=rx {
            quadrant.push(table[(ry + qy) * w + (rx + qx)]);
        }
    }
    Some(quadrant)
}

/// Dense scatter: per source cell above `floor`, accumulate the clamped
/// kernel window row by row over contiguous slices.
#[inline(never)]
pub fn scatter_dense<C: Cell>(
    rx: isize,
    ry: isize,
    table: &[C],
    src: &[C],
    nx: usize,
    floor: C,
    out: &mut [C],
) {
    let ny = out.len() / nx;
    let width = 2 * rx as usize + 1;
    for (s, &m) in src.iter().enumerate() {
        if m < floor {
            continue;
        }
        let sx = (s % nx) as isize;
        let sy = (s / nx) as isize;
        let x0 = (sx - rx).max(0);
        let x1 = (sx + rx).min(nx as isize - 1);
        let y0 = (sy - ry).max(0);
        let y1 = (sy + ry).min(ny as isize - 1);
        for y in y0..=y1 {
            let krow = ((y - sy + ry) as usize) * width;
            let k0 = krow + (x0 - sx + rx) as usize;
            let t0 = y as usize * nx + x0 as usize;
            let cols = (x1 - x0) as usize + 1;
            C::axpy(&mut out[t0..t0 + cols], m, &table[k0..k0 + cols]);
        }
    }
}

/// Mirrored scatter. The stored form is the `(ry+1) × (rx+1)` quadrant
/// (what stays cache-resident between messages); at scatter time the
/// `ry+1` distinct full-width kernel rows are unfolded once into
/// scratch — `(ry+1)·(2rx+1)` copies, negligible next to the
/// `O(sources · window)` accumulate — so the per-source inner loop is a
/// single contiguous accumulate per target row, indexed by `|Δy|`,
/// identical in shape (and bit-identical in result) to the dense form.
/// Splitting each row at the source column into a reversed and a
/// forward accumulate straight off the quadrant was measurably slower:
/// at practical radii the split segments are too short to amortize the
/// SIMD lane-reversal.
#[inline(never)]
#[allow(clippy::too_many_arguments)]
pub fn scatter_mirrored<C: Cell>(
    rx: isize,
    ry: isize,
    quadrant: &[C],
    src: &[C],
    nx: usize,
    floor: C,
    out: &mut [C],
    temp: &mut Vec<C>,
) {
    let ny = out.len() / nx;
    let qw = rx as usize + 1;
    let width = 2 * rx as usize + 1;
    // Unfold |Δx| mirroring: row `qy` of scratch holds the full kernel
    // row for |Δy| = qy.
    temp.clear();
    temp.resize((ry as usize + 1) * width, C::ZERO);
    for qy in 0..=ry as usize {
        let qrow = &quadrant[qy * qw..qy * qw + qw];
        let frow = &mut temp[qy * width..(qy + 1) * width];
        for (dx, slot) in frow.iter_mut().enumerate() {
            *slot = qrow[dx.abs_diff(rx as usize)];
        }
    }
    for (s, &m) in src.iter().enumerate() {
        if m < floor {
            continue;
        }
        let sx = (s % nx) as isize;
        let sy = (s / nx) as isize;
        let x0 = (sx - rx).max(0);
        let x1 = (sx + rx).min(nx as isize - 1);
        let y0 = (sy - ry).max(0);
        let y1 = (sy + ry).min(ny as isize - 1);
        let k0 = (x0 - sx + rx) as usize;
        let cols = (x1 - x0) as usize + 1;
        for y in y0..=y1 {
            let krow = (y - sy).unsigned_abs() * width;
            let t0 = y as usize * nx + x0 as usize;
            C::axpy(
                &mut out[t0..t0 + cols],
                m,
                &temp[krow + k0..krow + k0 + cols],
            );
        }
    }
}

/// Separable scatter: a horizontal pass accumulates `mass · row(Δx)`
/// into a scratch plane (the per-source mass floor applies here, exactly
/// as in the dense path), then a vertical pass accumulates
/// `col(Δy) · scratch-row` over full contiguous rows. Scratch rows with
/// no mass are skipped.
#[inline(never)]
#[allow(clippy::too_many_arguments)]
pub fn scatter_separable<C: Cell>(
    rx: isize,
    ry: isize,
    row: &[C],
    col: &[C],
    src: &[C],
    nx: usize,
    floor: C,
    out: &mut [C],
    temp: &mut Vec<C>,
) {
    let ny = out.len() / nx;
    temp.clear();
    temp.resize(out.len(), C::ZERO);
    for (s, &m) in src.iter().enumerate() {
        if m < floor {
            continue;
        }
        let sx = (s % nx) as isize;
        let sy = s / nx;
        let x0 = (sx - rx).max(0);
        let x1 = (sx + rx).min(nx as isize - 1);
        let k0 = (x0 - sx + rx) as usize;
        let t0 = sy * nx + x0 as usize;
        let cols = (x1 - x0) as usize + 1;
        C::axpy(&mut temp[t0..t0 + cols], m, &row[k0..k0 + cols]);
    }
    for sy in 0..ny {
        let trow = &temp[sy * nx..(sy + 1) * nx];
        if trow.iter().all(|&v| v == C::ZERO) {
            continue;
        }
        let y0 = (sy as isize - ry).max(0);
        let y1 = (sy as isize + ry).min(ny as isize - 1);
        for ty in y0..=y1 {
            let c = col[(ty - sy as isize + ry) as usize];
            let t = ty as usize * nx;
            C::axpy(&mut out[t..t + nx], c, trow);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::potential::{GaussianProximity, GaussianRange, PairPotential};
    use wsnloc_geom::rng::Xoshiro256pp;

    /// Random asymmetric table: must classify dense.
    fn asymmetric_table(rx: usize, ry: usize, seed: u64) -> Vec<f64> {
        let mut rng = Xoshiro256pp::seed_from(seed);
        (0..(2 * rx + 1) * (2 * ry + 1))
            .map(|_| rng.range(0.05, 1.0))
            .collect()
    }

    fn scatter_ref(st: &KernelStencil<f64>, src: &[f64], nx: usize, floor: f64) -> Vec<f64> {
        let mut out = vec![0.0; src.len()];
        let mut temp = Vec::new();
        st.scatter(src, nx, floor, &mut out, &mut temp);
        out
    }

    fn random_src(nx: usize, ny: usize, seed: u64) -> Vec<f64> {
        let mut rng = Xoshiro256pp::seed_from(seed);
        let mut src: Vec<f64> = (0..nx * ny).map(|_| rng.range(0.0, 1.0)).collect();
        // Sprinkle sub-floor cells so the skip path is exercised.
        for i in (0..src.len()).step_by(7) {
            src[i] = 1e-9;
        }
        let total: f64 = src.iter().sum();
        for m in &mut src {
            *m /= total;
        }
        src
    }

    #[test]
    fn gaussian_range_classifies_mirrored() {
        let pot = GaussianRange {
            observed: 30.0,
            sigma: 4.0,
        };
        let st = KernelStencil::build(&pot, 25, 25, 4.0, 4.0).expect("discretizes");
        assert_eq!(st.kind_name(), "mirrored");
        // Ring kernels are radially symmetric but not rank-1.
        assert_eq!(
            st.stored_len(),
            (st.rx() as usize + 1) * (st.ry() as usize + 1)
        );
    }

    #[test]
    fn gaussian_proximity_classifies_separable() {
        let pot = GaussianProximity { sigma: 10.0 };
        let st = KernelStencil::build(&pot, 30, 30, 3.0, 3.0).expect("discretizes");
        assert_eq!(st.kind_name(), "separable");
        let (rx, ry) = (st.rx() as usize, st.ry() as usize);
        assert_eq!(st.stored_len(), (2 * rx + 1) + (2 * ry + 1));
    }

    #[test]
    fn separable_detection_catches_rank_one_tables() {
        // An anisotropic exponential product the numeric rank test must
        // catch without any hook.
        let (rx, ry) = (6usize, 4usize);
        let w = 2 * rx + 1;
        let table: Vec<f64> = (0..(2 * ry + 1) * w)
            .map(|i| {
                let oy = (i / w) as isize - ry as isize;
                let ox = (i % w) as isize - rx as isize;
                (-0.1 * (ox * ox) as f64).exp() * (-0.3 * (oy * oy) as f64).exp()
            })
            .collect();
        let st = KernelStencil::classify(rx, ry, table);
        assert_eq!(st.kind_name(), "separable");
    }

    #[test]
    fn asymmetric_tables_fall_back_to_dense() {
        for seed in 0..8 {
            let st = KernelStencil::classify(5, 3, asymmetric_table(5, 3, 1000 + seed));
            assert_eq!(st.kind_name(), "dense", "seed {seed}");
        }
    }

    #[test]
    fn oversized_max_distance_clamps_to_reachable_offsets() {
        // Regression: the support radius must clamp to nx−1/ny−1; the old
        // clamp to nx/ny tabulated one unreachable row and column per
        // axis.
        struct Everywhere;
        impl PairPotential for Everywhere {
            fn log_likelihood(&self, d: f64) -> f64 {
                -0.001 * d
            }
            fn sample_distance(&self, _rng: &mut Xoshiro256pp) -> f64 {
                1.0
            }
            fn max_distance(&self) -> Option<f64> {
                Some(1e9) // vastly larger than any grid extent
            }
        }
        let (nx, ny) = (10usize, 8usize);
        let st = KernelStencil::build(&Everywhere, nx, ny, 2.0, 2.0).expect("discretizes");
        assert_eq!(st.rx(), nx as isize - 1);
        assert_eq!(st.ry(), ny as isize - 1);
        // Distance-only default tabulation is symmetric → quadrant
        // storage pinned to exactly (nx) × (ny) reachable offsets.
        assert_eq!(st.kind_name(), "mirrored");
        assert_eq!(st.stored_len(), nx * ny);

        // Unbounded potentials clamp identically.
        struct Unbounded;
        impl PairPotential for Unbounded {
            fn log_likelihood(&self, d: f64) -> f64 {
                -0.001 * d
            }
            fn sample_distance(&self, _rng: &mut Xoshiro256pp) -> f64 {
                1.0
            }
            fn max_distance(&self) -> Option<f64> {
                None
            }
        }
        let st = KernelStencil::build(&Unbounded, nx, ny, 2.0, 2.0).expect("discretizes");
        assert_eq!((st.rx(), st.ry()), (nx as isize - 1, ny as isize - 1));
    }

    #[test]
    fn mirrored_scatter_matches_dense_on_symmetric_tables() {
        let pot = GaussianRange {
            observed: 20.0,
            sigma: 5.0,
        };
        let (nx, ny) = (22usize, 17usize);
        let table = {
            let (rx, ry) = (11usize, 9usize);
            pot.discretized_kernel(4.0, 4.0, rx, ry).expect("table")
        };
        let dense = KernelStencil::dense(11, 9, table.clone());
        let mirrored = KernelStencil::classify(11, 9, table);
        assert_eq!(mirrored.kind_name(), "mirrored");
        let src = random_src(nx, ny, 42);
        let floor = 1e-4 / (nx * ny) as f64;
        let a = scatter_ref(&dense, &src, nx, floor);
        let b = scatter_ref(&mirrored, &src, nx, floor);
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert!(
                (x - y).abs() <= 1e-12 * x.abs().max(1.0),
                "cell {i}: dense {x} vs mirrored {y}"
            );
        }
    }

    #[test]
    fn separable_scatter_matches_dense_on_rank_one_tables() {
        let (rx, ry) = (7usize, 5usize);
        let w = 2 * rx + 1;
        let h = 2 * ry + 1;
        let rowf: Vec<f64> = (0..w)
            .map(|i| (-0.08 * (i as f64 - rx as f64).powi(2)).exp())
            .collect();
        let colf: Vec<f64> = (0..h)
            .map(|i| (-0.2 * (i as f64 - ry as f64).powi(2)).exp())
            .collect();
        let mut table = Vec::with_capacity(w * h);
        for &c in &colf {
            for &r in &rowf {
                table.push(c * r);
            }
        }
        let (nx, ny) = (19usize, 23usize);
        let dense = KernelStencil::dense(rx, ry, table);
        let sep = KernelStencil::separable(rx, ry, rowf, colf);
        let src = random_src(nx, ny, 7);
        let floor = 1e-4 / (nx * ny) as f64;
        let a = scatter_ref(&dense, &src, nx, floor);
        let b = scatter_ref(&sep, &src, nx, floor);
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert!(
                (x - y).abs() <= 1e-12 * x.abs().max(1.0),
                "cell {i}: dense {x} vs separable {y}"
            );
        }
    }

    #[test]
    fn f32_conversion_tracks_f64_within_single_precision() {
        let pot = GaussianRange {
            observed: 25.0,
            sigma: 4.0,
        };
        let (nx, ny) = (20usize, 20usize);
        let st64 = KernelStencil::build(&pot, nx, ny, 5.0, 5.0).expect("discretizes");
        let st32 = st64.converted::<f32>();
        assert_eq!(st64.kind_name(), st32.kind_name());
        let src64 = random_src(nx, ny, 9);
        let src32: Vec<f32> = src64.iter().map(|&x| x as f32).collect();
        let floor = 1e-4 / (nx * ny) as f64;
        let a = scatter_ref(&st64, &src64, nx, floor);
        let mut b32 = vec![0.0f32; nx * ny];
        let mut temp = Vec::new();
        st32.scatter(&src32, nx, floor as f32, &mut b32, &mut temp);
        for (i, (x, y)) in a.iter().zip(&b32).enumerate() {
            // Documented f32 contract: per-cell relative error within a
            // few hundred f32 ulps of the f64 reference.
            assert!(
                (x - f64::from(*y)).abs() <= 5e-5 * x.abs().max(1e-3),
                "cell {i}: f64 {x} vs f32 {y}"
            );
        }
    }
}
