//! Sharded BP execution for very large networks.
//!
//! A flat BP run holds every belief and every message stencil in one
//! arena — fine at 10³ nodes, hopeless at 10⁶. [`ShardedEngine`] cuts
//! the deployment into spatially contiguous tiles with a
//! [`ShardLayout`] (the `wsnloc-geom` spatial partitioner) and runs the
//! wrapped flat engine on one *sub-factor-graph per shard*:
//!
//! - **Members** — the nodes a tile owns. Their beliefs are
//!   authoritative and are merged into the global answer after every
//!   round.
//! - **Halo** — foreign nodes mirrored into the shard so members keep
//!   their full neighborhoods. The geometric halo from the layout is
//!   closed over the actual factor-graph adjacency, so correctness
//!   never depends on the layout's halo radius bounding the longest
//!   edge. Halo beliefs are *mirrors*: the shard updates them locally
//!   during a round (overlapping-Schwarz style) but their post-round
//!   values are discarded and re-synchronized from their owners.
//!
//! Execution alternates **interior sweeps** and **boundary exchange**:
//! each outer round runs `interior_iterations` BP iterations inside
//! every shard in parallel on the persistent worker pool (the inner
//! engines resume from the previous round's state via
//! [`WarmStart::resume`], so measurements are never double-counted),
//! then every shard's halo mirrors are refreshed from the owners'
//! fresh beliefs. Cross-shard refreshes travel through the existing
//! [`Transport`] seam: under a faulted transport, a per-run
//! `TransportSession` is built over the *boundary graph* (exactly the
//! factor-graph edges whose endpoints live in different shards), so
//! fault injection — loss, bursts, staleness, node death, asymmetry —
//! applies per cross-shard link while interior sweeps stay lossless.
//! Staleness-discounted deliveries temper the mirrored belief itself
//! through [`TemperBelief`] (the belief-level analog of the flat
//! engines' per-message `alpha` discount).
//!
//! Equivalence with the flat engine:
//!
//! - A layout with **one occupied tile** delegates straight to the
//!   inner engine — bit-identical by construction.
//! - Multi-shard, synchronous schedule, `interior_iterations = 1`,
//!   perfect transport: every member update reads exactly the beliefs
//!   a flat run's iteration would read (mirrors are synced every
//!   round), and sub-graph edges are added in ascending global edge
//!   order so per-node message summation order is preserved. For the
//!   deterministic grid backend this makes member beliefs match the
//!   flat run to the bit; stochastic backends differ only through
//!   their per-node RNG streams being keyed by local index.
//! - `interior_iterations > 1` trades boundary freshness for fewer
//!   synchronization points: mirrors go stale by up to `k - 1`
//!   iterations, the classic overlapping domain-decomposition
//!   approximation. Convergence is owned by the outer loop (inner runs
//!   are given a zero tolerance), tested on the largest owned-belief
//!   mean displacement per round against `opts.tolerance`.
//!
//! Scope notes, deliberately accepted and documented: node death under
//! sharding silences a node's *cross-shard* messages only (interior
//! sweeps run on the lossless in-memory path); coarse-to-fine grid
//! pre-solves apply per shard; message counts include the halo-overlap
//! duplication a real distributed deployment would also pay.

use std::sync::Arc;

use crate::engine::{Belief, BpEngine, RunOutcome, WarmStart};
use crate::gaussian::GaussianBelief;
use crate::mrf::{BpOptions, BpOutcome, SpatialMrf};
use crate::particle::ParticleBelief;
use crate::transport::{Transport, TransportSession, Verdict};
use crate::validate::ValidationError;
use rayon::prelude::*;
use wsnloc_geom::{ShardLayout, Vec2};
use wsnloc_obs::{
    CommStats, InferenceObserver, IterationRecord, NodeResidual, NullObserver, ObsEvent, RunInfo,
    RunSummary, SpanKind, Stopwatch,
};

/// Belief-level staleness tempering, `belief^alpha` in the appropriate
/// representation. Used when a cross-shard mirror refresh arrives
/// staleness-discounted ([`Verdict::Deliver`] with `alpha < 1`): the
/// flat engines discount the *message* built from a belief, the
/// sharded engine must discount the mirrored *belief* itself.
///
/// `alpha = 1` must be the identity; implementations treat
/// out-of-range `alpha` (≤ 0, ≥ 1) as 1.
pub trait TemperBelief {
    /// This belief raised to power `alpha` and renormalized.
    #[must_use]
    fn tempered(&self, alpha: f64) -> Self;
}

impl TemperBelief for GaussianBelief {
    fn tempered(&self, alpha: f64) -> GaussianBelief {
        if !(alpha > 0.0 && alpha < 1.0) {
            return *self;
        }
        // Raising a Gaussian to power α scales the information matrix
        // by α, i.e. the covariance by 1/α; the mean is unchanged.
        GaussianBelief {
            mean: self.mean,
            cov: [
                self.cov[0] / alpha,
                self.cov[1] / alpha,
                self.cov[2] / alpha,
                self.cov[3] / alpha,
            ],
        }
    }
}

impl TemperBelief for ParticleBelief {
    fn tempered(&self, alpha: f64) -> ParticleBelief {
        if !(alpha > 0.0 && alpha < 1.0) {
            return self.clone();
        }
        let weights: Vec<f64> = self.weights().iter().map(|w| w.powf(alpha)).collect();
        // `new` renormalizes (and falls back to uniform on all-zero).
        ParticleBelief::new(self.particles().to_vec(), weights)
    }
}

/// One shard's compiled execution state: the induced sub-factor-graph
/// over members ∪ halo, plus the index maps needed to merge results
/// and refresh mirrors.
struct SubGraph {
    /// Global ids of local nodes (members ∪ closed halo), ascending.
    /// Local index `i` ↔ global id `locals[i]`.
    locals: Vec<usize>,
    /// `(local, global)` for every node this shard owns.
    members: Vec<(usize, usize)>,
    /// Free halo mirrors refreshed through the boundary transport:
    /// `(local, global, boundary edge index, receiver_is_v)`. A mirror
    /// may appear once per cross-shard link; the last delivering link
    /// wins, so any delivered link refreshes the mirror.
    routed: Vec<(usize, usize, usize, bool)>,
    /// Free halo mirrors with no link to a free member (geometric halo
    /// only): `(local, global)`. Synced directly every round — they
    /// only influence halo-side evolution during multi-iteration
    /// rounds, never a member update directly.
    ambient: Vec<(usize, usize)>,
    /// The induced sub-factor-graph, over the full spatial domain.
    sub: SpatialMrf,
}

/// A [`BpEngine`] that runs its inner engine shard-by-shard over a
/// [`ShardLayout`]. See the module docs for the execution model.
pub struct ShardedEngine<E> {
    inner: E,
    layout: Arc<ShardLayout>,
    interior_iterations: usize,
}

impl<E> ShardedEngine<E> {
    /// Wraps `inner` to execute over `layout`, running
    /// `interior_iterations` BP iterations inside each shard between
    /// boundary exchanges. `interior_iterations` must be at least 1;
    /// 1 gives the tightest flat-run equivalence, larger values trade
    /// boundary freshness for fewer synchronization points.
    pub fn new(
        inner: E,
        layout: Arc<ShardLayout>,
        interior_iterations: usize,
    ) -> Result<Self, ValidationError> {
        if interior_iterations == 0 {
            return Err(ValidationError::InvalidOption {
                option: "interior_iterations",
                value: 0.0,
                requirement: "must be at least 1 interior iteration per outer round",
            });
        }
        Ok(ShardedEngine {
            inner,
            layout,
            interior_iterations,
        })
    }

    /// Infallible variant of [`ShardedEngine::new`] for callers whose
    /// own validation already guarantees a positive iteration count:
    /// values below 1 are clamped to 1 instead of erroring.
    pub fn clamped(inner: E, layout: Arc<ShardLayout>, interior_iterations: usize) -> Self {
        ShardedEngine {
            inner,
            layout,
            interior_iterations: interior_iterations.max(1),
        }
    }

    /// The spatial layout shards execute over.
    #[must_use]
    pub fn layout(&self) -> &ShardLayout {
        &self.layout
    }

    /// Interior BP iterations per outer round.
    #[must_use]
    pub fn interior_iterations(&self) -> usize {
        self.interior_iterations
    }

    /// The wrapped flat engine.
    #[must_use]
    pub fn inner(&self) -> &E {
        &self.inner
    }
}

impl<E> ShardedEngine<E>
where
    E: BpEngine,
{
    /// Compiles the boundary graph (cross-shard edges only, global node
    /// indexing, same anchors fixed) and one [`SubGraph`] per occupied
    /// shard.
    fn compile(&self, mrf: &SpatialMrf, occupied: &[usize]) -> (SpatialMrf, Vec<SubGraph>) {
        let layout = &*self.layout;
        let n = mrf.len();
        let mut boundary = SpatialMrf::new(n, mrf.domain(), Arc::clone(mrf.unary(0)));
        for u in 0..n {
            if let Some(p) = mrf.fixed(u) {
                boundary.fix(u, p);
            }
        }
        // Boundary edge `be` is the `be`-th crossing edge in global
        // edge order; `be_of[e]` inverts that mapping so each shard can
        // find its crossing edges through member adjacency lists instead
        // of rescanning the whole edge set (which would make compilation
        // quadratic in the shard count on large deployments).
        let mut crossing = 0usize;
        let mut be_of: Vec<usize> = vec![usize::MAX; mrf.edges().len()];
        for (e, edge) in mrf.edges().iter().enumerate() {
            if layout.shard_of(edge.u) != layout.shard_of(edge.v) {
                be_of[e] = crossing;
                crossing += 1;
                boundary.add_edge(edge.u, edge.v, Arc::clone(&edge.potential));
            }
        }
        let subs = occupied
            .iter()
            .map(|&s| {
                let shard = &layout.shards()[s];
                // Locals = members ∪ geometric halo ∪ adjacency halo,
                // ascending. Closing over the factor-graph adjacency
                // means a member's neighborhood is always complete even
                // if an edge outruns the layout's halo radius.
                let mut locals: Vec<usize> = shard.members.clone();
                locals.extend_from_slice(&shard.halo);
                for &u in &shard.members {
                    for &e in mrf.edges_of(u) {
                        let v = mrf.other_end(e, u);
                        if layout.shard_of(v) != s {
                            locals.push(v);
                        }
                    }
                }
                locals.sort_unstable();
                locals.dedup();
                let mut sub =
                    SpatialMrf::new(locals.len(), mrf.domain(), Arc::clone(mrf.unary(locals[0])));
                for (i, &g) in locals.iter().enumerate() {
                    match mrf.fixed(g) {
                        Some(p) => sub.fix(i, p),
                        None => sub.set_unary(i, Arc::clone(mrf.unary(g))),
                    }
                }
                // Induced edges in ascending global edge order, gathered
                // through the locals' adjacency lists so only incident
                // edges are touched; the ascending replay preserves each
                // node's message summation order from the flat graph.
                let mut induced: Vec<usize> = locals
                    .iter()
                    .flat_map(|&g| mrf.edges_of(g).iter().copied())
                    .collect();
                induced.sort_unstable();
                induced.dedup();
                for &e in &induced {
                    let edge = &mrf.edges()[e];
                    if let (Ok(lu), Ok(lv)) =
                        (locals.binary_search(&edge.u), locals.binary_search(&edge.v))
                    {
                        sub.add_edge(lu, lv, Arc::clone(&edge.potential));
                    }
                }
                // Crossing edges incident to this shard's members, in
                // ascending boundary-edge order (`be_of` is monotone in
                // the global edge id, so sorting by edge id suffices). A
                // crossing edge has exactly one end in this shard, so a
                // member sweep finds each at most once.
                let mut routed: Vec<(usize, usize, usize, bool)> = Vec::new();
                let mut member_crossing: Vec<usize> = shard
                    .members
                    .iter()
                    .flat_map(|&u| mrf.edges_of(u).iter().copied())
                    .filter(|&e| be_of[e] != usize::MAX)
                    .collect();
                member_crossing.sort_unstable();
                member_crossing.dedup();
                for &ge in &member_crossing {
                    let edge = &mrf.edges()[ge];
                    for (member_end, foreign_end) in [(edge.u, edge.v), (edge.v, edge.u)] {
                        // A usable cross-shard link needs a free member
                        // receiver and a free foreign sender (anchor
                        // content is position, never mirrored state).
                        if layout.shard_of(member_end) == s
                            && layout.shard_of(foreign_end) != s
                            && mrf.fixed(member_end).is_none()
                            && mrf.fixed(foreign_end).is_none()
                        {
                            if let Ok(l) = locals.binary_search(&foreign_end) {
                                routed.push((l, foreign_end, be_of[ge], member_end == edge.v));
                            }
                        }
                    }
                }
                let mut has_route = vec![false; locals.len()];
                for &(l, _, _, _) in &routed {
                    has_route[l] = true;
                }
                let members: Vec<(usize, usize)> = locals
                    .iter()
                    .enumerate()
                    .filter(|&(_, &g)| layout.shard_of(g) == s)
                    .map(|(l, &g)| (l, g))
                    .collect();
                let ambient: Vec<(usize, usize)> = locals
                    .iter()
                    .enumerate()
                    .filter(|&(l, &g)| {
                        layout.shard_of(g) != s && mrf.fixed(g).is_none() && !has_route[l]
                    })
                    .map(|(l, &g)| (l, g))
                    .collect();
                SubGraph {
                    locals,
                    members,
                    routed,
                    ambient,
                    sub,
                }
            })
            .collect();
        (boundary, subs)
    }
}

impl<E> BpEngine for ShardedEngine<E>
where
    E: BpEngine + Sync,
    E::Belief: TemperBelief,
{
    type Belief = E::Belief;

    fn backend_name(&self) -> &'static str {
        match self.inner.backend_name() {
            "grid" => "sharded-grid",
            "particle" => "sharded-particle",
            "gaussian" => "sharded-gaussian",
            _ => "sharded",
        }
    }

    fn run_warm<F>(
        &self,
        mrf: &SpatialMrf,
        opts: &BpOptions,
        transport: &Transport,
        warm: WarmStart<'_, Self::Belief>,
        obs: &dyn InferenceObserver,
        mut on_iter: F,
    ) -> RunOutcome<Self::Belief>
    where
        F: FnMut(usize, &[Self::Belief]),
    {
        let layout = &*self.layout;
        assert_eq!(
            layout.len(),
            mrf.len(),
            "shard layout was built for a different node count"
        );
        let occupied: Vec<usize> = layout
            .shards()
            .iter()
            .enumerate()
            .filter(|(_, sh)| !sh.is_empty())
            .map(|(s, _)| s)
            .collect();
        if occupied.len() <= 1 {
            // Degenerate layout: the whole problem is one shard. The
            // flat engine *is* the sharded engine here — bit-identical.
            return self
                .inner
                .run_warm(mrf, opts, transport, warm, obs, on_iter);
        }

        let n = mrf.len();
        let free: Vec<bool> = (0..n).map(|u| mrf.fixed(u).is_none()).collect();
        obs.on_run_start(&RunInfo {
            backend: self.backend_name(),
            nodes: n,
            free: free.iter().filter(|&&f| f).count(),
            edges: mrf.edges().len(),
            max_iterations: opts.max_iterations,
            tolerance: opts.tolerance,
            damping: opts.damping,
            schedule: opts.schedule.name(),
            message_bytes: opts.message_bytes,
            seed: opts.seed,
        });

        let build_t = Stopwatch::start();
        let (boundary, subs) = self.compile(mrf, &occupied);
        obs.on_span(SpanKind::ModelBuild, build_t.elapsed_secs());

        // Fault state lives on the boundary graph only: interior sweeps
        // are in-memory and lossless, cross-shard links roll fates once
        // per outer round (one exchange = one "iteration" to the plan).
        let mut session: Option<TransportSession<E::Belief>> =
            transport.session(&boundary, opts.seed);

        let prior_locals: Vec<Option<Vec<E::Belief>>> = subs
            .iter()
            .map(|sg| {
                warm.prior
                    .map(|p| sg.locals.iter().map(|&g| p[g].clone()).collect())
            })
            .collect();
        // Per-shard belief arenas, reused across rounds: round r resumes
        // from round r-1's local state (mirrors refreshed in between).
        let mut states: Vec<Option<Vec<E::Belief>>> = subs
            .iter()
            .map(|sg| {
                warm.state
                    .map(|st| sg.locals.iter().map(|&g| st[g].clone()).collect())
            })
            .collect();

        let interior = self.interior_iterations;
        let rounds_total = opts.max_iterations.div_ceil(interior).max(1);
        let mut global: Vec<E::Belief> = Vec::new();
        let mut prev_means: Vec<Vec2> = Vec::new();
        let mut iterations = 0usize;
        let mut converged = false;
        let mut messages = 0u64;
        let mut pending_boundary = 0u64;

        let loop_t = Stopwatch::start();
        for round in 0..rounds_total {
            let round_t = Stopwatch::start();
            // The final round absorbs any remainder of the iteration
            // budget so total interior iterations equal the flat cap.
            let iters = interior.min(opts.max_iterations - iterations);
            let outs: Vec<RunOutcome<E::Belief>> = (0..subs.len())
                .into_par_iter()
                .map(|si| {
                    let sg = &subs[si];
                    let mut ropts = *opts;
                    ropts.max_iterations = iters;
                    // Convergence is owned by the outer loop; a shard
                    // stopping early would desynchronize the rounds.
                    ropts.tolerance = 0.0;
                    let w = WarmStart {
                        prior: prior_locals[si].as_deref(),
                        state: states[si].as_deref(),
                    };
                    self.inner.run_warm(
                        &sg.sub,
                        &ropts,
                        &Transport::perfect(),
                        w,
                        &NullObserver,
                        |_, _| {},
                    )
                })
                .collect();
            iterations += iters;
            let round_msgs: u64 =
                outs.iter().map(|o| o.bp.messages).sum::<u64>() + pending_boundary;
            pending_boundary = 0;
            messages += round_msgs;

            // Merge owned beliefs into the global arena, shard order
            // (deterministic; every node is owned by exactly one shard).
            if global.is_empty() {
                let mut pairs: Vec<(usize, E::Belief)> = Vec::with_capacity(n);
                for (sg, out) in subs.iter().zip(&outs) {
                    for &(l, g) in &sg.members {
                        pairs.push((g, out.beliefs[l].clone()));
                    }
                }
                pairs.sort_by_key(|p| p.0);
                global = pairs.into_iter().map(|(_, b)| b).collect();
            } else {
                for (sg, out) in subs.iter().zip(&outs) {
                    for &(l, g) in &sg.members {
                        global[g] = out.beliefs[l].clone();
                    }
                }
            }
            for (st, out) in states.iter_mut().zip(outs) {
                *st = Some(out.beliefs);
            }

            let means: Vec<Vec2> = global.iter().map(Belief::mean).collect();
            let max_shift = if prev_means.is_empty() {
                // No baseline yet: a run can't claim convergence off
                // its very first round.
                f64::INFINITY
            } else {
                means
                    .iter()
                    .zip(&prev_means)
                    .zip(&free)
                    .filter(|(_, &f)| f)
                    .map(|((m, p), _)| m.dist(*p))
                    .fold(0.0, f64::max)
            };
            let residuals = if obs.wants_residuals() && !prev_means.is_empty() {
                means
                    .iter()
                    .zip(&prev_means)
                    .enumerate()
                    .filter(|&(u, _)| free[u])
                    .map(|(u, (m, p))| NodeResidual {
                        node: u,
                        residual: m.dist(*p),
                        kl: None,
                    })
                    .collect()
            } else {
                Vec::new()
            };
            prev_means = means;
            obs.on_iteration(&IterationRecord {
                iteration: round,
                max_shift,
                comm: CommStats {
                    messages: round_msgs,
                    bytes: round_msgs * opts.message_bytes,
                },
                damping: opts.damping,
                schedule: opts.schedule.name(),
                secs: round_t.elapsed_secs(),
                residuals,
            });
            on_iter(round, &global);

            if opts.tolerance > 0.0 && max_shift < opts.tolerance {
                converged = true;
                break;
            }
            if round + 1 >= rounds_total {
                break;
            }

            // Boundary exchange: refresh every shard's halo mirrors from
            // the owners' fresh beliefs, through the transport.
            match session.as_mut() {
                Some(sess) => {
                    sess.begin_iteration(round, &global, obs);
                    for (si, (sg, st)) in subs.iter().zip(states.iter_mut()).enumerate() {
                        if let Some(state) = st.as_mut() {
                            let mut delivered: u64 = 0;
                            for &(l, _, be, riv) in &sg.routed {
                                if let Verdict::Deliver { alpha } = sess.verdict(be, riv) {
                                    if let Some(content) = sess.snapshot(be, riv) {
                                        state[l] = if alpha < 1.0 {
                                            content.tempered(alpha)
                                        } else {
                                            content.clone()
                                        };
                                        pending_boundary += 1;
                                        delivered += 1;
                                    }
                                }
                            }
                            for &(l, g) in &sg.ambient {
                                state[l] = global[g].clone();
                            }
                            obs.on_event(&ObsEvent::BoundaryExchange {
                                round,
                                shard: occupied[si],
                                messages: delivered,
                            });
                        }
                    }
                }
                None => {
                    for (si, (sg, st)) in subs.iter().zip(states.iter_mut()).enumerate() {
                        if let Some(state) = st.as_mut() {
                            for &(l, g, _, _) in &sg.routed {
                                state[l] = global[g].clone();
                            }
                            for &(l, g) in &sg.ambient {
                                state[l] = global[g].clone();
                            }
                            obs.on_event(&ObsEvent::BoundaryExchange {
                                round,
                                shard: occupied[si],
                                messages: sg.routed.len() as u64,
                            });
                        }
                    }
                }
            }
        }
        obs.on_span(SpanKind::MessagePassing, loop_t.elapsed_secs());
        obs.on_run_end(&RunSummary {
            iterations,
            converged,
            comm: CommStats {
                messages,
                bytes: messages * opts.message_bytes,
            },
        });
        RunOutcome {
            beliefs: global,
            bp: BpOutcome {
                iterations,
                converged,
                messages,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::GaussianBp;
    use crate::grid::GridBp;
    use crate::mrf::Schedule;
    use crate::potential::{GaussianRange, UniformBoxUnary};
    use wsnloc_geom::rng::Xoshiro256pp;
    use wsnloc_geom::Aabb;

    /// A jittered grid deployment with corner/edge anchors and
    /// radius-limited range edges — enough loops to exercise real BP.
    fn deployment(side: usize, spacing: f64, seed: u64) -> (SpatialMrf, Vec<Vec2>) {
        let extent = spacing * side as f64;
        let domain = Aabb::from_size(extent, extent);
        let mut rng = Xoshiro256pp::seed_from(seed);
        let positions: Vec<Vec2> = (0..side * side)
            .map(|i| {
                let x = (i % side) as f64 * spacing + spacing / 2.0;
                let y = (i / side) as f64 * spacing + spacing / 2.0;
                Vec2::new(
                    x + rng.range(-0.2, 0.2) * spacing,
                    y + rng.range(-0.2, 0.2) * spacing,
                )
            })
            .collect();
        let mut mrf = SpatialMrf::new(positions.len(), domain, Arc::new(UniformBoxUnary(domain)));
        for (i, &p) in positions.iter().enumerate() {
            // Anchor a sparse sub-lattice so every region is covered.
            if (i % side).is_multiple_of(3) && (i / side).is_multiple_of(3) {
                mrf.fix(i, p);
            }
        }
        let radius = spacing * 1.6;
        for u in 0..positions.len() {
            for v in (u + 1)..positions.len() {
                let d = positions[u].dist(positions[v]);
                if d <= radius {
                    mrf.add_edge(
                        u,
                        v,
                        Arc::new(GaussianRange {
                            observed: d,
                            sigma: 0.5,
                        }),
                    );
                }
            }
        }
        (mrf, positions)
    }

    fn layout_for(positions: &[Vec2], domain: Aabb, tiles: usize, radius: f64) -> Arc<ShardLayout> {
        Arc::new(ShardLayout::build(domain, tiles, tiles, positions, radius))
    }

    #[test]
    fn single_occupied_shard_is_bit_identical_to_flat() {
        let (mrf, positions) = deployment(5, 10.0, 0xA11CE);
        let layout = layout_for(&positions, mrf.domain(), 1, 16.0);
        let opts = BpOptions {
            max_iterations: 6,
            tolerance: 0.0,
            ..BpOptions::default()
        };
        let flat = GridBp::with_resolution(24);
        let sharded =
            ShardedEngine::new(GridBp::with_resolution(24), layout, 2).expect("valid config");
        let (fb, fo) = flat.run(&mrf, &opts);
        let (sb, so) = sharded.run(&mrf, &opts);
        assert_eq!(fo.iterations, so.iterations);
        for (f, s) in fb.iter().zip(&sb) {
            assert_eq!(
                f.mass(),
                s.mass(),
                "single-shard grid beliefs must be bit-identical"
            );
        }
    }

    #[test]
    fn multi_shard_grid_matches_flat_with_unit_interior_rounds() {
        // Synchronous schedule + one interior iteration per round +
        // perfect transport: member updates read exactly what the flat
        // iteration reads, in the same summation order.
        let (mrf, positions) = deployment(6, 10.0, 0xBEEF);
        let layout = layout_for(&positions, mrf.domain(), 2, 16.0);
        assert!(layout.occupied_shards() > 1);
        let opts = BpOptions {
            max_iterations: 5,
            tolerance: 0.0,
            schedule: Schedule::Synchronous,
            ..BpOptions::default()
        };
        let flat = GridBp::with_resolution(20);
        let sharded =
            ShardedEngine::new(GridBp::with_resolution(20), layout, 1).expect("valid config");
        let (fb, _) = flat.run(&mrf, &opts);
        let (sb, _) = sharded.run(&mrf, &opts);
        for (u, (f, s)) in fb.iter().zip(&sb).enumerate() {
            let d = f.mean().dist(s.mean());
            assert!(d < 1e-9, "node {u}: sharded mean drifted {d} m from flat");
        }
    }

    #[test]
    fn multi_shard_gaussian_stays_close_to_flat() {
        let (mrf, positions) = deployment(6, 10.0, 0xCAFE);
        let layout = layout_for(&positions, mrf.domain(), 2, 16.0);
        let opts = BpOptions {
            max_iterations: 12,
            tolerance: 0.0,
            ..BpOptions::default()
        };
        let flat = GaussianBp::default();
        let sharded = ShardedEngine::new(GaussianBp::default(), layout, 2).expect("valid config");
        let (fb, _) = flat.run(&mrf, &opts);
        let (sb, _) = sharded.run(&mrf, &opts);
        // The Gaussian backend keys its per-node RNG streams by local
        // index and carries 2-iteration boundary staleness, so beliefs
        // are not comparable node-for-node; the documented tolerance is
        // on localization quality.
        let mean_err = |bs: &[GaussianBelief]| -> f64 {
            let free: Vec<f64> = bs
                .iter()
                .enumerate()
                .filter(|&(u, _)| mrf.fixed(u).is_none())
                .map(|(u, b)| b.mean.dist(positions[u]))
                .collect();
            free.iter().sum::<f64>() / free.len() as f64
        };
        let fe = mean_err(&fb);
        let se = mean_err(&sb);
        assert!(fe.is_finite() && se.is_finite());
        assert!(
            se < fe * 1.2 + 1.0,
            "sharded gaussian quality regressed: flat {fe} m, sharded {se} m"
        );
        for (u, b) in sb.iter().enumerate() {
            assert!(
                b.mean.x.is_finite() && b.mean.y.is_finite(),
                "node {u}: non-finite sharded mean"
            );
        }
    }

    #[test]
    fn zero_interior_iterations_is_rejected() {
        let layout = Arc::new(ShardLayout::build(
            Aabb::from_size(10.0, 10.0),
            2,
            2,
            &[Vec2::new(1.0, 1.0)],
            2.0,
        ));
        assert!(ShardedEngine::new(GaussianBp::default(), layout, 0).is_err());
    }

    #[test]
    fn tempering_is_identity_at_alpha_one() {
        let g = GaussianBelief::isotropic(Vec2::new(1.0, 2.0), 3.0);
        let t = g.tempered(1.0);
        assert_eq!(g.cov, t.cov);
        let half = g.tempered(0.5);
        assert!((half.cov[0] - 2.0 * g.cov[0]).abs() < 1e-12);
        assert_eq!(half.mean, g.mean);

        let p = ParticleBelief::new(
            vec![Vec2::new(0.0, 0.0), Vec2::new(1.0, 0.0)],
            vec![0.9, 0.1],
        );
        let tp = p.tempered(1.0);
        assert_eq!(p.weights(), tp.weights());
        let hp = p.tempered(0.5);
        let ratio = hp.weights()[0] / hp.weights()[1];
        assert!(
            (ratio - 3.0).abs() < 1e-9,
            "0.9^0.5 / 0.1^0.5 = 3, got {ratio}"
        );
    }
}
