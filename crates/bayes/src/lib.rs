//! # wsnloc-bayes
//!
//! Bayesian-network and factor-graph inference substrate for the `wsnloc`
//! workspace, built from scratch (the calibration notes for this
//! reproduction flag Rust's Bayesian-network ecosystem as thin — this crate
//! is the replacement).
//!
//! Two layers:
//!
//! 1. **Discrete Bayesian networks** ([`discrete`]) — variables with finite
//!    cardinality, conditional probability tables, exact inference by
//!    enumeration and by variable elimination, and approximate inference by
//!    likelihood weighting. This is the textbook "Bayesian network" layer;
//!    the localization model of the paper is the continuous analogue below.
//! 2. **Spatial Markov random fields** ([`mrf`]) over 2-D positions with
//!    pluggable potentials ([`potential`]) and two interchangeable belief
//!    representations:
//!    - [`grid`]: beliefs as histograms over a discretized field — the
//!      literal finite Bayesian-network formulation; messages are truncated
//!      kernel convolutions.
//!    - [`particle`]: nonparametric (particle) beliefs with importance
//!      weighting, systematic resampling, and KDE products — the scalable
//!      formulation.
//!    - [`gaussian`]: single-Gaussian beliefs updated by EKF-style
//!      linearization — the cheap parametric ablation that shows *why* the
//!      paper's formulation is nonparametric.
//!
//! Loopy belief propagation over either representation is what the core
//! `wsnloc` crate runs to localize sensor networks.

#![warn(missing_docs)]

pub mod cellbuf;
pub mod discrete;
pub mod discrete_ext;
pub mod engine;
pub mod gaussian;
pub mod grid;
pub mod motion;
pub mod mrf;
pub mod particle;
pub mod potential;
pub mod sharded;
pub mod stencil;
pub mod transport;
pub mod validate;

pub use engine::{Belief, BpEngine, RunOutcome, WarmStart};
pub use gaussian::{GaussianBelief, GaussianBp};
pub use grid::{CoarseToFine, GridBelief, GridBp, GridPrecision};
pub use motion::MotionModel;
pub use mrf::{BpOptions, BpOptionsBuilder, BpOutcome, Schedule, SpatialMrf};
pub use particle::{ParticleBelief, ParticleBp};
pub use potential::{
    DeltaUnary, GaussianProximity, GaussianRange, GaussianUnary, MixtureUnary, PairPotential,
    UnaryPotential, UniformBoxUnary, UniformShapeUnary,
};
pub use sharded::{ShardedEngine, TemperBelief};
pub use stencil::KernelStencil;
pub use transport::Transport;
pub use validate::{DistributionAudit, GraphAudit, ValidationError};
