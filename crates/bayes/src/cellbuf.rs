//! Cell-array storage and arithmetic for the grid backend's hot loops.
//!
//! The grid engine's inner kernels (message scatter, belief products,
//! normalization) are generic over a [`Cell`] scalar so the same code runs
//! in `f64` (the default, bit-stable path) or `f32`
//! ([`crate::grid::GridPrecision::F32`], an opt-in speed/accuracy
//! trade-off: tables and belief cells halve in size, doubling the SIMD
//! lane count and cache residency). The dominant operation is the fused
//! scaled accumulate `out[i] += a · k[i]` ([`Cell::axpy`]) and its
//! reversed-kernel twin ([`Cell::axpy_rev`], used by quadrant-mirrored
//! stencils); both dispatch at runtime to AVX2+FMA kernels when the CPU
//! has them and otherwise fall back to a chunked portable loop the
//! compiler can autovectorize at the build's baseline feature level.
//!
//! This module is exposed publicly so `crates/bench` can microbenchmark
//! the kernels in isolation; it is not a stability-guaranteed API.

/// Scalar cell type for grid beliefs, messages, and kernel tables.
///
/// Implemented for `f64` (exact path: every operation reproduces the
/// engine's historical f64 arithmetic bit-for-bit) and `f32` (lossy
/// path: conversions round to nearest, subnormal tails flush toward
/// zero; the engine renormalizes derived beliefs in f64 to keep audit
/// invariants).
pub trait Cell:
    Copy
    + PartialEq
    + PartialOrd
    + Send
    + Sync
    + std::fmt::Debug
    + std::ops::Add<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Whether this cell type represents f64 values exactly. When false,
    /// beliefs derived from cell buffers are renormalized in f64 so the
    /// distribution audits see masses that sum to 1 within f64 epsilon.
    const EXACT: bool;

    /// Rounds an `f64` into this cell type.
    fn from_f64(x: f64) -> Self;
    /// Widens this cell to `f64` (exact for both implementations).
    fn to_f64(self) -> f64;
    /// Staleness tempering `self^alpha`, evaluated in f64 precision.
    fn temper(self, alpha: f64) -> Self;

    /// Converts an owned f64 vector; the identity (no copy) for `f64`.
    fn from_f64_vec(v: Vec<f64>) -> Vec<Self>;
    /// Widens a cell slice into an owned f64 vector.
    fn to_f64_vec(v: &[Self]) -> Vec<f64>;

    /// `out[i] += a · k[i]` over equal-length slices — the stencil
    /// scatter's inner loop.
    fn axpy(out: &mut [Self], a: Self, k: &[Self]);
    /// `out[i] += a · k[len − 1 − i]`: accumulate against the *reversed*
    /// kernel slice, used for the left half-row of quadrant-mirrored
    /// stencils.
    fn axpy_rev(out: &mut [Self], a: Self, k: &[Self]);
}

/// Sequential f64-accumulated sum of a cell slice. For `f64` cells this
/// is exactly `iter().sum()` in slice order, matching the engine's
/// historical normalization arithmetic.
pub(crate) fn sum_f64<C: Cell>(xs: &[C]) -> f64 {
    let mut acc = 0.0;
    for &x in xs {
        acc += x.to_f64();
    }
    acc
}

/// Normalizes a mass vector in place; a zero or non-finite total falls
/// back to uniform. For `f64` cells this replicates
/// `GridBelief::normalize` bit-for-bit (sum in slice order, then one
/// division per cell).
pub(crate) fn normalize_cells<C: Cell>(mass: &mut [C]) {
    let total = sum_f64(mass);
    if total > 0.0 && total.is_finite() {
        let t = C::from_f64(total);
        for m in mass.iter_mut() {
            *m = *m / t;
        }
    } else {
        let cells = mass.len();
        let u = C::from_f64(1.0 / cells as f64);
        mass.fill(u);
    }
}

/// Pointwise product with renormalization — the belief × message update.
/// For `f64` cells this replicates `GridBelief::product` bit-for-bit.
pub(crate) fn product_cells<C: Cell>(mass: &mut [C], other: &[C]) {
    debug_assert_eq!(mass.len(), other.len(), "grid shape mismatch");
    for (m, &o) in mass.iter_mut().zip(other) {
        *m = *m * o;
    }
    normalize_cells(mass);
}

/// Message finalization guard: a zero or non-finite message total is
/// replaced by a flat message. Returns whether the fallback fired
/// (surfaced as `ObsEvent::GridUniformFallback`).
pub(crate) fn finalize_cells<C: Cell>(msg: &mut [C]) -> bool {
    let total = sum_f64(msg);
    if total <= 0.0 || !total.is_finite() {
        msg.fill(C::ONE);
        true
    } else {
        false
    }
}

/// Staleness tempering `m^alpha` per positive cell; `alpha ≥ 1` is the
/// identity. Replicates the engine's f64 `temper_message` on f64 cells.
pub(crate) fn temper_cells<C: Cell>(msg: &mut [C], alpha: f64) {
    if alpha >= 1.0 {
        return;
    }
    let a = alpha.max(0.0);
    for m in msg.iter_mut() {
        if *m > C::ZERO {
            *m = m.temper(a);
        }
    }
}

/// Damped belief blend `new = (1 − d)·new + d·old`, renormalized.
/// Replicates the engine's f64 `damp` on f64 cells.
pub(crate) fn damp_cells<C: Cell>(new: &mut [C], old: &[C], damping: f64) {
    let keep = C::from_f64(1.0 - damping);
    let d = C::from_f64(damping);
    for (n, &o) in new.iter_mut().zip(old) {
        *n = keep * *n + d * o;
    }
    normalize_cells(new);
}

/// Portable `out[i] += a · k[i]`: fixed-width chunks of exact `zip`s so
/// the inner loop carries no bounds checks and autovectorizes at the
/// build's baseline feature level (SSE2 on x86-64 by default).
fn axpy_portable<C: Cell>(out: &mut [C], a: C, k: &[C]) {
    let n = out.len().min(k.len());
    debug_assert_eq!(out.len(), k.len());
    let (out, k) = (&mut out[..n], &k[..n]);
    for (oc, kc) in out.chunks_exact_mut(8).zip(k.chunks_exact(8)) {
        for (t, &kv) in oc.iter_mut().zip(kc) {
            *t = *t + a * kv;
        }
    }
    let tail = n - n % 8;
    for (t, &kv) in out[tail..].iter_mut().zip(&k[tail..]) {
        *t = *t + a * kv;
    }
}

/// Portable `out[i] += a · k[len − 1 − i]` (reversed kernel).
fn axpy_rev_portable<C: Cell>(out: &mut [C], a: C, k: &[C]) {
    let n = out.len().min(k.len());
    debug_assert_eq!(out.len(), k.len());
    for (t, &kv) in out[..n].iter_mut().zip(k[..n].iter().rev()) {
        *t = *t + a * kv;
    }
}

/// Runtime-dispatched AVX2+FMA kernels. The crate builds at the default
/// x86-64 baseline (SSE2), so these paths are selected per process via
/// `is_x86_feature_detected!` and reached only through that guard.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use core::arch::x86_64::*;
    use std::sync::OnceLock;

    /// Whether this CPU supports the AVX2+FMA kernels (detected once).
    pub(super) fn have_avx2_fma() -> bool {
        static FLAG: OnceLock<bool> = OnceLock::new();
        *FLAG.get_or_init(|| is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"))
    }

    /// `out[i] += a · k[i]` with 4-wide f64 FMA.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2 and FMA (gate with
    /// [`have_avx2_fma`]).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn axpy_f64(out: &mut [f64], a: f64, k: &[f64]) {
        debug_assert_eq!(out.len(), k.len());
        let n = out.len().min(k.len());
        let va = _mm256_set1_pd(a);
        let op = out.as_mut_ptr();
        let kp = k.as_ptr();
        let mut i = 0usize;
        // SAFETY: every unaligned load/store covers `[i, i + 4)` (or the
        // second lane `[i + 4, i + 8)`) with the loop condition keeping
        // the upper bound ≤ n ≤ both slice lengths.
        unsafe {
            while i + 8 <= n {
                let o0 = _mm256_loadu_pd(op.add(i));
                let o1 = _mm256_loadu_pd(op.add(i + 4));
                let k0 = _mm256_loadu_pd(kp.add(i));
                let k1 = _mm256_loadu_pd(kp.add(i + 4));
                _mm256_storeu_pd(op.add(i), _mm256_fmadd_pd(va, k0, o0));
                _mm256_storeu_pd(op.add(i + 4), _mm256_fmadd_pd(va, k1, o1));
                i += 8;
            }
            while i + 4 <= n {
                let o0 = _mm256_loadu_pd(op.add(i));
                let k0 = _mm256_loadu_pd(kp.add(i));
                _mm256_storeu_pd(op.add(i), _mm256_fmadd_pd(va, k0, o0));
                i += 4;
            }
        }
        // Scalar FMA tail: same fused rounding as the vector body.
        for j in i..n {
            out[j] = a.mul_add(k[j], out[j]);
        }
    }

    /// `out[i] += a · k[n − 1 − i]` with 4-wide f64 FMA over a
    /// lane-reversed kernel load.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2 and FMA (gate with
    /// [`have_avx2_fma`]).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn axpy_rev_f64(out: &mut [f64], a: f64, k: &[f64]) {
        debug_assert_eq!(out.len(), k.len());
        let n = out.len().min(k.len());
        let va = _mm256_set1_pd(a);
        let op = out.as_mut_ptr();
        let kp = k.as_ptr();
        let mut i = 0usize;
        // SAFETY: stores cover `[i, i + 4)` with `i + 4 ≤ n`; the kernel
        // load covers `[n − 4 − i, n − i)`, in bounds for the same reason.
        unsafe {
            while i + 4 <= n {
                let o0 = _mm256_loadu_pd(op.add(i));
                let kk = _mm256_loadu_pd(kp.add(n - 4 - i));
                // Reverse the 4 lanes: imm8 0b00_01_10_11 selects 3,2,1,0.
                let kr = _mm256_permute4x64_pd(kk, 0b0001_1011);
                _mm256_storeu_pd(op.add(i), _mm256_fmadd_pd(va, kr, o0));
                i += 4;
            }
        }
        for j in i..n {
            out[j] = a.mul_add(k[n - 1 - j], out[j]);
        }
    }

    /// `out[i] += a · k[i]` with 8-wide f32 FMA.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2 and FMA (gate with
    /// [`have_avx2_fma`]).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn axpy_f32(out: &mut [f32], a: f32, k: &[f32]) {
        debug_assert_eq!(out.len(), k.len());
        let n = out.len().min(k.len());
        let va = _mm256_set1_ps(a);
        let op = out.as_mut_ptr();
        let kp = k.as_ptr();
        let mut i = 0usize;
        // SAFETY: every unaligned load/store covers `[i, i + 8)` (or the
        // second lane `[i + 8, i + 16)`) with the loop condition keeping
        // the upper bound ≤ n ≤ both slice lengths.
        unsafe {
            while i + 16 <= n {
                let o0 = _mm256_loadu_ps(op.add(i));
                let o1 = _mm256_loadu_ps(op.add(i + 8));
                let k0 = _mm256_loadu_ps(kp.add(i));
                let k1 = _mm256_loadu_ps(kp.add(i + 8));
                _mm256_storeu_ps(op.add(i), _mm256_fmadd_ps(va, k0, o0));
                _mm256_storeu_ps(op.add(i + 8), _mm256_fmadd_ps(va, k1, o1));
                i += 16;
            }
            while i + 8 <= n {
                let o0 = _mm256_loadu_ps(op.add(i));
                let k0 = _mm256_loadu_ps(kp.add(i));
                _mm256_storeu_ps(op.add(i), _mm256_fmadd_ps(va, k0, o0));
                i += 8;
            }
        }
        for j in i..n {
            out[j] = a.mul_add(k[j], out[j]);
        }
    }

    /// `out[i] += a · k[n − 1 − i]` with 8-wide f32 FMA over a
    /// lane-reversed kernel load.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2 and FMA (gate with
    /// [`have_avx2_fma`]).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn axpy_rev_f32(out: &mut [f32], a: f32, k: &[f32]) {
        debug_assert_eq!(out.len(), k.len());
        let n = out.len().min(k.len());
        let va = _mm256_set1_ps(a);
        let rev = _mm256_setr_epi32(7, 6, 5, 4, 3, 2, 1, 0);
        let op = out.as_mut_ptr();
        let kp = k.as_ptr();
        let mut i = 0usize;
        // SAFETY: stores cover `[i, i + 8)` with `i + 8 ≤ n`; the kernel
        // load covers `[n − 8 − i, n − i)`, in bounds for the same reason.
        unsafe {
            while i + 8 <= n {
                let o0 = _mm256_loadu_ps(op.add(i));
                let kk = _mm256_loadu_ps(kp.add(n - 8 - i));
                let kr = _mm256_permutevar8x32_ps(kk, rev);
                _mm256_storeu_ps(op.add(i), _mm256_fmadd_ps(va, kr, o0));
                i += 8;
            }
        }
        for j in i..n {
            out[j] = a.mul_add(k[n - 1 - j], out[j]);
        }
    }
}

impl Cell for f64 {
    const ZERO: f64 = 0.0;
    const ONE: f64 = 1.0;
    const EXACT: bool = true;

    fn from_f64(x: f64) -> f64 {
        x
    }

    fn to_f64(self) -> f64 {
        self
    }

    fn temper(self, alpha: f64) -> f64 {
        self.powf(alpha)
    }

    fn from_f64_vec(v: Vec<f64>) -> Vec<f64> {
        v
    }

    fn to_f64_vec(v: &[f64]) -> Vec<f64> {
        v.to_vec()
    }

    fn axpy(out: &mut [f64], a: f64, k: &[f64]) {
        #[cfg(target_arch = "x86_64")]
        if x86::have_avx2_fma() {
            // SAFETY: guarded by runtime AVX2+FMA detection.
            unsafe { x86::axpy_f64(out, a, k) };
            return;
        }
        axpy_portable(out, a, k);
    }

    fn axpy_rev(out: &mut [f64], a: f64, k: &[f64]) {
        #[cfg(target_arch = "x86_64")]
        if x86::have_avx2_fma() {
            // SAFETY: guarded by runtime AVX2+FMA detection.
            unsafe { x86::axpy_rev_f64(out, a, k) };
            return;
        }
        axpy_rev_portable(out, a, k);
    }
}

impl Cell for f32 {
    const ZERO: f32 = 0.0;
    const ONE: f32 = 1.0;
    const EXACT: bool = false;

    fn from_f64(x: f64) -> f32 {
        x as f32
    }

    fn to_f64(self) -> f64 {
        f64::from(self)
    }

    fn temper(self, alpha: f64) -> f32 {
        f64::from(self).powf(alpha) as f32
    }

    fn from_f64_vec(v: Vec<f64>) -> Vec<f32> {
        v.into_iter().map(|x| x as f32).collect()
    }

    fn to_f64_vec(v: &[f32]) -> Vec<f64> {
        v.iter().map(|&x| f64::from(x)).collect()
    }

    fn axpy(out: &mut [f32], a: f32, k: &[f32]) {
        #[cfg(target_arch = "x86_64")]
        if x86::have_avx2_fma() {
            // SAFETY: guarded by runtime AVX2+FMA detection.
            unsafe { x86::axpy_f32(out, a, k) };
            return;
        }
        axpy_portable(out, a, k);
    }

    fn axpy_rev(out: &mut [f32], a: f32, k: &[f32]) {
        #[cfg(target_arch = "x86_64")]
        if x86::have_avx2_fma() {
            // SAFETY: guarded by runtime AVX2+FMA detection.
            unsafe { x86::axpy_rev_f32(out, a, k) };
            return;
        }
        axpy_rev_portable(out, a, k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_axpy(out: &mut [f64], a: f64, k: &[f64]) {
        for (t, &kv) in out.iter_mut().zip(k) {
            *t += a * kv;
        }
    }

    #[test]
    fn axpy_matches_reference_at_all_lengths() {
        // Cover every tail-length case around the 4/8/16-lane boundaries.
        for n in 0..40 {
            let k: Vec<f64> = (0..n).map(|i| 0.1 + i as f64 * 0.37).collect();
            let mut out: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
            let mut expect = out.clone();
            f64::axpy(&mut out, 0.625, &k);
            reference_axpy(&mut expect, 0.625, &k);
            for (i, (a, b)) in out.iter().zip(&expect).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-15 * b.abs().max(1.0),
                    "n={n} i={i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn axpy_rev_reverses_kernel() {
        for n in 0..40 {
            let k: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
            let mut out = vec![0.0f64; n];
            f64::axpy_rev(&mut out, 2.0, &k);
            for i in 0..n {
                let want = 2.0 * k[n - 1 - i];
                assert!(
                    (out[i] - want).abs() <= 1e-12,
                    "n={n} i={i}: {} vs {want}",
                    out[i]
                );
            }
        }
    }

    #[test]
    fn axpy_f32_matches_f64_within_single_precision() {
        for n in [0usize, 1, 7, 8, 9, 15, 16, 17, 31, 33] {
            let k64: Vec<f64> = (0..n).map(|i| 0.01 + i as f64 * 0.013).collect();
            let k32: Vec<f32> = k64.iter().map(|&x| x as f32).collect();
            let mut out32 = vec![0.5f32; n];
            let mut out64 = vec![0.5f64; n];
            f32::axpy(&mut out32, 0.375, &k32);
            f64::axpy(&mut out64, 0.375, &k64);
            for i in 0..n {
                assert!(
                    (f64::from(out32[i]) - out64[i]).abs() <= 1e-5,
                    "n={n} i={i}"
                );
            }
        }
    }

    #[test]
    fn axpy_rev_f32_matches_portable() {
        for n in [0usize, 1, 5, 8, 9, 16, 23] {
            let k: Vec<f32> = (0..n).map(|i| i as f32 * 0.5 + 1.0).collect();
            let mut out = vec![0.0f32; n];
            let mut expect = vec![0.0f32; n];
            f32::axpy_rev(&mut out, 1.5, &k);
            axpy_rev_portable(&mut expect, 1.5, &k);
            for i in 0..n {
                assert!((out[i] - expect[i]).abs() <= 1e-4, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn normalize_replicates_grid_belief_semantics() {
        let mut m = vec![1.0f64, 3.0, 4.0];
        normalize_cells(&mut m);
        assert_eq!(m, vec![1.0 / 8.0, 3.0 / 8.0, 4.0 / 8.0]);
        // Zero total: uniform fallback.
        let mut z = vec![0.0f64; 4];
        normalize_cells(&mut z);
        assert_eq!(z, vec![0.25; 4]);
        // Non-finite total: uniform fallback.
        let mut nan = vec![f64::NAN, 1.0];
        normalize_cells(&mut nan);
        assert_eq!(nan, vec![0.5, 0.5]);
    }

    #[test]
    fn finalize_flags_collapse() {
        let mut ok = vec![0.0f64, 2.0];
        assert!(!finalize_cells(&mut ok));
        let mut dead = vec![0.0f64, 0.0];
        assert!(finalize_cells(&mut dead));
        assert_eq!(dead, vec![1.0, 1.0]);
    }

    #[test]
    fn temper_flattens_toward_one() {
        let mut m = vec![0.25f64, 0.0, 1.0];
        temper_cells(&mut m, 0.5);
        assert_eq!(m, vec![0.5, 0.0, 1.0]);
        let mut id = vec![0.25f64];
        temper_cells(&mut id, 1.0);
        assert_eq!(id, vec![0.25]);
    }
}
