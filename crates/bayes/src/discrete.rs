//! Discrete Bayesian networks.
//!
//! A classic directed graphical model over finite-cardinality variables:
//! nodes carry conditional probability tables (CPTs) over their parents,
//! and the joint factorizes as `P(x) = Π_i P(x_i | pa(x_i))`.
//!
//! Three inference routines with increasing scalability:
//! - [`BayesNet::query_enumeration`] — exact, by summing the full joint;
//!   exponential, the gold standard for tests.
//! - [`BayesNet::query_variable_elimination`] — exact, by factor
//!   multiplication and marginalization in a given order.
//! - [`BayesNet::query_likelihood_weighting`] — approximate, by weighted
//!   forward sampling.
//!
//! The continuous localization model in [`crate::mrf`] is the spatial
//! analogue of this machinery; keeping the discrete layer here both grounds
//! the "Bayesian network" terminology of the paper and gives the workspace a
//! reusable general-purpose BN library.

use crate::validate::{self, GraphAudit, ValidationError};
use std::collections::BTreeMap;
use wsnloc_geom::rng::Xoshiro256pp;
use wsnloc_obs::Stopwatch;
use wsnloc_obs::{InferenceObserver, ObsEvent, SpanKind};

/// Identifier of a variable within a [`BayesNet`].
pub type VarId = usize;

/// A discrete variable: a name and the number of states it can take.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Variable {
    /// Human-readable name (unique within a network).
    pub name: String,
    /// Number of states (≥ 1); states are `0..cardinality`.
    pub cardinality: usize,
}

/// A node's conditional probability table.
///
/// `table[row * cardinality + state]` is `P(state | parent assignment row)`,
/// where parent rows enumerate parent states in row-major order with the
/// *last* parent varying fastest.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Cpt {
    /// Parent variable ids, in the order the table rows are indexed by.
    pub parents: Vec<VarId>,
    /// Flattened probability rows.
    pub table: Vec<f64>,
}

/// A directed acyclic Bayesian network over discrete variables.
///
/// ```
/// use wsnloc_bayes::discrete::{BayesNet, Cpt, Variable};
/// // Rain → WetGrass.
/// let net = BayesNet::new(
///     vec![
///         Variable { name: "Rain".into(), cardinality: 2 },
///         Variable { name: "WetGrass".into(), cardinality: 2 },
///     ],
///     vec![
///         Cpt { parents: vec![], table: vec![0.8, 0.2] },
///         Cpt { parents: vec![0], table: vec![0.9, 0.1, 0.2, 0.8] },
///     ],
/// );
/// // Observing wet grass raises the rain posterior above its 0.2 prior.
/// let posterior = net.query_enumeration(0, &[(1, 1)].into());
/// assert!(posterior[1] > 0.2);
/// ```
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BayesNet {
    variables: Vec<Variable>,
    cpts: Vec<Cpt>,
    /// Topological order (parents before children) — recomputed on build.
    order: Vec<VarId>,
}

/// A (partial) assignment of states to variables.
pub type Evidence = BTreeMap<VarId, usize>;

impl BayesNet {
    /// Builds a network from variables and their CPTs.
    ///
    /// Validates acyclicity, table sizes, and row normalization (each row
    /// must sum to 1 within 1e-9). Panics on violations — network structure
    /// is programmer input, not runtime data. Use [`BayesNet::try_new`] to
    /// validate untrusted structure without panicking.
    pub fn new(variables: Vec<Variable>, cpts: Vec<Cpt>) -> Self {
        match BayesNet::try_new(variables, cpts) {
            Ok(net) => net,
            Err(e) => validate::fail("BayesNet::new", &e),
        }
    }

    /// Builds a network from variables and their CPTs, returning a typed
    /// [`ValidationError`] instead of panicking when the structure is
    /// invalid: dangling or self parents, wrong table sizes, denormalized
    /// or non-finite rows, and cyclic parent relations are all rejected.
    pub fn try_new(variables: Vec<Variable>, cpts: Vec<Cpt>) -> Result<Self, ValidationError> {
        if variables.len() != cpts.len() {
            return Err(ValidationError::EmptyDistribution {
                context: format!(
                    "{} variables but {} CPTs (need one CPT per variable)",
                    variables.len(),
                    cpts.len()
                ),
            });
        }
        let cards: Vec<usize> = variables.iter().map(|v| v.cardinality).collect();
        GraphAudit.check_cpts(&cards, &cpts, 1e-9)?;
        let order =
            topological_order(variables.len(), &cpts).ok_or(ValidationError::CyclicNetwork)?;
        Ok(BayesNet {
            variables,
            cpts,
            order,
        })
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.variables.len()
    }

    /// `true` iff the network has no variables.
    pub fn is_empty(&self) -> bool {
        self.variables.is_empty()
    }

    /// The variables, indexed by [`VarId`].
    pub fn variables(&self) -> &[Variable] {
        &self.variables
    }

    /// Looks a variable up by name.
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.variables.iter().position(|v| v.name == name)
    }

    /// The conditional probability table of a variable.
    pub fn cpt(&self, v: VarId) -> &Cpt {
        &self.cpts[v]
    }

    /// Row index into a CPT for a full assignment.
    fn cpt_row(&self, var: VarId, assignment: &[usize]) -> usize {
        let mut row = 0;
        for &p in &self.cpts[var].parents {
            row = row * self.variables[p].cardinality + assignment[p];
        }
        row
    }

    /// `P(var = state | parents as in assignment)`.
    pub fn local_prob(&self, var: VarId, state: usize, assignment: &[usize]) -> f64 {
        let card = self.variables[var].cardinality;
        let row = self.cpt_row(var, assignment);
        self.cpts[var].table[row * card + state]
    }

    /// Joint probability of a complete assignment.
    pub fn joint_prob(&self, assignment: &[usize]) -> f64 {
        assert_eq!(assignment.len(), self.len(), "assignment must be complete");
        (0..self.len())
            .map(|v| self.local_prob(v, assignment[v], assignment))
            .product()
    }

    /// Exact posterior `P(query | evidence)` by full-joint enumeration.
    /// Exponential in the number of variables — use for tests and small nets.
    pub fn query_enumeration(&self, query: VarId, evidence: &Evidence) -> Vec<f64> {
        let card = self.variables[query].cardinality;
        let mut result = vec![0.0; card];
        let mut assignment = vec![0usize; self.len()];
        self.enumerate_all(0, &mut assignment, evidence, query, &mut result);
        normalize(&mut result);
        audit_posterior("BayesNet::query_enumeration", &result);
        result
    }

    fn enumerate_all(
        &self,
        depth: usize,
        assignment: &mut Vec<usize>,
        evidence: &Evidence,
        query: VarId,
        result: &mut [f64],
    ) {
        if depth == self.len() {
            let p = self.joint_prob(assignment);
            result[assignment[query]] += p;
            return;
        }
        if let Some(&fixed) = evidence.get(&depth) {
            assignment[depth] = fixed;
            self.enumerate_all(depth + 1, assignment, evidence, query, result);
        } else {
            for state in 0..self.variables[depth].cardinality {
                assignment[depth] = state;
                self.enumerate_all(depth + 1, assignment, evidence, query, result);
            }
        }
    }

    /// Exact posterior `P(query | evidence)` by variable elimination, using
    /// the reverse topological order as the elimination order.
    pub fn query_variable_elimination(&self, query: VarId, evidence: &Evidence) -> Vec<f64> {
        // Build one factor per CPT, reduced by evidence.
        let mut factors: Vec<Factor> = (0..self.len())
            .map(|v| self.cpt_factor(v).reduce(evidence, &self.variables))
            .collect();

        // Eliminate hidden variables in reverse topological order.
        for &v in self.order.iter().rev() {
            if v == query || evidence.contains_key(&v) {
                continue;
            }
            let (touching, rest): (Vec<Factor>, Vec<Factor>) =
                factors.into_iter().partition(|f| f.vars.contains(&v));
            factors = rest;
            if touching.is_empty() {
                continue;
            }
            let mut product = touching[0].clone();
            for f in &touching[1..] {
                product = product.multiply(f, &self.variables);
            }
            factors.push(product.sum_out(v, &self.variables));
        }

        // The query factor is never eliminated, so the reduce always sees at
        // least one factor; keep a uniform fallback rather than panicking.
        let mut result = match factors
            .into_iter()
            .reduce(|a, b| a.multiply(&b, &self.variables))
        {
            Some(product) => product,
            None => Factor {
                vars: vec![query],
                values: vec![1.0; self.variables[query].cardinality],
            },
        };
        // The remaining factor is over the query alone.
        assert_eq!(result.vars, vec![query], "elimination left extra vars");
        normalize(&mut result.values);
        audit_posterior("BayesNet::query_variable_elimination", &result.values);
        result.values
    }

    /// Approximate posterior by likelihood weighting with `samples` draws.
    pub fn query_likelihood_weighting(
        &self,
        query: VarId,
        evidence: &Evidence,
        samples: usize,
        rng: &mut Xoshiro256pp,
    ) -> Vec<f64> {
        let card = self.variables[query].cardinality;
        let mut result = vec![0.0; card];
        let mut assignment = vec![0usize; self.len()];
        for _ in 0..samples {
            let mut weight = 1.0;
            for &v in &self.order {
                if let Some(&fixed) = evidence.get(&v) {
                    assignment[v] = fixed;
                    weight *= self.local_prob(v, fixed, &assignment);
                } else {
                    // Sample from the local conditional.
                    let c = self.variables[v].cardinality;
                    let row = self.cpt_row(v, &assignment);
                    let probs = &self.cpts[v].table[row * c..(row + 1) * c];
                    // CPT rows are normalized (enforced by `try_new`).
                    assignment[v] = rng.weighted_index(probs).unwrap_or(0);
                }
            }
            result[assignment[query]] += weight;
        }
        normalize(&mut result);
        result
    }

    /// Like [`BayesNet::query_enumeration`], additionally reporting the
    /// query as an [`ObsEvent::DiscreteQuery`] plus a timing span.
    pub fn query_enumeration_observed(
        &self,
        query: VarId,
        evidence: &Evidence,
        obs: &dyn InferenceObserver,
    ) -> Vec<f64> {
        let start = Stopwatch::start();
        let result = self.query_enumeration(query, evidence);
        obs.on_event(&ObsEvent::DiscreteQuery {
            method: "enumeration",
            variables: self.len(),
            samples: 0,
        });
        obs.on_span(SpanKind::MessagePassing, start.elapsed_secs());
        result
    }

    /// Like [`BayesNet::query_variable_elimination`], additionally
    /// reporting the query as an [`ObsEvent::DiscreteQuery`] plus a timing
    /// span.
    pub fn query_variable_elimination_observed(
        &self,
        query: VarId,
        evidence: &Evidence,
        obs: &dyn InferenceObserver,
    ) -> Vec<f64> {
        let start = Stopwatch::start();
        let result = self.query_variable_elimination(query, evidence);
        obs.on_event(&ObsEvent::DiscreteQuery {
            method: "variable_elimination",
            variables: self.len(),
            samples: 0,
        });
        obs.on_span(SpanKind::MessagePassing, start.elapsed_secs());
        result
    }

    /// Like [`BayesNet::query_likelihood_weighting`], additionally
    /// reporting the query (with its sample count) as an
    /// [`ObsEvent::DiscreteQuery`] plus a timing span.
    pub fn query_likelihood_weighting_observed(
        &self,
        query: VarId,
        evidence: &Evidence,
        samples: usize,
        rng: &mut Xoshiro256pp,
        obs: &dyn InferenceObserver,
    ) -> Vec<f64> {
        let start = Stopwatch::start();
        let result = self.query_likelihood_weighting(query, evidence, samples, rng);
        obs.on_event(&ObsEvent::DiscreteQuery {
            method: "likelihood_weighting",
            variables: self.len(),
            samples: samples as u64,
        });
        obs.on_span(SpanKind::MessagePassing, start.elapsed_secs());
        result
    }

    /// One forward (ancestral) sample of all variables.
    pub fn sample(&self, rng: &mut Xoshiro256pp) -> Vec<usize> {
        let mut assignment = vec![0usize; self.len()];
        for &v in &self.order {
            let c = self.variables[v].cardinality;
            let row = self.cpt_row(v, &assignment);
            let probs = &self.cpts[v].table[row * c..(row + 1) * c];
            // CPT rows are normalized (enforced by `try_new`).
            assignment[v] = rng.weighted_index(probs).unwrap_or(0);
        }
        assignment
    }

    /// The factor representation of a node's CPT (over parents + itself).
    fn cpt_factor(&self, v: VarId) -> Factor {
        let mut vars = self.cpts[v].parents.clone();
        vars.push(v);
        Factor {
            vars,
            values: self.cpts[v].table.clone(),
        }
    }
}

fn normalize(xs: &mut [f64]) {
    let total: f64 = xs.iter().sum();
    if total > 0.0 {
        for x in xs.iter_mut() {
            *x /= total;
        }
    }
}

/// Debug/strict-mode audit of a query result. All-zero posteriors are
/// allowed — they mean the evidence has zero probability, which `normalize`
/// deliberately leaves untouched.
fn audit_posterior(context: &str, posterior: &[f64]) {
    validate::enforce(context, || {
        if !posterior.iter().any(|&p| p > 0.0) {
            return Ok(());
        }
        crate::validate::DistributionAudit::default().check_masses("posterior", posterior)
    });
}

fn topological_order(n: usize, cpts: &[Cpt]) -> Option<Vec<VarId>> {
    let mut indegree = vec![0usize; n];
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (child, cpt) in cpts.iter().enumerate() {
        for &p in &cpt.parents {
            children[p].push(child);
            indegree[child] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&v| indegree[v] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop() {
        order.push(v);
        for &c in &children[v] {
            indegree[c] -= 1;
            if indegree[c] == 0 {
                queue.push(c);
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// A potential over a set of variables, stored in row-major order with the
/// *last* variable in `vars` varying fastest.
#[derive(Debug, Clone, PartialEq)]
struct Factor {
    vars: Vec<VarId>,
    values: Vec<f64>,
}

impl Factor {
    fn stride_index(&self, assignment: &BTreeMap<VarId, usize>, variables: &[Variable]) -> usize {
        let mut idx = 0;
        for &v in &self.vars {
            idx = idx * variables[v].cardinality + assignment[&v];
        }
        idx
    }

    /// Drops evidence variables by slicing the table at their observed
    /// states. Enumerates assignments of the original factor (last variable
    /// fastest) and keeps the entries consistent with the evidence.
    fn reduce(&self, evidence: &Evidence, variables: &[Variable]) -> Factor {
        if !self.vars.iter().any(|v| evidence.contains_key(v)) {
            return self.clone();
        }
        let kept: Vec<VarId> = self
            .vars
            .iter()
            .copied()
            .filter(|v| !evidence.contains_key(v))
            .collect();
        let total: usize = self
            .vars
            .iter()
            .map(|&v| variables[v].cardinality)
            .product();
        let mut assignment: BTreeMap<VarId, usize> = BTreeMap::new();
        let mut values = Vec::new();
        for flat in 0..total {
            let mut rem = flat;
            for &v in self.vars.iter().rev() {
                assignment.insert(v, rem % variables[v].cardinality);
                rem /= variables[v].cardinality;
            }
            if self
                .vars
                .iter()
                .all(|v| evidence.get(v).is_none_or(|&e| assignment[v] == e))
            {
                values.push(self.values[flat]);
            }
        }
        Factor { vars: kept, values }
    }

    fn multiply(&self, other: &Factor, variables: &[Variable]) -> Factor {
        let mut vars = self.vars.clone();
        for &v in &other.vars {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        let total: usize = vars.iter().map(|&v| variables[v].cardinality).product();
        let mut values = Vec::with_capacity(total);
        let mut assignment: BTreeMap<VarId, usize> = BTreeMap::new();
        for flat in 0..total {
            let mut rem = flat;
            for &v in vars.iter().rev() {
                assignment.insert(v, rem % variables[v].cardinality);
                rem /= variables[v].cardinality;
            }
            let a = self.values[self.stride_index(&assignment, variables)];
            let b = other.values[other.stride_index(&assignment, variables)];
            values.push(a * b);
        }
        Factor { vars, values }
    }

    fn sum_out(&self, var: VarId, variables: &[Variable]) -> Factor {
        let vars: Vec<VarId> = self.vars.iter().copied().filter(|&v| v != var).collect();
        let total: usize = vars.iter().map(|&v| variables[v].cardinality).product();
        let mut values = vec![0.0; total.max(1)];
        let mut assignment: BTreeMap<VarId, usize> = BTreeMap::new();
        let full: usize = self
            .vars
            .iter()
            .map(|&v| variables[v].cardinality)
            .product();
        for flat in 0..full {
            let mut rem = flat;
            for &v in self.vars.iter().rev() {
                assignment.insert(v, rem % variables[v].cardinality);
                rem /= variables[v].cardinality;
            }
            let mut idx = 0;
            for &v in &vars {
                idx = idx * variables[v].cardinality + assignment[&v];
            }
            values[idx] += self.values[flat];
        }
        Factor { vars, values }
    }
}

/// Convenience free-function alias for
/// [`BayesNet::query_variable_elimination`].
pub fn variable_elimination(net: &BayesNet, query: VarId, evidence: &Evidence) -> Vec<f64> {
    net.query_variable_elimination(query, evidence)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic sprinkler network: Cloudy → Sprinkler, Cloudy → Rain,
    /// (Sprinkler, Rain) → WetGrass.
    fn sprinkler() -> BayesNet {
        let variables = vec![
            Variable {
                name: "Cloudy".into(),
                cardinality: 2,
            },
            Variable {
                name: "Sprinkler".into(),
                cardinality: 2,
            },
            Variable {
                name: "Rain".into(),
                cardinality: 2,
            },
            Variable {
                name: "WetGrass".into(),
                cardinality: 2,
            },
        ];
        // State 1 = true, state 0 = false.
        let cpts = vec![
            Cpt {
                parents: vec![],
                table: vec![0.5, 0.5],
            },
            Cpt {
                parents: vec![0],
                table: vec![
                    0.5, 0.5, // ¬cloudy: P(¬s), P(s)
                    0.9, 0.1, // cloudy
                ],
            },
            Cpt {
                parents: vec![0],
                table: vec![
                    0.8, 0.2, // ¬cloudy
                    0.2, 0.8, // cloudy
                ],
            },
            Cpt {
                parents: vec![1, 2],
                table: vec![
                    1.0, 0.0, // ¬s, ¬r
                    0.1, 0.9, // ¬s, r
                    0.1, 0.9, // s, ¬r
                    0.01, 0.99, // s, r
                ],
            },
        ];
        BayesNet::new(variables, cpts)
    }

    #[test]
    fn joint_probability_factorizes() {
        let net = sprinkler();
        // P(cloudy, ¬sprinkler, rain, wet) = 0.5 · 0.9 · 0.8 · 0.9 = 0.324.
        let p = net.joint_prob(&[1, 0, 1, 1]);
        assert!((p - 0.324).abs() < 1e-12, "joint {p}");
    }

    #[test]
    fn enumeration_matches_textbook_posterior() {
        let net = sprinkler();
        // P(Rain | WetGrass = true) ≈ 0.708 in the classic parameterization.
        let evidence: Evidence = [(3, 1)].into();
        let posterior = net.query_enumeration(2, &evidence);
        assert!(
            (posterior[1] - 0.7079).abs() < 1e-3,
            "posterior {posterior:?}"
        );
        assert!((posterior[0] + posterior[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn variable_elimination_matches_enumeration() {
        let net = sprinkler();
        for query in 0..4 {
            for evidence in [
                Evidence::new(),
                [(3usize, 1usize)].into(),
                [(0, 1), (3, 1)].into(),
                [(1, 0)].into(),
            ] {
                if evidence.contains_key(&query) {
                    continue;
                }
                let e = net.query_enumeration(query, &evidence);
                let v = variable_elimination(&net, query, &evidence);
                for (a, b) in e.iter().zip(&v) {
                    assert!(
                        (a - b).abs() < 1e-9,
                        "query {query}, evidence {evidence:?}: {e:?} vs {v:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn likelihood_weighting_converges() {
        let net = sprinkler();
        let evidence: Evidence = [(3usize, 1usize)].into();
        let exact = net.query_enumeration(2, &evidence);
        let mut rng = Xoshiro256pp::seed_from(17);
        let approx = net.query_likelihood_weighting(2, &evidence, 200_000, &mut rng);
        assert!(
            (approx[1] - exact[1]).abs() < 0.01,
            "exact {exact:?} vs approx {approx:?}"
        );
    }

    #[test]
    fn prior_query_without_evidence() {
        let net = sprinkler();
        let prior = net.query_enumeration(2, &Evidence::new());
        // P(Rain) = 0.5·0.2 + 0.5·0.8 = 0.5.
        assert!((prior[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn forward_samples_match_marginals() {
        let net = sprinkler();
        let mut rng = Xoshiro256pp::seed_from(23);
        let n = 100_000;
        let rain = (0..n).filter(|_| net.sample(&mut rng)[2] == 1).count();
        let frac = rain as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "rain fraction {frac}");
    }

    #[test]
    fn chain_network_inference() {
        // A → B → C, each binary, noisy copies.
        let flip = |p: f64| vec![1.0 - p, p, p, 1.0 - p];
        let variables = vec![
            Variable {
                name: "A".into(),
                cardinality: 2,
            },
            Variable {
                name: "B".into(),
                cardinality: 2,
            },
            Variable {
                name: "C".into(),
                cardinality: 2,
            },
        ];
        let cpts = vec![
            Cpt {
                parents: vec![],
                table: vec![0.7, 0.3],
            },
            Cpt {
                parents: vec![0],
                table: flip(0.1),
            },
            Cpt {
                parents: vec![1],
                table: flip(0.1),
            },
        ];
        let net = BayesNet::new(variables, cpts);
        // Observing C = 1 should raise P(A = 1) above its prior.
        let prior = net.query_enumeration(0, &Evidence::new());
        let posterior = net.query_enumeration(0, &[(2usize, 1usize)].into());
        assert!(posterior[1] > prior[1]);
        // VE agrees.
        let ve = variable_elimination(&net, 0, &[(2usize, 1usize)].into());
        assert!((ve[1] - posterior[1]).abs() < 1e-9);
    }

    #[test]
    fn var_by_name_lookup() {
        let net = sprinkler();
        assert_eq!(net.var_by_name("Rain"), Some(2));
        assert_eq!(net.var_by_name("Nope"), None);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cyclic_network_rejected() {
        let variables = vec![
            Variable {
                name: "A".into(),
                cardinality: 2,
            },
            Variable {
                name: "B".into(),
                cardinality: 2,
            },
        ];
        let cpts = vec![
            Cpt {
                parents: vec![1],
                table: vec![0.5, 0.5, 0.5, 0.5],
            },
            Cpt {
                parents: vec![0],
                table: vec![0.5, 0.5, 0.5, 0.5],
            },
        ];
        let _ = BayesNet::new(variables, cpts);
    }

    #[test]
    #[should_panic(expected = "differs from 1")]
    fn unnormalized_cpt_rejected() {
        let variables = vec![Variable {
            name: "A".into(),
            cardinality: 2,
        }];
        let cpts = vec![Cpt {
            parents: vec![],
            table: vec![0.5, 0.6],
        }];
        let _ = BayesNet::new(variables, cpts);
    }

    #[test]
    #[should_panic(expected = "wrong size")]
    fn wrong_table_size_rejected() {
        let variables = vec![
            Variable {
                name: "A".into(),
                cardinality: 2,
            },
            Variable {
                name: "B".into(),
                cardinality: 2,
            },
        ];
        let cpts = vec![
            Cpt {
                parents: vec![],
                table: vec![0.5, 0.5],
            },
            Cpt {
                parents: vec![0],
                table: vec![0.5, 0.5],
            }, // needs 4
        ];
        let _ = BayesNet::new(variables, cpts);
    }

    #[test]
    fn three_state_variables() {
        // Ternary root, binary child whose distribution depends on the root.
        let variables = vec![
            Variable {
                name: "Weather".into(),
                cardinality: 3,
            },
            Variable {
                name: "Umbrella".into(),
                cardinality: 2,
            },
        ];
        let cpts = vec![
            Cpt {
                parents: vec![],
                table: vec![0.5, 0.3, 0.2],
            },
            Cpt {
                parents: vec![0],
                table: vec![0.9, 0.1, 0.4, 0.6, 0.1, 0.9],
            },
        ];
        let net = BayesNet::new(variables, cpts);
        let evidence: Evidence = [(1usize, 1usize)].into();
        let e = net.query_enumeration(0, &evidence);
        let v = variable_elimination(&net, 0, &evidence);
        for (a, b) in e.iter().zip(&v) {
            assert!((a - b).abs() < 1e-9);
        }
        // P(weather=2 | umbrella) > prior 0.2.
        assert!(e[2] > 0.2);
    }

    #[test]
    fn observed_queries_report_events() {
        use std::sync::atomic::{AtomicU64, Ordering};

        #[derive(Default)]
        struct EventCounter {
            queries: AtomicU64,
            samples: AtomicU64,
        }
        impl InferenceObserver for EventCounter {
            fn on_event(&self, event: &ObsEvent) {
                if let ObsEvent::DiscreteQuery { samples, .. } = event {
                    self.queries.fetch_add(1, Ordering::Relaxed);
                    self.samples.fetch_add(*samples, Ordering::Relaxed);
                }
            }
        }

        let net = sprinkler();
        let evidence: Evidence = [(3usize, 1usize)].into();
        let counter = EventCounter::default();
        let e = net.query_enumeration_observed(0, &evidence, &counter);
        let v = net.query_variable_elimination_observed(0, &evidence, &counter);
        for (a, b) in e.iter().zip(&v) {
            assert!((a - b).abs() < 1e-9);
        }
        let mut rng = Xoshiro256pp::seed_from(5);
        let _ = net.query_likelihood_weighting_observed(0, &evidence, 500, &mut rng, &counter);
        assert_eq!(counter.queries.load(Ordering::Relaxed), 3);
        assert_eq!(counter.samples.load(Ordering::Relaxed), 500);
    }
}
