//! Grid-discretized beliefs and belief propagation.
//!
//! This is the literal "Bayesian network" formulation of the localization
//! model: the field is cut into `nx × ny` cells, each position variable
//! becomes a finite variable over cells, and loopy sum–product runs with
//! exact per-cell message products. Messages are *truncated kernel
//! scatters*: a neighbor's belief mass at cell `s` contributes
//! `belief(s) · ψ(‖c − s‖)` to every cell `c` within the potential's
//! support radius, so the cost per message is
//! `O(active source cells × kernel cells)` rather than `O(cells²)`.

use crate::engine::{BpEngine, RunOutcome};
use crate::mrf::{BpOptions, BpOutcome, Schedule, SpatialMrf};
use crate::potential::{PairPotential, UnaryPotential};
use crate::transport::{Transport, Verdict};
use crate::validate::{self, DistributionAudit, GraphAudit};
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use wsnloc_geom::{Aabb, Matrix, Vec2};
use wsnloc_obs::Stopwatch;
use wsnloc_obs::{
    CommStats, InferenceObserver, IterationRecord, NodeResidual, ObsEvent, RunInfo, RunSummary,
    SpanKind,
};

/// A probability mass function over the cells of a fixed grid.
#[derive(Debug, Clone, PartialEq)]
pub struct GridBelief {
    domain: Aabb,
    nx: usize,
    ny: usize,
    /// Cell masses, row-major by y then x, summing to 1.
    mass: Vec<f64>,
}

impl GridBelief {
    /// Uniform belief over the domain.
    pub fn uniform(domain: Aabb, nx: usize, ny: usize) -> Self {
        assert!(nx > 0 && ny > 0, "grid must be non-empty");
        let cells = nx * ny;
        GridBelief {
            domain,
            nx,
            ny,
            mass: vec![1.0 / cells as f64; cells],
        }
    }

    /// Belief proportional to a unary potential evaluated at cell centers.
    /// Falls back to uniform when the potential has no mass on the grid.
    pub fn from_unary(potential: &dyn UnaryPotential, domain: Aabb, nx: usize, ny: usize) -> Self {
        let mut b = GridBelief::uniform(domain, nx, ny);
        // Evaluate in log space then exponentiate stably.
        let logs: Vec<f64> = (0..nx * ny)
            .map(|i| potential.log_density(b.cell_center(i)))
            .collect();
        let m = logs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if m == f64::NEG_INFINITY {
            return b; // no support on the grid: stay uniform
        }
        for (cell, &l) in b.mass.iter_mut().zip(&logs) {
            *cell = (l - m).exp();
        }
        b.normalize();
        b
    }

    /// A near-delta belief at `p` (all mass in the containing cell).
    pub fn delta(p: Vec2, domain: Aabb, nx: usize, ny: usize) -> Self {
        let mut b = GridBelief {
            domain,
            nx,
            ny,
            mass: vec![0.0; nx * ny],
        };
        let idx = b.cell_of(p);
        b.mass[idx] = 1.0;
        b
    }

    /// Grid width in cells.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height in cells.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// The spatial domain.
    pub fn domain(&self) -> Aabb {
        self.domain
    }

    /// Cell masses (row-major, y-major ordering).
    pub fn mass(&self) -> &[f64] {
        &self.mass
    }

    /// Cell side lengths `(dx, dy)`.
    pub fn cell_size(&self) -> (f64, f64) {
        (
            self.domain.width() / self.nx as f64,
            self.domain.height() / self.ny as f64,
        )
    }

    /// Center coordinate of flat cell index `i`.
    pub fn cell_center(&self, i: usize) -> Vec2 {
        let (dx, dy) = self.cell_size();
        let x = i % self.nx;
        let y = i / self.nx;
        Vec2::new(
            self.domain.min.x + (x as f64 + 0.5) * dx,
            self.domain.min.y + (y as f64 + 0.5) * dy,
        )
    }

    /// Flat index of the cell containing `p` (clamped into the grid).
    pub fn cell_of(&self, p: Vec2) -> usize {
        let (dx, dy) = self.cell_size();
        let x = (((p.x - self.domain.min.x) / dx) as isize).clamp(0, self.nx as isize - 1);
        let y = (((p.y - self.domain.min.y) / dy) as isize).clamp(0, self.ny as isize - 1);
        y as usize * self.nx + x as usize
    }

    fn normalize(&mut self) {
        let total: f64 = self.mass.iter().sum();
        if total > 0.0 && total.is_finite() {
            for m in &mut self.mass {
                *m /= total;
            }
        } else {
            let cells = self.mass.len();
            self.mass.fill(1.0 / cells as f64);
        }
    }

    /// Pointwise product with another mass function on the same grid,
    /// renormalized; annihilation (zero overlap) falls back to uniform.
    pub fn product(&mut self, other: &[f64]) {
        assert_eq!(other.len(), self.mass.len(), "grid shape mismatch");
        for (m, &o) in self.mass.iter_mut().zip(other) {
            *m *= o;
        }
        self.normalize();
    }

    /// MMSE point estimate: the belief mean.
    pub fn mean(&self) -> Vec2 {
        let mut acc = Vec2::ZERO;
        for (i, &m) in self.mass.iter().enumerate() {
            acc += self.cell_center(i) * m;
        }
        acc
    }

    /// MAP point estimate: center of the highest-mass cell.
    pub fn map_estimate(&self) -> Vec2 {
        let idx = self
            .mass
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map_or(0, |(i, _)| i);
        self.cell_center(idx)
    }

    /// Covariance matrix of the belief (2×2).
    pub fn covariance(&self) -> Matrix {
        let mean = self.mean();
        let mut cov = Matrix::zeros(2, 2);
        for (i, &m) in self.mass.iter().enumerate() {
            let d = self.cell_center(i) - mean;
            cov[(0, 0)] += m * d.x * d.x;
            cov[(0, 1)] += m * d.x * d.y;
            cov[(1, 1)] += m * d.y * d.y;
        }
        cov[(1, 0)] = cov[(0, 1)];
        cov
    }

    /// RMS spread: `sqrt(trace(cov))` — a scalar position uncertainty.
    pub fn spread(&self) -> f64 {
        self.covariance().trace().sqrt()
    }

    /// Shannon entropy in nats.
    pub fn entropy(&self) -> f64 {
        -self
            .mass
            .iter()
            .filter(|&&m| m > 0.0)
            .map(|&m| m * m.ln())
            .sum::<f64>()
    }

    /// Total-variation-style L1 distance to another belief on the same grid
    /// (in `[0, 2]`).
    pub fn l1_distance(&self, other: &GridBelief) -> f64 {
        assert_eq!(self.mass.len(), other.mass.len(), "grid shape mismatch");
        self.mass
            .iter()
            .zip(&other.mass)
            .map(|(a, b)| (a - b).abs())
            .sum()
    }

    /// KL divergence `KL(self ‖ other)` in nats, on the same grid.
    ///
    /// Cells where `self` carries no mass contribute nothing; cells where
    /// `self` has mass but `other` does not are evaluated against a 1e-300
    /// floor rather than returning infinity, so the result stays finite and
    /// summarizable for convergence curves.
    pub fn kl_divergence(&self, other: &GridBelief) -> f64 {
        assert_eq!(self.mass.len(), other.mass.len(), "grid shape mismatch");
        self.mass
            .iter()
            .zip(&other.mass)
            .filter(|(&p, _)| p > 0.0)
            .map(|(&p, &q)| p * (p.ln() - q.max(1e-300).ln()))
            .sum::<f64>()
            .max(0.0)
    }

    /// Motion-model predict step on the cell array: an optional affine
    /// remap through the state-transition matrix `f` (row-major 2×2;
    /// bilinear gather through `f⁻¹`, identity and singular `f` skip
    /// it) followed by a separable truncated-Gaussian blur of
    /// `(sigma_x, sigma_y)` meters — the discrete convolution with the
    /// process noise `N(0, Q)`. The result is renormalized; sigmas of
    /// zero leave the corresponding axis untouched.
    #[must_use]
    pub fn predicted(&self, f: [f64; 4], sigma_x: f64, sigma_y: f64) -> GridBelief {
        let mut out = self.clone();
        let identity = f == [1.0, 0.0, 0.0, 1.0];
        let det = f[0] * f[3] - f[1] * f[2];
        if !identity && det.abs() > 1e-12 && det.is_finite() {
            // x_prev = f⁻¹ · x: gather each target cell's mass from the
            // bilinearly-interpolated source location.
            let inv = [f[3] / det, -f[1] / det, -f[2] / det, f[0] / det];
            let (dx, dy) = self.cell_size();
            let mut remapped = vec![0.0; self.mass.len()];
            for (i, slot) in remapped.iter_mut().enumerate() {
                let c = self.cell_center(i);
                let s = Vec2::new(inv[0] * c.x + inv[1] * c.y, inv[2] * c.x + inv[3] * c.y);
                // Fractional cell coordinates of the source point.
                let fx = (s.x - self.domain.min.x) / dx - 0.5;
                let fy = (s.y - self.domain.min.y) / dy - 0.5;
                let x0 = fx.floor();
                let y0 = fy.floor();
                let (tx, ty) = (fx - x0, fy - y0);
                for (gx, gy, w) in [
                    (x0, y0, (1.0 - tx) * (1.0 - ty)),
                    (x0 + 1.0, y0, tx * (1.0 - ty)),
                    (x0, y0 + 1.0, (1.0 - tx) * ty),
                    (x0 + 1.0, y0 + 1.0, tx * ty),
                ] {
                    if gx >= 0.0 && gy >= 0.0 && gx < self.nx as f64 && gy < self.ny as f64 {
                        *slot += w * self.mass[gy as usize * self.nx + gx as usize];
                    }
                }
            }
            out.mass = remapped;
        }
        let (dx, dy) = self.cell_size();
        blur_axis(&mut out.mass, self.nx, self.ny, sigma_x / dx, true);
        blur_axis(&mut out.mass, self.nx, self.ny, sigma_y / dy, false);
        out.normalize();
        out
    }
}

/// One pass of a separable truncated-Gaussian blur along the x (row)
/// or y (column) axis, with `sigma` in cell units. Kernel support is
/// truncated at 3σ and renormalized, so mass never leaks off the grid
/// edges asymmetrically. A sub-cell sigma is a no-op.
fn blur_axis(mass: &mut [f64], nx: usize, ny: usize, sigma: f64, along_x: bool) {
    if sigma <= 1e-6 || !sigma.is_finite() {
        return;
    }
    let radius = ((3.0 * sigma).ceil() as usize).max(1);
    let kernel: Vec<f64> = (0..=radius)
        .map(|k| (-0.5 * (k as f64 / sigma).powi(2)).exp())
        .collect();
    let out: Vec<f64> = (0..mass.len())
        .map(|i| {
            let (x, y) = (i % nx, i / nx);
            let (pos, len) = if along_x { (x, nx) } else { (y, ny) };
            let mut acc = 0.0;
            let mut norm = 0.0;
            let lo = pos.saturating_sub(radius);
            let hi = (pos + radius).min(len - 1);
            for q in lo..=hi {
                let w = kernel[q.abs_diff(pos)];
                let j = if along_x { y * nx + q } else { q * nx + x };
                acc += w * mass[j];
                norm += w;
            }
            if norm > 0.0 {
                acc / norm
            } else {
                mass[i]
            }
        })
        .collect();
    mass.copy_from_slice(&out);
}

impl crate::engine::Belief for GridBelief {
    const SUPPORTS_MAP: bool = true;

    fn mean(&self) -> Vec2 {
        GridBelief::mean(self)
    }

    fn spread(&self) -> f64 {
        GridBelief::spread(self)
    }

    fn map_estimate(&self) -> Option<Vec2> {
        Some(GridBelief::map_estimate(self))
    }
}

/// Guard against total annihilation downstream: a zero or non-finite
/// message total is replaced by a flat message. Returns whether the
/// fallback fired (callers surface it as
/// [`ObsEvent::GridUniformFallback`]).
fn finalize_message(msg: &mut [f64]) -> bool {
    let total: f64 = msg.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        msg.fill(1.0);
        true
    } else {
        false
    }
}

/// Computes the message from a source belief into a target grid through a
/// distance potential, truncated at the potential's support radius.
/// Returns the message and whether the uniform fallback fired.
fn kernel_message(
    source: &GridBelief,
    potential: &dyn PairPotential,
    mass_floor: f64,
) -> (Vec<f64>, bool) {
    let nx = source.nx;
    let ny = source.ny;
    let (dx, dy) = source.cell_size();
    let mut msg = vec![0.0; nx * ny];
    // Support radius in cells, conservatively ceil'd. Unbounded potentials
    // scatter over the whole grid.
    let reach = potential.max_distance();
    let (rx, ry) = match reach {
        Some(r) => ((r / dx).ceil() as isize, (r / dy).ceil() as isize),
        None => (nx as isize, ny as isize),
    };
    for (s, &m) in source.mass.iter().enumerate() {
        if m < mass_floor {
            continue;
        }
        let sp = source.cell_center(s);
        let sx = (s % nx) as isize;
        let sy = (s / nx) as isize;
        let x0 = (sx - rx).max(0) as usize;
        let x1 = (sx + rx).min(nx as isize - 1) as usize;
        let y0 = (sy - ry).max(0) as usize;
        let y1 = (sy + ry).min(ny as isize - 1) as usize;
        for y in y0..=y1 {
            for x in x0..=x1 {
                let t = y * nx + x;
                let d = source.cell_center(t).dist(sp);
                msg[t] += m * potential.likelihood(d);
            }
        }
    }
    let collapsed = finalize_message(&mut msg);
    (msg, collapsed)
}

/// Message from a *fixed* (anchor) source: the potential evaluated against
/// the known position. Returns the message and whether the uniform
/// fallback fired.
fn point_message(
    target_shape: &GridBelief,
    source_pos: Vec2,
    potential: &dyn PairPotential,
) -> (Vec<f64>, bool) {
    let mut msg: Vec<f64> = (0..target_shape.mass.len())
        .map(|t| potential.likelihood(target_shape.cell_center(t).dist(source_pos)))
        .collect();
    let collapsed = finalize_message(&mut msg);
    (msg, collapsed)
}

/// A translation-invariant kernel table: the potential's likelihood
/// tabulated over integer cell offsets `(Δx, Δy)` once per run, so the
/// per-message scatter becomes table-lookup multiply–adds on contiguous
/// rows instead of a dyn-dispatched `exp()` per (source cell × kernel
/// cell) pair.
struct KernelStencil {
    /// Support radius in cells along x.
    rx: isize,
    /// Support radius in cells along y.
    ry: isize,
    /// Likelihood table, `(2·ry+1) × (2·rx+1)` row-major by `Δy`.
    table: Vec<f64>,
}

impl KernelStencil {
    /// Tabulates `potential` for an `nx × ny` grid with cell size
    /// `(dx, dy)`. `None` when the potential opts out of discretization
    /// (see [`PairPotential::discretized_kernel`]); callers then scatter
    /// through the pointwise [`kernel_message`] path.
    fn build(
        potential: &dyn PairPotential,
        nx: usize,
        ny: usize,
        dx: f64,
        dy: f64,
    ) -> Option<KernelStencil> {
        let (rx, ry) = match potential.max_distance() {
            Some(r) => ((r / dx).ceil() as isize, (r / dy).ceil() as isize),
            None => (nx as isize, ny as isize),
        };
        // Offsets beyond the grid extent can never be scattered to, so an
        // oversized support radius is clamped before tabulation (the
        // clamp keeps every reachable offset: |Δx| ≤ nx − 1 < nx).
        let rx = rx.clamp(0, nx as isize) as usize;
        let ry = ry.clamp(0, ny as isize) as usize;
        let table = potential.discretized_kernel(dx, dy, rx, ry)?;
        if table.len() != (2 * rx + 1) * (2 * ry + 1) {
            return None; // malformed custom kernel: fall back to pointwise
        }
        Some(KernelStencil {
            rx: rx as isize,
            ry: ry as isize,
            table,
        })
    }
}

/// [`kernel_message`] through a precomputed [`KernelStencil`]: the same
/// truncated scatter, with the potential evaluation replaced by offset
/// table lookups over row-contiguous slices. Returns the message and
/// whether the uniform fallback fired.
fn stencil_message(
    source: &GridBelief,
    stencil: &KernelStencil,
    mass_floor: f64,
) -> (Vec<f64>, bool) {
    let nx = source.nx;
    let ny = source.ny;
    let mut msg = vec![0.0; nx * ny];
    let width = 2 * stencil.rx as usize + 1;
    for (s, &m) in source.mass.iter().enumerate() {
        if m < mass_floor {
            continue;
        }
        let sx = (s % nx) as isize;
        let sy = (s / nx) as isize;
        let x0 = (sx - stencil.rx).max(0);
        let x1 = (sx + stencil.rx).min(nx as isize - 1);
        let y0 = (sy - stencil.ry).max(0);
        let y1 = (sy + stencil.ry).min(ny as isize - 1);
        for y in y0..=y1 {
            let krow = ((y - sy + stencil.ry) as usize) * width;
            let k0 = krow + (x0 - sx + stencil.rx) as usize;
            let t0 = y as usize * nx + x0 as usize;
            let cols = (x1 - x0) as usize + 1;
            let out = &mut msg[t0..t0 + cols];
            let ker = &stencil.table[k0..k0 + cols];
            for (t, &k) in out.iter_mut().zip(ker) {
                *t += m * k;
            }
        }
    }
    let collapsed = finalize_message(&mut msg);
    (msg, collapsed)
}

/// Iteration-invariant message state, built once per run.
///
/// Three quantities never change across BP iterations: the prior-derived
/// initial beliefs (unary potentials don't change), the anchor messages
/// (fixed positions don't move), and the kernel tables of distance-only
/// potentials (on a regular grid the likelihood depends only on the cell
/// offset). The seed path recomputed all three inside every
/// `update_one`; this cache hoists them out of the iteration loop.
struct MessageCache {
    /// Initial beliefs: priors for free variables, deltas for fixed
    /// ones. The free entries double as each update's starting belief.
    init: Vec<GridBelief>,
    /// Per-edge anchor message — `Some` iff exactly one endpoint is
    /// fixed, computed in the fixed→free direction.
    anchor_msgs: Vec<Option<Vec<f64>>>,
    /// Per-edge index into `stencils` — `Some` iff both endpoints are
    /// free and the potential discretizes.
    edge_stencils: Vec<Option<usize>>,
    /// Deduplicated stencil tables: edges sharing a potential (by `Arc`
    /// identity) share one entry.
    stencils: Vec<KernelStencil>,
}

impl MessageCache {
    fn build(
        mrf: &SpatialMrf,
        domain: Aabb,
        nx: usize,
        ny: usize,
        obs: &dyn InferenceObserver,
    ) -> MessageCache {
        let init: Vec<GridBelief> = (0..mrf.len())
            .map(|u| match mrf.fixed(u) {
                Some(p) => GridBelief::delta(p, domain, nx, ny),
                None => GridBelief::from_unary(mrf.unary(u).as_ref(), domain, nx, ny),
            })
            .collect();
        // Geometry template for anchor messages: point_message reads only
        // cell centers, identical across all beliefs on this grid.
        let shape = GridBelief::uniform(domain, nx, ny);
        let (dx, dy) = shape.cell_size();
        let mut anchor_msgs = Vec::with_capacity(mrf.edges().len());
        let mut edge_stencils = Vec::with_capacity(mrf.edges().len());
        let mut stencils: Vec<KernelStencil> = Vec::new();
        let mut by_potential: HashMap<usize, Option<usize>> = HashMap::new();
        for (e, edge) in mrf.edges().iter().enumerate() {
            let anchor = match (mrf.fixed(edge.u), mrf.fixed(edge.v)) {
                (Some(p), None) | (None, Some(p)) => {
                    let (msg, collapsed) = point_message(&shape, p, edge.potential.as_ref());
                    if collapsed {
                        obs.on_event(&ObsEvent::GridUniformFallback {
                            edge: e,
                            stage: "point",
                        });
                    }
                    Some(msg)
                }
                _ => None,
            };
            // Kernel messages only flow along free–free edges; fixed
            // sources use the anchor message and fixed targets are never
            // updated.
            let stencil =
                if anchor.is_none() && mrf.fixed(edge.u).is_none() && mrf.fixed(edge.v).is_none() {
                    let key = Arc::as_ptr(&edge.potential) as *const () as usize;
                    *by_potential.entry(key).or_insert_with(|| {
                        KernelStencil::build(edge.potential.as_ref(), nx, ny, dx, dy).map(|s| {
                            stencils.push(s);
                            stencils.len() - 1
                        })
                    })
                } else {
                    None
                };
            anchor_msgs.push(anchor);
            edge_stencils.push(stencil);
        }
        MessageCache {
            init,
            anchor_msgs,
            edge_stencils,
            stencils,
        }
    }

    /// The cached anchor message for edge `e`, when one exists.
    fn anchor(&self, e: usize) -> Option<&[f64]> {
        self.anchor_msgs.get(e).and_then(|m| m.as_deref())
    }

    /// The shared stencil for edge `e`, when the potential discretizes.
    fn stencil(&self, e: usize) -> Option<&KernelStencil> {
        self.edge_stencils
            .get(e)
            .copied()
            .flatten()
            .and_then(|i| self.stencils.get(i))
    }
}

/// Loopy belief propagation with grid-discretized beliefs.
#[derive(Debug, Clone, Copy)]
pub struct GridBp {
    /// Cells along x.
    pub nx: usize,
    /// Cells along y.
    pub ny: usize,
    /// Source cells below this mass are skipped when scattering messages
    /// (speed/accuracy trade-off; scaled by 1/cells internally).
    pub mass_floor: f64,
    /// Whether the per-run message cache (prior beliefs, anchor messages,
    /// kernel stencils) is used. On by default; disabling it runs the
    /// recompute-everything reference path, kept for equivalence tests
    /// and before/after benchmarks.
    pub cache_messages: bool,
}

impl GridBp {
    /// Engine with an `n × n` grid and the default mass floor.
    pub fn with_resolution(n: usize) -> Self {
        GridBp {
            nx: n,
            ny: n,
            mass_floor: 1e-4,
            cache_messages: true,
        }
    }

    /// The same engine with the per-run message cache disabled: every
    /// prior, anchor message, and kernel evaluation is recomputed from
    /// the potentials each iteration, exactly as the pre-cache engine
    /// did.
    pub fn without_message_cache(mut self) -> Self {
        self.cache_messages = false;
        self
    }
}

impl BpEngine for GridBp {
    type Belief = GridBelief;

    fn backend_name(&self) -> &'static str {
        "grid"
    }

    /// The superset entry point the core localizer drives: structured
    /// telemetry observer, belief-level per-iteration closure, a
    /// message [`Transport`], and optional warm-start beliefs. With the
    /// perfect transport and no warm beliefs this is bit-identical to
    /// the pre-transport engine; under a fault plan, undelivered
    /// messages fall back per the plan's drop policy (stale held
    /// messages are tempered as `m^α`), never-received links contribute
    /// nothing, and dead nodes freeze. A warm belief (same grid shape)
    /// replaces the prior-derived base belief of its free node both at
    /// initialization and inside every update product, so the carried
    /// posterior acts as this epoch's prior instead of re-applying the
    /// pre-knowledge unary it already absorbed.
    fn run_carried<F>(
        &self,
        mrf: &SpatialMrf,
        opts: &BpOptions,
        transport: &Transport,
        warm: Option<&[GridBelief]>,
        obs: &dyn InferenceObserver,
        mut on_iter: F,
    ) -> RunOutcome<GridBelief>
    where
        F: FnMut(usize, &[GridBelief]),
    {
        validate::enforce("GridBp::run", || GraphAudit.check_mrf(mrf));
        let domain = mrf.domain();
        let floor = self.mass_floor / (self.nx * self.ny) as f64;
        let free = mrf.free_vars();
        obs.on_run_start(&RunInfo {
            backend: "grid",
            nodes: mrf.len(),
            free: free.len(),
            edges: mrf.edges().len(),
            max_iterations: opts.max_iterations,
            tolerance: opts.tolerance,
            damping: opts.damping,
            schedule: opts.schedule.name(),
            message_bytes: opts.message_bytes,
            seed: opts.seed,
        });
        let wants_residuals = obs.wants_residuals();
        // Fault state for this run; `None` on the perfect transport, in
        // which case every session touchpoint below compiles down to
        // the fault-free path.
        let mut session = transport.session::<GridBelief>(mrf, opts.seed);

        // Initial beliefs: priors for free vars, deltas for fixed ones.
        // With the message cache on, the iteration-invariant pieces
        // (priors, anchor messages, kernel stencils) are built here, once,
        // and the initial beliefs are shared with the cache.
        let init_start = Stopwatch::start();
        let cache = if self.cache_messages {
            Some(MessageCache::build(mrf, domain, self.nx, self.ny, obs))
        } else {
            None
        };
        // The per-node base belief every update product starts from:
        // warm carried beliefs (when supplied, for free nodes whose
        // grid shape matches) shadow the prior-derived initial belief.
        let base_of = |u: usize| -> GridBelief {
            if mrf.fixed(u).is_none() {
                if let Some(w) = warm {
                    let b = &w[u];
                    if b.nx == self.nx && b.ny == self.ny && b.domain == domain {
                        return b.clone();
                    }
                }
            }
            match &cache {
                Some(c) => c.init[u].clone(),
                None => match mrf.fixed(u) {
                    Some(p) => GridBelief::delta(p, domain, self.nx, self.ny),
                    None => GridBelief::from_unary(mrf.unary(u).as_ref(), domain, self.nx, self.ny),
                },
            }
        };
        let mut beliefs: Vec<GridBelief> = match (&cache, warm) {
            (Some(c), None) => c.init.clone(),
            _ => (0..mrf.len()).map(base_of).collect(),
        };
        obs.on_span(SpanKind::PriorInit, init_start.elapsed_secs());

        let mut outcome = BpOutcome {
            iterations: 0,
            converged: false,
            messages: 0,
        };

        let loop_start = Stopwatch::start();
        for iter in 0..opts.max_iterations {
            let iter_start = Stopwatch::start();
            // Roll this iteration's link fates and deaths (sequentially,
            // before the parallel updates); dead nodes stop updating.
            if let Some(s) = session.as_mut() {
                s.begin_iteration(iter, &beliefs, obs);
            }
            let active_owned: Option<Vec<usize>> = session
                .as_ref()
                .map(|s| free.iter().copied().filter(|&u| s.node_alive(u)).collect());
            let active: &[usize] = active_owned.as_deref().unwrap_or(&free);
            let prev_means: Vec<Vec2> = free.iter().map(|&u| beliefs[u].mean()).collect();
            // Grid residuals (L1/KL) need the previous cell masses; the
            // clone happens only when the observer asks for residuals.
            let prev_beliefs: Option<Vec<GridBelief>> = if wants_residuals {
                wsnloc_obs::accounting::note_residual_buffer();
                Some(free.iter().map(|&u| beliefs[u].clone()).collect())
            } else {
                None
            };

            let update_one = |u: usize, beliefs: &Vec<GridBelief>| -> GridBelief {
                let mut belief = base_of(u);
                for &e in mrf.edges_of(u) {
                    let v = mrf.other_end(e, u);
                    let potential = mrf.edges()[e].potential.as_ref();
                    // Transport verdict: skip never-received links,
                    // temper held-but-aging content by `alpha`, and use
                    // the last delivered snapshot instead of the live
                    // neighbor belief. Absent a session (perfect
                    // transport), alpha is 1 and the snapshot is the
                    // live belief — the original code path.
                    let mut alpha = 1.0;
                    let mut held: Option<&GridBelief> = None;
                    if let Some(s) = session.as_ref() {
                        let into_v = mrf.edges()[e].v == u;
                        match s.verdict(e, into_v) {
                            Verdict::Skip => continue,
                            Verdict::Deliver { alpha: a } => {
                                alpha = a;
                                held = s.snapshot(e, into_v);
                            }
                        }
                    }
                    match mrf.fixed(v) {
                        Some(p) => {
                            // Anchor message: cached once per run (its
                            // fallback, if any, was reported at build
                            // time), recomputed only on the reference
                            // path.
                            if let Some(msg) = cache.as_ref().and_then(|c| c.anchor(e)) {
                                if alpha < 1.0 {
                                    let mut tempered = msg.to_vec();
                                    temper_message(&mut tempered, alpha);
                                    belief.product(&tempered);
                                } else {
                                    belief.product(msg);
                                }
                            } else {
                                let (mut msg, collapsed) = point_message(&belief, p, potential);
                                if collapsed {
                                    obs.on_event(&ObsEvent::GridUniformFallback {
                                        edge: e,
                                        stage: "point",
                                    });
                                }
                                temper_message(&mut msg, alpha);
                                belief.product(&msg);
                            }
                        }
                        None => {
                            let source = held.unwrap_or(&beliefs[v]);
                            let (mut msg, collapsed) =
                                match cache.as_ref().and_then(|c| c.stencil(e)) {
                                    Some(st) => stencil_message(source, st, floor),
                                    None => kernel_message(source, potential, floor),
                                };
                            if collapsed {
                                obs.on_event(&ObsEvent::GridUniformFallback {
                                    edge: e,
                                    stage: "kernel",
                                });
                            }
                            temper_message(&mut msg, alpha);
                            belief.product(&msg);
                        }
                    }
                }
                belief
            };

            match opts.schedule {
                Schedule::Synchronous => {
                    let new: Vec<(usize, GridBelief)> = active
                        .par_iter()
                        .map(|&u| (u, update_one(u, &beliefs)))
                        .collect();
                    for (u, mut b) in new {
                        if opts.damping > 0.0 {
                            damp(&mut b, &beliefs[u], opts.damping);
                        }
                        beliefs[u] = b;
                    }
                }
                Schedule::Sweep => {
                    for &u in active {
                        let mut b = update_one(u, &beliefs);
                        if opts.damping > 0.0 {
                            damp(&mut b, &beliefs[u], opts.damping);
                        }
                        beliefs[u] = b;
                    }
                }
            }

            outcome.iterations = iter + 1;
            outcome.messages += active.len() as u64;
            validate::enforce("GridBp iteration", || {
                let audit = DistributionAudit::default();
                for (u, b) in beliefs.iter().enumerate() {
                    audit.check_grid(&format!("belief[{u}] at iteration {iter}"), b)?;
                }
                Ok(())
            });
            on_iter(iter, &beliefs);

            let max_shift = free
                .iter()
                .zip(&prev_means)
                .map(|(&u, &prev)| beliefs[u].mean().dist(prev))
                .fold(0.0, f64::max);
            let residuals: Vec<NodeResidual> = match &prev_beliefs {
                Some(prev) => free
                    .iter()
                    .zip(prev)
                    .map(|(&u, p)| NodeResidual {
                        node: u,
                        residual: beliefs[u].l1_distance(p),
                        kl: Some(beliefs[u].kl_divergence(p)),
                    })
                    .collect(),
                None => Vec::new(),
            };
            obs.on_iteration(&IterationRecord {
                iteration: iter,
                max_shift,
                comm: CommStats {
                    messages: active.len() as u64,
                    bytes: active.len() as u64 * opts.message_bytes,
                },
                damping: opts.damping,
                schedule: opts.schedule.name(),
                secs: iter_start.elapsed_secs(),
                residuals,
            });
            if max_shift < opts.tolerance {
                outcome.converged = true;
                break;
            }
        }
        obs.on_span(SpanKind::MessagePassing, loop_start.elapsed_secs());
        obs.on_run_end(&RunSummary {
            iterations: outcome.iterations,
            converged: outcome.converged,
            comm: CommStats {
                messages: outcome.messages,
                bytes: outcome.messages * opts.message_bytes,
            },
        });
        RunOutcome {
            beliefs,
            bp: outcome,
        }
    }
}

fn damp(new: &mut GridBelief, old: &GridBelief, damping: f64) {
    for (n, &o) in new.mass.iter_mut().zip(&old.mass) {
        *n = (1.0 - damping) * *n + damping * o;
    }
    new.normalize();
}

/// Staleness discount for held messages: raises each cell to `alpha`
/// (tempering), so `alpha = 1` is the identity and `alpha → 0`
/// flattens the message toward "no information" — the receiver falls
/// back to its prior and remaining neighbors.
fn temper_message(msg: &mut [f64], alpha: f64) {
    if alpha >= 1.0 {
        return;
    }
    let a = alpha.max(0.0);
    for m in msg.iter_mut() {
        if *m > 0.0 {
            *m = m.powf(a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::potential::{GaussianRange, GaussianUnary, UniformBoxUnary};
    use std::sync::Arc;

    fn domain() -> Aabb {
        Aabb::from_size(100.0, 100.0)
    }

    #[test]
    fn uniform_belief_properties() {
        let b = GridBelief::uniform(domain(), 10, 10);
        assert!((b.mass().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(b.mean().dist(Vec2::new(50.0, 50.0)) < 1e-9);
        assert!((b.entropy() - (100f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn cell_roundtrip() {
        let b = GridBelief::uniform(domain(), 20, 10);
        for i in [0, 7, 99, 150, 199] {
            let c = b.cell_center(i);
            assert_eq!(b.cell_of(c), i, "roundtrip failed for {i}");
        }
        // Out-of-domain points clamp.
        assert_eq!(b.cell_of(Vec2::new(-50.0, -50.0)), 0);
        assert_eq!(b.cell_of(Vec2::new(500.0, 500.0)), 199);
    }

    #[test]
    fn from_unary_concentrates_gaussian() {
        let g = GaussianUnary {
            mean: Vec2::new(30.0, 70.0),
            sigma: 5.0,
        };
        let b = GridBelief::from_unary(&g, domain(), 50, 50);
        assert!(b.mean().dist(g.mean) < 2.0);
        assert!(b.map_estimate().dist(g.mean) < 2.0);
        assert!(b.spread() < 10.0);
    }

    #[test]
    fn delta_belief_has_single_cell() {
        let b = GridBelief::delta(Vec2::new(10.0, 10.0), domain(), 10, 10);
        assert_eq!(b.mass().iter().filter(|&&m| m > 0.0).count(), 1);
        assert!(b.mean().dist(Vec2::new(10.0, 10.0)) < 10.0); // within a cell
        assert_eq!(b.spread(), 0.0);
    }

    #[test]
    fn product_concentrates() {
        let mut a = GridBelief::from_unary(
            &GaussianUnary {
                mean: Vec2::new(40.0, 50.0),
                sigma: 10.0,
            },
            domain(),
            40,
            40,
        );
        let b = GridBelief::from_unary(
            &GaussianUnary {
                mean: Vec2::new(60.0, 50.0),
                sigma: 10.0,
            },
            domain(),
            40,
            40,
        );
        let spread_before = a.spread();
        a.product(b.mass());
        // Product of two Gaussians sits between the means with less spread.
        assert!(a.mean().dist(Vec2::new(50.0, 50.0)) < 3.0);
        assert!(a.spread() < spread_before);
    }

    #[test]
    fn product_annihilation_falls_back_to_uniform() {
        let mut a = GridBelief::delta(Vec2::new(5.0, 5.0), domain(), 10, 10);
        let b = GridBelief::delta(Vec2::new(95.0, 95.0), domain(), 10, 10);
        a.product(b.mass());
        // No overlap: uniform fallback keeps inference alive.
        assert!((a.mass().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(a.entropy() > 4.0);
    }

    #[test]
    fn covariance_of_elongated_belief() {
        // Mass along a horizontal line: var(x) >> var(y).
        let mut b = GridBelief::uniform(domain(), 20, 20);
        let mut mass = vec![0.0; 400];
        for x in 0..20 {
            mass[10 * 20 + x] = 1.0;
        }
        b.mass.copy_from_slice(&mass);
        b.normalize();
        let cov = b.covariance();
        assert!(cov[(0, 0)] > 100.0 * cov[(1, 1)].max(1e-12));
    }

    /// Three nodes on a line: anchor(10,50) — u1 — anchor(90,50), ranges 40
    /// each. Posterior for u1 should sit near (50,50).
    #[test]
    fn bp_trilaterates_between_anchors() {
        let dom = domain();
        let mut mrf = SpatialMrf::new(3, dom, Arc::new(UniformBoxUnary(dom)));
        mrf.fix(0, Vec2::new(10.0, 50.0));
        mrf.fix(2, Vec2::new(90.0, 50.0));
        mrf.add_edge(
            0,
            1,
            Arc::new(GaussianRange {
                observed: 40.0,
                sigma: 3.0,
            }),
        );
        mrf.add_edge(
            1,
            2,
            Arc::new(GaussianRange {
                observed: 40.0,
                sigma: 3.0,
            }),
        );
        let (beliefs, outcome) = GridBp::with_resolution(40).run(
            &mrf,
            &BpOptions::builder()
                .max_iterations(10)
                .tolerance(0.5)
                .try_build()
                .expect("valid options"),
        );
        assert!(outcome.iterations >= 1);
        let est = beliefs[1].mean();
        // Ring intersection is symmetric about y = 50; x pinned near 50.
        assert!((est.x - 50.0).abs() < 5.0, "x estimate {est}");
    }

    /// A node with a Gaussian prior and one anchor range: the posterior mean
    /// should move from the prior mean toward the ring around the anchor.
    #[test]
    fn bp_fuses_prior_with_measurement() {
        let dom = domain();
        let mut mrf = SpatialMrf::new(2, dom, Arc::new(UniformBoxUnary(dom)));
        mrf.fix(0, Vec2::new(50.0, 50.0));
        mrf.set_unary(
            1,
            Arc::new(GaussianUnary {
                mean: Vec2::new(80.0, 50.0),
                sigma: 10.0,
            }),
        );
        // Measured distance 20 from the central anchor.
        mrf.add_edge(
            0,
            1,
            Arc::new(GaussianRange {
                observed: 20.0,
                sigma: 2.0,
            }),
        );
        let (beliefs, _) = GridBp::with_resolution(50).run(
            &mrf,
            &BpOptions::builder()
                .max_iterations(5)
                .tolerance(0.5)
                .try_build()
                .expect("valid options"),
        );
        let est = beliefs[1].mean();
        // Posterior concentrates near (70, 50): on the ring, pulled toward
        // the prior side.
        assert!(est.dist(Vec2::new(70.0, 50.0)) < 6.0, "estimate {est}");
    }

    #[test]
    fn sweep_schedule_matches_sync_approximately() {
        let dom = domain();
        let mut mrf = SpatialMrf::new(3, dom, Arc::new(UniformBoxUnary(dom)));
        mrf.fix(0, Vec2::new(20.0, 20.0));
        mrf.fix(2, Vec2::new(80.0, 80.0));
        let d = Vec2::new(20.0, 20.0).dist(Vec2::new(50.0, 50.0));
        mrf.add_edge(
            0,
            1,
            Arc::new(GaussianRange {
                observed: d,
                sigma: 3.0,
            }),
        );
        mrf.add_edge(
            1,
            2,
            Arc::new(GaussianRange {
                observed: d,
                sigma: 3.0,
            }),
        );
        let run = |schedule| {
            GridBp::with_resolution(40)
                .run(
                    &mrf,
                    &BpOptions::builder()
                        .max_iterations(8)
                        .tolerance(0.5)
                        .schedule(schedule)
                        .try_build()
                        .expect("valid options"),
                )
                .0[1]
                .mean()
        };
        let sync = run(Schedule::Synchronous);
        let sweep = run(Schedule::Sweep);
        assert!(sync.dist(sweep) < 8.0, "sync {sync} sweep {sweep}");
    }

    #[test]
    fn observer_sees_every_iteration() {
        let dom = domain();
        let mut mrf = SpatialMrf::new(2, dom, Arc::new(UniformBoxUnary(dom)));
        mrf.fix(0, Vec2::new(50.0, 50.0));
        mrf.add_edge(
            0,
            1,
            Arc::new(GaussianRange {
                observed: 10.0,
                sigma: 2.0,
            }),
        );
        let mut seen = Vec::new();
        let (_, outcome) = GridBp::with_resolution(20).run_observed(
            &mrf,
            &BpOptions::builder()
                .max_iterations(4)
                .tolerance(0.0) // never converge early
                .try_build()
                .expect("valid options"),
            |iter, beliefs| {
                seen.push((iter, beliefs.len()));
            },
        );
        assert_eq!(outcome.iterations, 4);
        assert!(!outcome.converged);
        assert_eq!(seen, vec![(0, 2), (1, 2), (2, 2), (3, 2)]);
        assert_eq!(outcome.messages, 4);
    }

    #[test]
    fn stencil_message_matches_kernel_message() {
        let pot = GaussianRange {
            observed: 30.0,
            sigma: 4.0,
        };
        let src = GridBelief::from_unary(
            &GaussianUnary {
                mean: Vec2::new(40.0, 60.0),
                sigma: 12.0,
            },
            domain(),
            25,
            25,
        );
        let (dx, dy) = src.cell_size();
        let st = KernelStencil::build(&pot, 25, 25, dx, dy).expect("rangepotential discretizes");
        let floor = 1e-4 / 625.0;
        let (reference, ref_collapsed) = kernel_message(&src, &pot, floor);
        let (cached, cache_collapsed) = stencil_message(&src, &st, floor);
        assert_eq!(ref_collapsed, cache_collapsed);
        for (t, (a, b)) in reference.iter().zip(&cached).enumerate() {
            assert!(
                (a - b).abs() <= 1e-12 * a.abs().max(1.0),
                "cell {t}: reference {a} vs stencil {b}"
            );
        }
    }

    #[test]
    fn cached_run_matches_reference_run() {
        let dom = domain();
        let mut mrf = SpatialMrf::new(4, dom, Arc::new(UniformBoxUnary(dom)));
        mrf.fix(0, Vec2::new(10.0, 50.0));
        mrf.fix(3, Vec2::new(90.0, 50.0));
        for (u, v, d) in [(0, 1, 30.0), (1, 2, 25.0), (2, 3, 30.0), (1, 3, 52.0)] {
            mrf.add_edge(
                u,
                v,
                Arc::new(GaussianRange {
                    observed: d,
                    sigma: 3.0,
                }),
            );
        }
        let opts = BpOptions::builder()
            .max_iterations(6)
            .tolerance(0.0)
            .try_build()
            .expect("valid options");
        let engine = GridBp::with_resolution(30);
        let (cached, co) = engine.run(&mrf, &opts);
        let (reference, ro) = engine.without_message_cache().run(&mrf, &opts);
        assert_eq!(co.iterations, ro.iterations);
        for (u, (c, r)) in cached.iter().zip(&reference).enumerate() {
            for (i, (a, b)) in c.mass().iter().zip(r.mass()).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-9,
                    "belief[{u}] cell {i}: cached {a} vs reference {b}"
                );
            }
        }
    }

    #[test]
    fn l1_distance_bounds() {
        let a = GridBelief::delta(Vec2::new(5.0, 5.0), domain(), 10, 10);
        let b = GridBelief::delta(Vec2::new(95.0, 95.0), domain(), 10, 10);
        assert!((a.l1_distance(&b) - 2.0).abs() < 1e-12);
        assert_eq!(a.l1_distance(&a), 0.0);
    }

    #[test]
    fn kl_divergence_properties() {
        let uniform = GridBelief::uniform(domain(), 10, 10);
        let peaked = GridBelief::from_unary(
            &GaussianUnary {
                mean: Vec2::new(50.0, 50.0),
                sigma: 5.0,
            },
            domain(),
            10,
            10,
        );
        // Self-divergence is zero; divergence from a different belief is
        // positive and finite, even against zero-mass cells.
        assert_eq!(peaked.kl_divergence(&peaked), 0.0);
        assert!(peaked.kl_divergence(&uniform) > 0.0);
        let delta = GridBelief::delta(Vec2::new(5.0, 5.0), domain(), 10, 10);
        let kl = peaked.kl_divergence(&delta);
        assert!(kl.is_finite() && kl > 0.0);
    }
}
