//! Grid-discretized beliefs and belief propagation.
//!
//! This is the literal "Bayesian network" formulation of the localization
//! model: the field is cut into `nx × ny` cells, each position variable
//! becomes a finite variable over cells, and loopy sum–product runs with
//! exact per-cell message products. Messages are *truncated kernel
//! scatters*: a neighbor's belief mass at cell `s` contributes
//! `belief(s) · ψ(‖c − s‖)` to every cell `c` within the potential's
//! support radius, so the cost per message is
//! `O(active source cells × kernel cells)` rather than `O(cells²)`.
//!
//! The scatter kernels live in [`crate::stencil`]: each potential's table
//! is classified once per run as separable (two 1-D passes), mirrored
//! (quadrant storage for radially symmetric kernels), or dense, and the
//! inner accumulates dispatch to runtime-detected SIMD
//! ([`crate::cellbuf`]). Two opt-in throughput knobs ride on top:
//! [`GridPrecision::F32`] runs the hot path in single precision, and
//! [`CoarseToFine`] pre-solves on a reduced grid and carries concentrated
//! beliefs up to the full resolution.

use crate::cellbuf::{self, Cell};
use crate::engine::{BpEngine, RunOutcome, WarmStart};
use crate::mrf::{BpOptions, BpOutcome, Schedule, SpatialMrf};
use crate::potential::{PairPotential, UnaryPotential};
use crate::stencil::KernelStencil;
use crate::transport::{Transport, Verdict};
use crate::validate::{self, DistributionAudit, GraphAudit, ValidationError};
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use wsnloc_geom::{Aabb, Matrix, Vec2};
use wsnloc_obs::Stopwatch;
use wsnloc_obs::{
    CommStats, InferenceObserver, IterationRecord, NodeResidual, NullObserver, ObsEvent, RunInfo,
    RunSummary, SpanKind,
};

/// A probability mass function over the cells of a fixed grid.
#[derive(Debug, Clone, PartialEq)]
pub struct GridBelief {
    domain: Aabb,
    nx: usize,
    ny: usize,
    /// Cell masses, row-major by y then x, summing to 1.
    mass: Vec<f64>,
}

impl GridBelief {
    /// Uniform belief over the domain.
    pub fn uniform(domain: Aabb, nx: usize, ny: usize) -> Self {
        assert!(nx > 0 && ny > 0, "grid must be non-empty");
        let cells = nx * ny;
        GridBelief {
            domain,
            nx,
            ny,
            mass: vec![1.0 / cells as f64; cells],
        }
    }

    /// Belief proportional to a unary potential evaluated at cell centers.
    /// Falls back to uniform when the potential has no mass on the grid.
    pub fn from_unary(potential: &dyn UnaryPotential, domain: Aabb, nx: usize, ny: usize) -> Self {
        let mut b = GridBelief::uniform(domain, nx, ny);
        // Evaluate in log space then exponentiate stably.
        let logs: Vec<f64> = (0..nx * ny)
            .map(|i| potential.log_density(b.cell_center(i)))
            .collect();
        let m = logs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if m == f64::NEG_INFINITY {
            return b; // no support on the grid: stay uniform
        }
        for (cell, &l) in b.mass.iter_mut().zip(&logs) {
            *cell = (l - m).exp();
        }
        b.normalize();
        b
    }

    /// A near-delta belief at `p` (all mass in the containing cell).
    pub fn delta(p: Vec2, domain: Aabb, nx: usize, ny: usize) -> Self {
        let mut b = GridBelief {
            domain,
            nx,
            ny,
            mass: vec![0.0; nx * ny],
        };
        let idx = b.cell_of(p);
        b.mass[idx] = 1.0;
        b
    }

    /// Grid width in cells.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height in cells.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// The spatial domain.
    pub fn domain(&self) -> Aabb {
        self.domain
    }

    /// Cell masses (row-major, y-major ordering).
    pub fn mass(&self) -> &[f64] {
        &self.mass
    }

    /// Cell side lengths `(dx, dy)`.
    pub fn cell_size(&self) -> (f64, f64) {
        (
            self.domain.width() / self.nx as f64,
            self.domain.height() / self.ny as f64,
        )
    }

    /// Center coordinate of flat cell index `i`.
    pub fn cell_center(&self, i: usize) -> Vec2 {
        let (dx, dy) = self.cell_size();
        let x = i % self.nx;
        let y = i / self.nx;
        Vec2::new(
            self.domain.min.x + (x as f64 + 0.5) * dx,
            self.domain.min.y + (y as f64 + 0.5) * dy,
        )
    }

    /// Flat index of the cell containing `p` (clamped into the grid).
    pub fn cell_of(&self, p: Vec2) -> usize {
        let (dx, dy) = self.cell_size();
        let x = (((p.x - self.domain.min.x) / dx) as isize).clamp(0, self.nx as isize - 1);
        let y = (((p.y - self.domain.min.y) / dy) as isize).clamp(0, self.ny as isize - 1);
        y as usize * self.nx + x as usize
    }

    fn normalize(&mut self) {
        let total: f64 = self.mass.iter().sum();
        if total > 0.0 && total.is_finite() {
            for m in &mut self.mass {
                *m /= total;
            }
        } else {
            let cells = self.mass.len();
            self.mass.fill(1.0 / cells as f64);
        }
    }

    /// Pointwise product with another mass function on the same grid,
    /// renormalized; annihilation (zero overlap) falls back to uniform.
    pub fn product(&mut self, other: &[f64]) {
        assert_eq!(other.len(), self.mass.len(), "grid shape mismatch");
        for (m, &o) in self.mass.iter_mut().zip(other) {
            *m *= o;
        }
        self.normalize();
    }

    /// Builds a belief from cell-typed storage. For non-exact cell types
    /// (f32) the widened masses are renormalized in f64 so downstream
    /// audits see a distribution summing to 1 within f64 epsilon; for
    /// f64 cells this is an exact copy.
    fn from_cells<C: Cell>(domain: Aabb, nx: usize, ny: usize, cells: &[C]) -> GridBelief {
        let mut b = GridBelief {
            domain,
            nx,
            ny,
            mass: C::to_f64_vec(cells),
        };
        if !C::EXACT {
            b.normalize();
        }
        b
    }

    /// Piecewise-constant upsample onto a finer `nx × ny` grid over the
    /// same domain, renormalized — the belief carry-over step of the
    /// coarse-to-fine schedule.
    fn upsampled_to(&self, nx: usize, ny: usize) -> GridBelief {
        let mut out = GridBelief {
            domain: self.domain,
            nx,
            ny,
            mass: vec![0.0; nx * ny],
        };
        for y in 0..ny {
            let cy = y * self.ny / ny;
            for x in 0..nx {
                let cx = x * self.nx / nx;
                out.mass[y * nx + x] = self.mass[cy * self.nx + cx];
            }
        }
        out.normalize();
        out
    }

    /// Sum of the `k` largest cell masses — the concentration statistic
    /// the coarse-to-fine schedule thresholds on (≈1 when the posterior
    /// has collapsed onto a few cells, ≈`k/cells` when diffuse).
    fn top_k_mass(&self, k: usize) -> f64 {
        if k >= self.mass.len() {
            return self.mass.iter().sum();
        }
        let mut m = self.mass.clone();
        m.sort_unstable_by(|a, b| b.total_cmp(a));
        m[..k].iter().sum()
    }

    /// MMSE point estimate: the belief mean.
    pub fn mean(&self) -> Vec2 {
        let mut acc = Vec2::ZERO;
        for (i, &m) in self.mass.iter().enumerate() {
            acc += self.cell_center(i) * m;
        }
        acc
    }

    /// MAP point estimate: center of the highest-mass cell.
    pub fn map_estimate(&self) -> Vec2 {
        let idx = self
            .mass
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map_or(0, |(i, _)| i);
        self.cell_center(idx)
    }

    /// Covariance matrix of the belief (2×2).
    pub fn covariance(&self) -> Matrix {
        let mean = self.mean();
        let mut cov = Matrix::zeros(2, 2);
        for (i, &m) in self.mass.iter().enumerate() {
            let d = self.cell_center(i) - mean;
            cov[(0, 0)] += m * d.x * d.x;
            cov[(0, 1)] += m * d.x * d.y;
            cov[(1, 1)] += m * d.y * d.y;
        }
        cov[(1, 0)] = cov[(0, 1)];
        cov
    }

    /// RMS spread: `sqrt(trace(cov))` — a scalar position uncertainty.
    pub fn spread(&self) -> f64 {
        self.covariance().trace().sqrt()
    }

    /// Shannon entropy in nats.
    pub fn entropy(&self) -> f64 {
        -self
            .mass
            .iter()
            .filter(|&&m| m > 0.0)
            .map(|&m| m * m.ln())
            .sum::<f64>()
    }

    /// Total-variation-style L1 distance to another belief on the same grid
    /// (in `[0, 2]`).
    pub fn l1_distance(&self, other: &GridBelief) -> f64 {
        assert_eq!(self.mass.len(), other.mass.len(), "grid shape mismatch");
        self.mass
            .iter()
            .zip(&other.mass)
            .map(|(a, b)| (a - b).abs())
            .sum()
    }

    /// KL divergence `KL(self ‖ other)` in nats, on the same grid.
    ///
    /// Cells where `self` carries no mass contribute nothing; cells where
    /// `self` has mass but `other` does not are evaluated against a 1e-300
    /// floor rather than returning infinity, so the result stays finite and
    /// summarizable for convergence curves.
    pub fn kl_divergence(&self, other: &GridBelief) -> f64 {
        assert_eq!(self.mass.len(), other.mass.len(), "grid shape mismatch");
        self.mass
            .iter()
            .zip(&other.mass)
            .filter(|(&p, _)| p > 0.0)
            .map(|(&p, &q)| p * (p.ln() - q.max(1e-300).ln()))
            .sum::<f64>()
            .max(0.0)
    }

    /// Motion-model predict step on the cell array: an optional affine
    /// remap through the state-transition matrix `f` (row-major 2×2;
    /// bilinear gather through `f⁻¹`, identity and singular `f` skip
    /// it) followed by a separable truncated-Gaussian blur of
    /// `(sigma_x, sigma_y)` meters — the discrete convolution with the
    /// process noise `N(0, Q)`. The result is renormalized; sigmas of
    /// zero leave the corresponding axis untouched.
    #[must_use]
    pub fn predicted(&self, f: [f64; 4], sigma_x: f64, sigma_y: f64) -> GridBelief {
        let mut out = self.clone();
        let identity = f == [1.0, 0.0, 0.0, 1.0];
        let det = f[0] * f[3] - f[1] * f[2];
        if !identity && det.abs() > 1e-12 && det.is_finite() {
            // x_prev = f⁻¹ · x: gather each target cell's mass from the
            // bilinearly-interpolated source location.
            let inv = [f[3] / det, -f[1] / det, -f[2] / det, f[0] / det];
            let (dx, dy) = self.cell_size();
            let mut remapped = vec![0.0; self.mass.len()];
            for (i, slot) in remapped.iter_mut().enumerate() {
                let c = self.cell_center(i);
                let s = Vec2::new(inv[0] * c.x + inv[1] * c.y, inv[2] * c.x + inv[3] * c.y);
                // Fractional cell coordinates of the source point.
                let fx = (s.x - self.domain.min.x) / dx - 0.5;
                let fy = (s.y - self.domain.min.y) / dy - 0.5;
                let x0 = fx.floor();
                let y0 = fy.floor();
                let (tx, ty) = (fx - x0, fy - y0);
                for (gx, gy, w) in [
                    (x0, y0, (1.0 - tx) * (1.0 - ty)),
                    (x0 + 1.0, y0, tx * (1.0 - ty)),
                    (x0, y0 + 1.0, (1.0 - tx) * ty),
                    (x0 + 1.0, y0 + 1.0, tx * ty),
                ] {
                    if gx >= 0.0 && gy >= 0.0 && gx < self.nx as f64 && gy < self.ny as f64 {
                        *slot += w * self.mass[gy as usize * self.nx + gx as usize];
                    }
                }
            }
            out.mass = remapped;
        }
        let (dx, dy) = self.cell_size();
        blur_axis(&mut out.mass, self.nx, self.ny, sigma_x / dx, true);
        blur_axis(&mut out.mass, self.nx, self.ny, sigma_y / dy, false);
        out.normalize();
        out
    }
}

/// One pass of a separable truncated-Gaussian blur along the x (row)
/// or y (column) axis, with `sigma` in cell units. Kernel support is
/// truncated at 3σ and renormalized, so mass never leaks off the grid
/// edges asymmetrically. A sub-cell sigma is a no-op.
fn blur_axis(mass: &mut [f64], nx: usize, ny: usize, sigma: f64, along_x: bool) {
    if sigma <= 1e-6 || !sigma.is_finite() {
        return;
    }
    let radius = ((3.0 * sigma).ceil() as usize).max(1);
    let kernel: Vec<f64> = (0..=radius)
        .map(|k| (-0.5 * (k as f64 / sigma).powi(2)).exp())
        .collect();
    let out: Vec<f64> = (0..mass.len())
        .map(|i| {
            let (x, y) = (i % nx, i / nx);
            let (pos, len) = if along_x { (x, nx) } else { (y, ny) };
            let mut acc = 0.0;
            let mut norm = 0.0;
            let lo = pos.saturating_sub(radius);
            let hi = (pos + radius).min(len - 1);
            for q in lo..=hi {
                let w = kernel[q.abs_diff(pos)];
                let j = if along_x { y * nx + q } else { q * nx + x };
                acc += w * mass[j];
                norm += w;
            }
            if norm > 0.0 {
                acc / norm
            } else {
                mass[i]
            }
        })
        .collect();
    mass.copy_from_slice(&out);
}

impl crate::engine::Belief for GridBelief {
    const SUPPORTS_MAP: bool = true;

    fn mean(&self) -> Vec2 {
        GridBelief::mean(self)
    }

    fn spread(&self) -> f64 {
        GridBelief::spread(self)
    }

    fn map_estimate(&self) -> Option<Vec2> {
        Some(GridBelief::map_estimate(self))
    }
}

impl crate::sharded::TemperBelief for GridBelief {
    fn tempered(&self, alpha: f64) -> GridBelief {
        if !(alpha > 0.0 && alpha < 1.0) {
            return self.clone();
        }
        let mut b = self.clone();
        for m in &mut b.mass {
            if *m > 0.0 {
                *m = m.powf(alpha);
            }
        }
        b.normalize();
        b
    }
}

/// Guard against total annihilation downstream: a zero or non-finite
/// message total is replaced by a flat message. Returns whether the
/// fallback fired (callers surface it as
/// [`ObsEvent::GridUniformFallback`]).
fn finalize_message(msg: &mut [f64]) -> bool {
    let total: f64 = msg.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        msg.fill(1.0);
        true
    } else {
        false
    }
}

/// Computes the message from a source belief into a target grid through a
/// distance potential, truncated at the potential's support radius.
/// Returns the message and whether the uniform fallback fired.
fn kernel_message(
    source: &GridBelief,
    potential: &dyn PairPotential,
    mass_floor: f64,
) -> (Vec<f64>, bool) {
    let nx = source.nx;
    let ny = source.ny;
    let (dx, dy) = source.cell_size();
    let mut msg = vec![0.0; nx * ny];
    // Support radius in cells, conservatively ceil'd. Unbounded potentials
    // scatter over the whole grid.
    let reach = potential.max_distance();
    let (rx, ry) = match reach {
        Some(r) => ((r / dx).ceil() as isize, (r / dy).ceil() as isize),
        None => (nx as isize, ny as isize),
    };
    for (s, &m) in source.mass.iter().enumerate() {
        if m < mass_floor {
            continue;
        }
        let sp = source.cell_center(s);
        let sx = (s % nx) as isize;
        let sy = (s / nx) as isize;
        let x0 = (sx - rx).max(0) as usize;
        let x1 = (sx + rx).min(nx as isize - 1) as usize;
        let y0 = (sy - ry).max(0) as usize;
        let y1 = (sy + ry).min(ny as isize - 1) as usize;
        for y in y0..=y1 {
            for x in x0..=x1 {
                let t = y * nx + x;
                let d = source.cell_center(t).dist(sp);
                msg[t] += m * potential.likelihood(d);
            }
        }
    }
    let collapsed = finalize_message(&mut msg);
    (msg, collapsed)
}

/// Message from a *fixed* (anchor) source: the potential evaluated against
/// the known position. Returns the message and whether the uniform
/// fallback fired.
fn point_message(
    target_shape: &GridBelief,
    source_pos: Vec2,
    potential: &dyn PairPotential,
) -> (Vec<f64>, bool) {
    let mut msg: Vec<f64> = (0..target_shape.mass.len())
        .map(|t| potential.likelihood(target_shape.cell_center(t).dist(source_pos)))
        .collect();
    let collapsed = finalize_message(&mut msg);
    (msg, collapsed)
}

/// Iteration-invariant message state, built once per run.
///
/// Three quantities never change across BP iterations: the prior-derived
/// initial beliefs (unary potentials don't change), the anchor messages
/// (fixed positions don't move), and the kernel tables of distance-only
/// potentials (on a regular grid the likelihood depends only on the cell
/// offset). The seed path recomputed all three inside every
/// `update_one`; this cache hoists them out of the iteration loop. The
/// cache is generic over the cell type: anchor messages, kernel tables,
/// and initial cell buffers are stored pre-converted so the hot loop
/// never touches f64⇄f32 conversions.
struct MessageCache<C: Cell> {
    /// Initial beliefs: priors for free variables, deltas for fixed
    /// ones (canonical f64 form, shared with the run's belief vector).
    init: Vec<GridBelief>,
    /// The same initial beliefs in cell-typed storage — each update's
    /// starting product buffer.
    init_cells: Vec<Vec<C>>,
    /// Per-edge anchor message — `Some` iff exactly one endpoint is
    /// fixed, computed in the fixed→free direction.
    anchor_msgs: Vec<Option<Vec<C>>>,
    /// Per-edge index into `stencils` — `Some` iff both endpoints are
    /// free and the potential discretizes.
    edge_stencils: Vec<Option<usize>>,
    /// Deduplicated classified stencils: edges sharing a potential (by
    /// `Arc` identity) share one entry.
    stencils: Vec<KernelStencil<C>>,
}

impl<C: Cell> MessageCache<C> {
    fn build(
        mrf: &SpatialMrf,
        domain: Aabb,
        nx: usize,
        ny: usize,
        obs: &dyn InferenceObserver,
    ) -> MessageCache<C> {
        let init: Vec<GridBelief> = (0..mrf.len())
            .map(|u| match mrf.fixed(u) {
                Some(p) => GridBelief::delta(p, domain, nx, ny),
                None => GridBelief::from_unary(mrf.unary(u).as_ref(), domain, nx, ny),
            })
            .collect();
        let init_cells: Vec<Vec<C>> = init
            .iter()
            .map(|b| C::from_f64_vec(b.mass.clone()))
            .collect();
        // Geometry template for anchor messages: point_message reads only
        // cell centers, identical across all beliefs on this grid.
        let shape = GridBelief::uniform(domain, nx, ny);
        let (dx, dy) = shape.cell_size();
        let mut anchor_msgs = Vec::with_capacity(mrf.edges().len());
        let mut edge_stencils = Vec::with_capacity(mrf.edges().len());
        let mut stencils: Vec<KernelStencil<C>> = Vec::new();
        let mut by_potential: HashMap<usize, Option<usize>> = HashMap::new();
        for (e, edge) in mrf.edges().iter().enumerate() {
            let anchor = match (mrf.fixed(edge.u), mrf.fixed(edge.v)) {
                (Some(p), None) | (None, Some(p)) => {
                    let (msg, collapsed) = point_message(&shape, p, edge.potential.as_ref());
                    if collapsed {
                        obs.on_event(&ObsEvent::GridUniformFallback {
                            edge: e,
                            stage: "point",
                        });
                    }
                    Some(C::from_f64_vec(msg))
                }
                _ => None,
            };
            // Kernel messages only flow along free–free edges; fixed
            // sources use the anchor message and fixed targets are never
            // updated.
            let stencil =
                if anchor.is_none() && mrf.fixed(edge.u).is_none() && mrf.fixed(edge.v).is_none() {
                    let key = Arc::as_ptr(&edge.potential) as *const () as usize;
                    *by_potential.entry(key).or_insert_with(|| {
                        KernelStencil::build(edge.potential.as_ref(), nx, ny, dx, dy).map(|s| {
                            stencils.push(s.converted::<C>());
                            stencils.len() - 1
                        })
                    })
                } else {
                    None
                };
            anchor_msgs.push(anchor);
            edge_stencils.push(stencil);
        }
        MessageCache {
            init,
            init_cells,
            anchor_msgs,
            edge_stencils,
            stencils,
        }
    }

    /// The cached anchor message for edge `e`, when one exists.
    fn anchor(&self, e: usize) -> Option<&[C]> {
        self.anchor_msgs.get(e).and_then(|m| m.as_deref())
    }

    /// The shared stencil for edge `e`, when the potential discretizes.
    fn stencil(&self, e: usize) -> Option<&KernelStencil<C>> {
        self.edge_stencils
            .get(e)
            .copied()
            .flatten()
            .and_then(|i| self.stencils.get(i))
    }
}

/// Numeric precision of the grid backend's message/product hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GridPrecision {
    /// Double precision — the default. This path is bit-stable: it is
    /// what the cache-equivalence property tests and the thread/schedule
    /// determinism audit pin down.
    #[default]
    F64,
    /// Single precision — an opt-in speed/accuracy trade-off. Kernel
    /// tables, messages, and belief products run in f32 (halving memory
    /// traffic and doubling SIMD lane width); beliefs handed back to
    /// callers are widened and renormalized in f64. Accuracy contract:
    /// per-cell belief masses track the f64 path to within single
    /// precision (relative ~1e-6 per operation; sub-1e-38 tails flush
    /// to zero), which bounds estimate drift far below a cell width on
    /// realistic scenarios — asserted by the RMSE-drift tests.
    F32,
}

/// Opt-in coarse-to-fine schedule for [`GridBp`].
///
/// The run starts on a `(nx/factor) × (ny/factor)` grid for
/// `coarse_iterations` BP iterations (or until the run's convergence
/// tolerance is met). Free nodes whose coarse posterior concentrates —
/// the mass of their `top_k` heaviest cells reaches `concentration` —
/// carry their upsampled belief into the full-resolution run as its
/// starting point (the same belief-level carry-over seam `wsnloc-serve`
/// uses between epochs); diffuse nodes restart cold from their priors.
/// The coarse pre-solve runs on the perfect transport without observer
/// telemetry; its broadcasts are added to the run's message count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoarseToFine {
    /// Resolution divisor for the coarse phase (≥ 2).
    pub factor: usize,
    /// Iteration budget of the coarse phase (≥ 1).
    pub coarse_iterations: usize,
    /// Number of heaviest cells whose combined mass is thresholded (≥ 1).
    pub top_k: usize,
    /// Concentration threshold in `(0, 1]`: carry a node's coarse belief
    /// up only when its top-k mass reaches this value.
    pub concentration: f64,
}

impl Default for CoarseToFine {
    fn default() -> Self {
        CoarseToFine {
            factor: 4,
            coarse_iterations: 6,
            top_k: 9,
            concentration: 0.5,
        }
    }
}

impl CoarseToFine {
    /// Validates the schedule parameters, returning `self` unchanged on
    /// success.
    pub fn validated(self) -> Result<Self, ValidationError> {
        if self.factor < 2 {
            return Err(ValidationError::InvalidOption {
                option: "refine.factor",
                value: self.factor as f64,
                requirement: "coarse-to-fine resolution divisor must be at least 2",
            });
        }
        if self.coarse_iterations == 0 {
            return Err(ValidationError::InvalidOption {
                option: "refine.coarse_iterations",
                value: 0.0,
                requirement: "coarse phase needs at least 1 iteration",
            });
        }
        if self.top_k == 0 {
            return Err(ValidationError::InvalidOption {
                option: "refine.top_k",
                value: 0.0,
                requirement: "concentration statistic needs at least 1 cell",
            });
        }
        if !(self.concentration > 0.0 && self.concentration <= 1.0) {
            return Err(ValidationError::InvalidOption {
                option: "refine.concentration",
                value: self.concentration,
                requirement: "concentration threshold must lie in (0, 1]",
            });
        }
        Ok(self)
    }
}

/// Per-node warm-start lookup unifying the two carry-over sources: the
/// caller's carried beliefs (all free nodes) and the coarse-to-fine
/// pre-solve (only nodes that concentrated).
enum Warm<'a> {
    None,
    All(&'a [GridBelief]),
    PerNode(&'a [Option<GridBelief>]),
}

impl Warm<'_> {
    fn get(&self, u: usize) -> Option<&GridBelief> {
        match self {
            Warm::None => None,
            Warm::All(w) => w.get(u),
            Warm::PerNode(w) => w.get(u).and_then(|b| b.as_ref()),
        }
    }
}

/// Loopy belief propagation with grid-discretized beliefs.
#[derive(Debug, Clone, Copy)]
pub struct GridBp {
    /// Cells along x.
    pub nx: usize,
    /// Cells along y.
    pub ny: usize,
    /// Source cells below this mass are skipped when scattering messages
    /// (speed/accuracy trade-off; scaled by 1/cells internally).
    pub mass_floor: f64,
    /// Whether the per-run message cache (prior beliefs, anchor messages,
    /// kernel stencils) is used. On by default; disabling it runs the
    /// recompute-everything reference path, kept for equivalence tests
    /// and before/after benchmarks.
    pub cache_messages: bool,
    precision: GridPrecision,
    refine: Option<CoarseToFine>,
}

impl GridBp {
    /// Engine with an `n × n` grid and the default mass floor.
    pub fn with_resolution(n: usize) -> Self {
        GridBp {
            nx: n,
            ny: n,
            mass_floor: 1e-4,
            cache_messages: true,
            precision: GridPrecision::default(),
            refine: None,
        }
    }

    /// The same engine with the per-run message cache disabled: every
    /// prior, anchor message, and kernel evaluation is recomputed from
    /// the potentials each iteration, exactly as the pre-cache engine
    /// did.
    pub fn without_message_cache(mut self) -> Self {
        self.cache_messages = false;
        self
    }

    /// The same engine with the hot path running at `precision`.
    pub fn with_precision(mut self, precision: GridPrecision) -> Self {
        self.precision = precision;
        self
    }

    /// The same engine with the coarse-to-fine schedule enabled.
    /// Callers should pass parameters through
    /// [`CoarseToFine::validated`]; degenerate values (a factor that
    /// leaves fewer than 2 coarse cells per axis) skip the pre-solve at
    /// run time rather than failing.
    pub fn with_refinement(mut self, refine: CoarseToFine) -> Self {
        self.refine = Some(refine);
        self
    }

    /// The hot-path precision this engine runs at.
    pub fn precision(&self) -> GridPrecision {
        self.precision
    }

    /// The coarse-to-fine schedule, when enabled.
    pub fn refinement(&self) -> Option<CoarseToFine> {
        self.refine
    }

    /// Coarse-to-fine wrapper: optionally pre-solve on a reduced grid,
    /// then run at full resolution with concentrated coarse posteriors
    /// carried over per node. The pre-solve is skipped when the caller
    /// already supplied warm beliefs (they carry posterior structure of
    /// their own) or when the coarse grid would degenerate.
    fn run_refined<C: Cell, F>(
        &self,
        mrf: &SpatialMrf,
        opts: &BpOptions,
        transport: &Transport,
        warm: WarmStart<'_, GridBelief>,
        obs: &dyn InferenceObserver,
        on_iter: F,
    ) -> RunOutcome<GridBelief>
    where
        F: FnMut(usize, &[GridBelief]),
    {
        let mut carried: Option<Vec<Option<GridBelief>>> = None;
        let mut pre_messages = 0u64;
        if let Some(cf) = self.refine {
            let f = cf.factor.max(1);
            let (cnx, cny) = (self.nx / f, self.ny / f);
            if warm.is_cold() && cf.factor >= 2 && cnx >= 2 && cny >= 2 {
                let coarse = GridBp {
                    nx: cnx,
                    ny: cny,
                    refine: None,
                    ..*self
                };
                let mut copts = *opts;
                copts.max_iterations = cf.coarse_iterations.max(1);
                let out = coarse.run_grid::<C, _>(
                    mrf,
                    &copts,
                    &Transport::perfect(),
                    Warm::None,
                    Warm::None,
                    0,
                    &NullObserver,
                    |_, _| {},
                );
                pre_messages = out.bp.messages;
                carried = Some(
                    out.beliefs
                        .into_iter()
                        .enumerate()
                        .map(|(u, b)| {
                            if mrf.fixed(u).is_some() {
                                return None;
                            }
                            if b.top_k_mass(cf.top_k) >= cf.concentration {
                                Some(b.upsampled_to(self.nx, self.ny))
                            } else {
                                None
                            }
                        })
                        .collect(),
                );
            }
        }
        let warm_ref = match (&carried, warm.prior) {
            (Some(c), _) => Warm::PerNode(c),
            (None, Some(w)) => Warm::All(w),
            (None, None) => Warm::None,
        };
        let state_ref = match warm.state {
            Some(s) => Warm::All(s),
            None => Warm::None,
        };
        self.run_grid::<C, F>(
            mrf,
            opts,
            transport,
            warm_ref,
            state_ref,
            pre_messages,
            obs,
            on_iter,
        )
    }

    /// One full BP run at this engine's resolution, generic over the
    /// cell type of the message/product hot path. `pre_messages` seeds
    /// the broadcast count (coarse-phase messages are real broadcasts in
    /// the protocol being simulated).
    #[allow(clippy::too_many_arguments)]
    fn run_grid<C: Cell, F>(
        &self,
        mrf: &SpatialMrf,
        opts: &BpOptions,
        transport: &Transport,
        warm: Warm<'_>,
        state: Warm<'_>,
        pre_messages: u64,
        obs: &dyn InferenceObserver,
        mut on_iter: F,
    ) -> RunOutcome<GridBelief>
    where
        F: FnMut(usize, &[GridBelief]),
    {
        validate::enforce("GridBp::run", || GraphAudit.check_mrf(mrf));
        let domain = mrf.domain();
        let floor64 = self.mass_floor / (self.nx * self.ny) as f64;
        let floor = C::from_f64(floor64);
        let free = mrf.free_vars();
        obs.on_run_start(&RunInfo {
            backend: "grid",
            nodes: mrf.len(),
            free: free.len(),
            edges: mrf.edges().len(),
            max_iterations: opts.max_iterations,
            tolerance: opts.tolerance,
            damping: opts.damping,
            schedule: opts.schedule.name(),
            message_bytes: opts.message_bytes,
            seed: opts.seed,
        });
        let wants_residuals = obs.wants_residuals();
        // Fault state for this run; `None` on the perfect transport, in
        // which case every session touchpoint below compiles down to
        // the fault-free path.
        let mut session = transport.session::<GridBelief>(mrf, opts.seed);

        // Initial beliefs: priors for free vars, deltas for fixed ones.
        // With the message cache on, the iteration-invariant pieces
        // (priors, anchor messages, kernel stencils) are built here, once,
        // and the initial beliefs are shared with the cache.
        let init_start = Stopwatch::start();
        let cache = if self.cache_messages {
            Some(MessageCache::<C>::build(mrf, domain, self.nx, self.ny, obs))
        } else {
            None
        };
        // Geometry template for the pointwise fallback paths (cell
        // centers only — identical across all beliefs on this grid).
        let shape = GridBelief::uniform(domain, self.nx, self.ny);
        // The per-node base belief every update product starts from:
        // warm carried beliefs (when supplied, for free nodes whose
        // grid shape matches) shadow the prior-derived initial belief.
        let base_belief = |u: usize| -> GridBelief {
            if mrf.fixed(u).is_none() {
                if let Some(b) = warm.get(u) {
                    if b.nx == self.nx && b.ny == self.ny && b.domain == domain {
                        return b.clone();
                    }
                }
            }
            match &cache {
                Some(c) => c.init[u].clone(),
                None => match mrf.fixed(u) {
                    Some(p) => GridBelief::delta(p, domain, self.nx, self.ny),
                    None => GridBelief::from_unary(mrf.unary(u).as_ref(), domain, self.nx, self.ny),
                },
            }
        };
        // The same base in cell-typed storage (the hot-path variant).
        let base_cells = |u: usize| -> Vec<C> {
            if mrf.fixed(u).is_none() {
                if let Some(b) = warm.get(u) {
                    if b.nx == self.nx && b.ny == self.ny && b.domain == domain {
                        return C::from_f64_vec(b.mass.clone());
                    }
                }
            }
            match &cache {
                Some(c) => c.init_cells[u].clone(),
                None => C::from_f64_vec(base_belief(u).mass),
            }
        };
        // Initial belief state: a resumed state (same grid shape) wins
        // over the update base for free nodes; fixed nodes and everyone
        // else start from the base (prior or carried belief).
        let init_belief = |u: usize| -> GridBelief {
            if mrf.fixed(u).is_none() {
                if let Some(b) = state.get(u) {
                    if b.nx == self.nx && b.ny == self.ny && b.domain == domain {
                        return b.clone();
                    }
                }
            }
            base_belief(u)
        };
        let mut beliefs: Vec<GridBelief> = match (&cache, &warm, &state) {
            (Some(c), Warm::None, Warm::None) => c.init.clone(),
            _ => (0..mrf.len()).map(init_belief).collect(),
        };
        // Cell-typed mirror of `beliefs` the message kernels read from;
        // kept in lockstep with `beliefs` after every node update.
        let mut cells: Vec<Vec<C>> = beliefs
            .iter()
            .map(|b| C::from_f64_vec(b.mass.clone()))
            .collect();
        obs.on_span(SpanKind::PriorInit, init_start.elapsed_secs());

        let mut outcome = BpOutcome {
            iterations: 0,
            converged: false,
            messages: pre_messages,
        };

        let loop_start = Stopwatch::start();
        for iter in 0..opts.max_iterations {
            let iter_start = Stopwatch::start();
            // Roll this iteration's link fates and deaths (sequentially,
            // before the parallel updates); dead nodes stop updating.
            if let Some(s) = session.as_mut() {
                s.begin_iteration(iter, &beliefs, obs);
            }
            let active_owned: Option<Vec<usize>> = session
                .as_ref()
                .map(|s| free.iter().copied().filter(|&u| s.node_alive(u)).collect());
            let active: &[usize] = active_owned.as_deref().unwrap_or(&free);
            let prev_means: Vec<Vec2> = free.iter().map(|&u| beliefs[u].mean()).collect();
            // Grid residuals (L1/KL) need the previous cell masses; the
            // clone happens only when the observer asks for residuals.
            let prev_beliefs: Option<Vec<GridBelief>> = if wants_residuals {
                wsnloc_obs::accounting::note_residual_buffer();
                Some(free.iter().map(|&u| beliefs[u].clone()).collect())
            } else {
                None
            };

            let update_one = |u: usize, beliefs: &Vec<GridBelief>, cells: &Vec<Vec<C>>| -> Vec<C> {
                let mut bel = base_cells(u);
                // Message and separable-pass scratch, reused across edges.
                let mut msg: Vec<C> = Vec::new();
                let mut scratch: Vec<C> = Vec::new();
                for &e in mrf.edges_of(u) {
                    let v = mrf.other_end(e, u);
                    let potential = mrf.edges()[e].potential.as_ref();
                    // Transport verdict: skip never-received links,
                    // temper held-but-aging content by `alpha`, and use
                    // the last delivered snapshot instead of the live
                    // neighbor belief. Absent a session (perfect
                    // transport), alpha is 1 and the snapshot is the
                    // live belief — the original code path.
                    let mut alpha = 1.0;
                    let mut held: Option<&GridBelief> = None;
                    if let Some(s) = session.as_ref() {
                        let into_v = mrf.edges()[e].v == u;
                        match s.verdict(e, into_v) {
                            Verdict::Skip => continue,
                            Verdict::Deliver { alpha: a } => {
                                alpha = a;
                                held = s.snapshot(e, into_v);
                            }
                        }
                    }
                    match mrf.fixed(v) {
                        Some(p) => {
                            // Anchor message: cached once per run (its
                            // fallback, if any, was reported at build
                            // time), recomputed only on the reference
                            // path.
                            if let Some(am) = cache.as_ref().and_then(|c| c.anchor(e)) {
                                if alpha < 1.0 {
                                    msg.clear();
                                    msg.extend_from_slice(am);
                                    cellbuf::temper_cells(&mut msg, alpha);
                                    cellbuf::product_cells(&mut bel, &msg);
                                } else {
                                    cellbuf::product_cells(&mut bel, am);
                                }
                            } else {
                                let (m64, collapsed) = point_message(&shape, p, potential);
                                if collapsed {
                                    obs.on_event(&ObsEvent::GridUniformFallback {
                                        edge: e,
                                        stage: "point",
                                    });
                                }
                                let mut m = C::from_f64_vec(m64);
                                cellbuf::temper_cells(&mut m, alpha);
                                cellbuf::product_cells(&mut bel, &m);
                            }
                        }
                        None => {
                            let collapsed = match cache.as_ref().and_then(|c| c.stencil(e)) {
                                Some(st) => {
                                    msg.clear();
                                    msg.resize(bel.len(), C::ZERO);
                                    // Held snapshots (fault paths) are
                                    // f64 beliefs; live sources read the
                                    // cell-typed mirror directly.
                                    let held_cells: Vec<C>;
                                    let source: &[C] = match held {
                                        Some(h) => {
                                            held_cells = C::from_f64_vec(h.mass.clone());
                                            &held_cells
                                        }
                                        None => &cells[v],
                                    };
                                    st.scatter(source, self.nx, floor, &mut msg, &mut scratch);
                                    cellbuf::finalize_cells(&mut msg)
                                }
                                None => {
                                    let source = held.unwrap_or(&beliefs[v]);
                                    let (m64, collapsed) =
                                        kernel_message(source, potential, floor64);
                                    msg = C::from_f64_vec(m64);
                                    collapsed
                                }
                            };
                            if collapsed {
                                obs.on_event(&ObsEvent::GridUniformFallback {
                                    edge: e,
                                    stage: "kernel",
                                });
                            }
                            cellbuf::temper_cells(&mut msg, alpha);
                            cellbuf::product_cells(&mut bel, &msg);
                        }
                    }
                }
                bel
            };

            match opts.schedule {
                Schedule::Synchronous => {
                    let new: Vec<(usize, Vec<C>)> = active
                        .par_iter()
                        .map(|&u| (u, update_one(u, &beliefs, &cells)))
                        .collect();
                    for (u, mut b) in new {
                        if opts.damping > 0.0 {
                            cellbuf::damp_cells(&mut b, &cells[u], opts.damping);
                        }
                        beliefs[u] = GridBelief::from_cells(domain, self.nx, self.ny, &b);
                        cells[u] = b;
                    }
                }
                Schedule::Sweep => {
                    for &u in active {
                        let mut b = update_one(u, &beliefs, &cells);
                        if opts.damping > 0.0 {
                            cellbuf::damp_cells(&mut b, &cells[u], opts.damping);
                        }
                        beliefs[u] = GridBelief::from_cells(domain, self.nx, self.ny, &b);
                        cells[u] = b;
                    }
                }
            }

            outcome.iterations = iter + 1;
            outcome.messages += active.len() as u64;
            validate::enforce("GridBp iteration", || {
                let audit = DistributionAudit::default();
                for (u, b) in beliefs.iter().enumerate() {
                    audit.check_grid(&format!("belief[{u}] at iteration {iter}"), b)?;
                }
                Ok(())
            });
            on_iter(iter, &beliefs);

            let max_shift = free
                .iter()
                .zip(&prev_means)
                .map(|(&u, &prev)| beliefs[u].mean().dist(prev))
                .fold(0.0, f64::max);
            let residuals: Vec<NodeResidual> = match &prev_beliefs {
                Some(prev) => free
                    .iter()
                    .zip(prev)
                    .map(|(&u, p)| NodeResidual {
                        node: u,
                        residual: beliefs[u].l1_distance(p),
                        kl: Some(beliefs[u].kl_divergence(p)),
                    })
                    .collect(),
                None => Vec::new(),
            };
            obs.on_iteration(&IterationRecord {
                iteration: iter,
                max_shift,
                comm: CommStats {
                    messages: active.len() as u64,
                    bytes: active.len() as u64 * opts.message_bytes,
                },
                damping: opts.damping,
                schedule: opts.schedule.name(),
                secs: iter_start.elapsed_secs(),
                residuals,
            });
            if max_shift < opts.tolerance {
                outcome.converged = true;
                break;
            }
        }
        obs.on_span(SpanKind::MessagePassing, loop_start.elapsed_secs());
        obs.on_run_end(&RunSummary {
            iterations: outcome.iterations,
            converged: outcome.converged,
            comm: CommStats {
                messages: outcome.messages,
                bytes: outcome.messages * opts.message_bytes,
            },
        });
        RunOutcome {
            beliefs,
            bp: outcome,
        }
    }
}

impl BpEngine for GridBp {
    type Belief = GridBelief;

    fn backend_name(&self) -> &'static str {
        "grid"
    }

    /// The superset entry point the core localizer drives: structured
    /// telemetry observer, belief-level per-iteration closure, a
    /// message [`Transport`], and a [`WarmStart`]. With the perfect
    /// transport and a cold start this is bit-identical to the
    /// pre-transport engine; under a fault plan, undelivered messages
    /// fall back per the plan's drop policy (stale held messages are
    /// tempered as `m^α`), never-received links contribute nothing, and
    /// dead nodes freeze. A `warm.prior` belief (same grid shape)
    /// replaces the prior-derived base belief of its free node inside
    /// every update product, so a carried posterior acts as this
    /// epoch's prior instead of re-applying the pre-knowledge unary it
    /// already absorbed; a `warm.state` belief seeds the initial belief
    /// vector only (mid-run resume against the model's own priors).
    fn run_warm<F>(
        &self,
        mrf: &SpatialMrf,
        opts: &BpOptions,
        transport: &Transport,
        warm: WarmStart<'_, GridBelief>,
        obs: &dyn InferenceObserver,
        on_iter: F,
    ) -> RunOutcome<GridBelief>
    where
        F: FnMut(usize, &[GridBelief]),
    {
        match self.precision {
            GridPrecision::F64 => {
                self.run_refined::<f64, F>(mrf, opts, transport, warm, obs, on_iter)
            }
            GridPrecision::F32 => {
                self.run_refined::<f32, F>(mrf, opts, transport, warm, obs, on_iter)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::potential::{GaussianRange, GaussianUnary, UniformBoxUnary};
    use std::sync::Arc;

    fn domain() -> Aabb {
        Aabb::from_size(100.0, 100.0)
    }

    #[test]
    fn uniform_belief_properties() {
        let b = GridBelief::uniform(domain(), 10, 10);
        assert!((b.mass().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(b.mean().dist(Vec2::new(50.0, 50.0)) < 1e-9);
        assert!((b.entropy() - (100f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn cell_roundtrip() {
        let b = GridBelief::uniform(domain(), 20, 10);
        for i in [0, 7, 99, 150, 199] {
            let c = b.cell_center(i);
            assert_eq!(b.cell_of(c), i, "roundtrip failed for {i}");
        }
        // Out-of-domain points clamp.
        assert_eq!(b.cell_of(Vec2::new(-50.0, -50.0)), 0);
        assert_eq!(b.cell_of(Vec2::new(500.0, 500.0)), 199);
    }

    #[test]
    fn from_unary_concentrates_gaussian() {
        let g = GaussianUnary {
            mean: Vec2::new(30.0, 70.0),
            sigma: 5.0,
        };
        let b = GridBelief::from_unary(&g, domain(), 50, 50);
        assert!(b.mean().dist(g.mean) < 2.0);
        assert!(b.map_estimate().dist(g.mean) < 2.0);
        assert!(b.spread() < 10.0);
    }

    #[test]
    fn delta_belief_has_single_cell() {
        let b = GridBelief::delta(Vec2::new(10.0, 10.0), domain(), 10, 10);
        assert_eq!(b.mass().iter().filter(|&&m| m > 0.0).count(), 1);
        assert!(b.mean().dist(Vec2::new(10.0, 10.0)) < 10.0); // within a cell
        assert_eq!(b.spread(), 0.0);
    }

    #[test]
    fn product_concentrates() {
        let mut a = GridBelief::from_unary(
            &GaussianUnary {
                mean: Vec2::new(40.0, 50.0),
                sigma: 10.0,
            },
            domain(),
            40,
            40,
        );
        let b = GridBelief::from_unary(
            &GaussianUnary {
                mean: Vec2::new(60.0, 50.0),
                sigma: 10.0,
            },
            domain(),
            40,
            40,
        );
        let spread_before = a.spread();
        a.product(b.mass());
        // Product of two Gaussians sits between the means with less spread.
        assert!(a.mean().dist(Vec2::new(50.0, 50.0)) < 3.0);
        assert!(a.spread() < spread_before);
    }

    #[test]
    fn product_annihilation_falls_back_to_uniform() {
        let mut a = GridBelief::delta(Vec2::new(5.0, 5.0), domain(), 10, 10);
        let b = GridBelief::delta(Vec2::new(95.0, 95.0), domain(), 10, 10);
        a.product(b.mass());
        // No overlap: uniform fallback keeps inference alive.
        assert!((a.mass().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(a.entropy() > 4.0);
    }

    #[test]
    fn covariance_of_elongated_belief() {
        // Mass along a horizontal line: var(x) >> var(y).
        let mut b = GridBelief::uniform(domain(), 20, 20);
        let mut mass = vec![0.0; 400];
        for x in 0..20 {
            mass[10 * 20 + x] = 1.0;
        }
        b.mass.copy_from_slice(&mass);
        b.normalize();
        let cov = b.covariance();
        assert!(cov[(0, 0)] > 100.0 * cov[(1, 1)].max(1e-12));
    }

    #[test]
    fn upsample_preserves_structure() {
        let coarse = GridBelief::from_unary(
            &GaussianUnary {
                mean: Vec2::new(30.0, 60.0),
                sigma: 8.0,
            },
            domain(),
            10,
            10,
        );
        let fine = coarse.upsampled_to(40, 40);
        assert_eq!(fine.nx(), 40);
        assert!((fine.mass().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(fine.mean().dist(coarse.mean()) < 4.0);
    }

    #[test]
    fn top_k_mass_measures_concentration() {
        let peaked = GridBelief::delta(Vec2::new(50.0, 50.0), domain(), 10, 10);
        assert!((peaked.top_k_mass(1) - 1.0).abs() < 1e-12);
        let uniform = GridBelief::uniform(domain(), 10, 10);
        assert!((uniform.top_k_mass(10) - 0.1).abs() < 1e-12);
        assert!((uniform.top_k_mass(1000) - 1.0).abs() < 1e-12);
    }

    /// Three nodes on a line: anchor(10,50) — u1 — anchor(90,50), ranges 40
    /// each. Posterior for u1 should sit near (50,50).
    #[test]
    fn bp_trilaterates_between_anchors() {
        let dom = domain();
        let mut mrf = SpatialMrf::new(3, dom, Arc::new(UniformBoxUnary(dom)));
        mrf.fix(0, Vec2::new(10.0, 50.0));
        mrf.fix(2, Vec2::new(90.0, 50.0));
        mrf.add_edge(
            0,
            1,
            Arc::new(GaussianRange {
                observed: 40.0,
                sigma: 3.0,
            }),
        );
        mrf.add_edge(
            1,
            2,
            Arc::new(GaussianRange {
                observed: 40.0,
                sigma: 3.0,
            }),
        );
        let (beliefs, outcome) = GridBp::with_resolution(40).run(
            &mrf,
            &BpOptions::builder()
                .max_iterations(10)
                .tolerance(0.5)
                .try_build()
                .expect("valid options"),
        );
        assert!(outcome.iterations >= 1);
        let est = beliefs[1].mean();
        // Ring intersection is symmetric about y = 50; x pinned near 50.
        assert!((est.x - 50.0).abs() < 5.0, "x estimate {est}");
    }

    /// A node with a Gaussian prior and one anchor range: the posterior mean
    /// should move from the prior mean toward the ring around the anchor.
    #[test]
    fn bp_fuses_prior_with_measurement() {
        let dom = domain();
        let mut mrf = SpatialMrf::new(2, dom, Arc::new(UniformBoxUnary(dom)));
        mrf.fix(0, Vec2::new(50.0, 50.0));
        mrf.set_unary(
            1,
            Arc::new(GaussianUnary {
                mean: Vec2::new(80.0, 50.0),
                sigma: 10.0,
            }),
        );
        // Measured distance 20 from the central anchor.
        mrf.add_edge(
            0,
            1,
            Arc::new(GaussianRange {
                observed: 20.0,
                sigma: 2.0,
            }),
        );
        let (beliefs, _) = GridBp::with_resolution(50).run(
            &mrf,
            &BpOptions::builder()
                .max_iterations(5)
                .tolerance(0.5)
                .try_build()
                .expect("valid options"),
        );
        let est = beliefs[1].mean();
        // Posterior concentrates near (70, 50): on the ring, pulled toward
        // the prior side.
        assert!(est.dist(Vec2::new(70.0, 50.0)) < 6.0, "estimate {est}");
    }

    #[test]
    fn sweep_schedule_matches_sync_approximately() {
        let dom = domain();
        let mut mrf = SpatialMrf::new(3, dom, Arc::new(UniformBoxUnary(dom)));
        mrf.fix(0, Vec2::new(20.0, 20.0));
        mrf.fix(2, Vec2::new(80.0, 80.0));
        let d = Vec2::new(20.0, 20.0).dist(Vec2::new(50.0, 50.0));
        mrf.add_edge(
            0,
            1,
            Arc::new(GaussianRange {
                observed: d,
                sigma: 3.0,
            }),
        );
        mrf.add_edge(
            1,
            2,
            Arc::new(GaussianRange {
                observed: d,
                sigma: 3.0,
            }),
        );
        let run = |schedule| {
            GridBp::with_resolution(40)
                .run(
                    &mrf,
                    &BpOptions::builder()
                        .max_iterations(8)
                        .tolerance(0.5)
                        .schedule(schedule)
                        .try_build()
                        .expect("valid options"),
                )
                .0[1]
                .mean()
        };
        let sync = run(Schedule::Synchronous);
        let sweep = run(Schedule::Sweep);
        assert!(sync.dist(sweep) < 8.0, "sync {sync} sweep {sweep}");
    }

    #[test]
    fn observer_sees_every_iteration() {
        let dom = domain();
        let mut mrf = SpatialMrf::new(2, dom, Arc::new(UniformBoxUnary(dom)));
        mrf.fix(0, Vec2::new(50.0, 50.0));
        mrf.add_edge(
            0,
            1,
            Arc::new(GaussianRange {
                observed: 10.0,
                sigma: 2.0,
            }),
        );
        let mut seen = Vec::new();
        let (_, outcome) = GridBp::with_resolution(20).run_observed(
            &mrf,
            &BpOptions::builder()
                .max_iterations(4)
                .tolerance(0.0) // never converge early
                .try_build()
                .expect("valid options"),
            |iter, beliefs| {
                seen.push((iter, beliefs.len()));
            },
        );
        assert_eq!(outcome.iterations, 4);
        assert!(!outcome.converged);
        assert_eq!(seen, vec![(0, 2), (1, 2), (2, 2), (3, 2)]);
        assert_eq!(outcome.messages, 4);
    }

    #[test]
    fn stencil_message_matches_kernel_message() {
        let pot = GaussianRange {
            observed: 30.0,
            sigma: 4.0,
        };
        let src = GridBelief::from_unary(
            &GaussianUnary {
                mean: Vec2::new(40.0, 60.0),
                sigma: 12.0,
            },
            domain(),
            25,
            25,
        );
        let (dx, dy) = src.cell_size();
        let st = KernelStencil::build(&pot, 25, 25, dx, dy).expect("range potential discretizes");
        // The default ring kernel is radially symmetric: quadrant form.
        assert_eq!(st.kind_name(), "mirrored");
        let floor = 1e-4 / 625.0;
        let (reference, ref_collapsed) = kernel_message(&src, &pot, floor);
        let mut cached = vec![0.0f64; 625];
        let mut scratch = Vec::new();
        st.scatter(src.mass(), 25, floor, &mut cached, &mut scratch);
        let cache_collapsed = finalize_message(&mut cached);
        assert_eq!(ref_collapsed, cache_collapsed);
        for (t, (a, b)) in reference.iter().zip(&cached).enumerate() {
            assert!(
                (a - b).abs() <= 1e-12 * a.abs().max(1.0),
                "cell {t}: reference {a} vs stencil {b}"
            );
        }
    }

    fn four_node_mrf() -> SpatialMrf {
        let dom = domain();
        let mut mrf = SpatialMrf::new(4, dom, Arc::new(UniformBoxUnary(dom)));
        mrf.fix(0, Vec2::new(10.0, 50.0));
        mrf.fix(3, Vec2::new(90.0, 50.0));
        for (u, v, d) in [(0, 1, 30.0), (1, 2, 25.0), (2, 3, 30.0), (1, 3, 52.0)] {
            mrf.add_edge(
                u,
                v,
                Arc::new(GaussianRange {
                    observed: d,
                    sigma: 3.0,
                }),
            );
        }
        mrf
    }

    #[test]
    fn cached_run_matches_reference_run() {
        let mrf = four_node_mrf();
        let opts = BpOptions::builder()
            .max_iterations(6)
            .tolerance(0.0)
            .try_build()
            .expect("valid options");
        let engine = GridBp::with_resolution(30);
        let (cached, co) = engine.run(&mrf, &opts);
        let (reference, ro) = engine.without_message_cache().run(&mrf, &opts);
        assert_eq!(co.iterations, ro.iterations);
        for (u, (c, r)) in cached.iter().zip(&reference).enumerate() {
            for (i, (a, b)) in c.mass().iter().zip(r.mass()).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-9,
                    "belief[{u}] cell {i}: cached {a} vs reference {b}"
                );
            }
        }
    }

    #[test]
    fn f32_precision_tracks_f64_estimates() {
        let mrf = four_node_mrf();
        let opts = BpOptions::builder()
            .max_iterations(6)
            .tolerance(0.0)
            .try_build()
            .expect("valid options");
        let (b64, o64) = GridBp::with_resolution(30).run(&mrf, &opts);
        let (b32, o32) = GridBp::with_resolution(30)
            .with_precision(GridPrecision::F32)
            .run(&mrf, &opts);
        assert_eq!(o64.iterations, o32.iterations);
        for (u, (a, b)) in b64.iter().zip(&b32).enumerate() {
            // Documented f32 contract: estimates drift far below a cell
            // width (100m / 30 cells ≈ 3.3m).
            assert!(
                a.mean().dist(b.mean()) < 0.1,
                "node {u}: f64 {} vs f32 {}",
                a.mean(),
                b.mean()
            );
            assert!(a.l1_distance(b) < 1e-2, "node {u} belief drift");
            // f32-derived beliefs are renormalized to audit precision.
            assert!((b.mass().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn coarse_to_fine_tracks_dense_estimates() {
        let mrf = four_node_mrf();
        let opts = BpOptions::builder()
            .max_iterations(8)
            .tolerance(0.0)
            .try_build()
            .expect("valid options");
        let (dense, od) = GridBp::with_resolution(40).run(&mrf, &opts);
        let refine = CoarseToFine::default().validated().expect("valid schedule");
        let (refined, or) = GridBp::with_resolution(40)
            .with_refinement(refine)
            .run(&mrf, &opts);
        // The coarse pre-solve's broadcasts are real messages.
        assert!(or.messages > od.messages, "coarse messages counted");
        for (u, (a, b)) in dense.iter().zip(&refined).enumerate() {
            assert!(
                a.mean().dist(b.mean()) < 3.0,
                "node {u}: dense {} vs refined {}",
                a.mean(),
                b.mean()
            );
        }
    }

    #[test]
    fn coarse_to_fine_validation_rejects_degenerate_schedules() {
        assert!(CoarseToFine::default().validated().is_ok());
        let bad_factor = CoarseToFine {
            factor: 1,
            ..CoarseToFine::default()
        };
        assert!(matches!(
            bad_factor.validated(),
            Err(ValidationError::InvalidOption { option, .. }) if option == "refine.factor"
        ));
        let bad_conc = CoarseToFine {
            concentration: 0.0,
            ..CoarseToFine::default()
        };
        assert!(bad_conc.validated().is_err());
        let bad_iters = CoarseToFine {
            coarse_iterations: 0,
            ..CoarseToFine::default()
        };
        assert!(bad_iters.validated().is_err());
        let bad_k = CoarseToFine {
            top_k: 0,
            ..CoarseToFine::default()
        };
        assert!(bad_k.validated().is_err());
    }

    #[test]
    fn refinement_skips_degenerate_coarse_grids() {
        // 4÷4 = 1 coarse cell per axis: the pre-solve must be skipped,
        // leaving a plain full-resolution run.
        let mrf = four_node_mrf();
        let opts = BpOptions::builder()
            .max_iterations(3)
            .tolerance(0.0)
            .try_build()
            .expect("valid options");
        let (plain, op) = GridBp::with_resolution(4).run(&mrf, &opts);
        let (refined, or) = GridBp::with_resolution(4)
            .with_refinement(CoarseToFine::default())
            .run(&mrf, &opts);
        assert_eq!(op.messages, or.messages);
        for (a, b) in plain.iter().zip(&refined) {
            assert_eq!(a.mass(), b.mass());
        }
    }

    #[test]
    fn l1_distance_bounds() {
        let a = GridBelief::delta(Vec2::new(5.0, 5.0), domain(), 10, 10);
        let b = GridBelief::delta(Vec2::new(95.0, 95.0), domain(), 10, 10);
        assert!((a.l1_distance(&b) - 2.0).abs() < 1e-12);
        assert_eq!(a.l1_distance(&a), 0.0);
    }

    #[test]
    fn kl_divergence_properties() {
        let uniform = GridBelief::uniform(domain(), 10, 10);
        let peaked = GridBelief::from_unary(
            &GaussianUnary {
                mean: Vec2::new(50.0, 50.0),
                sigma: 5.0,
            },
            domain(),
            10,
            10,
        );
        // Self-divergence is zero; divergence from a different belief is
        // positive and finite, even against zero-mass cells.
        assert_eq!(peaked.kl_divergence(&peaked), 0.0);
        assert!(peaked.kl_divergence(&uniform) > 0.0);
        let delta = GridBelief::delta(Vec2::new(5.0, 5.0), domain(), 10, 10);
        let kl = peaked.kl_divergence(&delta);
        assert!(kl.is_finite() && kl > 0.0);
    }
}
