//! Gaussian (parametric) belief propagation.
//!
//! The cheapest belief representation: every node's posterior is a single
//! 2-D Gaussian, updated in information form by EKF-style linearization of
//! the range measurements (distributed Gauss–Newton with uncertainty
//! tracking). One mean + covariance per node is all a node ever transmits —
//! 40 bytes against kilobytes of particles.
//!
//! The catch, and the reason the paper's formulation is nonparametric: a
//! range ring is *not* Gaussian. With few anchors the true posterior is
//! multi-modal (rings, reflection ambiguities), the linearization point is
//! wrong, and Gaussian BP converges to whichever mode its initialization
//! fell into. The backend-comparison experiment measures exactly this
//! failure mode; Gaussian BP is competitive only when priors or anchors
//! make posteriors unimodal.
//!
//! Update rule per node `u`, iteration `k`:
//! `Λ ← Λ₀ + Σ_v g gᵀ / s²`, `η ← η₀ + Σ_v g (gᵀμᵤ + r) / s²`, where
//! `g = (μᵤ − μᵥ)/‖μᵤ − μᵥ‖` is the linearized range gradient,
//! `r = d_obs − ‖μᵤ − μᵥ‖` the innovation, and
//! `s² = σ_d² + gᵀΣᵥg` the measurement variance inflated by the neighbor's
//! own positional uncertainty along the line of sight.

use crate::engine::{BpEngine, RunOutcome, WarmStart};
use crate::mrf::{BpOptions, BpOutcome, Schedule, SpatialMrf};
use crate::transport::{Transport, TransportSession, Verdict};
use crate::validate::{self, DistributionAudit, GraphAudit};
use rayon::prelude::*;
use wsnloc_geom::rng::Xoshiro256pp;
use wsnloc_geom::Vec2;
use wsnloc_obs::Stopwatch;
use wsnloc_obs::{
    CommStats, InferenceObserver, IterationRecord, NodeResidual, RunInfo, RunSummary, SpanKind,
};

/// A 2-D Gaussian belief: mean and covariance (row-major 2×2, symmetric).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianBelief {
    /// Mean position.
    pub mean: Vec2,
    /// Covariance `[cxx, cxy, cxy, cyy]`.
    pub cov: [f64; 4],
}

impl GaussianBelief {
    /// A near-certain belief at a point (anchors).
    pub fn point(p: Vec2) -> Self {
        GaussianBelief {
            mean: p,
            cov: [1e-9, 0.0, 0.0, 1e-9],
        }
    }

    /// An isotropic Gaussian belief.
    pub fn isotropic(mean: Vec2, sigma: f64) -> Self {
        GaussianBelief {
            mean,
            cov: [sigma * sigma, 0.0, 0.0, sigma * sigma],
        }
    }

    /// RMS spread `sqrt(trace(cov))`.
    pub fn spread(&self) -> f64 {
        (self.cov[0] + self.cov[3]).max(0.0).sqrt()
    }

    /// Variance along unit direction `g`: `gᵀ Σ g`.
    pub fn directional_variance(&self, g: Vec2) -> f64 {
        g.x * g.x * self.cov[0] + 2.0 * g.x * g.y * self.cov[1] + g.y * g.y * self.cov[3]
    }
}

impl crate::engine::Belief for GaussianBelief {
    const SUPPORTS_MAP: bool = false;

    fn mean(&self) -> Vec2 {
        self.mean
    }

    fn spread(&self) -> f64 {
        GaussianBelief::spread(self)
    }

    fn map_estimate(&self) -> Option<Vec2> {
        None
    }
}

/// 2×2 symmetric inverse; `None` when singular.
fn inv2(m: [f64; 4]) -> Option<[f64; 4]> {
    let det = m[0] * m[3] - m[1] * m[2];
    if det.abs() < 1e-300 || !det.is_finite() {
        return None;
    }
    Some([m[3] / det, -m[1] / det, -m[2] / det, m[0] / det])
}

/// Gaussian-belief loopy BP engine.
#[derive(Debug, Clone, Copy)]
pub struct GaussianBp {
    /// Magnitude (meters) of the deterministic per-node jitter applied to
    /// initial means, breaking the gradient singularity of coincident
    /// initializations.
    pub init_jitter: f64,
}

impl Default for GaussianBp {
    fn default() -> Self {
        GaussianBp { init_jitter: 1.0 }
    }
}

impl BpEngine for GaussianBp {
    type Belief = GaussianBelief;

    fn backend_name(&self) -> &'static str {
        "gaussian"
    }

    /// The superset entry point the core localizer drives: structured
    /// telemetry observer, belief-level per-iteration closure, a
    /// message [`Transport`], and a [`WarmStart`]. With the perfect
    /// transport and a cold start this is bit-identical to the
    /// pre-transport engine; under a fault plan, undelivered neighbor
    /// beliefs are replaced by held snapshots (their information
    /// contribution scaled by `alpha`), never-received links contribute
    /// nothing, and dead nodes freeze. A `warm.prior` belief replaces a
    /// free node's sampled prior moments — the textbook predict/update
    /// recursion with the carried Gaussian as the predicted prior — and
    /// a `warm.state` belief replaces its jittered initial belief
    /// without touching the prior (mid-run resume).
    fn run_warm<F>(
        &self,
        mrf: &SpatialMrf,
        opts: &BpOptions,
        transport: &Transport,
        warm: WarmStart<'_, GaussianBelief>,
        obs: &dyn InferenceObserver,
        mut on_iter: F,
    ) -> RunOutcome<GaussianBelief>
    where
        F: FnMut(usize, &[GaussianBelief]),
    {
        validate::enforce("GaussianBp::run", || GraphAudit.check_mrf(mrf));
        let domain = mrf.domain();
        let default_sigma = domain.diagonal() / 2.0;
        let root = Xoshiro256pp::seed_from(opts.seed);
        let free_ids = mrf.free_vars();
        obs.on_run_start(&RunInfo {
            backend: "gaussian",
            nodes: mrf.len(),
            free: free_ids.len(),
            edges: mrf.edges().len(),
            max_iterations: opts.max_iterations,
            tolerance: opts.tolerance,
            damping: opts.damping,
            schedule: opts.schedule.name(),
            message_bytes: opts.message_bytes,
            seed: opts.seed,
        });
        let wants_residuals = obs.wants_residuals();
        // Fault state for this run; `None` on the perfect transport.
        let mut session = transport.session::<GaussianBelief>(mrf, opts.seed);
        let init_start = Stopwatch::start();

        // Prior moments per node: sample the unary to estimate mean/variance
        // (exact for Gaussian priors up to Monte-Carlo noise; a reasonable
        // moment match for boxes and shapes).
        let priors: Vec<GaussianBelief> = (0..mrf.len())
            .map(|u| match (mrf.fixed(u), warm.prior) {
                (Some(p), _) => GaussianBelief::point(p),
                // Carried-over epoch prior: the previous posterior,
                // already motion-convolved by the caller.
                (None, Some(w)) => w[u],
                (None, None) => {
                    let mut rng = root.split(0x6A05 ^ u as u64);
                    let samples: Vec<Vec2> =
                        (0..64).map(|_| mrf.unary(u).sample(&mut rng)).collect();
                    // 64 draws above, so the centroid always exists.
                    let mean = Vec2::centroid(&samples).unwrap_or_else(|| mrf.domain().center());
                    let var = samples.iter().map(|s| s.dist_sq(mean)).sum::<f64>()
                        / samples.len() as f64
                        / 2.0;
                    let sigma = var.sqrt().max(1e-3).min(default_sigma);
                    GaussianBelief::isotropic(mean, sigma)
                }
            })
            .collect();

        let mut beliefs: Vec<GaussianBelief> = priors
            .iter()
            .enumerate()
            .map(|(u, p)| match (mrf.fixed(u), warm.state) {
                // Resumed state wins over the prior-derived init.
                (None, Some(s)) => s[u],
                (fixed, _) => {
                    let mut b = *p;
                    // Warm starts skip the symmetry-breaking jitter: the
                    // carried mean is already a meaningful linearization
                    // point, not a coincident initialization.
                    if fixed.is_none() && warm.prior.is_none() {
                        let mut rng = root.split(0x11773 ^ u as u64);
                        b.mean += Vec2::new(rng.gaussian(), rng.gaussian()) * self.init_jitter;
                    }
                    b
                }
            })
            .collect();
        obs.on_span(SpanKind::PriorInit, init_start.elapsed_secs());

        let free = free_ids;
        let mut outcome = BpOutcome {
            iterations: 0,
            converged: false,
            messages: 0,
        };

        let loop_start = Stopwatch::start();
        for iter in 0..opts.max_iterations {
            let iter_start = Stopwatch::start();
            // Roll this iteration's link fates and deaths (sequentially,
            // before the parallel updates); dead nodes stop updating.
            if let Some(s) = session.as_mut() {
                s.begin_iteration(iter, &beliefs, obs);
            }
            let active_owned: Option<Vec<usize>> = session
                .as_ref()
                .map(|s| free.iter().copied().filter(|&u| s.node_alive(u)).collect());
            let active: &[usize] = active_owned.as_deref().unwrap_or(&free);
            let prev_means: Vec<Vec2> = free.iter().map(|&u| beliefs[u].mean).collect();

            let update_one = |u: usize, beliefs: &Vec<GaussianBelief>| -> GaussianBelief {
                self.update_node(mrf, u, &priors[u], beliefs, session.as_ref())
                    .unwrap_or(beliefs[u])
            };

            match opts.schedule {
                Schedule::Synchronous => {
                    let new: Vec<(usize, GaussianBelief)> = active
                        .par_iter()
                        .map(|&u| (u, update_one(u, &beliefs)))
                        .collect();
                    for (u, mut b) in new {
                        if opts.damping > 0.0 {
                            b.mean = b.mean.lerp(beliefs[u].mean, opts.damping);
                        }
                        beliefs[u] = b;
                    }
                }
                Schedule::Sweep => {
                    for &u in active {
                        let mut b = update_one(u, &beliefs);
                        if opts.damping > 0.0 {
                            b.mean = b.mean.lerp(beliefs[u].mean, opts.damping);
                        }
                        beliefs[u] = b;
                    }
                }
            }

            outcome.iterations = iter + 1;
            outcome.messages += active.len() as u64;
            validate::enforce("GaussianBp iteration", || {
                let audit = DistributionAudit::default();
                for (u, b) in beliefs.iter().enumerate() {
                    audit.check_gaussian(&format!("belief[{u}] at iteration {iter}"), b)?;
                }
                Ok(())
            });
            on_iter(iter, &beliefs);

            let max_shift = free
                .iter()
                .zip(&prev_means)
                .map(|(&u, &prev)| beliefs[u].mean.dist(prev))
                .fold(0.0, f64::max);
            let residuals: Vec<NodeResidual> = if wants_residuals {
                wsnloc_obs::accounting::note_residual_buffer();
                free.iter()
                    .zip(&prev_means)
                    .map(|(&u, &prev)| NodeResidual {
                        node: u,
                        residual: beliefs[u].mean.dist(prev),
                        kl: None,
                    })
                    .collect()
            } else {
                Vec::new()
            };
            obs.on_iteration(&IterationRecord {
                iteration: iter,
                max_shift,
                comm: CommStats {
                    messages: active.len() as u64,
                    bytes: active.len() as u64 * opts.message_bytes,
                },
                damping: opts.damping,
                schedule: opts.schedule.name(),
                secs: iter_start.elapsed_secs(),
                residuals,
            });
            if max_shift < opts.tolerance {
                outcome.converged = true;
                break;
            }
        }
        obs.on_span(SpanKind::MessagePassing, loop_start.elapsed_secs());
        obs.on_run_end(&RunSummary {
            iterations: outcome.iterations,
            converged: outcome.converged,
            comm: CommStats {
                messages: outcome.messages,
                bytes: outcome.messages * opts.message_bytes,
            },
        });
        RunOutcome {
            beliefs,
            bp: outcome,
        }
    }
}

impl GaussianBp {
    /// One information-form update; `None` when the posterior information
    /// matrix is singular (keeps the previous belief).
    fn update_node(
        &self,
        mrf: &SpatialMrf,
        u: usize,
        prior: &GaussianBelief,
        beliefs: &[GaussianBelief],
        session: Option<&TransportSession<GaussianBelief>>,
    ) -> Option<GaussianBelief> {
        let mu = beliefs[u].mean;
        // Prior information.
        let p_info = inv2(prior.cov)?;
        let mut lam = p_info;
        let mut eta = [
            p_info[0] * prior.mean.x + p_info[1] * prior.mean.y,
            p_info[2] * prior.mean.x + p_info[3] * prior.mean.y,
        ];

        for &e in mrf.edges_of(u) {
            let edge = &mrf.edges()[e];
            let Some((observed, sigma)) = edge.potential.gaussian_range() else {
                continue; // non-range potentials are ignored by this backend
            };
            let v = mrf.other_end(e, u);
            // Transport verdict: skip never-received links, read the
            // last delivered snapshot instead of the live neighbor
            // belief, and scale the measurement information by the
            // staleness discount `alpha`. Absent a session, alpha is 1
            // (which multiplies exactly, keeping the perfect path
            // bit-identical) and the snapshot is the live belief.
            let mut alpha = 1.0;
            let mut held: Option<&GaussianBelief> = None;
            if let Some(s) = session {
                let into_v = edge.v == u;
                match s.verdict(e, into_v) {
                    Verdict::Skip => continue,
                    Verdict::Deliver { alpha: a } => {
                        alpha = a;
                        held = s.snapshot(e, into_v);
                    }
                }
            }
            let nb = held.unwrap_or(&beliefs[v]);
            let diff = mu - nb.mean;
            let dist = diff.norm();
            if dist < 1e-6 {
                continue; // gradient undefined this iteration
            }
            let g = diff / dist;
            let s2 = sigma * sigma + nb.directional_variance(g);
            if s2 <= 0.0 {
                continue;
            }
            let r = observed - dist;
            // Pseudo-measurement of gᵀx with value gᵀμᵤ + r.
            let z = g.dot(mu) + r;
            lam[0] += alpha * (g.x * g.x / s2);
            lam[1] += alpha * (g.x * g.y / s2);
            lam[2] += alpha * (g.y * g.x / s2);
            lam[3] += alpha * (g.y * g.y / s2);
            eta[0] += alpha * (g.x * z / s2);
            eta[1] += alpha * (g.y * z / s2);
        }

        let cov = inv2(lam)?;
        let mean = Vec2::new(
            cov[0] * eta[0] + cov[1] * eta[1],
            cov[2] * eta[0] + cov[3] * eta[1],
        );
        mean.is_finite().then_some(GaussianBelief { mean, cov })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::potential::{GaussianRange, GaussianUnary, UniformBoxUnary};
    use std::sync::Arc;
    use wsnloc_geom::Aabb;

    fn domain() -> Aabb {
        Aabb::from_size(100.0, 100.0)
    }

    #[test]
    fn inv2_roundtrip() {
        let m = [4.0, 1.0, 1.0, 3.0];
        let inv = inv2(m).unwrap();
        // m · inv = I.
        let prod = [
            m[0] * inv[0] + m[1] * inv[2],
            m[0] * inv[1] + m[1] * inv[3],
            m[2] * inv[0] + m[3] * inv[2],
            m[2] * inv[1] + m[3] * inv[3],
        ];
        assert!((prod[0] - 1.0).abs() < 1e-12);
        assert!(prod[1].abs() < 1e-12);
        assert!((prod[3] - 1.0).abs() < 1e-12);
        assert!(inv2([1.0, 1.0, 1.0, 1.0]).is_none());
    }

    #[test]
    fn directional_variance() {
        let b = GaussianBelief {
            mean: Vec2::ZERO,
            cov: [9.0, 0.0, 0.0, 1.0],
        };
        assert!((b.directional_variance(Vec2::new(1.0, 0.0)) - 9.0).abs() < 1e-12);
        assert!((b.directional_variance(Vec2::new(0.0, 1.0)) - 1.0).abs() < 1e-12);
        assert!((b.spread() - 10.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn trilateration_with_three_anchors() {
        let dom = domain();
        let truth = Vec2::new(42.0, 58.0);
        let anchors = [
            Vec2::new(10.0, 10.0),
            Vec2::new(90.0, 15.0),
            Vec2::new(45.0, 92.0),
        ];
        let mut mrf = SpatialMrf::new(4, dom, Arc::new(UniformBoxUnary(dom)));
        for (i, &a) in anchors.iter().enumerate() {
            mrf.fix(i, a);
            mrf.add_edge(
                i,
                3,
                Arc::new(GaussianRange {
                    observed: truth.dist(a),
                    sigma: 1.0,
                }),
            );
        }
        let (beliefs, outcome) = GaussianBp::default().run(
            &mrf,
            &BpOptions::builder()
                .max_iterations(30)
                .tolerance(0.05)
                .seed(1)
                .try_build()
                .expect("valid options"),
        );
        assert!(outcome.converged);
        let est = beliefs[3].mean;
        assert!(est.dist(truth) < 2.0, "estimate {est} vs {truth}");
        // Posterior is confident.
        assert!(beliefs[3].spread() < 5.0);
    }

    #[test]
    fn prior_pulls_ring_posterior_to_the_right_mode() {
        // One anchor + ring: bimodal in truth, but the Gaussian prior
        // selects the correct mode.
        let dom = domain();
        let mut mrf = SpatialMrf::new(2, dom, Arc::new(UniformBoxUnary(dom)));
        mrf.fix(0, Vec2::new(50.0, 50.0));
        mrf.set_unary(
            1,
            Arc::new(GaussianUnary {
                mean: Vec2::new(75.0, 50.0),
                sigma: 8.0,
            }),
        );
        mrf.add_edge(
            0,
            1,
            Arc::new(GaussianRange {
                observed: 20.0,
                sigma: 1.5,
            }),
        );
        let (beliefs, _) = GaussianBp::default().run(
            &mrf,
            &BpOptions::builder()
                .max_iterations(25)
                .tolerance(0.05)
                .seed(2)
                .try_build()
                .expect("valid options"),
        );
        let est = beliefs[1].mean;
        assert!(est.dist(Vec2::new(70.0, 50.0)) < 3.0, "estimate {est}");
    }

    #[test]
    fn uncertainty_inflation_from_uncertain_neighbors() {
        // A node ranged only from another *uncertain* node must end up less
        // confident than one ranged from an anchor at the same geometry.
        let dom = domain();
        let mut mrf = SpatialMrf::new(3, dom, Arc::new(UniformBoxUnary(dom)));
        mrf.fix(0, Vec2::new(30.0, 50.0));
        mrf.set_unary(
            1,
            Arc::new(GaussianUnary {
                mean: Vec2::new(50.0, 50.0),
                sigma: 15.0, // uncertain relay
            }),
        );
        mrf.set_unary(
            2,
            Arc::new(GaussianUnary {
                mean: Vec2::new(70.0, 50.0),
                sigma: 30.0,
            }),
        );
        // Node 2 ranges only to the uncertain node 1.
        mrf.add_edge(
            1,
            2,
            Arc::new(GaussianRange {
                observed: 20.0,
                sigma: 1.0,
            }),
        );
        // Node 1 ranges to the anchor.
        mrf.add_edge(
            0,
            1,
            Arc::new(GaussianRange {
                observed: 20.0,
                sigma: 1.0,
            }),
        );
        let (beliefs, _) = GaussianBp::default().run(
            &mrf,
            &BpOptions::builder()
                .max_iterations(20)
                .tolerance(0.05)
                .seed(3)
                .try_build()
                .expect("valid options"),
        );
        // Node 2's spread must exceed node 1's: its information came through
        // an uncertain relay.
        assert!(
            beliefs[2].spread() > beliefs[1].spread(),
            "relay uncertainty must propagate: {} vs {}",
            beliefs[2].spread(),
            beliefs[1].spread()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let dom = domain();
        let mut mrf = SpatialMrf::new(2, dom, Arc::new(UniformBoxUnary(dom)));
        mrf.fix(0, Vec2::new(50.0, 50.0));
        mrf.add_edge(
            0,
            1,
            Arc::new(GaussianRange {
                observed: 15.0,
                sigma: 2.0,
            }),
        );
        let opts = BpOptions::builder()
            .max_iterations(10)
            .seed(9)
            .try_build()
            .expect("valid options");
        let engine = GaussianBp::default();
        let (a, _) = engine.run(&mrf, &opts);
        let (b, _) = engine.run(&mrf, &opts);
        assert_eq!(a, b);
    }

    #[test]
    fn isolated_node_keeps_prior_moments() {
        let dom = domain();
        let mut mrf = SpatialMrf::new(1, dom, Arc::new(UniformBoxUnary(dom)));
        mrf.set_unary(
            0,
            Arc::new(GaussianUnary {
                mean: Vec2::new(20.0, 80.0),
                sigma: 5.0,
            }),
        );
        let (beliefs, _) = GaussianBp::default().run(
            &mrf,
            &BpOptions::builder()
                .max_iterations(5)
                .seed(4)
                .try_build()
                .expect("valid options"),
        );
        assert!(beliefs[0].mean.dist(Vec2::new(20.0, 80.0)) < 4.0);
        assert!((beliefs[0].spread() - 5.0 * (2.0f64).sqrt()).abs() < 3.0);
    }
}
