//! Belief-level motion models for temporal tracking.
//!
//! Sequential localization turns the paper's pre-knowledge idea
//! recursive: each epoch's posterior, pushed through the dynamics
//! `x_{t+1} = F·x_t + w` with `w ~ N(0, Q)`, is the next epoch's
//! pre-knowledge. [`MotionModel`] is that predict step, expressed once
//! per belief representation:
//!
//! - **grid** — separable truncated-Gaussian blur of the carried cell
//!   array (plus a bilinear remap when `F` is not the identity);
//! - **particle** — propagate every particle through `F` and jitter it
//!   with process noise from a caller-supplied RNG stream, leaving the
//!   engine's own streams untouched;
//! - **gaussian** — the textbook Kalman predict:
//!   `μ ← F·μ`, `Σ ← F·Σ·Fᵀ + Q`.
//!
//! The model is validated at construction ([`MotionModel::new`]
//! returns a typed [`ValidationError`]); [`MotionModel::random_walk`]
//! is the common isotropic `F = I` case.

use crate::gaussian::GaussianBelief;
use crate::grid::GridBelief;
use crate::particle::ParticleBelief;
use crate::validate::ValidationError;
use wsnloc_geom::rng::Xoshiro256pp;
use wsnloc_geom::Vec2;

/// A linear-Gaussian motion model: state transition `F` (row-major
/// 2×2) and axis-aligned process noise `Q = diag(σx², σy²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MotionModel {
    f: [f64; 4],
    sigma_x: f64,
    sigma_y: f64,
}

impl MotionModel {
    /// Builds a motion model from a state-transition matrix and
    /// per-axis process-noise standard deviations (meters per step).
    ///
    /// # Errors
    /// [`ValidationError::InvalidOption`] when any entry of `f` is
    /// non-finite or a sigma is negative or non-finite.
    pub fn new(f: [f64; 4], sigma_x: f64, sigma_y: f64) -> Result<MotionModel, ValidationError> {
        if f.iter().any(|v| !v.is_finite()) {
            return Err(ValidationError::InvalidOption {
                option: "transition",
                value: f
                    .iter()
                    .copied()
                    .find(|v| !v.is_finite())
                    .unwrap_or(f64::NAN),
                requirement: "every entry of F must be finite",
            });
        }
        for (option, value) in [("sigma_x", sigma_x), ("sigma_y", sigma_y)] {
            if !(value.is_finite() && value >= 0.0) {
                return Err(ValidationError::InvalidOption {
                    option,
                    value,
                    requirement: "process-noise sigma must be finite and >= 0",
                });
            }
        }
        Ok(MotionModel {
            f,
            sigma_x,
            sigma_y,
        })
    }

    /// The isotropic random walk: `F = I`, `Q = sigma² I`. The standard
    /// model for untracked waypoint mobility; `sigma` should cover the
    /// per-step displacement (speed × dt). Negative or non-finite
    /// sigmas are clamped to zero rather than rejected, keeping this
    /// convenience constructor infallible.
    #[must_use]
    pub fn random_walk(sigma: f64) -> MotionModel {
        let s = if sigma.is_finite() {
            sigma.max(0.0)
        } else {
            0.0
        };
        MotionModel {
            f: [1.0, 0.0, 0.0, 1.0],
            sigma_x: s,
            sigma_y: s,
        }
    }

    /// The state-transition matrix `F`, row-major.
    #[must_use]
    pub fn transition(&self) -> [f64; 4] {
        self.f
    }

    /// Per-axis process-noise standard deviations `(σx, σy)`.
    #[must_use]
    pub fn noise_sigma(&self) -> (f64, f64) {
        (self.sigma_x, self.sigma_y)
    }

    /// `F · p`.
    fn apply_f(&self, p: Vec2) -> Vec2 {
        Vec2::new(
            self.f[0] * p.x + self.f[1] * p.y,
            self.f[2] * p.x + self.f[3] * p.y,
        )
    }

    /// Predict step on a grid belief: remap through `F` (identity
    /// skips it) and blur by the process noise. See
    /// [`GridBelief::predicted`].
    #[must_use]
    pub fn predict_grid(&self, belief: &GridBelief) -> GridBelief {
        belief.predicted(self.f, self.sigma_x, self.sigma_y)
    }

    /// Predict step on a particle belief: every particle moves through
    /// `F` and receives independent `N(0, Q)` jitter from `rng`;
    /// weights are preserved. The caller owns the RNG stream — engines
    /// never touch it, so prediction cannot perturb inference
    /// determinism.
    #[must_use]
    pub fn predict_particles(
        &self,
        belief: &ParticleBelief,
        rng: &mut Xoshiro256pp,
    ) -> ParticleBelief {
        let moved: Vec<Vec2> = belief
            .particles()
            .iter()
            .map(|&p| {
                self.apply_f(p)
                    + Vec2::new(
                        rng.normal(0.0, self.sigma_x.max(1e-12)),
                        rng.normal(0.0, self.sigma_y.max(1e-12)),
                    )
            })
            .collect();
        ParticleBelief::new(moved, belief.weights().to_vec())
    }

    /// Predict step on a Gaussian belief: `μ ← F·μ`,
    /// `Σ ← F·Σ·Fᵀ + Q`.
    #[must_use]
    pub fn predict_gaussian(&self, belief: &GaussianBelief) -> GaussianBelief {
        let c = belief.cov;
        let f = self.f;
        // F·Σ (row-major 2×2 product).
        let fs = [
            f[0] * c[0] + f[1] * c[2],
            f[0] * c[1] + f[1] * c[3],
            f[2] * c[0] + f[3] * c[2],
            f[2] * c[1] + f[3] * c[3],
        ];
        // (F·Σ)·Fᵀ + Q.
        let cov = [
            fs[0] * f[0] + fs[1] * f[1] + self.sigma_x * self.sigma_x,
            fs[0] * f[2] + fs[1] * f[3],
            fs[2] * f[0] + fs[3] * f[1],
            fs[2] * f[2] + fs[3] * f[3] + self.sigma_y * self.sigma_y,
        ];
        GaussianBelief {
            mean: self.apply_f(belief.mean),
            cov,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsnloc_geom::Aabb;

    #[test]
    fn new_rejects_bad_parameters() {
        assert!(MotionModel::new([1.0, 0.0, 0.0, f64::NAN], 1.0, 1.0).is_err());
        assert!(MotionModel::new([1.0, 0.0, 0.0, 1.0], -1.0, 1.0).is_err());
        assert!(MotionModel::new([1.0, 0.0, 0.0, 1.0], 1.0, f64::INFINITY).is_err());
        assert!(MotionModel::new([1.0, 0.0, 0.0, 1.0], 2.0, 3.0).is_ok());
    }

    #[test]
    fn random_walk_is_identity_transition() {
        let m = MotionModel::random_walk(5.0);
        assert_eq!(m.transition(), [1.0, 0.0, 0.0, 1.0]);
        assert_eq!(m.noise_sigma(), (5.0, 5.0));
        // Clamped, never panicking.
        assert_eq!(MotionModel::random_walk(-3.0).noise_sigma(), (0.0, 0.0));
        assert_eq!(MotionModel::random_walk(f64::NAN).noise_sigma(), (0.0, 0.0));
    }

    #[test]
    fn gaussian_predict_inflates_covariance() {
        let m = MotionModel::random_walk(3.0);
        let b = GaussianBelief::isotropic(Vec2::new(10.0, 20.0), 4.0);
        let p = m.predict_gaussian(&b);
        assert_eq!(p.mean, b.mean);
        assert!((p.cov[0] - (16.0 + 9.0)).abs() < 1e-12);
        assert!((p.cov[3] - (16.0 + 9.0)).abs() < 1e-12);
        assert_eq!(p.cov[1], 0.0);
    }

    #[test]
    fn gaussian_predict_applies_transition() {
        let m = MotionModel::new([0.5, 0.0, 0.0, 2.0], 0.0, 0.0).expect("valid");
        let b = GaussianBelief::isotropic(Vec2::new(8.0, 3.0), 2.0);
        let p = m.predict_gaussian(&b);
        assert_eq!(p.mean, Vec2::new(4.0, 6.0));
        assert!((p.cov[0] - 1.0).abs() < 1e-12); // 0.25 · 4
        assert!((p.cov[3] - 16.0).abs() < 1e-12); // 4 · 4
    }

    #[test]
    fn particle_predict_preserves_weights_and_jitters_support() {
        let m = MotionModel::random_walk(2.0);
        let b = ParticleBelief::new(
            vec![Vec2::new(0.0, 0.0), Vec2::new(10.0, 0.0)],
            vec![0.25, 0.75],
        );
        let mut rng = Xoshiro256pp::seed_from(7);
        let p = m.predict_particles(&b, &mut rng);
        assert_eq!(p.weights(), b.weights());
        assert_ne!(p.particles(), b.particles());
        // Same seed → same prediction.
        let mut rng2 = Xoshiro256pp::seed_from(7);
        assert_eq!(m.predict_particles(&b, &mut rng2), p);
    }

    #[test]
    fn grid_predict_spreads_mass() {
        let domain = Aabb::from_size(100.0, 100.0);
        let m = MotionModel::random_walk(10.0);
        let b = GridBelief::delta(Vec2::new(50.0, 50.0), domain, 20, 20);
        let p = m.predict_grid(&b);
        assert!((p.mass().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.entropy() > b.entropy(), "blur must spread the delta");
        // The mean stays put under the identity transition.
        assert!(p.mean().dist(b.mean()) < 1.0);
    }

    #[test]
    fn grid_predict_zero_noise_is_identity_for_identity_f() {
        let domain = Aabb::from_size(100.0, 100.0);
        let m = MotionModel::random_walk(0.0);
        let b = GridBelief::delta(Vec2::new(25.0, 75.0), domain, 10, 10);
        let p = m.predict_grid(&b);
        assert_eq!(p.mass(), b.mass());
    }
}
