//! Structural and sampling extensions for discrete Bayesian networks:
//! d-separation queries, Markov blankets, Gibbs sampling, and most
//! probable explanation (MPE).
//!
//! These round the discrete layer into a general-purpose BN toolkit; the
//! localization pipeline itself only needs the spatial MRFs, but a credible
//! "Bayesian network library for WSNs" should answer independence and MAP
//! queries too (e.g. reasoning about which anchor observations are
//! informative for which nodes).

use crate::discrete::{BayesNet, Evidence, VarId};
use std::collections::{BTreeSet, VecDeque};
use wsnloc_geom::rng::Xoshiro256pp;

/// Directed-graph views used by the structural queries.
fn parents_of(net: &BayesNet, v: VarId) -> &[VarId] {
    net.cpt(v).parents.as_slice()
}

fn children_of(net: &BayesNet, v: VarId) -> Vec<VarId> {
    (0..net.len())
        .filter(|&c| parents_of(net, c).contains(&v))
        .collect()
}

/// The Markov blanket of `v`: parents, children, and children's other
/// parents. Conditioned on its blanket, `v` is independent of the rest of
/// the network — the basis of the Gibbs sweep below.
pub fn markov_blanket(net: &BayesNet, v: VarId) -> BTreeSet<VarId> {
    let mut blanket: BTreeSet<VarId> = parents_of(net, v).iter().copied().collect();
    for c in children_of(net, v) {
        blanket.insert(c);
        for &p in parents_of(net, c) {
            if p != v {
                blanket.insert(p);
            }
        }
    }
    blanket
}

/// `true` iff `x` and `y` are d-separated given the conditioning set `z`
/// (i.e. the network structure alone implies `X ⊥ Y | Z`).
///
/// Implemented with the standard "reachable via active trails" ball-bouncing
/// algorithm (Koller & Friedman, Algorithm 3.1): a trail is active unless it
/// contains a chain/fork blocked by `z` or a collider whose descendants
/// avoid `z`.
pub fn d_separated(net: &BayesNet, x: VarId, y: VarId, z: &BTreeSet<VarId>) -> bool {
    if x == y {
        return false;
    }
    // Ancestors of z (colliders are activated by observed descendants).
    let mut z_ancestors = z.clone();
    let mut queue: VecDeque<VarId> = z.iter().copied().collect();
    while let Some(v) = queue.pop_front() {
        for &p in parents_of(net, v) {
            if z_ancestors.insert(p) {
                queue.push_back(p);
            }
        }
    }

    // BFS over (node, direction) where direction is how we *arrived*:
    // `true` = arrived from a child (moving up), `false` = from a parent.
    let mut visited: BTreeSet<(VarId, bool)> = BTreeSet::new();
    let mut queue: VecDeque<(VarId, bool)> = VecDeque::new();
    // Leaving x in both directions.
    queue.push_back((x, true));
    queue.push_back((x, false));
    while let Some((v, up)) = queue.pop_front() {
        if !visited.insert((v, up)) {
            continue;
        }
        if v == y && v != x {
            return false; // active trail found
        }
        let observed = z.contains(&v);
        if up {
            // Arrived from a child. If v is unobserved we may continue up to
            // parents and down to children (fork / chain through v).
            if !observed {
                for &p in parents_of(net, v) {
                    queue.push_back((p, true));
                }
                for c in children_of(net, v) {
                    queue.push_back((c, false));
                }
            }
        } else {
            // Arrived from a parent. Chain down is active iff v unobserved;
            // collider (bounce back up) is active iff v is observed or has
            // an observed descendant.
            if !observed {
                for c in children_of(net, v) {
                    queue.push_back((c, false));
                }
            }
            if z_ancestors.contains(&v) {
                for &p in parents_of(net, v) {
                    queue.push_back((p, true));
                }
            }
        }
    }
    true
}

/// Approximate posterior `P(query | evidence)` by Gibbs sampling.
///
/// Runs `burn_in + samples` full sweeps over the non-evidence variables,
/// resampling each from its full conditional (proportional to its own CPT
/// row times the CPT rows of its children).
pub fn gibbs_query(
    net: &BayesNet,
    query: VarId,
    evidence: &Evidence,
    samples: usize,
    burn_in: usize,
    rng: &mut Xoshiro256pp,
) -> Vec<f64> {
    let n = net.len();
    let children: Vec<Vec<VarId>> = (0..n).map(|v| children_of(net, v)).collect();
    // Initialize from a forward sample, clamped to evidence.
    let mut state = net.sample(rng);
    for (&v, &val) in evidence {
        state[v] = val;
    }
    let free: Vec<VarId> = (0..n).filter(|v| !evidence.contains_key(v)).collect();
    let card = net.variables()[query].cardinality;
    let mut counts = vec![0.0f64; card];

    for sweep in 0..(burn_in + samples) {
        for &v in &free {
            let vcard = net.variables()[v].cardinality;
            let mut weights = Vec::with_capacity(vcard);
            for s in 0..vcard {
                state[v] = s;
                let mut w = net.local_prob(v, s, &state);
                for &c in &children[v] {
                    w *= net.local_prob(c, state[c], &state);
                }
                weights.push(w);
            }
            state[v] = rng.weighted_index(&weights).unwrap_or(0);
        }
        if sweep >= burn_in {
            counts[state[query]] += 1.0;
        }
    }
    let total: f64 = counts.iter().sum();
    if total > 0.0 {
        for c in &mut counts {
            *c /= total;
        }
    }
    counts
}

/// Most probable explanation: the complete assignment maximizing the joint
/// probability consistent with the evidence, found by exhaustive search
/// over the free variables (exponential — intended for small nets and as a
/// reference implementation). Returns `(assignment, probability)`.
pub fn most_probable_explanation(net: &BayesNet, evidence: &Evidence) -> (Vec<usize>, f64) {
    let n = net.len();
    let free: Vec<VarId> = (0..n).filter(|v| !evidence.contains_key(v)).collect();
    let mut assignment = vec![0usize; n];
    for (&v, &val) in evidence {
        assignment[v] = val;
    }
    let mut best = (assignment.clone(), f64::NEG_INFINITY);
    search(net, &free, 0, &mut assignment, &mut best);
    (best.0, best.1.exp())
}

fn search(
    net: &BayesNet,
    free: &[VarId],
    depth: usize,
    assignment: &mut Vec<usize>,
    best: &mut (Vec<usize>, f64),
) {
    if depth == free.len() {
        let p = net.joint_prob(assignment);
        if p > 0.0 && p.ln() > best.1 {
            *best = (assignment.clone(), p.ln());
        }
        return;
    }
    let v = free[depth];
    for s in 0..net.variables()[v].cardinality {
        assignment[v] = s;
        search(net, free, depth + 1, assignment, best);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discrete::{Cpt, Variable};

    fn sprinkler() -> BayesNet {
        let variables = vec![
            Variable {
                name: "Cloudy".into(),
                cardinality: 2,
            },
            Variable {
                name: "Sprinkler".into(),
                cardinality: 2,
            },
            Variable {
                name: "Rain".into(),
                cardinality: 2,
            },
            Variable {
                name: "WetGrass".into(),
                cardinality: 2,
            },
        ];
        let cpts = vec![
            Cpt {
                parents: vec![],
                table: vec![0.5, 0.5],
            },
            Cpt {
                parents: vec![0],
                table: vec![0.5, 0.5, 0.9, 0.1],
            },
            Cpt {
                parents: vec![0],
                table: vec![0.8, 0.2, 0.2, 0.8],
            },
            Cpt {
                parents: vec![1, 2],
                table: vec![1.0, 0.0, 0.1, 0.9, 0.1, 0.9, 0.01, 0.99],
            },
        ];
        BayesNet::new(variables, cpts)
    }

    #[test]
    fn markov_blanket_of_sprinkler() {
        let net = sprinkler();
        // Sprinkler's blanket: parent Cloudy, child WetGrass, co-parent Rain.
        let blanket = markov_blanket(&net, 1);
        assert_eq!(blanket, BTreeSet::from([0, 2, 3]));
        // Cloudy's blanket: children Sprinkler/Rain (no co-parents beyond
        // each other... Sprinkler and Rain share child WetGrass but Cloudy
        // isn't its parent).
        assert_eq!(markov_blanket(&net, 0), BTreeSet::from([1, 2]));
    }

    #[test]
    fn d_separation_fork_and_collider() {
        let net = sprinkler();
        // Sprinkler and Rain share the fork Cloudy: dependent marginally...
        assert!(!d_separated(&net, 1, 2, &BTreeSet::new()));
        // ...independent given Cloudy (the collider WetGrass is unobserved).
        assert!(d_separated(&net, 1, 2, &BTreeSet::from([0])));
        // Observing the collider WetGrass re-couples them ("explaining
        // away"), even with Cloudy observed.
        assert!(!d_separated(&net, 1, 2, &BTreeSet::from([0, 3])));
    }

    #[test]
    fn d_separation_chain() {
        // A → B → C.
        let variables = vec![
            Variable {
                name: "A".into(),
                cardinality: 2,
            },
            Variable {
                name: "B".into(),
                cardinality: 2,
            },
            Variable {
                name: "C".into(),
                cardinality: 2,
            },
        ];
        let flip = vec![0.9, 0.1, 0.1, 0.9];
        let cpts = vec![
            Cpt {
                parents: vec![],
                table: vec![0.5, 0.5],
            },
            Cpt {
                parents: vec![0],
                table: flip.clone(),
            },
            Cpt {
                parents: vec![1],
                table: flip,
            },
        ];
        let net = BayesNet::new(variables, cpts);
        assert!(!d_separated(&net, 0, 2, &BTreeSet::new()));
        assert!(d_separated(&net, 0, 2, &BTreeSet::from([1])));
    }

    #[test]
    fn d_separation_matches_numeric_independence() {
        // Where the structure says independent, enumeration must agree.
        let net = sprinkler();
        // P(Sprinkler | Cloudy) must equal P(Sprinkler | Cloudy, Rain).
        let base = net.query_enumeration(1, &[(0usize, 1usize)].into());
        let with_rain = net.query_enumeration(1, &[(0usize, 1usize), (2, 1)].into());
        for (a, b) in base.iter().zip(&with_rain) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn gibbs_matches_enumeration() {
        let net = sprinkler();
        let evidence: Evidence = [(3usize, 1usize)].into();
        let exact = net.query_enumeration(2, &evidence);
        let mut rng = Xoshiro256pp::seed_from(31);
        let approx = gibbs_query(&net, 2, &evidence, 60_000, 2_000, &mut rng);
        assert!(
            (approx[1] - exact[1]).abs() < 0.02,
            "exact {exact:?} vs gibbs {approx:?}"
        );
    }

    #[test]
    fn mpe_finds_the_obvious_mode() {
        let net = sprinkler();
        // Evidence: wet grass. The most probable full explanation in this
        // parameterization is cloudy + rain + no sprinkler.
        let (assignment, p) = most_probable_explanation(&net, &[(3usize, 1usize)].into());
        assert_eq!(assignment[3], 1);
        assert_eq!(assignment[2], 1, "rain should be on: {assignment:?}");
        assert_eq!(assignment[1], 0, "sprinkler should be off");
        assert!(p > 0.0 && p <= 1.0);
        // Its joint probability matches direct evaluation.
        assert!((net.joint_prob(&assignment) - p).abs() < 1e-12);
    }

    #[test]
    fn mpe_without_evidence_is_global_mode() {
        let net = sprinkler();
        let (assignment, p) = most_probable_explanation(&net, &Evidence::new());
        // Check optimality against full enumeration.
        let mut best = 0.0;
        for c in 0..2 {
            for s in 0..2 {
                for r in 0..2 {
                    for w in 0..2 {
                        best = f64::max(best, net.joint_prob(&[c, s, r, w]));
                    }
                }
            }
        }
        assert!((p - best).abs() < 1e-12, "MPE {p} vs brute force {best}");
        // p passed through a ln/exp round trip — compare with tolerance.
        assert!((net.joint_prob(&assignment) - p).abs() < 1e-12);
    }
}
