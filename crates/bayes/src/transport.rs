//! The message-transport seam between BP engines and the (possibly
//! faulty) communication fabric.
//!
//! Every inter-node BP message conceptually crosses a radio link. A
//! [`Transport`] decides what actually arrives: the perfect transport
//! is a zero-cost pass-through (engines detect it and run the exact
//! fault-free code path, bit-identical to not having a transport at
//! all), while a faulted transport rolls per-directed-link fates each
//! iteration from a [`FaultPlan`] — message loss (i.i.d. or bursty),
//! node death, stale delivery, and structurally asymmetric links.
//!
//! The state machine per directed link is deliberately simple:
//!
//! * **Fresh delivery** — the receiver sees the sender's current belief
//!   (snapshotted at the iteration boundary, which is exactly what a
//!   real distributed implementation would broadcast) at full weight.
//! * **Stale delivery** — a message arrived, but it is a duplicate of
//!   previously seen content; the link's age resets without a content
//!   refresh.
//! * **Drop** — nothing arrived. The receiver substitutes per the
//!   plan's [`DropPolicy`]: hold the last received content at full
//!   weight, or apply it with weight `decay^age` so a long-silent
//!   neighbor fades back to the receiver's prior.
//! * **Never received** — the link has not delivered anything yet (or
//!   is structurally blocked); the edge contributes nothing, exactly
//!   as if it were absent from the graph this iteration.
//!
//! Dead nodes stop transmitting (their outgoing links stop refreshing)
//! and stop updating (the engine freezes their beliefs), but their
//! neighbors keep localizing from held state.

use std::sync::Arc;

use crate::mrf::SpatialMrf;
use wsnloc_geom::rng::Xoshiro256pp;
use wsnloc_net::faults::{DropPolicy, FaultPlan, LossModel};
use wsnloc_obs::{InferenceObserver, ObsEvent};

/// How an engine's messages reach their receivers.
///
/// [`Transport::perfect`] (also [`Default`]) delivers everything;
/// engines compile it down to the pre-existing fault-free path.
/// [`Transport::faulted`] injects the given [`FaultPlan`]; a
/// [`FaultPlan::none`] plan collapses back to the perfect transport so
/// "no faults" is always the identical code path.
#[derive(Debug, Clone, Default)]
pub struct Transport {
    plan: Option<Arc<FaultPlan>>,
}

impl Transport {
    /// The lossless transport: every message arrives, every node lives.
    #[must_use]
    pub fn perfect() -> Self {
        Transport { plan: None }
    }

    /// A transport that injects `plan`. An identity plan
    /// ([`FaultPlan::is_none`]) collapses to [`Transport::perfect`].
    #[must_use]
    pub fn faulted(plan: Arc<FaultPlan>) -> Self {
        let plan = if plan.is_none() { None } else { Some(plan) };
        Transport { plan }
    }

    /// True iff this transport is a pass-through.
    #[must_use]
    pub fn is_perfect(&self) -> bool {
        self.plan.is_none()
    }

    /// Instantiates per-run fault state for one BP run, or `None` for
    /// the perfect transport. `run_seed` (the engine's `opts.seed`) is
    /// mixed with the plan seed so trials differ while each run stays
    /// replayable.
    pub(crate) fn session<B: Clone>(
        &self,
        mrf: &SpatialMrf,
        run_seed: u64,
    ) -> Option<TransportSession<B>> {
        self.plan
            .as_ref()
            .map(|p| TransportSession::new(Arc::clone(p), mrf, run_seed))
    }
}

/// What the transport delivers for one directed link this iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Verdict {
    /// Nothing has ever arrived on this link — the edge contributes no
    /// message this iteration.
    Skip,
    /// Apply the link's current content with weight `alpha` in `(0, 1]`
    /// (`1.0` = full weight; smaller = staleness-discounted).
    Deliver {
        /// Staleness discount applied to the message's log-likelihood
        /// contribution.
        alpha: f64,
    },
}

/// Per-run fault state: link fates are rolled once per iteration
/// (sequentially, before the — possibly parallel — node updates), after
/// which the session is consulted read-only.
///
/// Directed links are indexed `2·e` (into `edge.u`, i.e. sent by
/// `edge.v`) and `2·e + 1` (into `edge.v`, sent by `edge.u`).
pub(crate) struct TransportSession<B> {
    plan: Arc<FaultPlan>,
    root: Xoshiro256pp,
    /// Scheduled death iteration per node, `None` = immortal.
    death_at: Vec<Option<usize>>,
    alive: Vec<bool>,
    /// Sender node per directed link.
    senders: Vec<usize>,
    /// Receiver node per directed link.
    receivers: Vec<usize>,
    /// Whether the directed link matters (receiver is a free variable).
    active: Vec<bool>,
    /// Whether the sender is a fixed (anchor) node — its "content" is
    /// its position, so no belief snapshot is kept.
    sender_fixed: Vec<bool>,
    /// Structurally silent links (asymmetry model), fixed for the run.
    blocked: Vec<bool>,
    /// Gilbert–Elliott channel state per directed link (`true` = Bad).
    ge_bad: Vec<bool>,
    /// Iterations since the link's content was last refreshed.
    age: Vec<u64>,
    /// Whether the link has ever delivered anything.
    received: Vec<bool>,
    /// Last delivered belief snapshot for free-sender links.
    last: Vec<Option<B>>,
}

impl<B: Clone> TransportSession<B> {
    fn new(plan: Arc<FaultPlan>, mrf: &SpatialMrf, run_seed: u64) -> Self {
        let n = mrf.len();
        let root = Xoshiro256pp::seed_from(plan.seed).split(run_seed);
        let mut death_at = vec![None; n];
        for d in plan.death_schedule(&mrf.free_vars()) {
            if d.node < n {
                death_at[d.node] = Some(d.at_iteration);
            }
        }
        let links = 2 * mrf.edges().len();
        let mut senders = Vec::with_capacity(links);
        let mut receivers = Vec::with_capacity(links);
        let mut active = Vec::with_capacity(links);
        let mut sender_fixed = Vec::with_capacity(links);
        let mut blocked = vec![false; links];
        for edge in mrf.edges() {
            // dir 2e: into edge.u; dir 2e+1: into edge.v.
            for (recv, send) in [(edge.u, edge.v), (edge.v, edge.u)] {
                senders.push(send);
                receivers.push(recv);
                active.push(mrf.fixed(recv).is_none());
                sender_fixed.push(mrf.fixed(send).is_some());
            }
        }
        if plan.asymmetry > 0.0 {
            let p = plan.asymmetry.clamp(0.0, 1.0);
            for (dir, b) in blocked.iter_mut().enumerate() {
                let mut rng = root.split(0xA5B1_0000_0000_0000 | dir as u64);
                *b = rng.f64() < p;
            }
        }
        TransportSession {
            plan,
            root,
            death_at,
            alive: vec![true; n],
            senders,
            receivers,
            active,
            sender_fixed,
            blocked,
            ge_bad: vec![false; links],
            age: vec![0; links],
            received: vec![false; links],
            last: (0..links).map(|_| None).collect(),
        }
    }

    /// True iff `u` is still transmitting and updating.
    pub(crate) fn node_alive(&self, u: usize) -> bool {
        self.alive.get(u).copied().unwrap_or(true)
    }

    /// Rolls this iteration's fates: processes scheduled deaths, then
    /// decides per directed link whether a fresh, stale, or no message
    /// arrives, snapshotting sender beliefs for fresh deliveries.
    /// Must be called once at the top of every BP iteration, before the
    /// node updates; `beliefs` is the full belief vector indexed by
    /// node. Emits aggregate fault events into `obs`.
    pub(crate) fn begin_iteration(
        &mut self,
        iter: usize,
        beliefs: &[B],
        obs: &dyn InferenceObserver,
    ) {
        for u in 0..self.death_at.len() {
            if self.alive[u] && self.death_at[u].is_some_and(|t| t <= iter) {
                self.alive[u] = false;
                obs.on_event(&ObsEvent::NodeDied {
                    iteration: iter,
                    node: u,
                });
            }
        }
        let mut dropped = 0u64;
        let mut stale = 0u64;
        let iter_tag = ((iter as u64) + 1) << 32;
        for dir in 0..self.senders.len() {
            if !self.active[dir] || !self.alive[self.receivers[dir]] || self.blocked[dir] {
                continue;
            }
            let mut rng = self.root.split(iter_tag | dir as u64);
            let lost = match self.plan.loss {
                LossModel::None => false,
                LossModel::Iid { rate } => rng.f64() < rate,
                LossModel::GilbertElliott {
                    p_bad,
                    p_recover,
                    loss_good,
                    loss_bad,
                } => {
                    let bad = if self.ge_bad[dir] {
                        rng.f64() >= p_recover
                    } else {
                        rng.f64() < p_bad
                    };
                    self.ge_bad[dir] = bad;
                    rng.f64() < if bad { loss_bad } else { loss_good }
                }
            };
            if !self.alive[self.senders[dir]] {
                // A dead sender transmits nothing; the link just ages.
                // Reported through NodeDied, not per-message drops.
                if self.received[dir] {
                    self.age[dir] = self.age[dir].saturating_add(1);
                }
                continue;
            }
            if lost {
                dropped += 1;
                if self.received[dir] {
                    self.age[dir] = self.age[dir].saturating_add(1);
                }
                continue;
            }
            // Delivered. Possibly stale: content is a duplicate of what
            // the receiver already has (only meaningful once something
            // has been received).
            if self.received[dir] && self.plan.stale_prob > 0.0 && rng.f64() < self.plan.stale_prob
            {
                stale += 1;
                self.age[dir] = 0;
                continue;
            }
            self.received[dir] = true;
            self.age[dir] = 0;
            if !self.sender_fixed[dir] {
                self.last[dir] = Some(beliefs[self.senders[dir]].clone());
            }
        }
        if dropped > 0 {
            obs.on_event(&ObsEvent::MessageDropped {
                iteration: iter,
                count: dropped,
            });
        }
        if stale > 0 {
            obs.on_event(&ObsEvent::StaleMessageUsed {
                iteration: iter,
                count: stale,
            });
        }
    }

    /// The delivery verdict for edge `e` into its receiver
    /// (`receiver_is_v` selects which endpoint is receiving).
    pub(crate) fn verdict(&self, e: usize, receiver_is_v: bool) -> Verdict {
        let dir = 2 * e + usize::from(receiver_is_v);
        if !self.received[dir] {
            return Verdict::Skip;
        }
        let age = self.age[dir];
        let alpha = if age == 0 {
            1.0
        } else {
            match self.plan.drop_policy {
                DropPolicy::HoldLast => 1.0,
                DropPolicy::DecayToPrior { decay } => {
                    let d = decay.clamp(0.0, 1.0);
                    // Capped at 10_000, the exponent always fits an i32;
                    // try_from keeps the conversion audit-clean.
                    let exp = i32::try_from(age.min(10_000)).unwrap_or(10_000);
                    d.powi(exp).max(1e-12)
                }
            }
        };
        Verdict::Deliver { alpha }
    }

    /// The held belief snapshot for edge `e` into its receiver. `None`
    /// for fixed (anchor) senders, whose content is their position.
    pub(crate) fn snapshot(&self, e: usize, receiver_is_v: bool) -> Option<&B> {
        self.last[2 * e + usize::from(receiver_is_v)].as_ref()
    }
}
