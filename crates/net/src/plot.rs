//! Terminal visualization: ASCII scatter maps of deployments and estimates.
//!
//! A library whose primary artifact is "where the nodes are" should be able
//! to show it without a plotting stack. [`AsciiMap`] rasterizes point
//! layers onto a character grid; later layers overwrite earlier ones, so
//! draw ground truth first and estimates/anchors on top.

use wsnloc_geom::{Aabb, Vec2};

/// A character canvas over a spatial extent.
#[derive(Debug, Clone)]
pub struct AsciiMap {
    bounds: Aabb,
    cols: usize,
    rows: usize,
    cells: Vec<char>,
}

impl AsciiMap {
    /// Canvas of `cols × rows` characters covering `bounds`. A terminal
    /// character is ~twice as tall as wide, so `rows ≈ cols / 2` keeps the
    /// aspect ratio visually square.
    pub fn new(bounds: Aabb, cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "canvas must be non-empty");
        AsciiMap {
            bounds,
            cols,
            rows,
            cells: vec![' '; cols * rows],
        }
    }

    /// Canvas with the conventional 2:1 terminal aspect correction.
    pub fn with_width(bounds: Aabb, cols: usize) -> Self {
        let rows = ((cols as f64 / 2.0) * bounds.height() / bounds.width())
            .round()
            .max(1.0) as usize;
        AsciiMap::new(bounds, cols, rows)
    }

    fn cell_of(&self, p: Vec2) -> Option<usize> {
        if !self.bounds.contains(p) {
            return None;
        }
        let u = (p.x - self.bounds.min.x) / self.bounds.width().max(1e-12);
        let v = (p.y - self.bounds.min.y) / self.bounds.height().max(1e-12);
        let c = ((u * self.cols as f64) as usize).min(self.cols - 1);
        // y grows upward in world space, downward on screen.
        let r = (((1.0 - v) * self.rows as f64) as usize).min(self.rows - 1);
        Some(r * self.cols + c)
    }

    /// Plots every point with the given glyph (points outside the bounds
    /// are skipped). Returns how many landed on the canvas.
    pub fn plot(&mut self, points: impl IntoIterator<Item = Vec2>, glyph: char) -> usize {
        let mut drawn = 0;
        for p in points {
            if let Some(idx) = self.cell_of(p) {
                self.cells[idx] = glyph;
                drawn += 1;
            }
        }
        drawn
    }

    /// Renders with a border and returns the multi-line string.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity((self.cols + 3) * (self.rows + 2));
        out.push('+');
        out.extend(std::iter::repeat_n('-', self.cols));
        out.push_str("+\n");
        for r in 0..self.rows {
            out.push('|');
            out.extend(&self.cells[r * self.cols..(r + 1) * self.cols]);
            out.push_str("|\n");
        }
        out.push('+');
        out.extend(std::iter::repeat_n('-', self.cols));
        out.push('+');
        out
    }
}

/// One-call map of a localization outcome: ground truth `.`, estimates `o`,
/// anchors `A`.
pub fn render_network_map(
    bounds: Aabb,
    truth: &[Vec2],
    estimates: &[Option<Vec2>],
    anchors: &[Vec2],
    cols: usize,
) -> String {
    let mut map = AsciiMap::with_width(bounds, cols);
    map.plot(truth.iter().copied(), '.');
    map.plot(estimates.iter().copied().flatten(), 'o');
    map.plot(anchors.iter().copied(), 'A');
    map.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_land_in_corner_cells() {
        let bounds = Aabb::from_size(100.0, 100.0);
        let mut map = AsciiMap::new(bounds, 10, 10);
        map.plot([Vec2::new(0.0, 0.0)], 'a'); // world bottom-left → screen bottom-left
        map.plot([Vec2::new(99.9, 99.9)], 'b'); // world top-right → screen top-right
        let text = map.render();
        let lines: Vec<&str> = text.lines().collect();
        // First canvas line is lines[1] (border at 0); bottom is lines[10].
        assert_eq!(lines[10].chars().nth(1), Some('a'));
        assert_eq!(lines[1].chars().nth(10), Some('b'));
    }

    #[test]
    fn out_of_bounds_points_are_skipped() {
        let mut map = AsciiMap::new(Aabb::from_size(10.0, 10.0), 5, 5);
        let drawn = map.plot([Vec2::new(-1.0, 5.0), Vec2::new(5.0, 5.0)], 'x');
        assert_eq!(drawn, 1);
    }

    #[test]
    fn later_layers_overwrite() {
        let mut map = AsciiMap::new(Aabb::from_size(10.0, 10.0), 5, 5);
        map.plot([Vec2::new(5.0, 5.0)], '.');
        map.plot([Vec2::new(5.0, 5.0)], 'A');
        assert!(map.render().contains('A'));
        assert!(!map.render().contains('.'));
    }

    #[test]
    fn render_dimensions() {
        let map = AsciiMap::new(Aabb::from_size(10.0, 10.0), 8, 3);
        let text = map.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5); // 3 rows + 2 borders
        assert!(lines.iter().all(|l| l.chars().count() == 10)); // 8 + 2 borders
    }

    #[test]
    fn aspect_correction() {
        let map = AsciiMap::with_width(Aabb::from_size(100.0, 100.0), 40);
        assert_eq!(map.cols, 40);
        assert_eq!(map.rows, 20);
    }

    #[test]
    fn network_map_end_to_end() {
        let bounds = Aabb::from_size(100.0, 100.0);
        let truth = vec![Vec2::new(10.0, 10.0), Vec2::new(90.0, 90.0)];
        let estimates = vec![Some(Vec2::new(12.0, 12.0)), None];
        let anchors = vec![Vec2::new(50.0, 50.0)];
        let text = render_network_map(bounds, &truth, &estimates, &anchors, 30);
        assert!(text.contains('A'));
        assert!(text.contains('o'));
        assert!(text.contains('.'));
    }
}
