//! Serializable simulation scenarios.
//!
//! A [`Scenario`] fully determines one simulated world: deployment, node
//! counts, anchors, radio, ranging noise, and the seed. Experiments are
//! defined as scenario sweeps; persisting scenarios (JSON via serde)
//! makes every reported number regenerable from its config alone.

use crate::anchors::AnchorStrategy;
use crate::deploy::Deployment;
use crate::measure::RangingModel;
use crate::network::{GroundTruth, Network, NetworkBuilder};
use crate::radio::RadioModel;

/// A complete, named simulation configuration.
///
/// ```
/// use wsnloc_net::Scenario;
/// let scenario = Scenario::standard();
/// let (network, truth) = scenario.build_trial(0);
/// assert_eq!(network.len(), truth.positions().len());
/// // Anchors know exactly where they are.
/// for (id, pos) in network.anchors() {
///     assert_eq!(pos, truth.position(id));
/// }
/// ```
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Scenario {
    /// Human-readable label used in reports.
    pub name: String,
    /// Placement model.
    pub deployment: Deployment,
    /// Total nodes (anchors included).
    pub node_count: usize,
    /// Anchor selection.
    pub anchors: AnchorStrategy,
    /// Link model.
    pub radio: RadioModel,
    /// Ranging noise.
    pub ranging: RangingModel,
    /// Master seed; trial `t` uses `seed + t`.
    pub seed: u64,
}

impl Scenario {
    /// The workspace's standard configuration (see DESIGN.md §4): 225 nodes
    /// uniform in a 1000 m square, 10% random anchors, 150 m unit-disk
    /// radio, 10% multiplicative ranging noise.
    pub fn standard() -> Scenario {
        Scenario {
            name: "standard".to_string(),
            deployment: Deployment::uniform_square(1000.0),
            node_count: 225,
            anchors: AnchorStrategy::Random { count: 22 },
            radio: RadioModel::UnitDisk { range: 150.0 },
            ranging: RangingModel::Multiplicative { factor: 0.1 },
            seed: 0x5EED,
        }
    }

    /// Standard configuration but deployed by planned drops (pre-knowledge
    /// available): a 5×5 drop grid with `sigma` scatter.
    pub fn standard_with_preknowledge(sigma: f64) -> Scenario {
        let mut s = Scenario::standard();
        s.name = format!("standard-pk-sigma{sigma}");
        s.deployment = Deployment::planned_square_drop(1000.0, 5, sigma);
        s
    }

    /// Realizes trial `t` of this scenario.
    pub fn build_trial(&self, t: u64) -> (Network, GroundTruth) {
        let builder = NetworkBuilder {
            deployment: self.deployment.clone(),
            node_count: self.node_count,
            anchors: self.anchors.clone(),
            radio: self.radio,
            ranging: self.ranging,
        };
        builder.build(self.seed.wrapping_add(t))
    }

    /// Nominal radio range — the error normalization constant.
    pub fn nominal_range(&self) -> f64 {
        self.radio.nominal_range()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_scenario_is_sane() {
        let s = Scenario::standard();
        let (net, truth) = s.build_trial(0);
        assert_eq!(net.len(), 225);
        assert_eq!(net.anchor_count(), 22);
        assert_eq!(truth.positions().len(), 225);
        assert_eq!(s.nominal_range(), 150.0);
        // Standard density gives a healthy average degree.
        assert!(net.avg_degree() > 8.0, "degree {}", net.avg_degree());
    }

    #[test]
    fn trials_differ_but_are_reproducible() {
        let s = Scenario::standard();
        let (_, t0a) = s.build_trial(0);
        let (_, t0b) = s.build_trial(0);
        let (_, t1) = s.build_trial(1);
        assert_eq!(t0a, t0b);
        assert_ne!(t0a, t1);
    }

    #[test]
    fn preknowledge_scenario_has_plans() {
        let s = Scenario::standard_with_preknowledge(100.0);
        let (net, _) = s.build_trial(0);
        assert!(net.planned_position(0).is_some());
    }

    #[cfg(feature = "serde")]
    #[test]
    fn scenario_serde_roundtrip() {
        let s = Scenario::standard_with_preknowledge(80.0);
        let json = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        // Same config must regenerate the same world.
        let (_, t1) = s.build_trial(3);
        let (_, t2) = back.build_trial(3);
        assert_eq!(t1, t2);
    }

    #[test]
    fn cloned_scenario_regenerates_identical_world() {
        // Stand-in for the serde roundtrip while the `serde` feature is
        // parked: the config alone must determine the generated world.
        let s = Scenario::standard_with_preknowledge(80.0);
        let back = s.clone();
        let (_, t1) = s.build_trial(3);
        let (_, t2) = back.build_trial(3);
        assert_eq!(t1, t2);
    }
}
