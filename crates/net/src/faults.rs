//! Deterministic communication-fault models for distributed inference.
//!
//! A real WSN deployment is not the perfect synchronous fabric the BP
//! engines' happy path assumes: packets are lost (independently or in
//! bursts), nodes exhaust their batteries mid-run, messages arrive one
//! round late, and links are frequently asymmetric (u hears v, v never
//! hears u). A [`FaultPlan`] describes all of these as a *seeded,
//! deterministic* schedule, so a faulted run is exactly as replayable as
//! a fault-free one: the same plan applied to the same network and the
//! same run seed yields bit-identical fault decisions.
//!
//! The plan is pure data. The BP engines consume it through the
//! `Transport` seam in `wsnloc-bayes`, which rolls per-link fates once
//! per iteration; non-iterative baselines (NLS, DV-Hop) consume it via
//! [`FaultPlan::degrade_network`], which applies the *long-run* loss
//! probability persistently so comparisons against BP stay fair.

use crate::measure::Measurement;
use crate::network::{Network, NodeKind};
use wsnloc_geom::rng::Xoshiro256pp;

/// Per-iteration message-loss model for a directed link.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum LossModel {
    /// Every transmitted message arrives.
    None,
    /// Each message is lost independently with probability `rate`.
    Iid {
        /// Per-message loss probability in `[0, 1]`.
        rate: f64,
    },
    /// Bursty loss: a two-state Gilbert–Elliott channel per directed
    /// link. The link flips Good→Bad with probability `p_bad` and
    /// Bad→Good with probability `p_recover` each iteration, and drops
    /// messages with `loss_good` / `loss_bad` in the respective states.
    GilbertElliott {
        /// Good→Bad transition probability per iteration.
        p_bad: f64,
        /// Bad→Good transition probability per iteration.
        p_recover: f64,
        /// Loss probability while the link is in the Good state.
        loss_good: f64,
        /// Loss probability while the link is in the Bad state.
        loss_bad: f64,
    },
}

/// What a receiver substitutes for a message that did not arrive.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DropPolicy {
    /// Keep using the last successfully received message at full weight.
    HoldLast,
    /// Geometrically discount the held message toward "no information":
    /// a message last refreshed `k` iterations ago is applied with
    /// weight `decay^k`, so a long-silent neighbor fades back to the
    /// receiver's prior instead of being trusted forever.
    DecayToPrior {
        /// Per-iteration discount factor in `(0, 1]`.
        decay: f64,
    },
}

/// One scheduled node death.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeDeath {
    /// Node index that dies.
    pub node: usize,
    /// BP iteration at which it stops transmitting (0 = before the
    /// first message exchange).
    pub at_iteration: usize,
}

/// Which nodes die, and when.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DeathModel {
    /// Nobody dies.
    None,
    /// An explicit schedule of deaths (any node kind, anchors included).
    Explicit(Vec<NodeDeath>),
    /// A seeded random `fraction` of the *free* (unknown) nodes dies at
    /// `at_iteration`. Anchors are spared so the death sweep isolates
    /// the loss of cooperating neighbors from the loss of references.
    Random {
        /// Fraction of free nodes to kill, clamped to `[0, 1]`.
        fraction: f64,
        /// Iteration at which the selected nodes stop transmitting.
        at_iteration: usize,
    },
}

/// A complete, seeded description of the communication faults injected
/// into one inference run.
///
/// [`FaultPlan::none`] is the identity plan: engines detect it and take
/// the exact fault-free code path, so a `none()` plan is bit-identical
/// to not supplying a plan at all.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultPlan {
    /// Seed for every fault decision. Mixed with the run seed by the
    /// transport layer so different trials see different fault draws
    /// while any single run stays replayable.
    pub seed: u64,
    /// Message-loss model applied per directed link per iteration.
    pub loss: LossModel,
    /// Substitution policy for messages that did not arrive.
    pub drop_policy: DropPolicy,
    /// Node-death schedule.
    pub deaths: DeathModel,
    /// Probability that a delivered message is a *stale* duplicate of
    /// the previous one (the new content is delayed past this
    /// iteration) in `[0, 1]`.
    pub stale_prob: f64,
    /// Probability that a directed link is structurally silent for the
    /// whole run while its reverse direction may work, in `[0, 1]`.
    /// Models asymmetric radio links.
    pub asymmetry: f64,
}

impl FaultPlan {
    /// The identity plan: no loss, no deaths, no staleness, no
    /// asymmetry. Engines compile this down to the fault-free path.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            loss: LossModel::None,
            drop_policy: DropPolicy::HoldLast,
            deaths: DeathModel::None,
            stale_prob: 0.0,
            asymmetry: 0.0,
        }
    }

    /// An i.i.d. loss plan with the hold-last drop policy — the most
    /// common sweep configuration.
    #[must_use]
    pub fn iid_loss(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            loss: LossModel::Iid { rate },
            ..FaultPlan::none()
        }
    }

    /// Replaces the drop policy.
    #[must_use]
    pub fn with_drop_policy(mut self, policy: DropPolicy) -> Self {
        self.drop_policy = policy;
        self
    }

    /// Replaces the death model.
    #[must_use]
    pub fn with_deaths(mut self, deaths: DeathModel) -> Self {
        self.deaths = deaths;
        self
    }

    /// Sets the stale-delivery probability.
    #[must_use]
    pub fn with_stale_prob(mut self, p: f64) -> Self {
        self.stale_prob = p;
        self
    }

    /// Sets the asymmetric-link probability.
    #[must_use]
    pub fn with_asymmetry(mut self, p: f64) -> Self {
        self.asymmetry = p;
        self
    }

    /// True iff the plan injects no faults at all.
    #[must_use]
    pub fn is_none(&self) -> bool {
        matches!(self.loss, LossModel::None)
            && matches!(self.deaths, DeathModel::None)
            && self.stale_prob <= 0.0
            && self.asymmetry <= 0.0
    }

    /// Long-run (stationary) per-message loss probability of the loss
    /// model. For Gilbert–Elliott this is the stationary mixture of the
    /// good/bad loss rates.
    #[must_use]
    pub fn expected_loss_rate(&self) -> f64 {
        match self.loss {
            LossModel::None => 0.0,
            LossModel::Iid { rate } => rate.clamp(0.0, 1.0),
            LossModel::GilbertElliott {
                p_bad,
                p_recover,
                loss_good,
                loss_bad,
            } => {
                let denom = p_bad + p_recover;
                let pi_bad = if denom > 0.0 { p_bad / denom } else { 0.0 };
                (pi_bad * loss_bad + (1.0 - pi_bad) * loss_good).clamp(0.0, 1.0)
            }
        }
    }

    /// Resolves the death model against a concrete set of free-node
    /// ids, returning the explicit schedule. Deterministic in the plan
    /// seed; both the BP transport layer and [`Self::degrade_network`]
    /// use this, so they agree on who dies.
    #[must_use]
    pub fn death_schedule(&self, free_nodes: &[usize]) -> Vec<NodeDeath> {
        match &self.deaths {
            DeathModel::None => Vec::new(),
            DeathModel::Explicit(deaths) => deaths.clone(),
            DeathModel::Random {
                fraction,
                at_iteration,
            } => {
                let mut ids = free_nodes.to_vec();
                let mut rng = Xoshiro256pp::seed_from(self.seed ^ 0xDEAD_BEEF_0BAD_F00D);
                rng.shuffle(&mut ids);
                let k = death_count(ids.len(), *fraction);
                ids.truncate(k);
                ids.sort_unstable();
                ids.into_iter()
                    .map(|node| NodeDeath {
                        node,
                        at_iteration: *at_iteration,
                    })
                    .collect()
            }
        }
    }

    /// The persistent-fault equivalent of this plan, for non-iterative
    /// baselines that consume a [`Network`] once instead of exchanging
    /// messages per iteration: each measurement is removed with the
    /// long-run loss probability, and every measurement touching a dead
    /// node is removed outright. `salt` (typically the trial seed) is
    /// mixed into the drop draws so repeated trials degrade differently
    /// while staying replayable.
    #[must_use]
    pub fn degrade_network(&self, net: &Network, salt: u64) -> Network {
        let rate = self.expected_loss_rate();
        let free: Vec<usize> = (0..net.len())
            .filter(|&u| net.kind(u) == NodeKind::Unknown)
            .collect();
        let dead: Vec<usize> = self
            .death_schedule(&free)
            .into_iter()
            .map(|d| d.node)
            .collect();
        let mut rng = Xoshiro256pp::seed_from(self.seed ^ splitmix(salt));
        let measurements: Vec<Measurement> = net
            .measurements()
            .iter()
            .filter(|m| !dead.contains(&m.a) && !dead.contains(&m.b))
            .filter(|_| !(rate > 0.0 && rng.f64() < rate))
            .copied()
            .collect();
        let n = net.len();
        Network::from_parts(
            net.field().clone(),
            net.radio(),
            net.ranging(),
            (0..n).map(|u| net.kind(u)).collect(),
            (0..n).map(|u| net.anchor_position(u)).collect(),
            (0..n).map(|u| net.planned_position(u)).collect(),
            measurements,
        )
    }
}

/// Rounds `fraction` of `n` to a whole death count without going
/// through a float→index cast on anything unvalidated: the fraction is
/// clamped to `[0, 1]` first, so the product is in `[0, n]`.
fn death_count(n: usize, fraction: f64) -> usize {
    let f = fraction.clamp(0.0, 1.0);
    let k = ((n as f64) * f).round() as usize;
    k.min(n)
}

/// Mixes a salt into a seed tag (splitmix64 finalizer) so per-trial
/// degradation draws are decorrelated from the plan seed.
fn splitmix(salt: u64) -> u64 {
    let mut z = salt.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
