//! Ranging measurement models.
//!
//! Connected node pairs observe a noisy estimate of their distance. The
//! model is used twice: *generatively* by the simulator
//! ([`RangingModel::observe`]) and *inferentially* by the Bayesian-network
//! localizer ([`RangingModel::likelihood`] evaluates p(observed | true
//! distance) up to proportionality). Keeping both in one type guarantees the
//! inference likelihood matches the simulator exactly — the "well-specified
//! model" regime the paper's Bayesian formulation assumes.

use wsnloc_geom::rng::Xoshiro256pp;

/// A symmetric pairwise range observation between nodes `a` and `b`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Measurement {
    /// First endpoint (node index).
    pub a: usize,
    /// Second endpoint (node index).
    pub b: usize,
    /// Observed distance (meters), always > 0.
    pub distance: f64,
}

/// Noise model for distance observations.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RangingModel {
    /// `observed = true + N(0, sigma²)`, truncated at a small positive floor.
    AdditiveGaussian {
        /// Noise standard deviation (meters).
        sigma: f64,
    },
    /// `observed = true · (1 + N(0, factor²))` — noise grows with distance,
    /// the standard model for RSSI-derived ranging. `factor` is the "noise
    /// factor" swept by the experiments (e.g. 0.1 = 10% ranging noise).
    Multiplicative {
        /// Relative noise standard deviation.
        factor: f64,
    },
    /// Log-normal: `log(observed) = log(true) + N(0, sigma_log²)`. Models
    /// RSSI inversion through a log-distance path-loss law; `sigma_log =
    /// σ_dB · ln10 / (10 η)`.
    LogNormal {
        /// Standard deviation of the log-distance error.
        sigma_log: f64,
    },
    /// Non-line-of-sight mixture: with probability `1 − outlier_prob` the
    /// observation is the multiplicative-Gaussian LOS measurement; with
    /// probability `outlier_prob` an exponential positive excess delay of
    /// mean `outlier_scale` meters is added first (signal detoured around
    /// an obstacle — NLOS bias is always positive). The likelihood is the
    /// matching two-component mixture, which is what lets Bayesian fusion
    /// shrug off outliers that break least-squares solvers.
    NlosMixture {
        /// LOS relative noise standard deviation.
        factor: f64,
        /// Probability of an NLOS (outlier) observation, in `[0, 1]`.
        outlier_prob: f64,
        /// Mean positive excess distance of NLOS observations (meters).
        outlier_scale: f64,
    },
}

/// Floor applied to observed distances (meters) so likelihoods stay finite.
const MIN_DISTANCE: f64 = 1e-3;

impl RangingModel {
    /// Builds the log-normal model from RSSI channel parameters.
    pub fn from_rssi(sigma_db: f64, path_loss_exp: f64) -> RangingModel {
        RangingModel::LogNormal {
            sigma_log: sigma_db * std::f64::consts::LN_10 / (10.0 * path_loss_exp),
        }
    }

    /// Draws one observation of a true distance.
    pub fn observe(&self, true_dist: f64, rng: &mut Xoshiro256pp) -> f64 {
        debug_assert!(true_dist >= 0.0);
        let raw = match self {
            RangingModel::AdditiveGaussian { sigma } => rng.normal(true_dist, *sigma),
            RangingModel::Multiplicative { factor } => true_dist * (1.0 + rng.normal(0.0, *factor)),
            RangingModel::LogNormal { sigma_log } => {
                (true_dist.max(MIN_DISTANCE).ln() + rng.normal(0.0, *sigma_log)).exp()
            }
            RangingModel::NlosMixture {
                factor,
                outlier_prob,
                outlier_scale,
            } => {
                let base = if rng.bernoulli(*outlier_prob) {
                    true_dist + rng.exponential(1.0 / outlier_scale.max(1e-9))
                } else {
                    true_dist
                };
                base * (1.0 + rng.normal(0.0, *factor))
            }
        };
        raw.max(MIN_DISTANCE)
    }

    /// Standard deviation of the observation at a given true distance —
    /// used for bandwidths, CRLB weights, and gating.
    pub fn noise_std(&self, true_dist: f64) -> f64 {
        match self {
            RangingModel::AdditiveGaussian { sigma } => *sigma,
            RangingModel::Multiplicative { factor } => factor * true_dist.max(MIN_DISTANCE),
            // Delta-method approximation: sd(d·e^X) ≈ d·σ_log for small σ.
            RangingModel::LogNormal { sigma_log } => sigma_log * true_dist.max(MIN_DISTANCE),
            // Mixture: LOS spread plus the outlier component's mean+std
            // contribution (exponential has mean = sd = scale).
            RangingModel::NlosMixture {
                factor,
                outlier_prob,
                outlier_scale,
            } => {
                let los = factor * true_dist.max(MIN_DISTANCE);
                ((1.0 - outlier_prob) * los * los
                    + outlier_prob * 2.0 * outlier_scale * outlier_scale)
                    .sqrt()
            }
        }
    }

    /// Likelihood `p(observed | true_dist)` up to a constant factor (the
    /// message-passing code renormalizes, so constants are dropped where
    /// convenient but *distance-dependent* terms are kept).
    pub fn likelihood(&self, observed: f64, true_dist: f64) -> f64 {
        let observed = observed.max(MIN_DISTANCE);
        let true_dist = true_dist.max(MIN_DISTANCE);
        match self {
            RangingModel::AdditiveGaussian { sigma } => {
                let z = (observed - true_dist) / sigma;
                (-0.5 * z * z).exp()
            }
            RangingModel::Multiplicative { factor } => {
                // observed | true ~ N(true, (factor·true)²): the normalizer
                // depends on the hypothesis, so keep the 1/true term.
                let sd = factor * true_dist;
                let z = (observed - true_dist) / sd;
                (-0.5 * z * z).exp() / sd
            }
            RangingModel::LogNormal { sigma_log } => {
                let z = (observed.ln() - true_dist.ln()) / sigma_log;
                (-0.5 * z * z).exp()
            }
            RangingModel::NlosMixture {
                factor,
                outlier_prob,
                outlier_scale,
            } => {
                // LOS component (normalized in obs for fixed d).
                let sd = factor * true_dist;
                let z = (observed - true_dist) / sd;
                let los = (-0.5 * z * z).exp() / (sd * (std::f64::consts::TAU).sqrt());
                // NLOS component: exponential excess, approximating the
                // multiplicative smear as negligible relative to the scale.
                let lambda = 1.0 / outlier_scale.max(1e-9);
                let nlos = if observed >= true_dist {
                    lambda * (-(observed - true_dist) * lambda).exp()
                } else {
                    0.0
                };
                ((1.0 - outlier_prob) * los + outlier_prob * nlos).max(1e-300)
            }
        }
    }

    /// Log-likelihood, matching [`RangingModel::likelihood`].
    pub fn log_likelihood(&self, observed: f64, true_dist: f64) -> f64 {
        let observed = observed.max(MIN_DISTANCE);
        let true_dist = true_dist.max(MIN_DISTANCE);
        match self {
            RangingModel::AdditiveGaussian { sigma } => {
                let z = (observed - true_dist) / sigma;
                -0.5 * z * z
            }
            RangingModel::Multiplicative { factor } => {
                let sd = factor * true_dist;
                let z = (observed - true_dist) / sd;
                -0.5 * z * z - sd.ln()
            }
            RangingModel::LogNormal { sigma_log } => {
                let z = (observed.ln() - true_dist.ln()) / sigma_log;
                -0.5 * z * z
            }
            m @ RangingModel::NlosMixture { .. } => m.likelihood(observed, true_dist).ln(),
        }
    }

    /// Samples a plausible true distance given an observation — the
    /// "inverse" draw used by particle-based message passing (approximate:
    /// applies the forward noise model around the observation, which is
    /// exact for the additive model and a good proposal for the others).
    pub fn sample_distance(&self, observed: f64, rng: &mut Xoshiro256pp) -> f64 {
        self.observe(observed, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn additive_observations_center_on_truth() {
        let m = RangingModel::AdditiveGaussian { sigma: 2.0 };
        let mut rng = Xoshiro256pp::seed_from(1);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| m.observe(100.0, &mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn multiplicative_noise_grows_with_distance() {
        let m = RangingModel::Multiplicative { factor: 0.1 };
        let mut rng = Xoshiro256pp::seed_from(2);
        let spread = |d: f64, rng: &mut Xoshiro256pp| {
            let n = 20_000;
            let obs: Vec<f64> = (0..n).map(|_| m.observe(d, rng)).collect();
            let mean = obs.iter().sum::<f64>() / n as f64;
            (obs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64).sqrt()
        };
        let near = spread(10.0, &mut rng);
        let far = spread(100.0, &mut rng);
        assert!((far / near - 10.0).abs() < 1.0, "near {near} far {far}");
    }

    #[test]
    fn observations_are_positive() {
        let m = RangingModel::AdditiveGaussian { sigma: 50.0 };
        let mut rng = Xoshiro256pp::seed_from(3);
        for _ in 0..10_000 {
            assert!(m.observe(1.0, &mut rng) > 0.0);
        }
    }

    #[test]
    fn likelihood_peaks_near_truth() {
        for m in [
            RangingModel::AdditiveGaussian { sigma: 5.0 },
            RangingModel::Multiplicative { factor: 0.1 },
            RangingModel::LogNormal { sigma_log: 0.2 },
        ] {
            let obs = 50.0;
            let at_truth = m.likelihood(obs, 50.0);
            assert!(at_truth > m.likelihood(obs, 30.0), "{m:?}");
            assert!(at_truth > m.likelihood(obs, 80.0), "{m:?}");
        }
    }

    #[test]
    fn log_likelihood_matches_likelihood() {
        for m in [
            RangingModel::AdditiveGaussian { sigma: 5.0 },
            RangingModel::Multiplicative { factor: 0.15 },
            RangingModel::LogNormal { sigma_log: 0.3 },
        ] {
            for (obs, d) in [(40.0, 50.0), (10.0, 9.0), (100.0, 140.0)] {
                let l = m.likelihood(obs, d);
                let ll = m.log_likelihood(obs, d);
                assert!(
                    (l.ln() - ll).abs() < 1e-9,
                    "{m:?}: ln({l}) vs {ll} at obs={obs}, d={d}"
                );
            }
        }
    }

    #[test]
    fn noise_std_consistency() {
        assert_eq!(
            RangingModel::AdditiveGaussian { sigma: 3.0 }.noise_std(100.0),
            3.0
        );
        assert_eq!(
            RangingModel::Multiplicative { factor: 0.1 }.noise_std(100.0),
            10.0
        );
        let ln = RangingModel::LogNormal { sigma_log: 0.1 };
        assert!((ln.noise_std(100.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn from_rssi_conversion() {
        // σ_dB = 6, η = 3 → σ_log = 6·ln10/30 ≈ 0.4605.
        let m = RangingModel::from_rssi(6.0, 3.0);
        match m {
            RangingModel::LogNormal { sigma_log } => {
                assert!((sigma_log - 0.460_517).abs() < 1e-5);
            }
            _ => panic!("expected LogNormal"),
        }
    }

    #[test]
    fn lognormal_observations_have_correct_log_spread() {
        let m = RangingModel::LogNormal { sigma_log: 0.25 };
        let mut rng = Xoshiro256pp::seed_from(4);
        let n = 50_000;
        let logs: Vec<f64> = (0..n).map(|_| m.observe(50.0, &mut rng).ln()).collect();
        let mean = logs.iter().sum::<f64>() / n as f64;
        let sd = (logs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64).sqrt();
        assert!((mean - 50.0f64.ln()).abs() < 0.01);
        assert!((sd - 0.25).abs() < 0.01);
    }

    #[test]
    fn nlos_observations_are_positively_biased() {
        let clean = RangingModel::Multiplicative { factor: 0.05 };
        let nlos = RangingModel::NlosMixture {
            factor: 0.05,
            outlier_prob: 0.3,
            outlier_scale: 40.0,
        };
        let mut rng = Xoshiro256pp::seed_from(21);
        let n = 50_000;
        let mean = |m: &RangingModel, rng: &mut Xoshiro256pp| {
            (0..n).map(|_| m.observe(100.0, rng)).sum::<f64>() / n as f64
        };
        let clean_mean = mean(&clean, &mut rng);
        let nlos_mean = mean(&nlos, &mut rng);
        // Expected bias = p · scale = 12 m.
        assert!((clean_mean - 100.0).abs() < 0.5);
        assert!((nlos_mean - 112.0).abs() < 1.5, "nlos mean {nlos_mean}");
    }

    #[test]
    fn nlos_likelihood_has_heavy_right_tail() {
        let m = RangingModel::NlosMixture {
            factor: 0.05,
            outlier_prob: 0.2,
            outlier_scale: 50.0,
        };
        // A 60 m over-measurement is far more plausible than a 60 m
        // under-measurement at d = 100.
        let over = m.likelihood(160.0, 100.0);
        let under = m.likelihood(40.0, 100.0);
        assert!(over > 100.0 * under, "over {over} vs under {under}");
        // And log matches.
        assert!((m.log_likelihood(160.0, 100.0) - over.ln()).abs() < 1e-9);
    }

    #[test]
    fn nlos_noise_std_interpolates_components() {
        let pure_los = RangingModel::NlosMixture {
            factor: 0.1,
            outlier_prob: 0.0,
            outlier_scale: 50.0,
        };
        assert!((pure_los.noise_std(100.0) - 10.0).abs() < 1e-9);
        let heavy = RangingModel::NlosMixture {
            factor: 0.1,
            outlier_prob: 0.5,
            outlier_scale: 50.0,
        };
        assert!(heavy.noise_std(100.0) > 30.0);
    }

    #[test]
    fn degenerate_distances_do_not_blow_up() {
        for m in [
            RangingModel::AdditiveGaussian { sigma: 1.0 },
            RangingModel::Multiplicative { factor: 0.1 },
            RangingModel::LogNormal { sigma_log: 0.2 },
            RangingModel::NlosMixture {
                factor: 0.1,
                outlier_prob: 0.2,
                outlier_scale: 30.0,
            },
        ] {
            let l = m.likelihood(0.0, 0.0);
            assert!(l.is_finite());
            let ll = m.log_likelihood(0.0, 0.0);
            assert!(ll.is_finite());
        }
    }
}
