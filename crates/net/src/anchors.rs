//! Anchor (beacon) selection strategies.
//!
//! Anchors are the nodes that know their own position. How they are chosen
//! changes localization difficulty substantially: random placement can leave
//! coverage holes, perimeter placement maximizes geometric dilution for
//! interior nodes, grid placement is the engineered best case.

use wsnloc_geom::rng::Xoshiro256pp;
use wsnloc_geom::{Aabb, Vec2};

/// How anchors are selected from the deployed node population.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AnchorStrategy {
    /// Select `count` anchors uniformly at random.
    Random {
        /// Number of anchors.
        count: usize,
    },
    /// Select the `count` nodes nearest to the field perimeter.
    Perimeter {
        /// Number of anchors.
        count: usize,
    },
    /// Select `count` nodes nearest to an evenly spaced virtual grid over
    /// the field (greedy, without replacement) — approximates engineered
    /// anchor placement.
    Grid {
        /// Number of anchors.
        count: usize,
    },
    /// Exactly these node ids (mobility snapshots, engineered deployments).
    /// Out-of-range ids are dropped.
    Explicit(Vec<usize>),
}

impl AnchorStrategy {
    /// Requested anchor count.
    pub fn count(&self) -> usize {
        match self {
            AnchorStrategy::Random { count }
            | AnchorStrategy::Perimeter { count }
            | AnchorStrategy::Grid { count } => *count,
            AnchorStrategy::Explicit(ids) => ids.len(),
        }
    }

    /// Picks anchor node indices given realized positions and the field
    /// bounds. Returns a sorted, duplicate-free list of at most
    /// `positions.len()` indices.
    pub fn select(&self, positions: &[Vec2], bounds: Aabb, rng: &mut Xoshiro256pp) -> Vec<usize> {
        let n = positions.len();
        let count = self.count().min(n);
        let mut chosen = match self {
            AnchorStrategy::Explicit(ids) => ids.iter().copied().filter(|&i| i < n).collect(),
            AnchorStrategy::Random { .. } => rng.sample_indices(n, count),
            AnchorStrategy::Perimeter { .. } => {
                let mut by_edge_dist: Vec<usize> = (0..n).collect();
                by_edge_dist.sort_by(|&a, &b| {
                    edge_distance(positions[a], bounds)
                        .total_cmp(&edge_distance(positions[b], bounds))
                });
                by_edge_dist.truncate(count);
                by_edge_dist
            }
            AnchorStrategy::Grid { .. } => {
                let k = (count as f64).sqrt().ceil() as usize;
                let mut taken = vec![false; n];
                let mut picked = Vec::with_capacity(count);
                'outer: for r in 0..k {
                    for c in 0..k {
                        if picked.len() >= count {
                            break 'outer;
                        }
                        let target = Vec2::new(
                            bounds.min.x + bounds.width() * (c as f64 + 0.5) / k as f64,
                            bounds.min.y + bounds.height() * (r as f64 + 0.5) / k as f64,
                        );
                        if let Some(best) = (0..n).filter(|&i| !taken[i]).min_by(|&a, &b| {
                            positions[a]
                                .dist_sq(target)
                                .total_cmp(&positions[b].dist_sq(target))
                        }) {
                            taken[best] = true;
                            picked.push(best);
                        }
                    }
                }
                picked
            }
        };
        chosen.sort_unstable();
        chosen.dedup();
        chosen
    }
}

/// Distance from a point to the nearest field edge (0 on the boundary).
fn edge_distance(p: Vec2, bounds: Aabb) -> f64 {
    let dx = (p.x - bounds.min.x).min(bounds.max.x - p.x);
    let dy = (p.y - bounds.min.y).min(bounds.max.y - p.y);
    dx.min(dy).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_positions(side: f64, k: usize) -> Vec<Vec2> {
        let mut out = Vec::new();
        for r in 0..k {
            for c in 0..k {
                out.push(Vec2::new(
                    side * (c as f64 + 0.5) / k as f64,
                    side * (r as f64 + 0.5) / k as f64,
                ));
            }
        }
        out
    }

    #[test]
    fn random_selection_size_and_range() {
        let pos = grid_positions(100.0, 10);
        let mut rng = Xoshiro256pp::seed_from(1);
        let sel = AnchorStrategy::Random { count: 12 }.select(
            &pos,
            Aabb::from_size(100.0, 100.0),
            &mut rng,
        );
        assert_eq!(sel.len(), 12);
        assert!(sel.iter().all(|&i| i < pos.len()));
        assert!(sel.windows(2).all(|w| w[0] < w[1]), "sorted & unique");
    }

    #[test]
    fn random_selection_caps_at_population() {
        let pos = grid_positions(10.0, 2);
        let mut rng = Xoshiro256pp::seed_from(2);
        let sel = AnchorStrategy::Random { count: 99 }.select(
            &pos,
            Aabb::from_size(10.0, 10.0),
            &mut rng,
        );
        assert_eq!(sel.len(), 4);
    }

    #[test]
    fn perimeter_prefers_border_nodes() {
        let bounds = Aabb::from_size(100.0, 100.0);
        let mut pos = grid_positions(100.0, 5); // interior-ish grid
        pos.push(Vec2::new(1.0, 50.0)); // clearly on the edge
        pos.push(Vec2::new(99.0, 50.0));
        let mut rng = Xoshiro256pp::seed_from(3);
        let sel = AnchorStrategy::Perimeter { count: 2 }.select(&pos, bounds, &mut rng);
        assert_eq!(sel, vec![25, 26]);
    }

    #[test]
    fn grid_selection_spreads_out() {
        let bounds = Aabb::from_size(100.0, 100.0);
        let pos = grid_positions(100.0, 10);
        let mut rng = Xoshiro256pp::seed_from(4);
        let sel = AnchorStrategy::Grid { count: 4 }.select(&pos, bounds, &mut rng);
        assert_eq!(sel.len(), 4);
        // Selected anchors should span a large part of the field.
        let pts: Vec<Vec2> = sel.iter().map(|&i| pos[i]).collect();
        let bb = Aabb::from_points(&pts).unwrap();
        assert!(bb.width() > 30.0 && bb.height() > 30.0);
    }

    #[test]
    fn grid_selection_has_no_duplicates() {
        let bounds = Aabb::from_size(50.0, 50.0);
        let pos = grid_positions(50.0, 4);
        let mut rng = Xoshiro256pp::seed_from(5);
        let sel = AnchorStrategy::Grid { count: 9 }.select(&pos, bounds, &mut rng);
        let mut dedup = sel.clone();
        dedup.dedup();
        assert_eq!(sel.len(), dedup.len());
        assert_eq!(sel.len(), 9);
    }

    #[test]
    fn explicit_selection_passes_ids_through() {
        let pos = grid_positions(10.0, 3);
        let mut rng = Xoshiro256pp::seed_from(6);
        let sel = AnchorStrategy::Explicit(vec![7, 2, 2, 99]).select(
            &pos,
            Aabb::from_size(10.0, 10.0),
            &mut rng,
        );
        assert_eq!(sel, vec![2, 7]); // sorted, deduped, out-of-range dropped
    }

    #[test]
    fn edge_distance_zero_on_boundary() {
        let b = Aabb::from_size(10.0, 10.0);
        assert_eq!(edge_distance(Vec2::new(0.0, 5.0), b), 0.0);
        assert_eq!(edge_distance(Vec2::new(5.0, 5.0), b), 5.0);
        assert_eq!(edge_distance(Vec2::new(9.0, 5.0), b), 1.0);
    }
}
