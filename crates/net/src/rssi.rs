//! RSSI modeling and channel calibration.
//!
//! Range-based localization on commodity hardware starts from received
//! signal strength. This module provides the log-distance path-loss model
//! with shadowing, RSSI → distance inversion, and — the part that connects
//! to *pre-knowledge* — channel calibration: anchors know their mutual
//! distances, so the anchor–anchor RSSI observations identify the channel
//! parameters by linear regression before any unknown node is localized.
//!
//! `RSSI(d) = P₀ − 10·η·log₁₀(d/d₀) + N(0, σ_dB²)`

use wsnloc_geom::rng::Xoshiro256pp;

/// Log-distance path-loss channel model.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PathLossModel {
    /// Received power at the reference distance (dBm).
    pub p0_dbm: f64,
    /// Reference distance (meters, > 0). Conventionally 1 m.
    pub d0: f64,
    /// Path-loss exponent η (≈2 free space, 3–4 cluttered).
    pub exponent: f64,
    /// Shadowing standard deviation (dB).
    pub sigma_db: f64,
}

impl PathLossModel {
    /// A typical 2.4 GHz outdoor channel: −40 dBm at 1 m, η = 3, 4 dB
    /// shadowing.
    pub fn typical_outdoor() -> Self {
        PathLossModel {
            p0_dbm: -40.0,
            d0: 1.0,
            exponent: 3.0,
            sigma_db: 4.0,
        }
    }

    /// Mean RSSI at a distance (no shadowing).
    pub fn expected_rssi(&self, distance: f64) -> f64 {
        let d = distance.max(1e-3);
        self.p0_dbm - 10.0 * self.exponent * (d / self.d0).log10()
    }

    /// One shadowed RSSI observation.
    pub fn observe_rssi(&self, distance: f64, rng: &mut Xoshiro256pp) -> f64 {
        self.expected_rssi(distance) + rng.normal(0.0, self.sigma_db)
    }

    /// Maximum-likelihood distance estimate from one RSSI value (the
    /// inversion of [`PathLossModel::expected_rssi`]).
    pub fn distance_from_rssi(&self, rssi_dbm: f64) -> f64 {
        self.d0 * 10f64.powf((self.p0_dbm - rssi_dbm) / (10.0 * self.exponent))
    }

    /// The equivalent log-normal ranging model (`σ_log = σ_dB·ln10/(10η)`),
    /// for plugging a calibrated channel into the simulator/inference.
    pub fn ranging_model(&self) -> crate::measure::RangingModel {
        crate::measure::RangingModel::from_rssi(self.sigma_db, self.exponent)
    }
}

/// One calibration observation: a known distance and the RSSI measured at
/// it (anchor–anchor pairs).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CalibrationSample {
    /// True (known) distance, meters.
    pub distance: f64,
    /// Measured RSSI, dBm.
    pub rssi_dbm: f64,
}

/// Fits `(P₀, η, σ_dB)` by ordinary least squares on
/// `rssi = P₀ − 10·η·log₁₀(d/d₀)`. Needs at least two samples at distinct
/// distances; returns `None` otherwise. `d0` is the caller's reference
/// distance for the fitted model.
pub fn fit_path_loss(samples: &[CalibrationSample], d0: f64) -> Option<PathLossModel> {
    if samples.len() < 2 {
        return None;
    }
    // x = log10(d/d0), y = rssi; fit y = a + b x with b = −10η.
    let xy: Vec<(f64, f64)> = samples
        .iter()
        .map(|s| ((s.distance.max(1e-3) / d0).log10(), s.rssi_dbm))
        .collect();
    let n = xy.len() as f64;
    let sx: f64 = xy.iter().map(|(x, _)| x).sum();
    let sy: f64 = xy.iter().map(|(_, y)| y).sum();
    let sxx: f64 = xy.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = xy.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None; // all samples at one distance
    }
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    let exponent = -b / 10.0;
    if !(0.1..=10.0).contains(&exponent) {
        return None; // physically implausible fit
    }
    // Residual standard deviation → shadowing estimate.
    let ss_res: f64 = xy
        .iter()
        .map(|(x, y)| {
            let pred = a + b * x;
            (y - pred).powi(2)
        })
        .sum();
    let dof = (samples.len() as f64 - 2.0).max(1.0);
    Some(PathLossModel {
        p0_dbm: a,
        d0,
        exponent,
        sigma_db: (ss_res / dof).sqrt(),
    })
}

/// Convenience: generate anchor–anchor calibration samples for a network's
/// anchor set under a true channel, then fit. Returns the fitted model and
/// the samples used. The network's anchors must share links for samples to
/// exist; distances come from the *known* anchor positions (which is what
/// makes this legitimate calibration, not cheating).
pub fn calibrate_from_anchors(
    network: &crate::network::Network,
    true_channel: &PathLossModel,
    rng: &mut Xoshiro256pp,
) -> (Option<PathLossModel>, Vec<CalibrationSample>) {
    let mut samples = Vec::new();
    for m in network.measurements() {
        let (Some(pa), Some(pb)) = (network.anchor_position(m.a), network.anchor_position(m.b))
        else {
            continue;
        };
        let d = pa.dist(pb);
        samples.push(CalibrationSample {
            distance: d,
            rssi_dbm: true_channel.observe_rssi(d, rng),
        });
    }
    (fit_path_loss(&samples, true_channel.d0), samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rssi_decreases_with_distance() {
        let m = PathLossModel::typical_outdoor();
        assert!(m.expected_rssi(10.0) > m.expected_rssi(100.0));
        // −40 at 1 m, η = 3 → −70 at 10 m, −100 at 100 m.
        assert!((m.expected_rssi(10.0) + 70.0).abs() < 1e-12);
        assert!((m.expected_rssi(100.0) + 100.0).abs() < 1e-12);
    }

    #[test]
    fn inversion_roundtrip() {
        let m = PathLossModel::typical_outdoor();
        for d in [1.0, 7.5, 42.0, 180.0] {
            let rssi = m.expected_rssi(d);
            assert!((m.distance_from_rssi(rssi) - d).abs() < 1e-9);
        }
    }

    #[test]
    fn observations_scatter_around_mean() {
        let m = PathLossModel::typical_outdoor();
        let mut rng = Xoshiro256pp::seed_from(1);
        let n = 20_000;
        let obs: Vec<f64> = (0..n).map(|_| m.observe_rssi(50.0, &mut rng)).collect();
        let mean = obs.iter().sum::<f64>() / n as f64;
        let sd = (obs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64).sqrt();
        assert!((mean - m.expected_rssi(50.0)).abs() < 0.1);
        assert!((sd - 4.0).abs() < 0.1);
    }

    #[test]
    fn fit_recovers_noise_free_channel() {
        let truth = PathLossModel {
            p0_dbm: -38.0,
            d0: 1.0,
            exponent: 2.7,
            sigma_db: 0.0,
        };
        let samples: Vec<CalibrationSample> = [2.0, 5.0, 11.0, 30.0, 80.0, 150.0]
            .iter()
            .map(|&d| CalibrationSample {
                distance: d,
                rssi_dbm: truth.expected_rssi(d),
            })
            .collect();
        let fit = fit_path_loss(&samples, 1.0).unwrap();
        assert!((fit.p0_dbm + 38.0).abs() < 1e-9);
        assert!((fit.exponent - 2.7).abs() < 1e-9);
        assert!(fit.sigma_db < 1e-6);
    }

    #[test]
    fn fit_recovers_noisy_channel_approximately() {
        let truth = PathLossModel::typical_outdoor();
        let mut rng = Xoshiro256pp::seed_from(2);
        let samples: Vec<CalibrationSample> = (0..400)
            .map(|i| {
                let d = 2.0 + (i % 40) as f64 * 5.0;
                CalibrationSample {
                    distance: d,
                    rssi_dbm: truth.observe_rssi(d, &mut rng),
                }
            })
            .collect();
        let fit = fit_path_loss(&samples, 1.0).unwrap();
        assert!((fit.exponent - 3.0).abs() < 0.15, "η fit {}", fit.exponent);
        assert!((fit.p0_dbm + 40.0).abs() < 2.0, "P0 fit {}", fit.p0_dbm);
        assert!((fit.sigma_db - 4.0).abs() < 0.5, "σ fit {}", fit.sigma_db);
    }

    #[test]
    fn fit_rejects_degenerate_inputs() {
        assert!(fit_path_loss(&[], 1.0).is_none());
        assert!(fit_path_loss(
            &[CalibrationSample {
                distance: 5.0,
                rssi_dbm: -60.0
            }],
            1.0
        )
        .is_none());
        // All at the same distance: unidentifiable.
        let same: Vec<CalibrationSample> = (0..5)
            .map(|i| CalibrationSample {
                distance: 10.0,
                rssi_dbm: -60.0 - i as f64,
            })
            .collect();
        assert!(fit_path_loss(&same, 1.0).is_none());
    }

    #[test]
    fn calibrated_ranging_model_matches_channel() {
        let m = PathLossModel::typical_outdoor();
        match m.ranging_model() {
            crate::measure::RangingModel::LogNormal { sigma_log } => {
                let expected = 4.0 * std::f64::consts::LN_10 / 30.0;
                assert!((sigma_log - expected).abs() < 1e-12);
            }
            other => panic!("expected LogNormal, got {other:?}"),
        }
    }

    #[test]
    fn anchor_calibration_end_to_end() {
        use crate::network::NetworkBuilder;
        use crate::{AnchorStrategy, Deployment, RadioModel, RangingModel};
        let (net, _) = NetworkBuilder {
            deployment: Deployment::uniform_square(400.0),
            node_count: 120,
            anchors: AnchorStrategy::Random { count: 30 },
            radio: RadioModel::UnitDisk { range: 180.0 },
            ranging: RangingModel::Multiplicative { factor: 0.1 },
        }
        .build(5);
        let truth = PathLossModel::typical_outdoor();
        let mut rng = Xoshiro256pp::seed_from(6);
        let (fit, samples) = calibrate_from_anchors(&net, &truth, &mut rng);
        assert!(
            samples.len() > 20,
            "need anchor-anchor links, got {}",
            samples.len()
        );
        let fit = fit.expect("calibration should succeed");
        assert!((fit.exponent - 3.0).abs() < 0.5, "η {}", fit.exponent);
    }
}
