//! Node deployment models.
//!
//! A [`Deployment`] produces both the *realized* node positions (hidden
//! ground truth) and, when the model supports it, the *planned* positions —
//! the coordinates the deployment was aimed at. Planned positions are the
//! source of pre-knowledge priors: an aerial drop knows each sensor's target
//! coordinate but not where the wind actually put it.

use wsnloc_geom::rng::Xoshiro256pp;
use wsnloc_geom::{Aabb, Shape, Vec2};

/// How nodes are placed in the field.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Deployment {
    /// Independent uniform placement inside a shape. No planned positions
    /// exist (pre-knowledge reduces to "somewhere in the field").
    Uniform(Shape),
    /// Nodes aimed at the cells of a `rows × cols` grid covering `bounds`,
    /// each displaced by isotropic Gaussian jitter. Planned positions are
    /// the grid cell centers. If `rows * cols` is smaller than the requested
    /// node count, targets repeat cyclically.
    GridJitter {
        /// Field covered by the grid.
        bounds: Aabb,
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
        /// Standard deviation of placement scatter (meters).
        sigma: f64,
    },
    /// Exact, caller-supplied positions (mobility snapshots, replayed
    /// traces, hand-built test geometries). `realize` panics if asked for
    /// more nodes than positions; extra positions are ignored.
    Fixed(Vec<Vec2>),
    /// Each node is aimed at an explicit drop point and lands with isotropic
    /// Gaussian scatter; nodes cycle through the drop-point list. This is
    /// the canonical "pre-knowledge" deployment (aerial/vehicle drops).
    DropPoints {
        /// Planned drop coordinates.
        targets: Vec<Vec2>,
        /// Standard deviation of scatter around each target (meters).
        sigma: f64,
        /// Optional containment region; scattered positions are re-drawn
        /// until inside (nodes cannot land outside the field).
        field: Option<Shape>,
    },
}

/// The result of realizing a deployment.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Placement {
    /// Realized (true) node positions — hidden from algorithms.
    pub positions: Vec<Vec2>,
    /// Planned position per node, when the model defines one. This is the
    /// public pre-knowledge.
    pub planned: Option<Vec<Vec2>>,
}

impl Deployment {
    /// Uniform deployment over a `side × side` square — the standard field.
    pub fn uniform_square(side: f64) -> Deployment {
        Deployment::Uniform(Shape::Rect(Aabb::from_size(side, side)))
    }

    /// Grid-of-drop-points deployment covering a square field: `k × k`
    /// targets with scatter `sigma`, clipped to the field. This is the
    /// standard pre-knowledge scenario used throughout the experiments.
    pub fn planned_square_drop(side: f64, k: usize, sigma: f64) -> Deployment {
        assert!(k > 0, "need at least one drop row");
        let mut targets = Vec::with_capacity(k * k);
        for r in 0..k {
            for c in 0..k {
                targets.push(Vec2::new(
                    side * (c as f64 + 0.5) / k as f64,
                    side * (r as f64 + 0.5) / k as f64,
                ));
            }
        }
        Deployment::DropPoints {
            targets,
            sigma,
            field: Some(Shape::Rect(Aabb::from_size(side, side))),
        }
    }

    /// The region nodes can occupy.
    pub fn field_shape(&self) -> Shape {
        match self {
            Deployment::Uniform(s) => s.clone(),
            Deployment::Fixed(positions) => {
                // An empty fixed deployment degenerates to a unit box.
                let bb = Aabb::from_points(positions)
                    .unwrap_or_else(|| Aabb::from_size(1.0, 1.0))
                    .inflated(1.0);
                Shape::Rect(bb)
            }
            Deployment::GridJitter { bounds, .. } => Shape::Rect(*bounds),
            Deployment::DropPoints { field, targets, .. } => field.clone().unwrap_or_else(|| {
                // Unbounded scatter: use a generous box around the targets
                // (or a unit box when there are none).
                let bb = Aabb::from_points(targets)
                    .unwrap_or_else(|| Aabb::from_size(1.0, 1.0))
                    .inflated(1.0);
                Shape::Rect(bb)
            }),
        }
    }

    /// Realizes positions for `n` nodes.
    pub fn realize(&self, n: usize, rng: &mut Xoshiro256pp) -> Placement {
        match self {
            Deployment::Uniform(shape) => Placement {
                positions: shape.sample_n(rng, n),
                planned: None,
            },
            Deployment::Fixed(positions) => {
                assert!(
                    positions.len() >= n,
                    "Fixed deployment has {} positions but {n} were requested",
                    positions.len()
                );
                Placement {
                    positions: positions[..n].to_vec(),
                    planned: None,
                }
            }
            Deployment::GridJitter {
                bounds,
                rows,
                cols,
                sigma,
            } => {
                assert!(*rows > 0 && *cols > 0, "grid must be non-empty");
                let mut planned = Vec::with_capacity(n);
                for i in 0..n {
                    let cell = i % (rows * cols);
                    let (r, c) = (cell / cols, cell % cols);
                    planned.push(Vec2::new(
                        bounds.min.x + bounds.width() * (c as f64 + 0.5) / *cols as f64,
                        bounds.min.y + bounds.height() * (r as f64 + 0.5) / *rows as f64,
                    ));
                }
                let positions = planned
                    .iter()
                    .map(|&t| scatter_into(t, *sigma, &Shape::Rect(*bounds), rng))
                    .collect();
                Placement {
                    positions,
                    planned: Some(planned),
                }
            }
            Deployment::DropPoints {
                targets,
                sigma,
                field,
            } => {
                assert!(!targets.is_empty(), "DropPoints needs at least one target");
                let planned: Vec<Vec2> = (0..n).map(|i| targets[i % targets.len()]).collect();
                let shape = self.field_shape();
                let positions = planned
                    .iter()
                    .map(|&t| {
                        if field.is_some() {
                            scatter_into(t, *sigma, &shape, rng)
                        } else {
                            rng.gaussian_point(t, *sigma)
                        }
                    })
                    .collect();
                Placement {
                    positions,
                    planned: Some(planned),
                }
            }
        }
    }
}

/// Gaussian scatter around `target`, redrawn until inside `shape` (falls back
/// to clamping into the bounding box after 1000 rejections, which only
/// happens for targets far outside the field).
fn scatter_into(target: Vec2, sigma: f64, shape: &Shape, rng: &mut Xoshiro256pp) -> Vec2 {
    for _ in 0..1000 {
        let p = rng.gaussian_point(target, sigma);
        if shape.contains(p) {
            return p;
        }
    }
    shape.bounding_box().clamp_point(target)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_positions_inside_field() {
        let d = Deployment::uniform_square(100.0);
        let mut rng = Xoshiro256pp::seed_from(1);
        let p = d.realize(200, &mut rng);
        assert_eq!(p.positions.len(), 200);
        assert!(p.planned.is_none());
        let shape = d.field_shape();
        assert!(p.positions.iter().all(|&x| shape.contains(x)));
    }

    #[test]
    fn grid_jitter_planned_are_cell_centers() {
        let d = Deployment::GridJitter {
            bounds: Aabb::from_size(100.0, 100.0),
            rows: 2,
            cols: 2,
            sigma: 1.0,
        };
        let mut rng = Xoshiro256pp::seed_from(2);
        let p = d.realize(4, &mut rng);
        let planned = p.planned.unwrap();
        assert_eq!(planned[0], Vec2::new(25.0, 25.0));
        assert_eq!(planned[3], Vec2::new(75.0, 75.0));
        // Realized positions near plans (σ = 1, so 5σ covers it).
        for (pos, plan) in p.positions.iter().zip(&planned) {
            assert!(pos.dist(*plan) < 6.0);
        }
    }

    #[test]
    fn grid_jitter_cycles_when_more_nodes_than_cells() {
        let d = Deployment::GridJitter {
            bounds: Aabb::from_size(10.0, 10.0),
            rows: 1,
            cols: 2,
            sigma: 0.1,
        };
        let mut rng = Xoshiro256pp::seed_from(3);
        let p = d.realize(5, &mut rng);
        let planned = p.planned.unwrap();
        assert_eq!(planned[0], planned[2]);
        assert_eq!(planned[1], planned[3]);
    }

    #[test]
    fn drop_points_scatter_scales_with_sigma() {
        let target = Vec2::new(50.0, 50.0);
        let mk = |sigma| Deployment::DropPoints {
            targets: vec![target],
            sigma,
            field: None,
        };
        let mut rng = Xoshiro256pp::seed_from(4);
        let tight = mk(1.0).realize(500, &mut rng);
        let loose = mk(20.0).realize(500, &mut rng);
        let spread = |p: &Placement| {
            p.positions.iter().map(|x| x.dist(target)).sum::<f64>() / p.positions.len() as f64
        };
        assert!(spread(&loose) > 5.0 * spread(&tight));
    }

    #[test]
    fn drop_points_respect_field_clipping() {
        let d = Deployment::DropPoints {
            targets: vec![Vec2::new(1.0, 1.0)], // near the corner
            sigma: 10.0,
            field: Some(Shape::Rect(Aabb::from_size(100.0, 100.0))),
        };
        let mut rng = Xoshiro256pp::seed_from(5);
        let p = d.realize(300, &mut rng);
        assert!(p
            .positions
            .iter()
            .all(|x| x.x >= 0.0 && x.y >= 0.0 && x.x <= 100.0 && x.y <= 100.0));
    }

    #[test]
    fn planned_square_drop_covers_field() {
        let d = Deployment::planned_square_drop(1000.0, 5, 50.0);
        let mut rng = Xoshiro256pp::seed_from(6);
        let p = d.realize(225, &mut rng);
        let planned = p.planned.unwrap();
        assert_eq!(planned.len(), 225);
        // 25 distinct targets cycled 9 times.
        let bb = Aabb::from_points(&planned).unwrap();
        assert!(bb.width() > 700.0 && bb.height() > 700.0);
    }

    #[test]
    fn fixed_deployment_passes_positions_through() {
        let pts = vec![
            Vec2::new(1.0, 2.0),
            Vec2::new(3.0, 4.0),
            Vec2::new(5.0, 6.0),
        ];
        let d = Deployment::Fixed(pts.clone());
        let mut rng = Xoshiro256pp::seed_from(1);
        let p = d.realize(2, &mut rng);
        assert_eq!(p.positions, &pts[..2]);
        assert!(p.planned.is_none());
        assert!(d.field_shape().contains(pts[2]));
    }

    #[test]
    #[should_panic(expected = "requested")]
    fn fixed_deployment_rejects_overdraw() {
        let d = Deployment::Fixed(vec![Vec2::ZERO]);
        let mut rng = Xoshiro256pp::seed_from(1);
        let _ = d.realize(2, &mut rng);
    }

    #[test]
    fn realization_is_deterministic_per_seed() {
        let d = Deployment::uniform_square(100.0);
        let a = d.realize(50, &mut Xoshiro256pp::seed_from(7));
        let b = d.realize(50, &mut Xoshiro256pp::seed_from(7));
        let c = d.realize(50, &mut Xoshiro256pp::seed_from(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
