//! Node mobility: the random-waypoint model and time-stepped worlds.
//!
//! The paper's setting is static, but tracking mobile nodes is the natural
//! extension (and the setting of the Monte-Carlo-localization literature).
//! [`RandomWaypoint`] is the standard mobility model: each node picks a
//! uniform destination in the field, travels toward it at a per-leg uniform
//! speed, pauses, and repeats. [`MobileWorld`] advances true positions and
//! re-samples connectivity + measurements each step, yielding a fresh
//! [`Network`] snapshot per tick while anchors stay fixed.

use crate::anchors::AnchorStrategy;
use crate::deploy::Deployment;
use crate::measure::RangingModel;
use crate::network::{Network, NetworkBuilder};
use crate::radio::RadioModel;
use wsnloc_geom::rng::Xoshiro256pp;
use wsnloc_geom::{Shape, Vec2};

/// Random-waypoint mobility parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RandomWaypoint {
    /// Minimum leg speed (m/s), > 0.
    pub min_speed: f64,
    /// Maximum leg speed (m/s), ≥ min.
    pub max_speed: f64,
    /// Pause duration at each waypoint (seconds).
    pub pause: f64,
}

/// Per-node mobility state.
#[derive(Debug, Clone, Copy)]
struct WaypointState {
    target: Vec2,
    speed: f64,
    pause_left: f64,
}

/// A time-stepped mutable world: true positions move, anchors stay put,
/// and every call to [`MobileWorld::step`] returns the next observable
/// network snapshot.
pub struct MobileWorld {
    field: Shape,
    radio: RadioModel,
    ranging: RangingModel,
    mobility: RandomWaypoint,
    dt: f64,
    positions: Vec<Vec2>,
    anchor_ids: Vec<usize>,
    states: Vec<WaypointState>,
    rng: Xoshiro256pp,
    time: f64,
    /// When set, every snapshot carries this placement as the
    /// pre-knowledge deployment plan (see [`Network::planned_position`]).
    plan: Option<Vec<Vec2>>,
}

impl MobileWorld {
    /// Creates a world with `node_count` nodes uniformly placed in `field`,
    /// `anchor_count` static random anchors, and the given models. `dt` is
    /// the interval between snapshots in seconds.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        field: Shape,
        node_count: usize,
        anchor_count: usize,
        radio: RadioModel,
        ranging: RangingModel,
        mobility: RandomWaypoint,
        dt: f64,
        seed: u64,
    ) -> Self {
        assert!(mobility.min_speed > 0.0 && mobility.max_speed >= mobility.min_speed);
        assert!(dt > 0.0, "time step must be positive");
        let root = Xoshiro256pp::seed_from(seed);
        let mut place_rng = root.split(1);
        let mut anchor_rng = root.split(2);
        let mut motion_rng = root.split(3);
        let positions = field.sample_n(&mut place_rng, node_count);
        let anchor_ids = AnchorStrategy::Random {
            count: anchor_count,
        }
        .select(&positions, field.bounding_box(), &mut anchor_rng);
        let states = positions
            .iter()
            .map(|_| WaypointState {
                target: field.sample(&mut motion_rng),
                speed: motion_rng.range(mobility.min_speed, mobility.max_speed),
                pause_left: 0.0,
            })
            .collect();
        MobileWorld {
            field,
            radio,
            ranging,
            mobility,
            dt,
            positions,
            anchor_ids,
            states,
            rng: root.split(4),
            time: 0.0,
            plan: None,
        }
    }

    /// Marks the initial placement as the deployment plan: every
    /// snapshot then exposes it as per-node pre-knowledge
    /// ([`Network::planned_position`]), the way a planned drop does for
    /// static networks. Spatial planners (e.g. shard layouts) can then
    /// place mobile free nodes near where they were deployed instead of
    /// collapsing them to the field center.
    #[must_use]
    pub fn with_deployment_plan(mut self) -> Self {
        self.plan = Some(self.positions.clone());
        self
    }

    /// Current true positions (evaluation only).
    pub fn positions(&self) -> &[Vec2] {
        &self.positions
    }

    /// Static anchor ids.
    pub fn anchor_ids(&self) -> &[usize] {
        &self.anchor_ids
    }

    /// Simulation time (seconds).
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Advances unknowns by one `dt` and returns the new observable network
    /// snapshot. The first call (time 0) returns the initial placement
    /// without moving — call order: snapshot, localize, snapshot, …
    pub fn step(&mut self) -> Network {
        if self.time > 0.0 {
            self.advance();
        }
        self.time += self.dt;
        self.snapshot()
    }

    fn advance(&mut self) {
        let anchor_set: std::collections::BTreeSet<usize> =
            self.anchor_ids.iter().copied().collect();
        for i in 0..self.positions.len() {
            if anchor_set.contains(&i) {
                continue; // anchors are static
            }
            let state = &mut self.states[i];
            if state.pause_left > 0.0 {
                state.pause_left = (state.pause_left - self.dt).max(0.0);
                continue;
            }
            let to_target = state.target - self.positions[i];
            let step_len = state.speed * self.dt;
            if to_target.norm() <= step_len {
                // Arrive, pause, pick the next leg.
                self.positions[i] = state.target;
                state.pause_left = self.mobility.pause;
                state.target = self.field.sample(&mut self.rng);
                state.speed = self
                    .rng
                    .range(self.mobility.min_speed, self.mobility.max_speed);
            } else {
                self.positions[i] += to_target.normalize_or_x() * step_len;
            }
        }
    }

    fn snapshot(&mut self) -> Network {
        let builder = NetworkBuilder {
            deployment: Deployment::Fixed(self.positions.clone()),
            node_count: self.positions.len(),
            anchors: AnchorStrategy::Explicit(self.anchor_ids.clone()),
            radio: self.radio,
            ranging: self.ranging,
        };
        // Fresh link/measurement randomness each step.
        let seed = self.rng.next_u64();
        let net = builder.build(seed).0;
        match &self.plan {
            Some(plan) => net.with_planned(plan.iter().copied().map(Some).collect()),
            None => net,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsnloc_geom::Aabb;

    fn world(seed: u64, speed: f64) -> MobileWorld {
        MobileWorld::new(
            Shape::Rect(Aabb::from_size(500.0, 500.0)),
            40,
            8,
            RadioModel::UnitDisk { range: 150.0 },
            RangingModel::Multiplicative { factor: 0.1 },
            RandomWaypoint {
                min_speed: speed,
                max_speed: speed,
                pause: 0.0,
            },
            1.0,
            seed,
        )
    }

    #[test]
    fn anchors_never_move() {
        let mut w = world(1, 10.0);
        let anchors = w.anchor_ids().to_vec();
        let initial: Vec<Vec2> = anchors.iter().map(|&a| w.positions()[a]).collect();
        for _ in 0..20 {
            let _ = w.step();
        }
        for (&a, &p) in anchors.iter().zip(&initial) {
            assert_eq!(w.positions()[a], p);
        }
    }

    #[test]
    fn unknowns_move_at_the_configured_speed() {
        let mut w = world(2, 10.0);
        let anchor_set: std::collections::BTreeSet<usize> =
            w.anchor_ids().iter().copied().collect();
        let before = w.positions().to_vec();
        let _ = w.step(); // t=0 snapshot: no motion yet
        let _ = w.step(); // one dt of motion
        let mut moved = 0;
        for (i, &b) in before.iter().enumerate() {
            if anchor_set.contains(&i) {
                continue;
            }
            let d = w.positions()[i].dist(b);
            // One step at 10 m/s for 1 s, unless the node arrived early.
            assert!(d <= 10.0 + 1e-9, "node {i} moved {d}");
            if d > 1.0 {
                moved += 1;
            }
        }
        assert!(moved > 20, "only {moved} nodes moved");
    }

    #[test]
    fn positions_stay_in_field() {
        let mut w = world(3, 25.0);
        for _ in 0..50 {
            let _ = w.step();
            for &p in w.positions() {
                assert!(p.x >= -1e-9 && p.y >= -1e-9 && p.x <= 500.0 + 1e-9 && p.y <= 500.0 + 1e-9);
            }
        }
    }

    #[test]
    fn snapshots_track_current_positions() {
        let mut w = world(4, 15.0);
        for _ in 0..5 {
            let net = w.step();
            // Anchor positions in the snapshot match the world.
            for (id, pos) in net.anchors() {
                assert_eq!(pos, w.positions()[id]);
            }
            // Links only between currently-in-range pairs.
            for m in net.measurements() {
                let d = w.positions()[m.a].dist(w.positions()[m.b]);
                assert!(d <= 150.0 + 1e-9);
            }
        }
    }

    #[test]
    fn deterministic_trajectories() {
        let mut a = world(5, 12.0);
        let mut b = world(5, 12.0);
        for _ in 0..10 {
            let _ = a.step();
            let _ = b.step();
        }
        assert_eq!(a.positions(), b.positions());
    }

    #[test]
    fn pausing_reduces_path_length() {
        // Compare *cumulative* distance traveled (displacement from start is
        // not monotone in pause — unpaused nodes can wander back).
        let travel = |pause: f64| {
            let mut w = MobileWorld::new(
                Shape::Rect(Aabb::from_size(500.0, 500.0)),
                30,
                5,
                RadioModel::UnitDisk { range: 150.0 },
                RangingModel::Multiplicative { factor: 0.1 },
                RandomWaypoint {
                    min_speed: 20.0,
                    max_speed: 20.0,
                    pause,
                },
                1.0,
                6,
            );
            let mut total = 0.0;
            let mut prev = w.positions().to_vec();
            for _ in 0..40 {
                let _ = w.step();
                total += w
                    .positions()
                    .iter()
                    .zip(&prev)
                    .map(|(a, b)| a.dist(*b))
                    .sum::<f64>();
                prev = w.positions().to_vec();
            }
            total
        };
        assert!(travel(10.0) < travel(0.0));
    }

    #[test]
    fn deployment_plan_is_initial_placement_and_stays_fixed() {
        let mut w = world(77, 10.0).with_deployment_plan();
        let initial = w.positions().to_vec();
        let first = w.step();
        let second = w.step();
        for (id, &planned) in initial.iter().enumerate() {
            // The plan is the t=0 placement on every snapshot, even
            // after the nodes have moved away from it.
            assert_eq!(first.planned_position(id), Some(planned));
            assert_eq!(second.planned_position(id), Some(planned));
        }
        assert!(
            (0..initial.len()).any(|id| w.positions()[id] != initial[id]),
            "free nodes must have moved off the plan"
        );
        // Without the opt-in, snapshots carry no pre-knowledge.
        let mut plain = world(77, 10.0);
        let snap = plain.step();
        assert!((0..initial.len()).all(|id| snap.planned_position(id).is_none()));
    }
}
