//! Connectivity topology: adjacency, hop counts, components.
//!
//! Algorithms that predate fine ranging (DV-Hop) and the flood phases of
//! message passing both operate on the *graph* induced by the radio model.
//! This module provides that graph plus the BFS primitives they need.

use std::collections::VecDeque;

/// Undirected adjacency structure over node indices `0..n`.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Topology {
    adj: Vec<Vec<usize>>,
}

impl Topology {
    /// Builds from an edge list over `n` nodes. Duplicate and self edges are
    /// ignored; neighbor lists come out sorted.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range for n={n}");
            if a == b {
                continue;
            }
            adj[a].push(b);
            adj[b].push(a);
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        Topology { adj }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// `true` iff there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Neighbors of `v` in ascending order.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Mean degree over all nodes (0 for an empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.adj.is_empty() {
            return 0.0;
        }
        self.adj.iter().map(Vec::len).sum::<usize>() as f64 / self.adj.len() as f64
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// `true` iff `a` and `b` share an edge.
    pub fn connected(&self, a: usize, b: usize) -> bool {
        self.adj[a].binary_search(&b).is_ok()
    }

    /// BFS hop distance from `source` to every node; `None` where
    /// unreachable.
    pub fn hops_from(&self, source: usize) -> Vec<Option<u32>> {
        let mut dist = vec![None; self.adj.len()];
        let mut queue = VecDeque::new();
        dist[source] = Some(0);
        queue.push_back(source);
        while let Some(v) = queue.pop_front() {
            // Nodes are only queued after their distance is set.
            let Some(d) = dist[v] else { continue };
            for &w in &self.adj[v] {
                if dist[w].is_none() {
                    dist[w] = Some(d + 1);
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// Hop distances from every node in `sources` (one BFS per source),
    /// returned as `result[k][v]` = hops from `sources[k]` to `v`.
    pub fn hops_from_all(&self, sources: &[usize]) -> Vec<Vec<Option<u32>>> {
        sources.iter().map(|&s| self.hops_from(s)).collect()
    }

    /// Connected-component label per node (labels are arbitrary but dense
    /// from 0) and the number of components.
    pub fn components(&self) -> (Vec<usize>, usize) {
        let n = self.adj.len();
        let mut label = vec![usize::MAX; n];
        let mut next = 0usize;
        for start in 0..n {
            if label[start] != usize::MAX {
                continue;
            }
            let mut queue = VecDeque::from([start]);
            label[start] = next;
            while let Some(v) = queue.pop_front() {
                for &w in &self.adj[v] {
                    if label[w] == usize::MAX {
                        label[w] = next;
                        queue.push_back(w);
                    }
                }
            }
            next += 1;
        }
        (label, next)
    }

    /// Indices of degree-zero nodes.
    pub fn isolated_nodes(&self) -> Vec<usize> {
        (0..self.adj.len())
            .filter(|&v| self.adj[v].is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Topology {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Topology::from_edges(n, &edges)
    }

    #[test]
    fn construction_dedups_and_sorts() {
        let t = Topology::from_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 2)]);
        assert_eq!(t.neighbors(0), &[1]);
        assert_eq!(t.neighbors(2), &[] as &[usize]);
        assert_eq!(t.edge_count(), 1);
    }

    #[test]
    fn degrees_and_average() {
        let t = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(t.degree(0), 2);
        assert_eq!(t.avg_degree(), 2.0);
        assert_eq!(t.edge_count(), 4);
    }

    #[test]
    fn connectivity_queries() {
        let t = Topology::from_edges(3, &[(0, 2)]);
        assert!(t.connected(0, 2));
        assert!(t.connected(2, 0));
        assert!(!t.connected(0, 1));
    }

    #[test]
    fn bfs_on_path() {
        let t = path_graph(5);
        let d = t.hops_from(0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
        let d2 = t.hops_from(2);
        assert_eq!(d2, vec![Some(2), Some(1), Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn bfs_unreachable_is_none() {
        let t = Topology::from_edges(4, &[(0, 1)]);
        let d = t.hops_from(0);
        assert_eq!(d[1], Some(1));
        assert_eq!(d[2], None);
        assert_eq!(d[3], None);
    }

    #[test]
    fn multi_source_hops() {
        let t = path_graph(4);
        let all = t.hops_from_all(&[0, 3]);
        assert_eq!(all[0][3], Some(3));
        assert_eq!(all[1][0], Some(3));
    }

    #[test]
    fn components_counting() {
        let t = Topology::from_edges(6, &[(0, 1), (1, 2), (4, 5)]);
        let (labels, count) = t.components();
        assert_eq!(count, 3); // {0,1,2}, {3}, {4,5}
        assert_eq!(labels[0], labels[2]);
        assert_ne!(labels[0], labels[3]);
        assert_eq!(labels[4], labels[5]);
        assert_eq!(t.isolated_nodes(), vec![3]);
    }

    #[test]
    fn hop_counts_satisfy_triangle_inequality() {
        // hops(a,c) <= hops(a,b) + hops(b,c) on a random-ish graph.
        let edges = [
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 0),
            (1, 3),
            (2, 5),
            (5, 6),
        ];
        let t = Topology::from_edges(7, &edges);
        let all = t.hops_from_all(&(0..7).collect::<Vec<_>>());
        for a in 0..7 {
            for b in 0..7 {
                for c in 0..7 {
                    if let (Some(ac), Some(ab), Some(bc)) = (all[a][c], all[a][b], all[b][c]) {
                        assert!(ac <= ab + bc);
                    }
                }
            }
        }
    }
}
