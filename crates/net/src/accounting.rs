//! Communication-cost accounting.
//!
//! Distributed localization quality is only half the story — the other half
//! is how much radio traffic the algorithm needs, since radio dominates WSN
//! energy budgets. This module provides:
//!
//! - [`WireMessage`], the on-air payloads a distributed implementation would
//!   send, with a compact hand-rolled big-endian encoding so byte counts
//!   are honest rather than guessed;
//! - [`MessageLedger`], a thread-safe counter of per-node messages and bytes
//!   that inference code charges as it exchanges beliefs. The ledger is
//!   shared across rayon workers, hence the mutex.

use std::sync::Mutex;
use wsnloc_geom::Vec2;

/// Big-endian cursor over an encoded [`WireMessage`]; each getter consumes
/// its bytes or reports exhaustion via `None`.
struct Reader<'a> {
    data: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Reader { data }
    }

    fn remaining(&self) -> usize {
        self.data.len()
    }

    fn take<const N: usize>(&mut self) -> Option<[u8; N]> {
        let (head, tail) = self.data.split_at_checked(N)?;
        self.data = tail;
        head.try_into().ok()
    }

    fn get_u8(&mut self) -> Option<u8> {
        self.take::<1>().map(|b| b[0])
    }

    fn get_u16(&mut self) -> Option<u16> {
        self.take::<2>().map(u16::from_be_bytes)
    }

    fn get_u32(&mut self) -> Option<u32> {
        self.take::<4>().map(u32::from_be_bytes)
    }

    fn get_f64(&mut self) -> Option<f64> {
        self.take::<8>().map(f64::from_be_bytes)
    }

    fn get_vec2(&mut self) -> Option<Vec2> {
        Some(Vec2::new(self.get_f64()?, self.get_f64()?))
    }
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

/// Payloads exchanged by distributed localization algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMessage {
    /// An anchor announcing its position (flooded with a hop counter by
    /// DV-Hop-style algorithms).
    AnchorAnnounce {
        /// Announcing anchor id.
        anchor: u32,
        /// Anchor coordinates.
        position: Vec2,
        /// Hops traveled so far.
        hops: u16,
    },
    /// A per-anchor average hop distance broadcast (DV-Hop phase 2).
    HopSizeAnnounce {
        /// Announcing anchor id.
        anchor: u32,
        /// Meters per hop estimate.
        meters_per_hop: f64,
    },
    /// A particle-based belief summary sent to a neighbor: `count` particles
    /// of 2 coordinates plus a weight each.
    ParticleBelief {
        /// Sender id.
        from: u32,
        /// Number of particles encoded.
        count: u32,
        /// Flattened `(x, y, w)` triples.
        payload: Vec<(Vec2, f64)>,
    },
    /// A compact parametric belief (mean + covariance upper triangle) —
    /// what a bandwidth-limited deployment would send instead of particles.
    GaussianBelief {
        /// Sender id.
        from: u32,
        /// Belief mean.
        mean: Vec2,
        /// Covariance entries (xx, xy, yy).
        cov: [f64; 3],
    },
}

impl WireMessage {
    /// Serializes to the compact wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.encoded_len());
        match self {
            WireMessage::AnchorAnnounce {
                anchor,
                position,
                hops,
            } => {
                buf.push(0);
                put_u32(&mut buf, *anchor);
                put_f64(&mut buf, position.x);
                put_f64(&mut buf, position.y);
                put_u16(&mut buf, *hops);
            }
            WireMessage::HopSizeAnnounce {
                anchor,
                meters_per_hop,
            } => {
                buf.push(1);
                put_u32(&mut buf, *anchor);
                put_f64(&mut buf, *meters_per_hop);
            }
            WireMessage::ParticleBelief {
                from,
                count,
                payload,
            } => {
                buf.push(2);
                put_u32(&mut buf, *from);
                put_u32(&mut buf, *count);
                for (p, w) in payload {
                    put_f64(&mut buf, p.x);
                    put_f64(&mut buf, p.y);
                    put_f64(&mut buf, *w);
                }
            }
            WireMessage::GaussianBelief { from, mean, cov } => {
                buf.push(3);
                put_u32(&mut buf, *from);
                put_f64(&mut buf, mean.x);
                put_f64(&mut buf, mean.y);
                for c in cov {
                    put_f64(&mut buf, *c);
                }
            }
        }
        buf
    }

    /// Size of the encoded form in bytes, without encoding.
    pub fn encoded_len(&self) -> usize {
        match self {
            WireMessage::AnchorAnnounce { .. } => 1 + 4 + 16 + 2,
            WireMessage::HopSizeAnnounce { .. } => 1 + 4 + 8,
            WireMessage::ParticleBelief { payload, .. } => 1 + 4 + 4 + payload.len() * 24,
            WireMessage::GaussianBelief { .. } => 1 + 4 + 16 + 24,
        }
    }

    /// Decodes a message previously produced by [`WireMessage::encode`].
    /// Returns `None` on malformed input.
    pub fn decode(data: &[u8]) -> Option<WireMessage> {
        let mut data = Reader::new(data);
        match data.get_u8()? {
            0 => Some(WireMessage::AnchorAnnounce {
                anchor: data.get_u32()?,
                position: data.get_vec2()?,
                hops: data.get_u16()?,
            }),
            1 => Some(WireMessage::HopSizeAnnounce {
                anchor: data.get_u32()?,
                meters_per_hop: data.get_f64()?,
            }),
            2 => {
                let from = data.get_u32()?;
                let count = data.get_u32()?;
                if data.remaining() < count as usize * 24 {
                    return None;
                }
                let mut payload = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    payload.push((data.get_vec2()?, data.get_f64()?));
                }
                Some(WireMessage::ParticleBelief {
                    from,
                    count,
                    payload,
                })
            }
            3 => Some(WireMessage::GaussianBelief {
                from: data.get_u32()?,
                mean: data.get_vec2()?,
                cov: [data.get_f64()?, data.get_f64()?, data.get_f64()?],
            }),
            _ => None,
        }
    }
}

/// Aggregate communication statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CommStats {
    /// Total messages sent.
    pub messages: u64,
    /// Total bytes sent.
    pub bytes: u64,
}

impl CommStats {
    /// Mean messages per node for a network of `n` nodes.
    pub fn messages_per_node(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.messages as f64 / n as f64
        }
    }
}

/// First-order radio energy model (Heinzelman-style): a fixed electronics
/// cost per bit on both ends plus a transmit-amplifier term that grows with
/// range squared. Lets experiments convert [`CommStats`] into energy —
/// the currency WSN papers ultimately argue in.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EnergyModel {
    /// Electronics energy per bit, nJ (typ. 50).
    pub elec_nj_per_bit: f64,
    /// Amplifier energy per bit per m², pJ (typ. 100).
    pub amp_pj_per_bit_m2: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            elec_nj_per_bit: 50.0,
            amp_pj_per_bit_m2: 100.0,
        }
    }
}

impl EnergyModel {
    /// Energy to transmit `bytes` over `distance` meters, millijoules.
    pub fn tx_mj(&self, bytes: u64, distance: f64) -> f64 {
        let bits = bytes as f64 * 8.0;
        (bits * self.elec_nj_per_bit * 1e-9
            + bits * self.amp_pj_per_bit_m2 * 1e-12 * distance * distance)
            * 1e3
    }

    /// Energy to receive `bytes`, millijoules.
    pub fn rx_mj(&self, bytes: u64) -> f64 {
        bytes as f64 * 8.0 * self.elec_nj_per_bit * 1e-9 * 1e3
    }

    /// Total network energy for an algorithm run, millijoules: every sent
    /// byte is transmitted once at `radio_range` and received by
    /// `avg_neighbors` listeners (broadcast medium).
    pub fn total_mj(&self, comm: &CommStats, radio_range: f64, avg_neighbors: f64) -> f64 {
        self.tx_mj(comm.bytes, radio_range) + self.rx_mj(comm.bytes) * avg_neighbors
    }
}

/// Thread-safe per-node message/byte counters.
#[derive(Debug)]
pub struct MessageLedger {
    inner: Mutex<LedgerInner>,
}

#[derive(Debug)]
struct LedgerInner {
    per_node_messages: Vec<u64>,
    per_node_bytes: Vec<u64>,
}

impl MessageLedger {
    /// Ledger for a network of `n` nodes.
    pub fn new(n: usize) -> Self {
        MessageLedger {
            inner: Mutex::new(LedgerInner {
                per_node_messages: vec![0; n],
                per_node_bytes: vec![0; n],
            }),
        }
    }

    /// Locks the ledger; a poisoned lock (panicking charge) is recovered
    /// since the counters stay internally consistent under every panic.
    fn locked(&self) -> std::sync::MutexGuard<'_, LedgerInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Charges one transmission of `bytes` payload bytes to `sender`.
    pub fn charge(&self, sender: usize, bytes: usize) {
        let mut inner = self.locked();
        inner.per_node_messages[sender] += 1;
        inner.per_node_bytes[sender] += bytes as u64;
    }

    /// Charges a concrete wire message to `sender`.
    pub fn charge_message(&self, sender: usize, msg: &WireMessage) {
        self.charge(sender, msg.encoded_len());
    }

    /// Charges `count` identical transmissions at once (e.g. a broadcast
    /// heard by `count` neighbors counted as one send — call with 1 — or a
    /// per-neighbor unicast model — call with the neighbor count).
    pub fn charge_many(&self, sender: usize, bytes: usize, count: u64) {
        let mut inner = self.locked();
        inner.per_node_messages[sender] += count;
        inner.per_node_bytes[sender] += bytes as u64 * count;
    }

    /// Totals across all nodes.
    pub fn totals(&self) -> CommStats {
        let inner = self.locked();
        CommStats {
            messages: inner.per_node_messages.iter().sum(),
            bytes: inner.per_node_bytes.iter().sum(),
        }
    }

    /// Per-node message counts.
    pub fn per_node_messages(&self) -> Vec<u64> {
        self.locked().per_node_messages.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_anchor_announce() {
        let msg = WireMessage::AnchorAnnounce {
            anchor: 7,
            position: Vec2::new(12.5, -3.25),
            hops: 4,
        };
        let enc = msg.encode();
        assert_eq!(enc.len(), msg.encoded_len());
        assert_eq!(WireMessage::decode(&enc), Some(msg));
    }

    #[test]
    fn roundtrip_hop_size() {
        let msg = WireMessage::HopSizeAnnounce {
            anchor: 3,
            meters_per_hop: 87.5,
        };
        assert_eq!(WireMessage::decode(&msg.encode()), Some(msg));
    }

    #[test]
    fn roundtrip_particle_belief() {
        let msg = WireMessage::ParticleBelief {
            from: 11,
            count: 3,
            payload: vec![
                (Vec2::new(1.0, 2.0), 0.5),
                (Vec2::new(-3.0, 4.0), 0.25),
                (Vec2::new(0.0, 0.0), 0.25),
            ],
        };
        let enc = msg.encode();
        assert_eq!(enc.len(), msg.encoded_len());
        assert_eq!(WireMessage::decode(&enc), Some(msg));
    }

    #[test]
    fn roundtrip_gaussian_belief() {
        let msg = WireMessage::GaussianBelief {
            from: 2,
            mean: Vec2::new(5.0, 6.0),
            cov: [2.0, 0.1, 3.0],
        };
        assert_eq!(WireMessage::decode(&msg.encode()), Some(msg));
    }

    #[test]
    fn decode_rejects_truncated_input() {
        let msg = WireMessage::ParticleBelief {
            from: 1,
            count: 2,
            payload: vec![(Vec2::ZERO, 0.5), (Vec2::ZERO, 0.5)],
        };
        let enc = msg.encode();
        assert_eq!(WireMessage::decode(&enc[..enc.len() - 5]), None);
        assert_eq!(WireMessage::decode(&[]), None);
        assert_eq!(WireMessage::decode(&[9, 0, 0]), None);
    }

    #[test]
    fn particle_belief_bytes_scale_with_count() {
        let small = WireMessage::ParticleBelief {
            from: 0,
            count: 10,
            payload: vec![(Vec2::ZERO, 0.1); 10],
        };
        let big = WireMessage::ParticleBelief {
            from: 0,
            count: 100,
            payload: vec![(Vec2::ZERO, 0.01); 100],
        };
        assert_eq!(big.encoded_len() - small.encoded_len(), 90 * 24);
    }

    #[test]
    fn energy_model_scales_with_bytes_and_distance() {
        let m = EnergyModel::default();
        // Electronics dominate at short range; amp dominates far out.
        assert!(m.tx_mj(100, 10.0) < m.tx_mj(100, 1000.0));
        assert!((m.tx_mj(200, 50.0) / m.tx_mj(100, 50.0) - 2.0).abs() < 1e-9);
        // 1000 bytes at 150 m: 8000 bits · (50 nJ + 100 pJ · 22500).
        let expected = 8000.0 * (50e-9 + 100e-12 * 150.0 * 150.0) * 1e3;
        assert!((m.tx_mj(1000, 150.0) - expected).abs() < 1e-9);
        assert!((m.rx_mj(1000) - 8000.0 * 50e-9 * 1e3).abs() < 1e-12);
    }

    #[test]
    fn total_energy_charges_listeners() {
        let m = EnergyModel::default();
        let comm = CommStats {
            messages: 10,
            bytes: 1000,
        };
        let lonely = m.total_mj(&comm, 150.0, 0.0);
        let crowded = m.total_mj(&comm, 150.0, 14.0);
        assert!(crowded > lonely);
        assert!((crowded - lonely - 14.0 * m.rx_mj(1000)).abs() < 1e-9);
    }

    #[test]
    fn ledger_accumulates() {
        let ledger = MessageLedger::new(3);
        ledger.charge(0, 100);
        ledger.charge(0, 50);
        ledger.charge(2, 10);
        let totals = ledger.totals();
        assert_eq!(totals.messages, 3);
        assert_eq!(totals.bytes, 160);
        assert_eq!(ledger.per_node_messages(), vec![2, 0, 1]);
        assert!((totals.messages_per_node(3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ledger_charge_many() {
        let ledger = MessageLedger::new(2);
        ledger.charge_many(1, 24, 5);
        let totals = ledger.totals();
        assert_eq!(totals.messages, 5);
        assert_eq!(totals.bytes, 120);
    }

    #[test]
    fn ledger_is_shareable_across_threads() {
        use std::sync::Arc;
        let ledger = Arc::new(MessageLedger::new(8));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let l = Arc::clone(&ledger);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        l.charge(i, 24);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ledger.totals().messages, 800);
        assert_eq!(ledger.totals().bytes, 800 * 24);
    }
}
