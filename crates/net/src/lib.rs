//! # wsnloc-net
//!
//! Wireless-sensor-network simulation substrate for the `wsnloc` workspace.
//!
//! The ICPP 2007 paper this workspace reproduces evaluated on a simulated
//! WSN; this crate is that simulator, rebuilt from scratch. It covers the
//! full generative pipeline:
//!
//! 1. **Deployment** ([`deploy`]) — where nodes physically end up: uniform in
//!    a [`wsnloc_geom::Shape`], jittered grids, or Gaussian scatter around
//!    planned *drop points*. Drop-point deployments are what make
//!    "pre-knowledge" meaningful: the planned coordinates are known before
//!    measurement, the realized positions are not.
//! 2. **Radio** ([`radio`]) — which node pairs can communicate: unit disk,
//!    quasi-UDG with a transition band, or log-normal shadowing.
//! 3. **Measurement** ([`measure`]) — what connected pairs observe about
//!    their distance: additive/multiplicative Gaussian ranging noise or
//!    RSSI-derived log-normal estimates, plus the matching likelihood
//!    functions used by inference.
//! 4. **Topology** ([`topology`]) — adjacency, hop counts (BFS), components,
//!    degree statistics.
//! 5. **Network assembly** ([`network`]) — [`network::Network`] is the
//!    observable world handed to localization algorithms (anchors,
//!    measurements, adjacency); [`network::GroundTruth`] keeps the hidden
//!    true positions for evaluation only, so algorithms cannot cheat by
//!    construction.
//! 6. **Accounting** ([`accounting`]) — message and byte counters with a
//!    wire-format encoder, so experiments can report communication cost.
//! 7. **RSSI calibration** ([`rssi`]) — log-distance path-loss channel,
//!    RSSI→distance inversion, and anchor-pair channel calibration (channel
//!    parameters as learnable pre-knowledge).
//! 8. **Scenario** ([`scenario`]) — a serializable description of an entire
//!    simulation configuration (field, N, anchors, radio, noise, seed).
//! 9. **Faults** ([`faults`]) — seeded communication-fault schedules
//!    (message loss, node death, stale delivery, asymmetric links) consumed
//!    by the BP transport seam and, in persistent-equivalent form, by
//!    non-iterative baselines.

#![warn(missing_docs)]

pub mod accounting;
pub mod anchors;
pub mod deploy;
pub mod faults;
pub mod measure;
pub mod mobility;
pub mod network;
pub mod plot;
pub mod radio;
pub mod rssi;
pub mod scenario;
pub mod topology;

pub use anchors::AnchorStrategy;
pub use deploy::Deployment;
pub use faults::{DeathModel, DropPolicy, FaultPlan, LossModel, NodeDeath};
pub use measure::{Measurement, RangingModel};
pub use network::{GroundTruth, Network, NodeId, NodeKind};
pub use radio::RadioModel;
pub use scenario::Scenario;
