//! Network assembly: the observable world handed to localization algorithms.
//!
//! [`NetworkBuilder`] runs the whole generative pipeline — deployment, anchor
//! selection, link sampling, range measurement — and splits the result into:
//!
//! - [`Network`]: everything an algorithm may legitimately see (anchor
//!   positions, the connectivity graph, noisy range measurements, planned
//!   drop positions = pre-knowledge, the radio/ranging models).
//! - [`GroundTruth`]: realized true positions, used only for evaluation.
//!
//! Keeping the two in separate types makes cheating a type error rather than
//! a reviewer's job.

use crate::anchors::AnchorStrategy;
use crate::deploy::Deployment;
use crate::measure::{Measurement, RangingModel};
use crate::radio::RadioModel;
use crate::topology::Topology;
use wsnloc_geom::grid::SpatialGrid;
use wsnloc_geom::rng::Xoshiro256pp;
use wsnloc_geom::{Aabb, Shape, Vec2};

/// Node index within a network (`0..n`).
pub type NodeId = usize;

/// Whether a node knows its own position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum NodeKind {
    /// Position known a priori (GPS/manual placement).
    Anchor,
    /// Position must be estimated.
    Unknown,
}

/// The observable simulation state: what localization algorithms receive.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Network {
    field: Shape,
    radio: RadioModel,
    ranging: RangingModel,
    kinds: Vec<NodeKind>,
    /// Known position per anchor (None for unknowns).
    anchor_positions: Vec<Option<Vec2>>,
    /// Pre-knowledge: planned position per node, when the deployment had one.
    planned: Vec<Option<Vec2>>,
    topology: Topology,
    measurements: Vec<Measurement>,
    /// Indices into `measurements` incident to each node.
    meas_by_node: Vec<Vec<usize>>,
}

/// The hidden true positions, for evaluation only.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GroundTruth {
    positions: Vec<Vec2>,
}

impl GroundTruth {
    /// Builds from explicit positions (exposed for hand-crafted test
    /// networks).
    pub fn from_positions(positions: Vec<Vec2>) -> Self {
        GroundTruth { positions }
    }

    /// True position of a node.
    pub fn position(&self, id: NodeId) -> Vec2 {
        self.positions[id]
    }

    /// All true positions, indexed by node id.
    pub fn positions(&self) -> &[Vec2] {
        &self.positions
    }
}

impl Network {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// `true` iff the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The deployment field shape.
    pub fn field(&self) -> &Shape {
        &self.field
    }

    /// Bounding box of the field — the default support of uninformative
    /// priors.
    pub fn field_bounds(&self) -> Aabb {
        self.field.bounding_box()
    }

    /// The radio model links were sampled from.
    pub fn radio(&self) -> RadioModel {
        self.radio
    }

    /// The ranging noise model measurements were drawn from.
    pub fn ranging(&self) -> RangingModel {
        self.ranging
    }

    /// Kind of a node.
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.kinds[id]
    }

    /// `true` iff `id` is an anchor.
    pub fn is_anchor(&self, id: NodeId) -> bool {
        self.kinds[id] == NodeKind::Anchor
    }

    /// Known position of an anchor (`None` for unknowns).
    pub fn anchor_position(&self, id: NodeId) -> Option<Vec2> {
        self.anchor_positions[id]
    }

    /// Iterator over `(id, position)` for all anchors.
    pub fn anchors(&self) -> impl Iterator<Item = (NodeId, Vec2)> + '_ {
        self.anchor_positions
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|pos| (i, pos)))
    }

    /// Ids of all unknown nodes.
    pub fn unknowns(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.kinds
            .iter()
            .enumerate()
            .filter_map(|(i, k)| (*k == NodeKind::Unknown).then_some(i))
    }

    /// Number of anchors.
    pub fn anchor_count(&self) -> usize {
        self.anchors().count()
    }

    /// Pre-knowledge planned position for a node, if the deployment defined
    /// one.
    pub fn planned_position(&self, id: NodeId) -> Option<Vec2> {
        self.planned[id]
    }

    /// Replaces the pre-knowledge plan wholesale (one entry per node).
    /// Used by generators that learn the plan outside the deployment
    /// model, e.g. a mobile world whose plan is its initial placement.
    #[must_use]
    pub fn with_planned(mut self, planned: Vec<Option<Vec2>>) -> Self {
        assert_eq!(planned.len(), self.planned.len(), "one plan entry per node");
        self.planned = planned;
        self
    }

    /// The connectivity graph.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Neighbors of a node.
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        self.topology.neighbors(id)
    }

    /// All range measurements (one per link).
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    /// Indices into [`Network::measurements`] incident to `id`.
    pub fn measurements_of(&self, id: NodeId) -> impl Iterator<Item = &Measurement> + '_ {
        self.meas_by_node[id].iter().map(|&k| &self.measurements[k])
    }

    /// The measured distance between two specific nodes, if they share a
    /// link.
    pub fn measured_distance(&self, a: NodeId, b: NodeId) -> Option<f64> {
        self.meas_by_node[a]
            .iter()
            .map(|&k| &self.measurements[k])
            .find(|m| (m.a == a && m.b == b) || (m.a == b && m.b == a))
            .map(|m| m.distance)
    }

    /// Mean node degree.
    pub fn avg_degree(&self) -> f64 {
        self.topology.avg_degree()
    }

    /// Constructs a network directly from parts — the escape hatch for unit
    /// tests and hand-built topologies. `measurements` must reference valid
    /// node ids; links are derived from them.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        field: Shape,
        radio: RadioModel,
        ranging: RangingModel,
        kinds: Vec<NodeKind>,
        anchor_positions: Vec<Option<Vec2>>,
        planned: Vec<Option<Vec2>>,
        measurements: Vec<Measurement>,
    ) -> Self {
        let n = kinds.len();
        assert_eq!(anchor_positions.len(), n);
        assert_eq!(planned.len(), n);
        for (i, k) in kinds.iter().enumerate() {
            match k {
                NodeKind::Anchor => assert!(
                    anchor_positions[i].is_some(),
                    "anchor {i} missing its position"
                ),
                NodeKind::Unknown => assert!(
                    anchor_positions[i].is_none(),
                    "unknown {i} must not carry a position"
                ),
            }
        }
        let edges: Vec<(usize, usize)> = measurements.iter().map(|m| (m.a, m.b)).collect();
        let topology = Topology::from_edges(n, &edges);
        let mut meas_by_node = vec![Vec::new(); n];
        for (k, m) in measurements.iter().enumerate() {
            meas_by_node[m.a].push(k);
            meas_by_node[m.b].push(k);
        }
        Network {
            field,
            radio,
            ranging,
            kinds,
            anchor_positions,
            planned,
            topology,
            measurements,
            meas_by_node,
        }
    }
}

/// Configures and generates a network + ground truth pair.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NetworkBuilder {
    /// Node placement model.
    pub deployment: Deployment,
    /// Total node count (anchors included).
    pub node_count: usize,
    /// Anchor selection strategy.
    pub anchors: AnchorStrategy,
    /// Link model.
    pub radio: RadioModel,
    /// Range-noise model.
    pub ranging: RangingModel,
}

impl NetworkBuilder {
    /// Generates the network with all randomness drawn from `seed`.
    ///
    /// Sub-streams are split per phase (deployment / anchors / links /
    /// ranging) so that, e.g., changing the anchor strategy does not perturb
    /// node placement — sweeps stay paired across configurations.
    pub fn build(&self, seed: u64) -> (Network, GroundTruth) {
        let root = Xoshiro256pp::seed_from(seed);
        let mut deploy_rng = root.split(1);
        let mut anchor_rng = root.split(2);
        let mut link_rng = root.split(3);
        let mut range_rng = root.split(4);

        let placement = self.deployment.realize(self.node_count, &mut deploy_rng);
        let positions = placement.positions;
        let field = self.deployment.field_shape();
        let bounds = field.bounding_box();

        let anchor_ids = self.anchors.select(&positions, bounds, &mut anchor_rng);
        let mut kinds = vec![NodeKind::Unknown; positions.len()];
        let mut anchor_positions = vec![None; positions.len()];
        for &id in &anchor_ids {
            kinds[id] = NodeKind::Anchor;
            anchor_positions[id] = Some(positions[id]);
        }

        // Candidate links from the spatial grid, then per-link sampling.
        let max_range = self.radio.max_range();
        let grid = SpatialGrid::build(bounds, max_range.max(1e-9), &positions);
        let mut measurements = Vec::new();
        for a in 0..positions.len() {
            for b in grid.within(positions[a], max_range) {
                if b <= a {
                    continue;
                }
                let d = positions[a].dist(positions[b]);
                if self.radio.sample_link(d, &mut link_rng) {
                    let observed = self.ranging.observe(d, &mut range_rng);
                    measurements.push(Measurement {
                        a,
                        b,
                        distance: observed,
                    });
                }
            }
        }

        let planned = match placement.planned {
            Some(p) => p.into_iter().map(Some).collect(),
            None => vec![None; positions.len()],
        };

        let network = Network::from_parts(
            field,
            self.radio,
            self.ranging,
            kinds,
            anchor_positions,
            planned,
            measurements,
        );
        (network, GroundTruth { positions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn standard_builder() -> NetworkBuilder {
        NetworkBuilder {
            deployment: Deployment::uniform_square(1000.0),
            node_count: 225,
            anchors: AnchorStrategy::Random { count: 22 },
            radio: RadioModel::UnitDisk { range: 150.0 },
            ranging: RangingModel::Multiplicative { factor: 0.1 },
        }
    }

    #[test]
    fn build_produces_consistent_network() {
        let (net, truth) = standard_builder().build(42);
        assert_eq!(net.len(), 225);
        assert_eq!(truth.positions().len(), 225);
        assert_eq!(net.anchor_count(), 22);
        assert_eq!(net.unknowns().count(), 203);
        // Anchors carry their true positions.
        for (id, pos) in net.anchors() {
            assert_eq!(pos, truth.position(id));
            assert!(net.is_anchor(id));
        }
    }

    #[test]
    fn links_respect_unit_disk_range() {
        let (net, truth) = standard_builder().build(7);
        for m in net.measurements() {
            let d = truth.position(m.a).dist(truth.position(m.b));
            assert!(d <= 150.0 + 1e-9, "link at distance {d}");
            assert!(m.distance > 0.0);
        }
    }

    #[test]
    fn all_in_range_pairs_are_linked_under_unit_disk() {
        let (net, truth) = standard_builder().build(13);
        for a in 0..net.len() {
            for b in (a + 1)..net.len() {
                let d = truth.position(a).dist(truth.position(b));
                if d <= 150.0 {
                    assert!(
                        net.topology().connected(a, b),
                        "in-range pair ({a},{b}) at {d} not linked"
                    );
                }
            }
        }
    }

    #[test]
    fn expected_average_degree_matches_geometry() {
        // E[degree] ≈ ρ·πR² for uniform density ρ (minus edge effects).
        let (net, _) = standard_builder().build(3);
        let rho = 225.0 / (1000.0 * 1000.0);
        let expected = rho * std::f64::consts::PI * 150.0 * 150.0;
        let got = net.avg_degree();
        assert!(
            got > expected * 0.6 && got < expected * 1.1,
            "avg degree {got} vs expected ~{expected}"
        );
    }

    #[test]
    fn measured_distance_symmetric_lookup() {
        let (net, _) = standard_builder().build(21);
        let m = net.measurements()[0];
        assert_eq!(net.measured_distance(m.a, m.b), Some(m.distance));
        assert_eq!(net.measured_distance(m.b, m.a), Some(m.distance));
    }

    #[test]
    fn builds_are_deterministic() {
        let b = standard_builder();
        let (n1, t1) = b.build(5);
        let (n2, t2) = b.build(5);
        assert_eq!(t1, t2);
        assert_eq!(n1.measurements(), n2.measurements());
        let (_, t3) = b.build(6);
        assert_ne!(t1, t3);
    }

    #[test]
    fn anchor_strategy_change_does_not_move_nodes() {
        let mut b = standard_builder();
        let (_, t1) = b.build(11);
        b.anchors = AnchorStrategy::Grid { count: 22 };
        let (_, t2) = b.build(11);
        assert_eq!(t1, t2, "placement must be independent of anchor strategy");
    }

    #[test]
    fn planned_positions_flow_through() {
        let b = NetworkBuilder {
            deployment: Deployment::planned_square_drop(1000.0, 5, 80.0),
            node_count: 100,
            anchors: AnchorStrategy::Random { count: 10 },
            radio: RadioModel::UnitDisk { range: 200.0 },
            ranging: RangingModel::Multiplicative { factor: 0.05 },
        };
        let (net, truth) = b.build(2);
        let mut total_err = 0.0;
        for id in 0..net.len() {
            let plan = net.planned_position(id).expect("drop deployment has plans");
            total_err += plan.dist(truth.position(id));
        }
        // Scatter σ = 80 → mean offset ≈ 80·sqrt(π/2)/… ~ 100; just check
        // plans are informative but not exact.
        let mean_err = total_err / net.len() as f64;
        assert!(
            mean_err > 10.0 && mean_err < 250.0,
            "mean plan error {mean_err}"
        );
    }

    #[test]
    fn uniform_deployment_has_no_plans() {
        let (net, _) = standard_builder().build(1);
        assert!(net.planned_position(0).is_none());
    }

    #[test]
    fn from_parts_validates_anchor_invariants() {
        let result = std::panic::catch_unwind(|| {
            Network::from_parts(
                Shape::Rect(Aabb::from_size(1.0, 1.0)),
                RadioModel::UnitDisk { range: 1.0 },
                RangingModel::AdditiveGaussian { sigma: 0.1 },
                vec![NodeKind::Anchor],
                vec![None], // anchor without a position: must panic
                vec![None],
                vec![],
            )
        });
        assert!(result.is_err());
    }

    #[test]
    fn quasi_udg_produces_fewer_links_than_outer_disk() {
        let mut b = standard_builder();
        b.radio = RadioModel::QuasiUdg {
            inner: 100.0,
            outer: 150.0,
        };
        let (quasi, _) = b.build(9);
        b.radio = RadioModel::UnitDisk { range: 150.0 };
        let (disk, _) = b.build(9);
        assert!(quasi.topology().edge_count() < disk.topology().edge_count());
        b.radio = RadioModel::UnitDisk { range: 100.0 };
        let (inner_disk, _) = b.build(9);
        assert!(quasi.topology().edge_count() > inner_disk.topology().edge_count());
    }
}
