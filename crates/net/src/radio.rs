//! Radio connectivity models.
//!
//! A [`RadioModel`] decides which node pairs share a link. Cooperative
//! localization results are sensitive to this choice: unit-disk graphs are
//! the analytical workhorse, quasi-UDG adds a probabilistic transition band,
//! and log-normal shadowing reproduces the irregular, asymmetric-looking
//! neighborhoods of real deployments.
//!
//! All models expose `connect_prob(distance)` — the link probability at a
//! given true distance — which doubles as the *connectivity likelihood* used
//! by Bayesian inference (the probability of observing "connected" given a
//! hypothesized pair of positions).

use wsnloc_geom::rng::Xoshiro256pp;

/// Link model between two nodes at a known true distance.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RadioModel {
    /// Deterministic disk: connected iff `distance <= range`.
    UnitDisk {
        /// Communication range (meters).
        range: f64,
    },
    /// Quasi unit disk: always connected below `inner`, never beyond
    /// `outer`, and linearly decreasing probability in between.
    QuasiUdg {
        /// Distance below which links always exist.
        inner: f64,
        /// Distance beyond which links never exist.
        outer: f64,
    },
    /// Log-normal shadowing: received power fluctuates by a zero-mean
    /// Gaussian in dB, so the connection probability at distance `d` is
    /// `Q( 10·η·log10(d/range) / σ_dB )` — 50% at the nominal range,
    /// smoothly decaying with distance.
    LogNormal {
        /// Nominal range where connectivity probability is 50%.
        range: f64,
        /// Path-loss exponent η (≈ 2 free space, 3–4 indoor).
        path_loss_exp: f64,
        /// Shadowing standard deviation in dB.
        sigma_db: f64,
    },
}

impl RadioModel {
    /// The nominal communication range — the distance scale experiments
    /// normalize errors by.
    pub fn nominal_range(&self) -> f64 {
        match self {
            RadioModel::UnitDisk { range } => *range,
            RadioModel::QuasiUdg { inner, outer } => (inner + outer) / 2.0,
            RadioModel::LogNormal { range, .. } => *range,
        }
    }

    /// A hard upper bound on link distance: beyond this, `connect_prob` is
    /// negligible. Used to size spatial-grid queries and as the support of
    /// connectivity-constraint factors.
    pub fn max_range(&self) -> f64 {
        match self {
            RadioModel::UnitDisk { range } => *range,
            RadioModel::QuasiUdg { outer, .. } => *outer,
            // 4σ of shadowing translated into distance.
            RadioModel::LogNormal {
                range,
                path_loss_exp,
                sigma_db,
            } => range * 10f64.powf(4.0 * sigma_db / (10.0 * path_loss_exp)),
        }
    }

    /// Probability that two nodes at true distance `d` share a link.
    pub fn connect_prob(&self, d: f64) -> f64 {
        debug_assert!(d >= 0.0, "distance must be non-negative");
        match self {
            RadioModel::UnitDisk { range } => {
                if d <= *range {
                    1.0
                } else {
                    0.0
                }
            }
            RadioModel::QuasiUdg { inner, outer } => {
                if d <= *inner {
                    1.0
                } else if d >= *outer {
                    0.0
                } else {
                    (outer - d) / (outer - inner)
                }
            }
            RadioModel::LogNormal {
                range,
                path_loss_exp,
                sigma_db,
            } => {
                if d <= 0.0 {
                    return 1.0;
                }
                // Excess path loss relative to the nominal range, in dB.
                let excess_db = 10.0 * path_loss_exp * (d / range).log10();
                q_function(excess_db / sigma_db)
            }
        }
    }

    /// Samples whether a link exists at true distance `d`.
    pub fn sample_link(&self, d: f64, rng: &mut Xoshiro256pp) -> bool {
        match self {
            // Fast path: no RNG draw for the deterministic model.
            RadioModel::UnitDisk { range } => d <= *range,
            _ => rng.bernoulli(self.connect_prob(d)),
        }
    }
}

/// Gaussian tail probability `Q(x) = P(Z > x)` via the complementary error
/// function (Abramowitz–Stegun 7.1.26 polynomial, |error| < 1.5e-7).
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Complementary error function.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let tau = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        tau
    } else {
        2.0 - tau
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_disk_is_a_step() {
        let r = RadioModel::UnitDisk { range: 10.0 };
        assert_eq!(r.connect_prob(9.999), 1.0);
        assert_eq!(r.connect_prob(10.0), 1.0);
        assert_eq!(r.connect_prob(10.001), 0.0);
        assert_eq!(r.nominal_range(), 10.0);
        assert_eq!(r.max_range(), 10.0);
    }

    #[test]
    fn quasi_udg_transitions_linearly() {
        let r = RadioModel::QuasiUdg {
            inner: 8.0,
            outer: 12.0,
        };
        assert_eq!(r.connect_prob(7.0), 1.0);
        assert_eq!(r.connect_prob(13.0), 0.0);
        assert!((r.connect_prob(10.0) - 0.5).abs() < 1e-12);
        assert!((r.connect_prob(9.0) - 0.75).abs() < 1e-12);
        assert_eq!(r.nominal_range(), 10.0);
    }

    #[test]
    fn lognormal_half_probability_at_nominal_range() {
        let r = RadioModel::LogNormal {
            range: 100.0,
            path_loss_exp: 3.0,
            sigma_db: 6.0,
        };
        assert!((r.connect_prob(100.0) - 0.5).abs() < 1e-6);
        assert!(r.connect_prob(50.0) > 0.9);
        assert!(r.connect_prob(200.0) < 0.1);
        assert!(r.max_range() > 100.0);
    }

    #[test]
    fn connect_prob_is_monotone_decreasing() {
        let models = [
            RadioModel::UnitDisk { range: 50.0 },
            RadioModel::QuasiUdg {
                inner: 40.0,
                outer: 60.0,
            },
            RadioModel::LogNormal {
                range: 50.0,
                path_loss_exp: 3.0,
                sigma_db: 4.0,
            },
        ];
        for m in models {
            let mut prev = m.connect_prob(0.0);
            for i in 1..200 {
                let p = m.connect_prob(i as f64);
                assert!(p <= prev + 1e-12, "{m:?} not monotone at d={i}");
                assert!((0.0..=1.0).contains(&p));
                prev = p;
            }
        }
    }

    #[test]
    fn sample_link_frequency_matches_probability() {
        let r = RadioModel::QuasiUdg {
            inner: 8.0,
            outer: 12.0,
        };
        let mut rng = Xoshiro256pp::seed_from(9);
        let n = 50_000;
        let hits = (0..n).filter(|_| r.sample_link(10.0, &mut rng)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "link fraction {frac}");
    }

    #[test]
    fn q_function_reference_values() {
        assert!((q_function(0.0) - 0.5).abs() < 1e-7);
        assert!((q_function(1.0) - 0.158_655).abs() < 1e-5);
        assert!((q_function(-1.0) - 0.841_345).abs() < 1e-5);
        assert!(q_function(5.0) < 1e-6);
        assert!(q_function(-5.0) > 1.0 - 1e-6);
    }

    #[test]
    fn erfc_symmetry() {
        for x in [-2.0, -0.7, 0.0, 0.3, 1.8] {
            assert!((erfc(x) + erfc(-x) - 2.0).abs() < 1e-6);
        }
    }
}
