//! Property-based tests for the WSN simulation substrate, on the in-tree
//! `wsnloc_geom::check` harness (the workspace builds offline, without
//! `proptest`).

use wsnloc_geom::check;
use wsnloc_geom::rng::Xoshiro256pp;
use wsnloc_geom::Vec2;
use wsnloc_net::accounting::WireMessage;
use wsnloc_net::network::NetworkBuilder;
use wsnloc_net::topology::Topology;
use wsnloc_net::{AnchorStrategy, Deployment, RadioModel, RangingModel};

const CASES: u64 = 32;

#[test]
fn network_invariants_hold() {
    check::cases(CASES, |_, rng| {
        let seed = rng.next_u64();
        let n = 20 + rng.index(100);
        let anchors = 2 + rng.index(8);
        let range = rng.range(100.0, 400.0);
        let b = NetworkBuilder {
            deployment: Deployment::uniform_square(1000.0),
            node_count: n,
            anchors: AnchorStrategy::Random { count: anchors },
            radio: RadioModel::UnitDisk { range },
            ranging: RangingModel::Multiplicative { factor: 0.1 },
        };
        let (net, truth) = b.build(seed);
        assert_eq!(net.len(), n);
        assert_eq!(net.anchor_count(), anchors.min(n));
        // Measurements reference valid ids, are positive, and correspond to
        // in-range pairs.
        for m in net.measurements() {
            assert!(m.a < n && m.b < n && m.a != m.b);
            assert!(m.distance > 0.0);
            assert!(truth.position(m.a).dist(truth.position(m.b)) <= range + 1e-9);
            assert!(net.topology().connected(m.a, m.b));
        }
        // Anchor positions match ground truth.
        for (id, pos) in net.anchors() {
            assert_eq!(pos, truth.position(id));
        }
    });
}

#[test]
fn hop_counts_never_undercut_euclid_over_range() {
    check::cases(CASES, |_, rng| {
        // In a unit-disk graph, h hops cannot cover more than h·range meters.
        let b = NetworkBuilder {
            deployment: Deployment::uniform_square(500.0),
            node_count: 80,
            anchors: AnchorStrategy::Random { count: 8 },
            radio: RadioModel::UnitDisk { range: 120.0 },
            ranging: RangingModel::AdditiveGaussian { sigma: 1.0 },
        };
        let (net, truth) = b.build(rng.next_u64());
        let hops = net.topology().hops_from(0);
        for (v, h) in hops.iter().enumerate() {
            if let Some(h) = h {
                let d = truth.position(0).dist(truth.position(v));
                assert!(
                    d <= (*h as f64) * 120.0 + 1e-9,
                    "node {v}: {h} hops but distance {d}"
                );
            }
        }
    });
}

#[test]
fn wire_messages_roundtrip() {
    check::cases(CASES, |_, rng| {
        let msg = WireMessage::AnchorAnnounce {
            anchor: rng.next_u64() as u32,
            position: Vec2::new(rng.range(-1e5, 1e5), rng.range(-1e5, 1e5)),
            hops: (rng.next_u64() & 0xFFFF) as u16,
        };
        assert_eq!(WireMessage::decode(&msg.encode()), Some(msg));
    });
}

#[test]
fn particle_messages_roundtrip() {
    check::cases(CASES, |_, rng| {
        let n = rng.index(40);
        let payload: Vec<(Vec2, f64)> = (0..n)
            .map(|_| {
                (
                    Vec2::new(rng.range(-1e4, 1e4), rng.range(-1e4, 1e4)),
                    rng.f64(),
                )
            })
            .collect();
        let msg = WireMessage::ParticleBelief {
            from: rng.next_u64() as u32,
            count: payload.len() as u32,
            payload,
        };
        let enc = msg.encode();
        assert_eq!(enc.len(), msg.encoded_len());
        assert_eq!(WireMessage::decode(&enc), Some(msg));
    });
}

#[test]
fn observed_ranges_track_truth() {
    check::cases(CASES, |_, rng| {
        let d = rng.range(1.0, 500.0);
        let factor = rng.range(0.01, 0.3);
        let m = RangingModel::Multiplicative { factor };
        let mut sampler = Xoshiro256pp::seed_from(rng.next_u64());
        let mean: f64 = (0..2000).map(|_| m.observe(d, &mut sampler)).sum::<f64>() / 2000.0;
        // Mean within 5 relative sd of truth.
        assert!((mean - d).abs() < 5.0 * factor * d / (2000f64).sqrt() * 10.0 + 1e-6);
    });
}

#[test]
fn connect_prob_bounded() {
    check::cases(CASES, |_, rng| {
        let d = rng.range(0.0, 1e4);
        let range = rng.range(1.0, 500.0);
        let sigma = rng.range(0.5, 10.0);
        let m = RadioModel::LogNormal {
            range,
            path_loss_exp: 3.0,
            sigma_db: sigma,
        };
        let p = m.connect_prob(d);
        assert!((0.0..=1.0).contains(&p));
    });
}

#[test]
fn components_partition_nodes() {
    check::cases(CASES, |_, rng| {
        let n = 2 + rng.index(58);
        let edge_count = rng.index(120);
        let edges: Vec<(usize, usize)> = (0..edge_count)
            .map(|_| (rng.index(60), rng.index(60)))
            .filter(|&(a, b)| a < n && b < n)
            .collect();
        let t = Topology::from_edges(n, &edges);
        let (labels, count) = t.components();
        assert_eq!(labels.len(), n);
        // Labels dense in 0..count.
        for &l in &labels {
            assert!(l < count);
        }
        // Connected nodes share labels.
        for &(a, b) in &edges {
            if a != b {
                assert_eq!(labels[a], labels[b]);
            }
        }
    });
}
