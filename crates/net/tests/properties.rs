//! Property-based tests for the WSN simulation substrate.

use proptest::prelude::*;
use wsnloc_net::accounting::WireMessage;
use wsnloc_net::topology::Topology;
use wsnloc_net::network::NetworkBuilder;
use wsnloc_net::{AnchorStrategy, Deployment, RadioModel, RangingModel};
use wsnloc_geom::rng::Xoshiro256pp;
use wsnloc_geom::Vec2;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn network_invariants_hold(seed in any::<u64>(), n in 20usize..120, anchors in 2usize..10, range in 100.0..400.0f64) {
        let b = NetworkBuilder {
            deployment: Deployment::uniform_square(1000.0),
            node_count: n,
            anchors: AnchorStrategy::Random { count: anchors },
            radio: RadioModel::UnitDisk { range },
            ranging: RangingModel::Multiplicative { factor: 0.1 },
        };
        let (net, truth) = b.build(seed);
        prop_assert_eq!(net.len(), n);
        prop_assert_eq!(net.anchor_count(), anchors.min(n));
        // Measurements reference valid ids, are positive, and correspond to
        // in-range pairs.
        for m in net.measurements() {
            prop_assert!(m.a < n && m.b < n && m.a != m.b);
            prop_assert!(m.distance > 0.0);
            prop_assert!(truth.position(m.a).dist(truth.position(m.b)) <= range + 1e-9);
            prop_assert!(net.topology().connected(m.a, m.b));
        }
        // Anchor positions match ground truth.
        for (id, pos) in net.anchors() {
            prop_assert_eq!(pos, truth.position(id));
        }
    }

    #[test]
    fn hop_counts_never_undercut_euclid_over_range(seed in any::<u64>()) {
        // In a unit-disk graph, h hops cannot cover more than h·range meters.
        let b = NetworkBuilder {
            deployment: Deployment::uniform_square(500.0),
            node_count: 80,
            anchors: AnchorStrategy::Random { count: 8 },
            radio: RadioModel::UnitDisk { range: 120.0 },
            ranging: RangingModel::AdditiveGaussian { sigma: 1.0 },
        };
        let (net, truth) = b.build(seed);
        let hops = net.topology().hops_from(0);
        for (v, h) in hops.iter().enumerate() {
            if let Some(h) = h {
                let d = truth.position(0).dist(truth.position(v));
                prop_assert!(d <= (*h as f64) * 120.0 + 1e-9,
                    "node {v}: {h} hops but distance {d}");
            }
        }
    }

    #[test]
    fn wire_messages_roundtrip(anchor in any::<u32>(), x in -1e5..1e5f64, y in -1e5..1e5f64, hops in any::<u16>()) {
        let msg = WireMessage::AnchorAnnounce { anchor, position: Vec2::new(x, y), hops };
        prop_assert_eq!(WireMessage::decode(msg.encode()), Some(msg));
    }

    #[test]
    fn particle_messages_roundtrip(from in any::<u32>(), pts in prop::collection::vec((-1e4..1e4f64, -1e4..1e4f64, 0.0..1.0f64), 0..40)) {
        let payload: Vec<(Vec2, f64)> = pts.iter().map(|&(x, y, w)| (Vec2::new(x, y), w)).collect();
        let msg = WireMessage::ParticleBelief { from, count: payload.len() as u32, payload };
        let enc = msg.encode();
        prop_assert_eq!(enc.len(), msg.encoded_len());
        prop_assert_eq!(WireMessage::decode(enc), Some(msg));
    }

    #[test]
    fn observed_ranges_track_truth(seed in any::<u64>(), d in 1.0..500.0f64, factor in 0.01..0.3f64) {
        let m = RangingModel::Multiplicative { factor };
        let mut rng = Xoshiro256pp::seed_from(seed);
        let mean: f64 = (0..2000).map(|_| m.observe(d, &mut rng)).sum::<f64>() / 2000.0;
        // Mean within 5 relative sd of truth.
        prop_assert!((mean - d).abs() < 5.0 * factor * d / (2000f64).sqrt() * 10.0 + 1e-6);
    }

    #[test]
    fn connect_prob_bounded(d in 0.0..1e4f64, range in 1.0..500.0f64, sigma in 0.5..10.0f64) {
        let m = RadioModel::LogNormal { range, path_loss_exp: 3.0, sigma_db: sigma };
        let p = m.connect_prob(d);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn components_partition_nodes(n in 2usize..60, edges in prop::collection::vec((0usize..60, 0usize..60), 0..120)) {
        let edges: Vec<(usize, usize)> = edges.into_iter()
            .filter(|&(a, b)| a < n && b < n)
            .collect();
        let t = Topology::from_edges(n, &edges);
        let (labels, count) = t.components();
        prop_assert_eq!(labels.len(), n);
        // Labels dense in 0..count.
        for &l in &labels {
            prop_assert!(l < count);
        }
        // Connected nodes share labels.
        for &(a, b) in &edges {
            if a != b {
                prop_assert_eq!(labels[a], labels[b]);
            }
        }
    }
}

