//! The BNL-PK localizer: loopy BP on the position Bayesian network.
//!
//! [`BnlLocalizer`] is the paper's algorithm. It composes:
//! - a [`PriorModel`] (the pre-knowledge),
//! - a belief [`Backend`] — particle (nonparametric), grid (discrete
//!   Bayesian network), or Gaussian (parametric ablation) — carrying
//!   its backend-specific options ([`ParticleOptions`]/[`GridOptions`]),
//! - [`BpOptions`] controlling schedule/iterations/damping,
//! - optional negative connectivity constraints,
//! - an optional [`ShardPlan`] switching inference to sharded BP
//!   execution for very large deployments.
//!
//! Construction goes through [`BnlLocalizer::builder`], the *only*
//! route: every knob is validated either at its own constructor
//! ([`Backend::particle`], [`GridOptions::refine`],
//! [`ShardPlan::target_nodes`], …) or by
//! [`BnlLocalizerBuilder::try_build`], so a `BnlLocalizer` that exists
//! is a `BnlLocalizer` that is valid.
//!
//! Communication is charged per belief broadcast: in the distributed
//! protocol each unknown node transmits a subsampled particle summary (or a
//! Gaussian summary for the grid backend) to its neighbors once per
//! iteration.

use crate::model::{build_mrf, ModelOptions};
use crate::options::{GridOptions, ParticleOptions, ShardPlan};
use crate::prior::PriorModel;
use crate::result::{LocalizationResult, Localizer};
use crate::session::{CarriedBeliefs, LocalizationSession};
use std::sync::Arc;
use wsnloc_bayes::{
    Belief, BpEngine, BpOptions, GaussianBp, GridBp, ParticleBp, Schedule, ShardedEngine,
    SpatialMrf, TemperBelief, Transport, ValidationError,
};
use wsnloc_geom::{ShardLayout, Vec2};
use wsnloc_net::accounting::{CommStats, WireMessage};
use wsnloc_net::{FaultPlan, Network};
use wsnloc_obs::Stopwatch;
use wsnloc_obs::{InferenceObserver, NullObserver, ObsEvent, SpanKind};

/// Belief representation used by inference, with its backend-specific
/// options. Variants carry construction-validated option bundles;
/// build them through [`Backend::particle`]/[`Backend::grid`]/
/// [`Backend::gaussian`] (or construct the options directly for the
/// non-default knobs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Backend {
    /// Nonparametric (particle) beliefs.
    Particle(ParticleOptions),
    /// Grid-discretized beliefs (the discrete Bayesian-network
    /// formulation), including precision and coarse-to-fine knobs.
    Grid(GridOptions),
    /// Single-Gaussian beliefs (EKF-style linearized updates) — the cheap
    /// parametric ablation. Fast and bandwidth-minimal, but blind to the
    /// multi-modal posteriors that motivate the nonparametric backends.
    Gaussian,
}

impl Backend {
    /// Particle backend with `particles` per unknown node (at least 1).
    pub fn particle(particles: usize) -> Result<Backend, ValidationError> {
        Ok(Backend::Particle(ParticleOptions::new(particles)?))
    }

    /// Grid backend at `resolution` cells per side (at least 2), with
    /// default precision and no refinement — use
    /// [`GridOptions`] directly for those knobs.
    pub fn grid(resolution: usize) -> Result<Backend, ValidationError> {
        Ok(Backend::Grid(GridOptions::new(resolution)?))
    }

    /// Gaussian backend (no options to validate).
    #[must_use]
    pub fn gaussian() -> Backend {
        Backend::Gaussian
    }
}

/// Point-estimate extraction rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Estimator {
    /// Posterior mean (minimum mean squared error).
    Mmse,
    /// Posterior mode (maximum a posteriori). Only the grid backend can
    /// extract a mode from its beliefs; the particle and Gaussian backends
    /// fall back to MMSE and report the switch as an
    /// [`ObsEvent::MapFallbackToMmse`] observer event rather than silently.
    Map,
}

/// Cooperative Bayesian-network localization with pre-knowledge.
///
/// Construct through [`BnlLocalizer::builder`] — the only construction
/// route. Fields are crate-private and there are no setters: any
/// configuration change goes back through the validated builder.
#[derive(Debug, Clone)]
pub struct BnlLocalizer {
    /// Pre-knowledge model.
    pub(crate) prior: PriorModel,
    /// Belief representation with backend-specific options.
    pub(crate) backend: Backend,
    /// BP engine options (seed is overridden per `localize` call).
    pub(crate) bp: BpOptions,
    /// Negative connectivity constraints per node (0 = off).
    pub(crate) negative_constraints: usize,
    /// Point estimate rule.
    pub(crate) estimator: Estimator,
    /// Particles included in each broadcast belief summary (communication
    /// accounting; also the mixture subsample size of the particle engine).
    pub(crate) broadcast_particles: usize,
    /// Fault-injection plan applied to inter-node messaging (`None` =
    /// perfect transport, the bit-identical fault-free path).
    pub(crate) fault_plan: Option<Arc<FaultPlan>>,
    /// Sharded-execution plan (`None` = flat inference).
    pub(crate) shards: Option<ShardPlan>,
}

/// Validated builder for [`BnlLocalizer`] — the only construction route.
///
/// ```
/// use wsnloc::prelude::*;
/// let loc = BnlLocalizer::builder(Backend::particle(300).expect("valid backend"))
///     .prior(PriorModel::DropPoint { sigma: 40.0 })
///     .max_iterations(10)
///     .tolerance(1.0)
///     .try_build()
///     .expect("valid configuration");
/// assert_eq!(loc.name(), "BNL-PK/particle");
///
/// // Out-of-range configurations are typed errors at the point of
/// // construction, not runtime surprises:
/// assert!(Backend::particle(0).is_err());
/// assert!(Backend::grid(1).is_err());
/// ```
#[derive(Debug, Clone)]
pub struct BnlLocalizerBuilder {
    inner: BnlLocalizer,
}

impl BnlLocalizerBuilder {
    /// Sets the pre-knowledge model.
    pub fn prior(mut self, prior: PriorModel) -> Self {
        self.inner.prior = prior;
        self
    }

    /// Sets the iteration cap (must be at least 1).
    pub fn max_iterations(mut self, n: usize) -> Self {
        self.inner.bp.max_iterations = n;
        self
    }

    /// Sets the convergence tolerance in meters (finite, non-negative).
    pub fn tolerance(mut self, tol: f64) -> Self {
        self.inner.bp.tolerance = tol;
        self
    }

    /// Sets belief damping (in `[0, 1)`).
    pub fn damping(mut self, damping: f64) -> Self {
        self.inner.bp.damping = damping;
        self
    }

    /// Sets the update schedule.
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.inner.bp.schedule = schedule;
        self
    }

    /// Sets the point-estimate rule.
    pub fn estimator(mut self, estimator: Estimator) -> Self {
        self.inner.estimator = estimator;
        self
    }

    /// Sets sampled negative connectivity constraints per node (0 = off).
    pub fn negative_constraints(mut self, per_node: usize) -> Self {
        self.inner.negative_constraints = per_node;
        self
    }

    /// Sets the broadcast belief summary size (must be at least 1).
    pub fn broadcast_particles(mut self, count: usize) -> Self {
        self.inner.broadcast_particles = count;
        self
    }

    /// Injects faults into inter-node messaging per `plan` (message loss,
    /// node death, stale delivery). A [`FaultPlan::none`] plan compiles to
    /// the perfect transport — the bit-identical fault-free path. Under a
    /// [`ShardPlan`], faults apply to cross-shard links.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.inner.fault_plan = if plan.is_none() {
            None
        } else {
            Some(Arc::new(plan))
        };
        self
    }

    /// Switches inference to sharded BP execution per `plan` — the
    /// large-network path. A layout that resolves to a single tile
    /// (small networks) runs the flat engine, bit-identically.
    pub fn shards(mut self, plan: ShardPlan) -> Self {
        self.inner.shards = Some(plan);
        self
    }

    /// Validates the configuration and returns the finished localizer.
    /// Backend and shard options were already validated at their own
    /// construction; this checks the remaining builder-level knobs.
    pub fn try_build(self) -> Result<BnlLocalizer, ValidationError> {
        if self.inner.broadcast_particles == 0 {
            return Err(ValidationError::InvalidOption {
                option: "broadcast_particles",
                value: 0.0,
                requirement: "must be at least 1",
            });
        }
        self.inner.bp.validated()?;
        Ok(self.inner)
    }
}

impl BnlLocalizer {
    /// Starts a validated [`BnlLocalizerBuilder`] for the given backend.
    pub fn builder(backend: Backend) -> BnlLocalizerBuilder {
        BnlLocalizerBuilder {
            inner: BnlLocalizer {
                prior: PriorModel::Uninformative,
                backend,
                bp: BpOptions::default(),
                negative_constraints: 0,
                estimator: Estimator::Mmse,
                broadcast_particles: 24,
                fault_plan: None,
                shards: None,
            },
        }
    }

    /// Localizes and additionally reports the per-iteration estimates —
    /// used by the convergence experiment (F4). The callback receives
    /// `(iteration, per-node estimates)` after every BP iteration.
    pub fn localize_observed<F>(
        &self,
        network: &Network,
        seed: u64,
        on_iteration: F,
    ) -> LocalizationResult
    where
        F: FnMut(usize, &[Option<Vec2>]),
    {
        LocalizationSession::new(self.clone()).advance_full(
            network,
            seed,
            &NullObserver,
            on_iteration,
        )
    }

    /// The full single-epoch localization path: builds the model, runs the
    /// configured backend — warm-started from `warm` carried beliefs when
    /// present and backend-compatible, else cold from the pre-knowledge
    /// prior — with both the structured `obs` observer and the
    /// estimate-level `on_iteration` callback, then extracts the result and
    /// hands the final posterior beliefs back for the next epoch. This is
    /// the one code path under every public entry point: one-shot
    /// [`BnlLocalizer::localize`] is a fresh session advanced once.
    pub(crate) fn localize_epoch<F>(
        &self,
        network: &Network,
        seed: u64,
        warm: Option<&CarriedBeliefs>,
        obs: &dyn InferenceObserver,
        mut on_iteration: F,
    ) -> (LocalizationResult, CarriedBeliefs)
    where
        F: FnMut(usize, &[Option<Vec2>]),
    {
        let start = Stopwatch::start();
        let build_start = Stopwatch::start();
        let mrf = build_mrf(
            network,
            &self.prior,
            &ModelOptions {
                negative_constraints_per_node: self.negative_constraints,
                seed: seed ^ 0x9E37_79B9,
            },
        );
        let build_secs = build_start.elapsed_secs();
        let mut opts = self.bp;
        opts.seed = seed;
        opts.message_bytes = self.broadcast_message_bytes();

        let n = network.len();
        let mut result = LocalizationResult::empty(n);
        for (id, pos) in network.anchors() {
            result.estimates[id] = Some(pos);
            result.uncertainty[id] = Some(0.0);
        }

        let transport = match &self.fault_plan {
            Some(plan) => Transport::faulted(Arc::clone(plan)),
            None => Transport::perfect(),
        };

        // TraceObserver opens its record at the engine's `on_run_start`, so
        // the model-build span (measured above) and the estimate-extraction
        // span are reported after the run instead of in wall-clock order.
        // A carried-belief bundle from a different backend (the session's
        // engine was reconfigured) degrades to a cold start rather than
        // guessing a conversion.
        let carried = match self.backend {
            Backend::Particle(popts) => {
                let mut engine = ParticleBp::with_particles(popts.particles);
                engine.mixture_samples = self.broadcast_particles;
                let w = match warm {
                    Some(CarriedBeliefs::Particle(v)) => Some(v.as_slice()),
                    _ => None,
                };
                CarriedBeliefs::Particle(self.run_maybe_sharded(
                    engine,
                    network,
                    &mrf,
                    &opts,
                    &transport,
                    w,
                    obs,
                    build_secs,
                    &mut result,
                    &mut on_iteration,
                ))
            }
            Backend::Gaussian => {
                let w = match warm {
                    Some(CarriedBeliefs::Gaussian(v)) => Some(v.as_slice()),
                    _ => None,
                };
                CarriedBeliefs::Gaussian(self.run_maybe_sharded(
                    GaussianBp::default(),
                    network,
                    &mrf,
                    &opts,
                    &transport,
                    w,
                    obs,
                    build_secs,
                    &mut result,
                    &mut on_iteration,
                ))
            }
            Backend::Grid(gopts) => {
                let w = match warm {
                    Some(CarriedBeliefs::Grid(v)) => Some(v.as_slice()),
                    _ => None,
                };
                let mut engine =
                    GridBp::with_resolution(gopts.resolution).with_precision(gopts.precision);
                if let Some(refine) = gopts.refine {
                    engine = engine.with_refinement(refine);
                }
                CarriedBeliefs::Grid(self.run_maybe_sharded(
                    engine,
                    network,
                    &mrf,
                    &opts,
                    &transport,
                    w,
                    obs,
                    build_secs,
                    &mut result,
                    &mut on_iteration,
                ))
            }
        };

        result.elapsed_secs = start.elapsed_secs();
        (result, carried)
    }

    /// Resolves the configured [`ShardPlan`] against a concrete network:
    /// node positions (anchor > planned > field center), tile counts from
    /// the target shard size, and the halo radius (configured, or twice
    /// the mean node spacing). `None` when sharding is off or the plan
    /// resolves to a single tile — flat execution is the same thing,
    /// cheaper.
    fn shard_layout(&self, network: &Network) -> Option<(Arc<ShardLayout>, usize)> {
        let plan = self.shards?;
        let n = network.len();
        if n == 0 {
            return None;
        }
        let bounds = network.field_bounds();
        let (tiles_x, tiles_y) = ShardLayout::tiles_for_target(n, plan.target_shard_nodes);
        if tiles_x * tiles_y <= 1 {
            return None;
        }
        let positions: Vec<Vec2> = (0..n)
            .map(|id| {
                network
                    .anchor_position(id)
                    .or_else(|| network.planned_position(id))
                    .unwrap_or_else(|| bounds.center())
            })
            .collect();
        let radius = plan.halo_radius.unwrap_or_else(|| {
            let spacing = (bounds.width() * bounds.height() / n as f64).sqrt();
            (2.0 * spacing).max(1e-6)
        });
        Some((
            Arc::new(ShardLayout::build(
                bounds, tiles_x, tiles_y, &positions, radius,
            )),
            plan.interior_iterations,
        ))
    }

    /// Runs the engine flat, or wrapped in a [`ShardedEngine`] when the
    /// shard plan resolves to more than one tile for this network.
    #[allow(clippy::too_many_arguments)]
    fn run_maybe_sharded<E, F>(
        &self,
        engine: E,
        network: &Network,
        mrf: &SpatialMrf,
        opts: &BpOptions,
        transport: &Transport,
        warm: Option<&[E::Belief]>,
        obs: &dyn InferenceObserver,
        build_secs: f64,
        result: &mut LocalizationResult,
        on_iteration: F,
    ) -> Vec<E::Belief>
    where
        E: BpEngine + Sync,
        E::Belief: TemperBelief,
        F: FnMut(usize, &[Option<Vec2>]),
    {
        match self.shard_layout(network) {
            Some((layout, interior)) => {
                // `ShardPlan` construction guarantees `interior >= 1`;
                // `clamped` encodes that invariant infallibly.
                let sharded = ShardedEngine::clamped(engine, layout, interior);
                self.run_backend(
                    &sharded,
                    mrf,
                    opts,
                    transport,
                    warm,
                    obs,
                    build_secs,
                    result,
                    on_iteration,
                )
            }
            None => self.run_backend(
                &engine,
                mrf,
                opts,
                transport,
                warm,
                obs,
                build_secs,
                result,
                on_iteration,
            ),
        }
    }

    /// Backend-generic run-and-extract: drives [`BpEngine::run_carried`]
    /// with the warm beliefs and the estimate-level iteration callback,
    /// then reads point estimates and uncertainties out of the final
    /// beliefs through the [`Belief`] trait and returns those beliefs for
    /// epoch carry-over. A MAP request on a backend without a mode
    /// extractor falls back to MMSE and reports the switch as an observer
    /// event.
    #[allow(clippy::too_many_arguments)]
    fn run_backend<E, F>(
        &self,
        engine: &E,
        mrf: &SpatialMrf,
        opts: &BpOptions,
        transport: &Transport,
        warm: Option<&[E::Belief]>,
        obs: &dyn InferenceObserver,
        build_secs: f64,
        result: &mut LocalizationResult,
        mut on_iteration: F,
    ) -> Vec<E::Belief>
    where
        E: BpEngine,
        F: FnMut(usize, &[Option<Vec2>]),
    {
        let n = result.estimates.len();
        let out = engine.run_carried(mrf, opts, transport, warm, obs, |iter, beliefs| {
            let estimates: Vec<Option<Vec2>> = (0..n)
                .map(|id| match mrf.fixed(id) {
                    Some(p) => Some(p),
                    None => Some(beliefs[id].mean()),
                })
                .collect();
            on_iteration(iter, &estimates);
        });
        obs.on_span(SpanKind::ModelBuild, build_secs);
        let want_map = self.estimator == Estimator::Map;
        if want_map && !E::Belief::SUPPORTS_MAP {
            obs.on_event(&ObsEvent::MapFallbackToMmse {
                backend: engine.backend_name(),
            });
        }
        let extract_start = Stopwatch::start();
        for id in mrf.free_vars() {
            let b = &out.beliefs[id];
            let estimate = if want_map {
                b.map_estimate().unwrap_or_else(|| b.mean())
            } else {
                b.mean()
            };
            result.estimates[id] = Some(estimate);
            result.uncertainty[id] = Some(b.spread());
        }
        obs.on_span(SpanKind::EstimateExtract, extract_start.elapsed_secs());
        result.iterations = out.bp.iterations;
        result.converged = out.bp.converged;
        result.comm = self.comm_stats(out.bp.messages);
        out.beliefs
    }

    /// Encoded size of one belief broadcast for the configured backend —
    /// what the observer's per-iteration byte accounting charges.
    fn broadcast_message_bytes(&self) -> u64 {
        let msg = match self.backend {
            Backend::Particle(_) => WireMessage::ParticleBelief {
                from: 0,
                count: u32::try_from(self.broadcast_particles).unwrap_or(u32::MAX),
                payload: vec![(Vec2::ZERO, 0.0); self.broadcast_particles],
            },
            Backend::Grid(_) | Backend::Gaussian => WireMessage::GaussianBelief {
                from: 0,
                mean: Vec2::ZERO,
                cov: [0.0; 3],
            },
        };
        msg.encoded_len() as u64
    }

    /// Communication ledger for `broadcasts` belief transmissions, charged
    /// at the configured backend's wire-encoded summary size.
    fn comm_stats(&self, broadcasts: u64) -> CommStats {
        CommStats {
            messages: broadcasts,
            bytes: broadcasts * self.broadcast_message_bytes(),
        }
    }
}

impl Localizer for BnlLocalizer {
    fn name(&self) -> String {
        let backend = match self.backend {
            Backend::Particle(_) => "particle",
            Backend::Grid(_) => "grid",
            Backend::Gaussian => "gaussian",
        };
        if self.prior.is_informative() {
            format!("BNL-PK/{backend}")
        } else {
            format!("NBP/{backend}")
        }
    }

    fn localize(&self, network: &Network, seed: u64) -> LocalizationResult {
        self.localize_observed(network, seed, |_, _| {})
    }

    fn localize_with_observer(
        &self,
        network: &Network,
        seed: u64,
        observer: &dyn InferenceObserver,
    ) -> LocalizationResult {
        LocalizationSession::new(self.clone()).advance_observed(network, seed, observer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsnloc_net::network::NetworkBuilder;
    use wsnloc_net::{AnchorStrategy, Deployment, GroundTruth, RadioModel, RangingModel};

    fn small_world(seed: u64) -> (Network, GroundTruth) {
        NetworkBuilder {
            deployment: Deployment::planned_square_drop(500.0, 4, 40.0),
            node_count: 48,
            anchors: AnchorStrategy::Grid { count: 6 },
            radio: RadioModel::UnitDisk { range: 140.0 },
            ranging: RangingModel::Multiplicative { factor: 0.08 },
        }
        .build(seed)
    }

    fn particle(particles: usize) -> BnlLocalizerBuilder {
        BnlLocalizer::builder(Backend::particle(particles).expect("valid backend"))
    }

    fn grid(resolution: usize) -> BnlLocalizerBuilder {
        BnlLocalizer::builder(Backend::grid(resolution).expect("valid backend"))
    }

    fn mean_error(result: &LocalizationResult, truth: &GroundTruth, net: &Network) -> f64 {
        let errs: Vec<f64> = result
            .errors_for(truth, Some(net))
            .into_iter()
            .flatten()
            .collect();
        errs.iter().sum::<f64>() / errs.len() as f64
    }

    #[test]
    fn particle_bnl_localizes_standard_world() {
        let (net, truth) = small_world(1);
        let loc = particle(250)
            .prior(PriorModel::DropPoint { sigma: 40.0 })
            .max_iterations(10)
            .tolerance(1.0)
            .try_build()
            .expect("valid config");
        let r = loc.localize(&net, 0);
        assert!(r.iterations >= 1);
        let err = mean_error(&r, &truth, &net);
        // Radio range 140: cooperative + priors should land well under R/2.
        assert!(err < 55.0, "mean error {err}");
        // All unknowns localized.
        assert!((r.coverage(net.unknowns()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn preknowledge_beats_uninformative() {
        let mut pk_total = 0.0;
        let mut nbp_total = 0.0;
        for trial in 0..3u64 {
            let (net, truth) = small_world(10 + trial);
            let pk = particle(250)
                .prior(PriorModel::DropPoint { sigma: 40.0 })
                .max_iterations(10)
                .try_build()
                .expect("valid config");
            let nbp = particle(250)
                .max_iterations(10)
                .try_build()
                .expect("valid config");
            pk_total += mean_error(&pk.localize(&net, trial), &truth, &net);
            nbp_total += mean_error(&nbp.localize(&net, trial), &truth, &net);
        }
        assert!(
            pk_total < nbp_total,
            "pre-knowledge {pk_total} should beat uninformative {nbp_total}"
        );
    }

    #[test]
    fn grid_backend_localizes() {
        let (net, truth) = small_world(2);
        let loc = grid(30)
            .prior(PriorModel::DropPoint { sigma: 40.0 })
            .max_iterations(6)
            .tolerance(1.0)
            .try_build()
            .expect("valid config");
        let r = loc.localize(&net, 0);
        let err = mean_error(&r, &truth, &net);
        assert!(err < 70.0, "grid mean error {err}");
    }

    #[test]
    fn anchors_keep_their_positions() {
        let (net, truth) = small_world(3);
        let r = particle(100)
            .max_iterations(3)
            .try_build()
            .expect("valid config")
            .localize(&net, 0);
        for (id, pos) in net.anchors() {
            assert_eq!(r.estimates[id], Some(pos));
            assert_eq!(pos, truth.position(id));
            assert_eq!(r.uncertainty[id], Some(0.0));
        }
    }

    #[test]
    fn results_are_deterministic() {
        let (net, _) = small_world(4);
        let loc = particle(120)
            .prior(PriorModel::DropPoint { sigma: 40.0 })
            .max_iterations(4)
            .try_build()
            .expect("valid config");
        let a = loc.localize(&net, 9);
        let b = loc.localize(&net, 9);
        assert_eq!(a.estimates, b.estimates);
        let c = loc.localize(&net, 10);
        assert_ne!(a.estimates, c.estimates);
    }

    #[test]
    fn communication_is_charged_per_iteration() {
        let (net, _) = small_world(5);
        let loc = particle(100)
            .max_iterations(4)
            .tolerance(0.0) // run all iterations
            .try_build()
            .expect("valid config");
        let r = loc.localize(&net, 0);
        let unknowns = net.unknowns().count() as u64;
        assert_eq!(r.comm.messages, 4 * unknowns);
        assert!(r.comm.bytes > r.comm.messages * 24);
    }

    #[test]
    fn observer_reports_each_iteration() {
        let (net, _) = small_world(6);
        let mut iters = Vec::new();
        let loc = particle(80)
            .max_iterations(3)
            .tolerance(0.0)
            .try_build()
            .expect("valid config");
        let _ = loc.localize_observed(&net, 0, |iter, estimates| {
            iters.push(iter);
            assert_eq!(estimates.len(), net.len());
            assert!(estimates.iter().all(Option::is_some));
        });
        assert_eq!(iters, vec![0, 1, 2]);
    }

    #[test]
    fn names_distinguish_preknowledge() {
        let pk = particle(10)
            .prior(PriorModel::DropPoint { sigma: 1.0 })
            .try_build()
            .expect("valid config");
        let nbp = particle(10).try_build().expect("valid config");
        assert_eq!(pk.name(), "BNL-PK/particle");
        assert_eq!(nbp.name(), "NBP/particle");
        assert_eq!(
            grid(10).try_build().expect("valid config").name(),
            "NBP/grid"
        );
    }

    #[test]
    fn uncertainty_shrinks_with_anchor_contact() {
        // A node ringed by anchors should end up more certain than the
        // network-average unknown.
        let (net, _) = small_world(7);
        let r = particle(200)
            .max_iterations(8)
            .try_build()
            .expect("valid config")
            .localize(&net, 0);
        let spreads: Vec<f64> = net.unknowns().filter_map(|id| r.uncertainty[id]).collect();
        assert!(!spreads.is_empty());
        // Sanity: spreads are positive and bounded by the field diagonal.
        for s in spreads {
            assert!((0.0..750.0).contains(&s));
        }
    }

    #[test]
    fn gaussian_backend_localizes_with_priors() {
        let (net, truth) = small_world(9);
        let loc = BnlLocalizer::builder(Backend::gaussian())
            .prior(PriorModel::DropPoint { sigma: 40.0 })
            .max_iterations(25)
            .tolerance(0.5)
            .try_build()
            .expect("valid config");
        let r = loc.localize(&net, 0);
        let err = mean_error(&r, &truth, &net);
        // Parametric backend with good priors: posteriors mostly unimodal.
        assert!(err < 60.0, "gaussian mean error {err}");
        assert_eq!(loc.name(), "BNL-PK/gaussian");
        // Every unknown carries an uncertainty estimate.
        for u in net.unknowns() {
            let spread = r.uncertainty[u].expect("gaussian spread");
            assert!(spread > 0.0 && spread < 700.0);
        }
        // Gaussian summaries are tiny on the wire compared to particles.
        let particle_run = particle(100)
            .prior(PriorModel::DropPoint { sigma: 40.0 })
            .max_iterations(4)
            .tolerance(0.0)
            .try_build()
            .expect("valid config")
            .localize(&net, 0);
        let per_msg_gauss = r.comm.bytes as f64 / r.comm.messages.max(1) as f64;
        let per_msg_particle =
            particle_run.comm.bytes as f64 / particle_run.comm.messages.max(1) as f64;
        assert!(per_msg_gauss * 5.0 < per_msg_particle);
    }

    #[test]
    fn builder_rejects_bad_configs() {
        assert!(Backend::particle(0).is_err());
        assert!(Backend::grid(1).is_err());
        assert!(BnlLocalizer::builder(Backend::gaussian())
            .broadcast_particles(0)
            .try_build()
            .is_err());
        assert!(BnlLocalizer::builder(Backend::gaussian())
            .damping(1.0)
            .try_build()
            .is_err());
        let err = BnlLocalizer::builder(Backend::gaussian())
            .max_iterations(0)
            .try_build()
            .expect_err("zero iterations must fail");
        assert!(err.to_string().contains("max_iterations"));
    }

    #[test]
    fn trace_observer_sees_full_run() {
        use wsnloc_obs::TraceObserver;
        let (net, _) = small_world(12);
        let loc = particle(80)
            .max_iterations(3)
            .tolerance(0.0)
            .try_build()
            .expect("valid config");
        let obs = TraceObserver::new();
        let r = loc.localize_with_observer(&net, 0, &obs);
        let run = obs.last_run().expect("one recorded run");
        assert_eq!(run.info.backend, "particle");
        assert_eq!(run.iterations.len(), r.iterations);
        assert_eq!(run.summary.map(|s| s.comm.messages), Some(r.comm.messages));
        // Byte accounting through the observer matches the result's ledger.
        assert_eq!(run.summary.map(|s| s.comm.bytes), Some(r.comm.bytes));
        let spans: Vec<_> = run.spans.iter().map(|(k, _)| *k).collect();
        assert!(spans.contains(&wsnloc_obs::SpanKind::ModelBuild));
        assert!(spans.contains(&wsnloc_obs::SpanKind::PriorInit));
        assert!(spans.contains(&wsnloc_obs::SpanKind::MessagePassing));
        assert!(spans.contains(&wsnloc_obs::SpanKind::EstimateExtract));
        // Residuals recorded for every free node each iteration.
        let free = net.unknowns().count();
        assert!(run.iterations.iter().all(|it| it.residuals.len() == free));
    }

    #[test]
    fn map_fallback_is_reported_not_silent() {
        use wsnloc_obs::{ObsEvent, TraceObserver};
        let (net, _) = small_world(13);
        for (loc, backend) in [
            (
                particle(60)
                    .estimator(Estimator::Map)
                    .max_iterations(2)
                    .try_build()
                    .expect("valid config"),
                "particle",
            ),
            (
                BnlLocalizer::builder(Backend::gaussian())
                    .estimator(Estimator::Map)
                    .max_iterations(2)
                    .try_build()
                    .expect("valid config"),
                "gaussian",
            ),
        ] {
            let obs = TraceObserver::new();
            let mut mmse_loc = loc.clone();
            mmse_loc.estimator = Estimator::Mmse;
            let mmse = mmse_loc.localize(&net, 0);
            let map = loc.localize_with_observer(&net, 0, &obs);
            // The fallback means MAP and MMSE coincide on these backends…
            assert_eq!(map.estimates, mmse.estimates);
            // …and the switch is reported as a structured event.
            let run = obs.last_run().expect("run recorded");
            assert!(run
                .events
                .iter()
                .any(|e| matches!(e, ObsEvent::MapFallbackToMmse { backend: b } if *b == backend)));
        }
        // The grid backend has a real mode: no fallback event.
        let obs = TraceObserver::new();
        let _ = grid(20)
            .estimator(Estimator::Map)
            .max_iterations(2)
            .try_build()
            .expect("valid config")
            .localize_with_observer(&net, 0, &obs);
        assert!(obs.last_run().expect("run").events.is_empty());
    }

    #[test]
    fn map_estimator_works_on_grid() {
        let (net, truth) = small_world(8);
        let loc = grid(25)
            .prior(PriorModel::DropPoint { sigma: 40.0 })
            .estimator(Estimator::Map)
            .max_iterations(5)
            .try_build()
            .expect("valid config");
        let r = loc.localize(&net, 0);
        let err = mean_error(&r, &truth, &net);
        assert!(err < 90.0, "MAP mean error {err}");
    }

    #[test]
    fn sharded_execution_matches_flat_on_small_worlds() {
        // Shards sized to force a multi-tile layout on a 48-node world;
        // grid backend + synchronous schedule + unit interior rounds is
        // the exact-equivalence configuration.
        let (net, _) = small_world(14);
        let base = grid(24)
            .prior(PriorModel::DropPoint { sigma: 40.0 })
            .max_iterations(4)
            .tolerance(0.0);
        let flat = base.clone().try_build().expect("valid config");
        let plan = ShardPlan::target_nodes(16).expect("valid plan");
        let sharded = base.shards(plan).try_build().expect("valid config");
        let a = flat.localize(&net, 0);
        let b = sharded.localize(&net, 0);
        for (fa, fb) in a.estimates.iter().zip(&b.estimates) {
            match (fa, fb) {
                (Some(p), Some(q)) => assert!(p.dist(*q) < 1e-9, "sharded drifted: {p:?} vs {q:?}"),
                _ => assert_eq!(fa, fb),
            }
        }
    }

    #[test]
    fn single_tile_shard_plan_runs_flat_path() {
        // Target shard size larger than the network: the plan resolves
        // to one tile, which must be the identical flat code path.
        let (net, _) = small_world(15);
        let base = particle(80)
            .prior(PriorModel::DropPoint { sigma: 40.0 })
            .max_iterations(3)
            .tolerance(0.0);
        let flat = base.clone().try_build().expect("valid config");
        let sharded = base
            .shards(ShardPlan::target_nodes(10_000).expect("valid plan"))
            .try_build()
            .expect("valid config");
        assert_eq!(
            flat.localize(&net, 0).estimates,
            sharded.localize(&net, 0).estimates
        );
    }
}
