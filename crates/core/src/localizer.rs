//! The BNL-PK localizer: loopy BP on the position Bayesian network.
//!
//! [`BnlLocalizer`] is the paper's algorithm. It composes:
//! - a [`PriorModel`] (the pre-knowledge),
//! - a belief [`Backend`] — particle (nonparametric) or grid (discrete
//!   Bayesian network),
//! - [`BpOptions`] controlling schedule/iterations/damping,
//! - optional negative connectivity constraints.
//!
//! Communication is charged per belief broadcast: in the distributed
//! protocol each unknown node transmits a subsampled particle summary (or a
//! Gaussian summary for the grid backend) to its neighbors once per
//! iteration.

use crate::model::{build_mrf, ModelOptions};
use crate::prior::PriorModel;
use crate::result::{LocalizationResult, Localizer};
use crate::session::{CarriedBeliefs, LocalizationSession};
use std::sync::Arc;
use wsnloc_bayes::{
    Belief, BpEngine, BpOptions, CoarseToFine, GaussianBp, GridBp, GridPrecision, ParticleBp,
    Schedule, SpatialMrf, Transport, ValidationError,
};
use wsnloc_geom::Vec2;
use wsnloc_net::accounting::{CommStats, WireMessage};
use wsnloc_net::{FaultPlan, Network};
use wsnloc_obs::Stopwatch;
use wsnloc_obs::{InferenceObserver, NullObserver, ObsEvent, SpanKind};

/// Belief representation used by inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Nonparametric (particle) beliefs with the given particle count.
    Particle {
        /// Particles per unknown node.
        particles: usize,
    },
    /// Grid-discretized beliefs with the given cells-per-side resolution.
    Grid {
        /// Cells along each axis of the field bounding box.
        resolution: usize,
    },
    /// Single-Gaussian beliefs (EKF-style linearized updates) — the cheap
    /// parametric ablation. Fast and bandwidth-minimal, but blind to the
    /// multi-modal posteriors that motivate the nonparametric backends.
    Gaussian,
}

/// Point-estimate extraction rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Estimator {
    /// Posterior mean (minimum mean squared error).
    Mmse,
    /// Posterior mode (maximum a posteriori). Only the grid backend can
    /// extract a mode from its beliefs; the particle and Gaussian backends
    /// fall back to MMSE and report the switch as an
    /// [`ObsEvent::MapFallbackToMmse`] observer event rather than silently.
    Map,
}

/// Cooperative Bayesian-network localization with pre-knowledge.
///
/// Construct through [`BnlLocalizer::builder`] (validated) or the
/// [`BnlLocalizer::particle`]/[`BnlLocalizer::grid`]/
/// [`BnlLocalizer::gaussian`] convenience constructors plus `with_*`
/// chaining. Fields are crate-private: struct-literal construction would
/// bypass the builder's range validation.
#[derive(Debug, Clone)]
pub struct BnlLocalizer {
    /// Pre-knowledge model.
    pub(crate) prior: PriorModel,
    /// Belief representation.
    pub(crate) backend: Backend,
    /// BP engine options (seed is overridden per `localize` call).
    pub(crate) bp: BpOptions,
    /// Negative connectivity constraints per node (0 = off).
    pub(crate) negative_constraints: usize,
    /// Point estimate rule.
    pub(crate) estimator: Estimator,
    /// Particles included in each broadcast belief summary (communication
    /// accounting; also the mixture subsample size of the particle engine).
    pub(crate) broadcast_particles: usize,
    /// Fault-injection plan applied to inter-node messaging (`None` =
    /// perfect transport, the bit-identical fault-free path).
    pub(crate) fault_plan: Option<Arc<FaultPlan>>,
    /// Numeric precision of the grid backend's message hot path
    /// (ignored by the other backends; the builder rejects non-default
    /// values without a grid backend).
    pub(crate) grid_precision: GridPrecision,
    /// Optional coarse-to-fine schedule for the grid backend.
    pub(crate) grid_refine: Option<CoarseToFine>,
}

/// Validated builder for [`BnlLocalizer`].
///
/// ```
/// use wsnloc::prelude::*;
/// let loc = BnlLocalizer::builder(Backend::Particle { particles: 300 })
///     .prior(PriorModel::DropPoint { sigma: 40.0 })
///     .max_iterations(10)
///     .tolerance(1.0)
///     .try_build()
///     .expect("valid configuration");
/// assert_eq!(loc.name(), "BNL-PK/particle");
///
/// // Out-of-range configurations are typed errors, not runtime surprises:
/// assert!(BnlLocalizer::builder(Backend::Particle { particles: 0 })
///     .try_build()
///     .is_err());
/// ```
#[derive(Debug, Clone)]
pub struct BnlLocalizerBuilder {
    inner: BnlLocalizer,
}

impl BnlLocalizerBuilder {
    /// Sets the pre-knowledge model.
    pub fn prior(mut self, prior: PriorModel) -> Self {
        self.inner.prior = prior;
        self
    }

    /// Sets the iteration cap (must be at least 1).
    pub fn max_iterations(mut self, n: usize) -> Self {
        self.inner.bp.max_iterations = n;
        self
    }

    /// Sets the convergence tolerance in meters (finite, non-negative).
    pub fn tolerance(mut self, tol: f64) -> Self {
        self.inner.bp.tolerance = tol;
        self
    }

    /// Sets belief damping (in `[0, 1)`).
    pub fn damping(mut self, damping: f64) -> Self {
        self.inner.bp.damping = damping;
        self
    }

    /// Sets the update schedule.
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.inner.bp.schedule = schedule;
        self
    }

    /// Sets the point-estimate rule.
    pub fn estimator(mut self, estimator: Estimator) -> Self {
        self.inner.estimator = estimator;
        self
    }

    /// Sets sampled negative connectivity constraints per node (0 = off).
    pub fn negative_constraints(mut self, per_node: usize) -> Self {
        self.inner.negative_constraints = per_node;
        self
    }

    /// Sets the broadcast belief summary size (must be at least 1).
    pub fn broadcast_particles(mut self, count: usize) -> Self {
        self.inner.broadcast_particles = count;
        self
    }

    /// Injects faults into inter-node messaging per `plan` (message loss,
    /// node death, stale delivery). A [`FaultPlan::none`] plan compiles to
    /// the perfect transport — the bit-identical fault-free path.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.inner.fault_plan = if plan.is_none() {
            None
        } else {
            Some(Arc::new(plan))
        };
        self
    }

    /// Sets the numeric precision of the grid backend's message hot path.
    /// [`GridPrecision::F32`] is an opt-in speed/accuracy trade-off;
    /// `try_build` rejects it on non-grid backends.
    pub fn grid_precision(mut self, precision: GridPrecision) -> Self {
        self.inner.grid_precision = precision;
        self
    }

    /// Enables the grid backend's coarse-to-fine schedule. Parameters are
    /// validated by `try_build` (via [`CoarseToFine::validated`]), which
    /// also rejects the knob on non-grid backends.
    pub fn grid_refine(mut self, refine: CoarseToFine) -> Self {
        self.inner.grid_refine = Some(refine);
        self
    }

    /// Validates the configuration and returns the finished localizer.
    pub fn try_build(self) -> Result<BnlLocalizer, ValidationError> {
        let is_grid = matches!(self.inner.backend, Backend::Grid { .. });
        if self.inner.grid_precision != GridPrecision::F64 && !is_grid {
            return Err(ValidationError::InvalidOption {
                option: "grid_precision",
                value: 0.0,
                requirement: "reduced-precision beliefs require the grid backend",
            });
        }
        if let Some(refine) = self.inner.grid_refine {
            if !is_grid {
                return Err(ValidationError::InvalidOption {
                    option: "grid_refine",
                    value: refine.factor as f64,
                    requirement: "coarse-to-fine refinement requires the grid backend",
                });
            }
            refine.validated()?;
        }
        match self.inner.backend {
            Backend::Particle { particles: 0 } => {
                return Err(ValidationError::InvalidOption {
                    option: "particles",
                    value: 0.0,
                    requirement: "must be at least 1",
                });
            }
            Backend::Grid { resolution } if resolution < 2 => {
                return Err(ValidationError::InvalidOption {
                    option: "resolution",
                    value: resolution as f64,
                    requirement: "must be at least 2 cells per side",
                });
            }
            _ => {}
        }
        if self.inner.broadcast_particles == 0 {
            return Err(ValidationError::InvalidOption {
                option: "broadcast_particles",
                value: 0.0,
                requirement: "must be at least 1",
            });
        }
        self.inner.bp.validated()?;
        Ok(self.inner)
    }
}

impl BnlLocalizer {
    /// Starts a validated [`BnlLocalizerBuilder`] for the given backend,
    /// with the same defaults as the convenience constructors.
    pub fn builder(backend: Backend) -> BnlLocalizerBuilder {
        BnlLocalizerBuilder {
            inner: BnlLocalizer {
                prior: PriorModel::Uninformative,
                backend,
                bp: BpOptions::default(),
                negative_constraints: 0,
                estimator: Estimator::Mmse,
                broadcast_particles: 24,
                fault_plan: None,
                grid_precision: GridPrecision::default(),
                grid_refine: None,
            },
        }
    }

    /// Particle-backend localizer with sensible defaults and no
    /// pre-knowledge (add one with [`BnlLocalizer::with_prior`]).
    pub fn particle(particles: usize) -> Self {
        BnlLocalizer {
            prior: PriorModel::Uninformative,
            backend: Backend::Particle { particles },
            bp: BpOptions::default(),
            negative_constraints: 0,
            estimator: Estimator::Mmse,
            broadcast_particles: 24,
            fault_plan: None,
            grid_precision: GridPrecision::default(),
            grid_refine: None,
        }
    }

    /// Grid-backend localizer (the discrete Bayesian-network formulation).
    pub fn grid(resolution: usize) -> Self {
        BnlLocalizer {
            prior: PriorModel::Uninformative,
            backend: Backend::Grid { resolution },
            bp: BpOptions::default(),
            negative_constraints: 0,
            estimator: Estimator::Mmse,
            broadcast_particles: 24,
            fault_plan: None,
            grid_precision: GridPrecision::default(),
            grid_refine: None,
        }
    }

    /// Gaussian-backend localizer (parametric EKF-style ablation).
    pub fn gaussian() -> Self {
        BnlLocalizer {
            prior: PriorModel::Uninformative,
            backend: Backend::Gaussian,
            bp: BpOptions::default(),
            negative_constraints: 0,
            estimator: Estimator::Mmse,
            broadcast_particles: 24,
            fault_plan: None,
            grid_precision: GridPrecision::default(),
            grid_refine: None,
        }
    }

    /// Sets the pre-knowledge model.
    pub fn with_prior(mut self, prior: PriorModel) -> Self {
        self.prior = prior;
        self
    }

    /// Sets the iteration cap.
    pub fn with_max_iterations(mut self, n: usize) -> Self {
        self.bp.max_iterations = n;
        self
    }

    /// Sets the convergence tolerance (meters of belief-mean movement).
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        self.bp.tolerance = tol;
        self
    }

    /// Sets the update schedule.
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.bp.schedule = schedule;
        self
    }

    /// Sets belief damping in `[0, 1)`.
    pub fn with_damping(mut self, damping: f64) -> Self {
        self.bp.damping = damping;
        self
    }

    /// Enables sampled negative connectivity constraints.
    pub fn with_negative_constraints(mut self, per_node: usize) -> Self {
        self.negative_constraints = per_node;
        self
    }

    /// Sets the point-estimate rule.
    pub fn with_estimator(mut self, estimator: Estimator) -> Self {
        self.estimator = estimator;
        self
    }

    /// Injects faults into inter-node messaging per `plan` (message loss,
    /// node death, stale delivery). A [`FaultPlan::none`] plan compiles to
    /// the perfect transport — the bit-identical fault-free path.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = if plan.is_none() {
            None
        } else {
            Some(Arc::new(plan))
        };
        self
    }

    /// Localizes and additionally reports the per-iteration estimates —
    /// used by the convergence experiment (F4). The callback receives
    /// `(iteration, per-node estimates)` after every BP iteration.
    pub fn localize_observed<F>(
        &self,
        network: &Network,
        seed: u64,
        on_iteration: F,
    ) -> LocalizationResult
    where
        F: FnMut(usize, &[Option<Vec2>]),
    {
        LocalizationSession::new(self.clone()).advance_full(
            network,
            seed,
            &NullObserver,
            on_iteration,
        )
    }

    /// The full single-epoch localization path: builds the model, runs the
    /// configured backend — warm-started from `warm` carried beliefs when
    /// present and backend-compatible, else cold from the pre-knowledge
    /// prior — with both the structured `obs` observer and the
    /// estimate-level `on_iteration` callback, then extracts the result and
    /// hands the final posterior beliefs back for the next epoch. This is
    /// the one code path under every public entry point: one-shot
    /// [`BnlLocalizer::localize`] is a fresh session advanced once.
    pub(crate) fn localize_epoch<F>(
        &self,
        network: &Network,
        seed: u64,
        warm: Option<&CarriedBeliefs>,
        obs: &dyn InferenceObserver,
        mut on_iteration: F,
    ) -> (LocalizationResult, CarriedBeliefs)
    where
        F: FnMut(usize, &[Option<Vec2>]),
    {
        let start = Stopwatch::start();
        let build_start = Stopwatch::start();
        let mrf = build_mrf(
            network,
            &self.prior,
            &ModelOptions {
                negative_constraints_per_node: self.negative_constraints,
                seed: seed ^ 0x9E37_79B9,
            },
        );
        let build_secs = build_start.elapsed_secs();
        let mut opts = self.bp;
        opts.seed = seed;
        opts.message_bytes = self.broadcast_message_bytes();

        let n = network.len();
        let mut result = LocalizationResult::empty(n);
        for (id, pos) in network.anchors() {
            result.estimates[id] = Some(pos);
            result.uncertainty[id] = Some(0.0);
        }

        let transport = match &self.fault_plan {
            Some(plan) => Transport::faulted(Arc::clone(plan)),
            None => Transport::perfect(),
        };

        // TraceObserver opens its record at the engine's `on_run_start`, so
        // the model-build span (measured above) and the estimate-extraction
        // span are reported after the run instead of in wall-clock order.
        // A carried-belief bundle from a different backend (the session's
        // engine was reconfigured) degrades to a cold start rather than
        // guessing a conversion.
        let carried = match self.backend {
            Backend::Particle { particles } => {
                let mut engine = ParticleBp::with_particles(particles);
                engine.mixture_samples = self.broadcast_particles;
                let w = match warm {
                    Some(CarriedBeliefs::Particle(v)) => Some(v.as_slice()),
                    _ => None,
                };
                CarriedBeliefs::Particle(self.run_backend(
                    &engine,
                    &mrf,
                    &opts,
                    &transport,
                    w,
                    obs,
                    build_secs,
                    &mut result,
                    &mut on_iteration,
                ))
            }
            Backend::Gaussian => {
                let w = match warm {
                    Some(CarriedBeliefs::Gaussian(v)) => Some(v.as_slice()),
                    _ => None,
                };
                CarriedBeliefs::Gaussian(self.run_backend(
                    &GaussianBp::default(),
                    &mrf,
                    &opts,
                    &transport,
                    w,
                    obs,
                    build_secs,
                    &mut result,
                    &mut on_iteration,
                ))
            }
            Backend::Grid { resolution } => {
                let w = match warm {
                    Some(CarriedBeliefs::Grid(v)) => Some(v.as_slice()),
                    _ => None,
                };
                let mut engine =
                    GridBp::with_resolution(resolution).with_precision(self.grid_precision);
                if let Some(refine) = self.grid_refine {
                    engine = engine.with_refinement(refine);
                }
                CarriedBeliefs::Grid(self.run_backend(
                    &engine,
                    &mrf,
                    &opts,
                    &transport,
                    w,
                    obs,
                    build_secs,
                    &mut result,
                    &mut on_iteration,
                ))
            }
        };

        result.elapsed_secs = start.elapsed_secs();
        (result, carried)
    }

    /// Backend-generic run-and-extract: drives [`BpEngine::run_carried`]
    /// with the warm beliefs and the estimate-level iteration callback,
    /// then reads point estimates and uncertainties out of the final
    /// beliefs through the [`Belief`] trait and returns those beliefs for
    /// epoch carry-over. A MAP request on a backend without a mode
    /// extractor falls back to MMSE and reports the switch as an observer
    /// event.
    #[allow(clippy::too_many_arguments)]
    fn run_backend<E, F>(
        &self,
        engine: &E,
        mrf: &SpatialMrf,
        opts: &BpOptions,
        transport: &Transport,
        warm: Option<&[E::Belief]>,
        obs: &dyn InferenceObserver,
        build_secs: f64,
        result: &mut LocalizationResult,
        mut on_iteration: F,
    ) -> Vec<E::Belief>
    where
        E: BpEngine,
        F: FnMut(usize, &[Option<Vec2>]),
    {
        let n = result.estimates.len();
        let out = engine.run_carried(mrf, opts, transport, warm, obs, |iter, beliefs| {
            let estimates: Vec<Option<Vec2>> = (0..n)
                .map(|id| match mrf.fixed(id) {
                    Some(p) => Some(p),
                    None => Some(beliefs[id].mean()),
                })
                .collect();
            on_iteration(iter, &estimates);
        });
        obs.on_span(SpanKind::ModelBuild, build_secs);
        let want_map = self.estimator == Estimator::Map;
        if want_map && !E::Belief::SUPPORTS_MAP {
            obs.on_event(&ObsEvent::MapFallbackToMmse {
                backend: engine.backend_name(),
            });
        }
        let extract_start = Stopwatch::start();
        for id in mrf.free_vars() {
            let b = &out.beliefs[id];
            let estimate = if want_map {
                b.map_estimate().unwrap_or_else(|| b.mean())
            } else {
                b.mean()
            };
            result.estimates[id] = Some(estimate);
            result.uncertainty[id] = Some(b.spread());
        }
        obs.on_span(SpanKind::EstimateExtract, extract_start.elapsed_secs());
        result.iterations = out.bp.iterations;
        result.converged = out.bp.converged;
        result.comm = self.comm_stats(out.bp.messages);
        out.beliefs
    }

    /// Encoded size of one belief broadcast for the configured backend —
    /// what the observer's per-iteration byte accounting charges.
    fn broadcast_message_bytes(&self) -> u64 {
        let msg = match self.backend {
            Backend::Particle { .. } => WireMessage::ParticleBelief {
                from: 0,
                count: u32::try_from(self.broadcast_particles).unwrap_or(u32::MAX),
                payload: vec![(Vec2::ZERO, 0.0); self.broadcast_particles],
            },
            Backend::Grid { .. } | Backend::Gaussian => WireMessage::GaussianBelief {
                from: 0,
                mean: Vec2::ZERO,
                cov: [0.0; 3],
            },
        };
        msg.encoded_len() as u64
    }

    /// Communication ledger for `broadcasts` belief transmissions, charged
    /// at the configured backend's wire-encoded summary size.
    fn comm_stats(&self, broadcasts: u64) -> CommStats {
        CommStats {
            messages: broadcasts,
            bytes: broadcasts * self.broadcast_message_bytes(),
        }
    }
}

impl Localizer for BnlLocalizer {
    fn name(&self) -> String {
        let backend = match self.backend {
            Backend::Particle { .. } => "particle",
            Backend::Grid { .. } => "grid",
            Backend::Gaussian => "gaussian",
        };
        if self.prior.is_informative() {
            format!("BNL-PK/{backend}")
        } else {
            format!("NBP/{backend}")
        }
    }

    fn localize(&self, network: &Network, seed: u64) -> LocalizationResult {
        self.localize_observed(network, seed, |_, _| {})
    }

    fn localize_with_observer(
        &self,
        network: &Network,
        seed: u64,
        observer: &dyn InferenceObserver,
    ) -> LocalizationResult {
        LocalizationSession::new(self.clone()).advance_observed(network, seed, observer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsnloc_net::network::NetworkBuilder;
    use wsnloc_net::{AnchorStrategy, Deployment, GroundTruth, RadioModel, RangingModel};

    fn small_world(seed: u64) -> (Network, GroundTruth) {
        NetworkBuilder {
            deployment: Deployment::planned_square_drop(500.0, 4, 40.0),
            node_count: 48,
            anchors: AnchorStrategy::Grid { count: 6 },
            radio: RadioModel::UnitDisk { range: 140.0 },
            ranging: RangingModel::Multiplicative { factor: 0.08 },
        }
        .build(seed)
    }

    fn mean_error(result: &LocalizationResult, truth: &GroundTruth, net: &Network) -> f64 {
        let errs: Vec<f64> = result
            .errors_for(truth, Some(net))
            .into_iter()
            .flatten()
            .collect();
        errs.iter().sum::<f64>() / errs.len() as f64
    }

    #[test]
    fn particle_bnl_localizes_standard_world() {
        let (net, truth) = small_world(1);
        let loc = BnlLocalizer::particle(250)
            .with_prior(PriorModel::DropPoint { sigma: 40.0 })
            .with_max_iterations(10)
            .with_tolerance(1.0);
        let r = loc.localize(&net, 0);
        assert!(r.iterations >= 1);
        let err = mean_error(&r, &truth, &net);
        // Radio range 140: cooperative + priors should land well under R/2.
        assert!(err < 55.0, "mean error {err}");
        // All unknowns localized.
        assert!((r.coverage(net.unknowns()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn preknowledge_beats_uninformative() {
        let mut pk_total = 0.0;
        let mut nbp_total = 0.0;
        for trial in 0..3u64 {
            let (net, truth) = small_world(10 + trial);
            let pk = BnlLocalizer::particle(250)
                .with_prior(PriorModel::DropPoint { sigma: 40.0 })
                .with_max_iterations(10);
            let nbp = BnlLocalizer::particle(250).with_max_iterations(10);
            pk_total += mean_error(&pk.localize(&net, trial), &truth, &net);
            nbp_total += mean_error(&nbp.localize(&net, trial), &truth, &net);
        }
        assert!(
            pk_total < nbp_total,
            "pre-knowledge {pk_total} should beat uninformative {nbp_total}"
        );
    }

    #[test]
    fn grid_backend_localizes() {
        let (net, truth) = small_world(2);
        let loc = BnlLocalizer::grid(30)
            .with_prior(PriorModel::DropPoint { sigma: 40.0 })
            .with_max_iterations(6)
            .with_tolerance(1.0);
        let r = loc.localize(&net, 0);
        let err = mean_error(&r, &truth, &net);
        assert!(err < 70.0, "grid mean error {err}");
    }

    #[test]
    fn anchors_keep_their_positions() {
        let (net, truth) = small_world(3);
        let r = BnlLocalizer::particle(100)
            .with_max_iterations(3)
            .localize(&net, 0);
        for (id, pos) in net.anchors() {
            assert_eq!(r.estimates[id], Some(pos));
            assert_eq!(pos, truth.position(id));
            assert_eq!(r.uncertainty[id], Some(0.0));
        }
    }

    #[test]
    fn results_are_deterministic() {
        let (net, _) = small_world(4);
        let loc = BnlLocalizer::particle(120)
            .with_prior(PriorModel::DropPoint { sigma: 40.0 })
            .with_max_iterations(4);
        let a = loc.localize(&net, 9);
        let b = loc.localize(&net, 9);
        assert_eq!(a.estimates, b.estimates);
        let c = loc.localize(&net, 10);
        assert_ne!(a.estimates, c.estimates);
    }

    #[test]
    fn communication_is_charged_per_iteration() {
        let (net, _) = small_world(5);
        let loc = BnlLocalizer::particle(100)
            .with_max_iterations(4)
            .with_tolerance(0.0); // run all iterations
        let r = loc.localize(&net, 0);
        let unknowns = net.unknowns().count() as u64;
        assert_eq!(r.comm.messages, 4 * unknowns);
        assert!(r.comm.bytes > r.comm.messages * 24);
    }

    #[test]
    fn observer_reports_each_iteration() {
        let (net, _) = small_world(6);
        let mut iters = Vec::new();
        let loc = BnlLocalizer::particle(80)
            .with_max_iterations(3)
            .with_tolerance(0.0);
        let _ = loc.localize_observed(&net, 0, |iter, estimates| {
            iters.push(iter);
            assert_eq!(estimates.len(), net.len());
            assert!(estimates.iter().all(Option::is_some));
        });
        assert_eq!(iters, vec![0, 1, 2]);
    }

    #[test]
    fn names_distinguish_preknowledge() {
        let pk = BnlLocalizer::particle(10).with_prior(PriorModel::DropPoint { sigma: 1.0 });
        let nbp = BnlLocalizer::particle(10);
        assert_eq!(pk.name(), "BNL-PK/particle");
        assert_eq!(nbp.name(), "NBP/particle");
        assert_eq!(BnlLocalizer::grid(10).name(), "NBP/grid");
    }

    #[test]
    fn uncertainty_shrinks_with_anchor_contact() {
        // A node ringed by anchors should end up more certain than the
        // network-average unknown.
        let (net, _) = small_world(7);
        let r = BnlLocalizer::particle(200)
            .with_max_iterations(8)
            .localize(&net, 0);
        let spreads: Vec<f64> = net.unknowns().filter_map(|id| r.uncertainty[id]).collect();
        assert!(!spreads.is_empty());
        // Sanity: spreads are positive and bounded by the field diagonal.
        for s in spreads {
            assert!((0.0..750.0).contains(&s));
        }
    }

    #[test]
    fn gaussian_backend_localizes_with_priors() {
        let (net, truth) = small_world(9);
        let loc = BnlLocalizer::gaussian()
            .with_prior(PriorModel::DropPoint { sigma: 40.0 })
            .with_max_iterations(25)
            .with_tolerance(0.5);
        let r = loc.localize(&net, 0);
        let err = mean_error(&r, &truth, &net);
        // Parametric backend with good priors: posteriors mostly unimodal.
        assert!(err < 60.0, "gaussian mean error {err}");
        assert_eq!(loc.name(), "BNL-PK/gaussian");
        // Every unknown carries an uncertainty estimate.
        for u in net.unknowns() {
            let spread = r.uncertainty[u].expect("gaussian spread");
            assert!(spread > 0.0 && spread < 700.0);
        }
        // Gaussian summaries are tiny on the wire compared to particles.
        let particle = BnlLocalizer::particle(100)
            .with_prior(PriorModel::DropPoint { sigma: 40.0 })
            .with_max_iterations(4)
            .with_tolerance(0.0)
            .localize(&net, 0);
        let per_msg_gauss = r.comm.bytes as f64 / r.comm.messages.max(1) as f64;
        let per_msg_particle = particle.comm.bytes as f64 / particle.comm.messages.max(1) as f64;
        assert!(per_msg_gauss * 5.0 < per_msg_particle);
    }

    #[test]
    fn builder_validates_and_matches_with_chain() {
        let built = BnlLocalizer::builder(Backend::Particle { particles: 120 })
            .prior(PriorModel::DropPoint { sigma: 40.0 })
            .max_iterations(4)
            .tolerance(1.0)
            .damping(0.2)
            .try_build()
            .expect("valid config");
        let chained = BnlLocalizer::particle(120)
            .with_prior(PriorModel::DropPoint { sigma: 40.0 })
            .with_max_iterations(4)
            .with_tolerance(1.0)
            .with_damping(0.2);
        let (net, _) = small_world(11);
        assert_eq!(
            built.localize(&net, 3).estimates,
            chained.localize(&net, 3).estimates
        );
    }

    #[test]
    fn builder_rejects_bad_configs() {
        assert!(BnlLocalizer::builder(Backend::Particle { particles: 0 })
            .try_build()
            .is_err());
        assert!(BnlLocalizer::builder(Backend::Grid { resolution: 1 })
            .try_build()
            .is_err());
        assert!(BnlLocalizer::builder(Backend::Gaussian)
            .broadcast_particles(0)
            .try_build()
            .is_err());
        assert!(BnlLocalizer::builder(Backend::Gaussian)
            .damping(1.0)
            .try_build()
            .is_err());
        let err = BnlLocalizer::builder(Backend::Gaussian)
            .max_iterations(0)
            .try_build()
            .expect_err("zero iterations must fail");
        assert!(err.to_string().contains("max_iterations"));
    }

    #[test]
    fn trace_observer_sees_full_run() {
        use wsnloc_obs::TraceObserver;
        let (net, _) = small_world(12);
        let loc = BnlLocalizer::particle(80)
            .with_max_iterations(3)
            .with_tolerance(0.0);
        let obs = TraceObserver::new();
        let r = loc.localize_with_observer(&net, 0, &obs);
        let run = obs.last_run().expect("one recorded run");
        assert_eq!(run.info.backend, "particle");
        assert_eq!(run.iterations.len(), r.iterations);
        assert_eq!(run.summary.map(|s| s.comm.messages), Some(r.comm.messages));
        // Byte accounting through the observer matches the result's ledger.
        assert_eq!(run.summary.map(|s| s.comm.bytes), Some(r.comm.bytes));
        let spans: Vec<_> = run.spans.iter().map(|(k, _)| *k).collect();
        assert!(spans.contains(&wsnloc_obs::SpanKind::ModelBuild));
        assert!(spans.contains(&wsnloc_obs::SpanKind::PriorInit));
        assert!(spans.contains(&wsnloc_obs::SpanKind::MessagePassing));
        assert!(spans.contains(&wsnloc_obs::SpanKind::EstimateExtract));
        // Residuals recorded for every free node each iteration.
        let free = net.unknowns().count();
        assert!(run.iterations.iter().all(|it| it.residuals.len() == free));
    }

    #[test]
    fn map_fallback_is_reported_not_silent() {
        use wsnloc_obs::{ObsEvent, TraceObserver};
        let (net, _) = small_world(13);
        for (loc, backend) in [
            (
                BnlLocalizer::particle(60)
                    .with_estimator(Estimator::Map)
                    .with_max_iterations(2),
                "particle",
            ),
            (
                BnlLocalizer::gaussian()
                    .with_estimator(Estimator::Map)
                    .with_max_iterations(2),
                "gaussian",
            ),
        ] {
            let obs = TraceObserver::new();
            let mmse = loc
                .clone()
                .with_estimator(Estimator::Mmse)
                .localize(&net, 0);
            let map = loc.localize_with_observer(&net, 0, &obs);
            // The fallback means MAP and MMSE coincide on these backends…
            assert_eq!(map.estimates, mmse.estimates);
            // …and the switch is reported as a structured event.
            let run = obs.last_run().expect("run recorded");
            assert!(run
                .events
                .iter()
                .any(|e| matches!(e, ObsEvent::MapFallbackToMmse { backend: b } if *b == backend)));
        }
        // The grid backend has a real mode: no fallback event.
        let obs = TraceObserver::new();
        let _ = BnlLocalizer::grid(20)
            .with_estimator(Estimator::Map)
            .with_max_iterations(2)
            .localize_with_observer(&net, 0, &obs);
        assert!(obs.last_run().expect("run").events.is_empty());
    }

    #[test]
    fn map_estimator_works_on_grid() {
        let (net, truth) = small_world(8);
        let loc = BnlLocalizer::grid(25)
            .with_prior(PriorModel::DropPoint { sigma: 40.0 })
            .with_estimator(Estimator::Map)
            .with_max_iterations(5);
        let r = loc.localize(&net, 0);
        let err = mean_error(&r, &truth, &net);
        assert!(err < 90.0, "MAP mean error {err}");
    }
}
