//! Typed, construction-validated option bundles for the localizer.
//!
//! Every knob that used to ride on `BnlLocalizer` as a loose setter now
//! lives in a typed bundle that is *impossible to construct invalid*:
//! [`ParticleOptions`]/[`GridOptions`] parameterize their
//! [`Backend`](crate::localizer::Backend) variants, and [`ShardPlan`]
//! opts a localizer into sharded BP execution. Constructors return
//! [`ValidationError`] at the point of construction — a bad particle
//! count or halo radius fails where it is written, not iterations later
//! inside `try_build` (or worse, inside a run).

use wsnloc_bayes::{CoarseToFine, GridPrecision, ValidationError};

/// Options for the nonparametric (particle) backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParticleOptions {
    pub(crate) particles: usize,
}

impl ParticleOptions {
    /// `particles` per unknown node; must be at least 1.
    pub fn new(particles: usize) -> Result<Self, ValidationError> {
        if particles == 0 {
            return Err(ValidationError::InvalidOption {
                option: "particles",
                value: 0.0,
                requirement: "must be at least 1 particle per node",
            });
        }
        Ok(ParticleOptions { particles })
    }

    /// Particles per unknown node.
    #[must_use]
    pub fn particles(&self) -> usize {
        self.particles
    }
}

/// Options for the grid (discrete Bayesian-network) backend: resolution
/// plus the numeric-precision and coarse-to-fine knobs that are
/// meaningless on any other backend — which is why they live here and
/// not on the localizer builder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridOptions {
    pub(crate) resolution: usize,
    pub(crate) precision: GridPrecision,
    pub(crate) refine: Option<CoarseToFine>,
}

impl GridOptions {
    /// `resolution` cells along each axis of the field bounding box;
    /// must be at least 2. Precision defaults to
    /// [`GridPrecision::F64`], coarse-to-fine refinement to off.
    pub fn new(resolution: usize) -> Result<Self, ValidationError> {
        if resolution < 2 {
            return Err(ValidationError::InvalidOption {
                option: "resolution",
                value: resolution as f64,
                requirement: "must be at least 2 cells per side",
            });
        }
        Ok(GridOptions {
            resolution,
            precision: GridPrecision::default(),
            refine: None,
        })
    }

    /// Selects the numeric precision of the grid message hot path.
    /// [`GridPrecision::F32`] is an opt-in speed/accuracy trade-off.
    #[must_use]
    pub fn precision(mut self, precision: GridPrecision) -> Self {
        self.precision = precision;
        self
    }

    /// Enables the coarse-to-fine schedule, validated here.
    pub fn refine(mut self, refine: CoarseToFine) -> Result<Self, ValidationError> {
        self.refine = Some(refine.validated()?);
        Ok(self)
    }

    /// Cells along each axis.
    #[must_use]
    pub fn resolution(&self) -> usize {
        self.resolution
    }
}

/// Opt-in sharded BP execution: the deployment is cut into spatial
/// tiles (`wsnloc-geom`'s [`ShardLayout`](wsnloc_geom::ShardLayout)),
/// each tile sweeps its interior independently on the worker pool, and
/// tiles reconcile through halo exchange each outer round. Meant for
/// deployments from the tens of thousands of nodes up; on a layout that
/// resolves to a single tile the localizer runs the flat engine,
/// bit-identically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardPlan {
    pub(crate) target_shard_nodes: usize,
    pub(crate) interior_iterations: usize,
    pub(crate) halo_radius: Option<f64>,
}

impl ShardPlan {
    /// Shards sized to roughly `target_shard_nodes` nodes each (at
    /// least 1); the tile grid is derived per network via
    /// [`ShardLayout::tiles_for_target`](wsnloc_geom::ShardLayout::tiles_for_target).
    /// Interior iterations default to 1 (tightest flat-equivalence),
    /// the halo radius to twice the network's mean node spacing.
    pub fn target_nodes(target_shard_nodes: usize) -> Result<Self, ValidationError> {
        if target_shard_nodes == 0 {
            return Err(ValidationError::InvalidOption {
                option: "target_shard_nodes",
                value: 0.0,
                requirement: "must be at least 1 node per shard",
            });
        }
        Ok(ShardPlan {
            target_shard_nodes,
            interior_iterations: 1,
            halo_radius: None,
        })
    }

    /// BP iterations each shard runs between boundary exchanges (at
    /// least 1). Larger values cut synchronization overhead at the cost
    /// of boundary staleness.
    pub fn interior_iterations(mut self, k: usize) -> Result<Self, ValidationError> {
        if k == 0 {
            return Err(ValidationError::InvalidOption {
                option: "interior_iterations",
                value: 0.0,
                requirement: "must be at least 1 interior iteration per round",
            });
        }
        self.interior_iterations = k;
        Ok(self)
    }

    /// Geometric halo radius in meters (positive, finite). Purely a
    /// padding knob: the sharded engine always closes halos over the
    /// factor-graph adjacency, so correctness never depends on this
    /// bounding the longest edge.
    pub fn halo_radius(mut self, radius: f64) -> Result<Self, ValidationError> {
        if !(radius > 0.0 && radius.is_finite()) {
            return Err(ValidationError::InvalidOption {
                option: "halo_radius",
                value: radius,
                requirement: "must be positive and finite",
            });
        }
        self.halo_radius = Some(radius);
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn particle_options_validate_at_construction() {
        assert!(ParticleOptions::new(0).is_err());
        assert_eq!(ParticleOptions::new(300).expect("valid").particles(), 300);
    }

    #[test]
    fn grid_options_validate_at_construction() {
        assert!(GridOptions::new(0).is_err());
        assert!(GridOptions::new(1).is_err());
        let g = GridOptions::new(25)
            .expect("valid")
            .precision(GridPrecision::F32);
        assert_eq!(g.resolution(), 25);
        assert_eq!(g.precision, GridPrecision::F32);
        // Refinement parameters are checked when attached.
        let bad = CoarseToFine {
            factor: 1,
            ..CoarseToFine::default()
        };
        assert!(GridOptions::new(25).expect("valid").refine(bad).is_err());
        let ok = GridOptions::new(25)
            .expect("valid")
            .refine(CoarseToFine::default())
            .expect("default schedule is valid");
        assert!(ok.refine.is_some());
    }

    #[test]
    fn shard_plan_validates_at_construction() {
        assert!(ShardPlan::target_nodes(0).is_err());
        let plan = ShardPlan::target_nodes(5000).expect("valid");
        assert_eq!(plan.interior_iterations, 1);
        assert!(plan.interior_iterations(0).is_err());
        assert!(plan.halo_radius(0.0).is_err());
        assert!(plan.halo_radius(f64::NAN).is_err());
        assert!(plan.halo_radius(f64::INFINITY).is_err());
        let tuned = plan
            .interior_iterations(3)
            .expect("valid")
            .halo_radius(120.0)
            .expect("valid");
        assert_eq!(tuned.interior_iterations, 3);
        assert_eq!(tuned.halo_radius, Some(120.0));
    }
}
