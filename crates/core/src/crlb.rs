//! Cramér–Rao lower bound for range-based cooperative localization.
//!
//! The Fisher information matrix over the stacked unknown positions is
//! assembled from (a) every range measurement — each edge `(i, j)` at true
//! distance `d` with noise standard deviation `σ(d)` contributes
//! `uuᵀ/σ²` to the incident 2×2 blocks, where `u` is the unit vector between
//! the nodes — and (b) Gaussian pre-knowledge priors, each adding
//! `I₂/σ_p²` to its node's diagonal block. The per-node position-error
//! bound is `sqrt(tr([J⁻¹]_kk))`.
//!
//! The bound uses the *true* geometry (ground truth is an input): it is an
//! evaluation-side instrument, telling experiments how far a given
//! achieved error is from the information-theoretic floor (experiment F10),
//! and quantifying exactly how much information pre-knowledge injects.

use wsnloc_geom::Matrix;
use wsnloc_net::{GroundTruth, Network};

/// Per-node CRLB on position RMS error (meters); `None` for anchors.
///
/// `prior_sigma`: the standard deviation of Gaussian pre-knowledge priors
/// applied to every unknown (use `None` for the no-pre-knowledge bound).
/// Returns `None` for every node when the Fisher matrix is singular (an
/// under-determined network with neither enough anchors nor priors).
pub fn crlb_per_node(
    network: &Network,
    truth: &GroundTruth,
    prior_sigma: Option<f64>,
) -> Option<Vec<Option<f64>>> {
    let unknowns: Vec<usize> = network.unknowns().collect();
    if unknowns.is_empty() {
        return Some(vec![None; network.len()]);
    }
    let index_of: std::collections::BTreeMap<usize, usize> = unknowns
        .iter()
        .enumerate()
        .map(|(k, &id)| (id, k))
        .collect();
    let m = unknowns.len();
    let mut fim = Matrix::zeros(2 * m, 2 * m);

    // Measurement information.
    let ranging = network.ranging();
    for meas in network.measurements() {
        let pa = truth.position(meas.a);
        let pb = truth.position(meas.b);
        let d = pa.dist(pb).max(1e-9);
        let u = (pa - pb) / d;
        let sigma = ranging.noise_std(d).max(1e-9);
        let w = 1.0 / (sigma * sigma);
        let g = [u.x, u.y];
        let ia = index_of.get(&meas.a).copied();
        let ib = index_of.get(&meas.b).copied();
        for r in 0..2 {
            for c in 0..2 {
                let val = w * g[r] * g[c];
                if let Some(i) = ia {
                    fim[(2 * i + r, 2 * i + c)] += val;
                }
                if let Some(j) = ib {
                    fim[(2 * j + r, 2 * j + c)] += val;
                }
                if let (Some(i), Some(j)) = (ia, ib) {
                    fim[(2 * i + r, 2 * j + c)] -= val;
                    fim[(2 * j + r, 2 * i + c)] -= val;
                }
            }
        }
    }

    // Prior information.
    if let Some(sp) = prior_sigma {
        let w = 1.0 / (sp * sp);
        for k in 0..m {
            fim[(2 * k, 2 * k)] += w;
            fim[(2 * k + 1, 2 * k + 1)] += w;
        }
    } else {
        // Uniform prior over the finite field carries negligible curvature;
        // regularize at the scale of the field so disconnected nodes read
        // "field-sized uncertainty" instead of breaking the inversion.
        let diag = network.field_bounds().diagonal();
        let w = 1.0 / (diag * diag);
        for k in 0..2 * m {
            fim[(k, k)] += w;
        }
    }

    let inv = fim.inverse_spd()?;
    let mut out = vec![None; network.len()];
    for (k, &id) in unknowns.iter().enumerate() {
        let var = inv[(2 * k, 2 * k)] + inv[(2 * k + 1, 2 * k + 1)];
        out[id] = Some(var.max(0.0).sqrt());
    }
    Some(out)
}

/// Mean CRLB over unknowns (convenience for sweep tables).
pub fn mean_crlb(network: &Network, truth: &GroundTruth, prior_sigma: Option<f64>) -> Option<f64> {
    let per_node = crlb_per_node(network, truth, prior_sigma)?;
    let values: Vec<f64> = per_node.into_iter().flatten().collect();
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsnloc_geom::Aabb;
    use wsnloc_geom::{Shape, Vec2};
    use wsnloc_net::network::NetworkBuilder;
    use wsnloc_net::{AnchorStrategy, Deployment, Measurement, NodeKind, RadioModel, RangingModel};

    /// One unknown at the center of three anchors with σ = 1 ranging.
    fn triangle_world(sigma: f64) -> (Network, GroundTruth) {
        let anchors = [
            Vec2::new(0.0, 0.0),
            Vec2::new(100.0, 0.0),
            Vec2::new(50.0, 90.0),
        ];
        let unknown = Vec2::new(50.0, 30.0);
        let positions = vec![anchors[0], anchors[1], anchors[2], unknown];
        let measurements: Vec<Measurement> = (0..3)
            .map(|i| Measurement {
                a: i,
                b: 3,
                distance: anchors[i].dist(unknown),
            })
            .collect();
        let net = Network::from_parts(
            Shape::Rect(Aabb::from_size(100.0, 100.0)),
            RadioModel::UnitDisk { range: 150.0 },
            RangingModel::AdditiveGaussian { sigma },
            vec![
                NodeKind::Anchor,
                NodeKind::Anchor,
                NodeKind::Anchor,
                NodeKind::Unknown,
            ],
            vec![Some(anchors[0]), Some(anchors[1]), Some(anchors[2]), None],
            vec![None; 4],
            measurements,
        );
        (net, GroundTruth::from_positions(positions))
    }

    #[test]
    fn triangle_bound_scales_with_noise() {
        let (n1, t1) = triangle_world(1.0);
        let (n5, t5) = triangle_world(5.0);
        let b1 = crlb_per_node(&n1, &t1, None).unwrap()[3].unwrap();
        let b5 = crlb_per_node(&n5, &t5, None).unwrap()[3].unwrap();
        // Bound scales linearly with σ for fixed geometry.
        assert!((b5 / b1 - 5.0).abs() < 0.1, "b1 {b1}, b5 {b5}");
        // With three well-spread anchors and σ=1, bound is near 1.
        assert!(b1 > 0.5 && b1 < 2.5, "bound {b1}");
    }

    #[test]
    fn anchors_have_no_bound() {
        let (net, truth) = triangle_world(1.0);
        let b = crlb_per_node(&net, &truth, None).unwrap();
        assert!(b[0].is_none() && b[1].is_none() && b[2].is_none());
        assert!(b[3].is_some());
    }

    #[test]
    fn priors_tighten_the_bound() {
        let (net, truth) = triangle_world(5.0);
        let without = crlb_per_node(&net, &truth, None).unwrap()[3].unwrap();
        let with = crlb_per_node(&net, &truth, Some(3.0)).unwrap()[3].unwrap();
        assert!(with < without, "prior bound {with} vs {without}");
        // Extremely tight prior dominates entirely.
        let tight = crlb_per_node(&net, &truth, Some(0.01)).unwrap()[3].unwrap();
        assert!(tight < 0.02);
    }

    #[test]
    fn disconnected_unknown_reads_field_scale() {
        // An unknown with no measurements at all.
        let positions = vec![Vec2::new(10.0, 10.0), Vec2::new(50.0, 50.0)];
        let net = Network::from_parts(
            Shape::Rect(Aabb::from_size(100.0, 100.0)),
            RadioModel::UnitDisk { range: 10.0 },
            RangingModel::AdditiveGaussian { sigma: 1.0 },
            vec![NodeKind::Anchor, NodeKind::Unknown],
            vec![Some(positions[0]), None],
            vec![None; 2],
            vec![],
        );
        let truth = GroundTruth::from_positions(positions);
        let b = crlb_per_node(&net, &truth, None).unwrap()[1].unwrap();
        let diag = net.field_bounds().diagonal();
        assert!((b - diag * (2.0f64).sqrt()).abs() < 1.0, "bound {b}");
    }

    #[test]
    fn cooperation_tightens_bounds_network_wide() {
        // Bound with all measurements vs bound with anchor-links only: the
        // unknown–unknown edges must strictly add information.
        let builder = NetworkBuilder {
            deployment: Deployment::uniform_square(500.0),
            node_count: 40,
            anchors: AnchorStrategy::Random { count: 6 },
            radio: RadioModel::UnitDisk { range: 150.0 },
            ranging: RangingModel::AdditiveGaussian { sigma: 5.0 },
        };
        let (net, truth) = builder.build(11);
        let full = mean_crlb(&net, &truth, None).unwrap();

        // Strip unknown–unknown measurements.
        let anchor_only: Vec<Measurement> = net
            .measurements()
            .iter()
            .copied()
            .filter(|m| net.is_anchor(m.a) || net.is_anchor(m.b))
            .collect();
        let kinds: Vec<NodeKind> = (0..net.len()).map(|i| net.kind(i)).collect();
        let anchor_positions: Vec<Option<Vec2>> =
            (0..net.len()).map(|i| net.anchor_position(i)).collect();
        let stripped = Network::from_parts(
            net.field().clone(),
            net.radio(),
            net.ranging(),
            kinds,
            anchor_positions,
            vec![None; net.len()],
            anchor_only,
        );
        let stripped_bound = mean_crlb(&stripped, &truth, None).unwrap();
        assert!(
            full < stripped_bound,
            "cooperative bound {full} must beat anchor-only {stripped_bound}"
        );
    }

    #[test]
    fn empty_unknown_set_is_trivial() {
        let positions = vec![Vec2::new(1.0, 1.0)];
        let net = Network::from_parts(
            Shape::Rect(Aabb::from_size(10.0, 10.0)),
            RadioModel::UnitDisk { range: 5.0 },
            RangingModel::AdditiveGaussian { sigma: 1.0 },
            vec![NodeKind::Anchor],
            vec![Some(positions[0])],
            vec![None],
            vec![],
        );
        let truth = GroundTruth::from_positions(positions);
        let b = crlb_per_node(&net, &truth, None).unwrap();
        assert_eq!(b, vec![None]);
    }
}
