//! Network → Bayesian network translation.
//!
//! [`build_mrf`] assembles the spatial Markov random field (the continuous
//! Bayesian network of the paper) from an observable [`Network`]:
//! anchors become fixed variables, every range measurement becomes a
//! pairwise factor, and the chosen [`PriorModel`] supplies the unary
//! pre-knowledge factors. Optionally, sampled non-edges become negative
//! connectivity constraints.

use crate::adapter::{ConnectivityPotential, RangingPotential};
use crate::prior::PriorModel;
use std::sync::Arc;
use wsnloc_bayes::SpatialMrf;
use wsnloc_geom::rng::Xoshiro256pp;
use wsnloc_net::Network;

/// Options for the model translation.
#[derive(Debug, Clone, Copy)]
pub struct ModelOptions {
    /// Add "not connected" factors for this many sampled non-neighbor pairs
    /// per node (0 disables negative information). Sampling keeps the graph
    /// sparse; exhaustively adding all ~N² non-edges would destroy the
    /// message-passing cost model.
    pub negative_constraints_per_node: usize,
    /// Seed for non-edge sampling.
    pub seed: u64,
}

impl Default for ModelOptions {
    fn default() -> Self {
        ModelOptions {
            negative_constraints_per_node: 0,
            seed: 0xCAFE,
        }
    }
}

/// Builds the localization MRF for a network under a prior model.
pub fn build_mrf(network: &Network, prior: &PriorModel, opts: &ModelOptions) -> SpatialMrf {
    let priors = prior.build(network);
    let bounds = network.field_bounds();
    // Seed with an arbitrary default; per-node priors overwrite every slot.
    let mut mrf = SpatialMrf::new(network.len(), bounds, priors[0].clone());
    for (id, p) in priors.into_iter().enumerate() {
        mrf.set_unary(id, p);
    }
    for (id, pos) in network.anchors() {
        mrf.fix(id, pos);
    }
    let ranging = network.ranging();
    for m in network.measurements() {
        mrf.add_edge(
            m.a,
            m.b,
            Arc::new(RangingPotential {
                observed: m.distance,
                model: ranging,
            }),
        );
    }

    if opts.negative_constraints_per_node > 0 {
        let mut rng = Xoshiro256pp::seed_from(opts.seed);
        let n = network.len();
        for u in 0..n {
            let mut added = 0;
            let mut attempts = 0;
            while added < opts.negative_constraints_per_node && attempts < 20 * n {
                attempts += 1;
                let v = rng.index(n);
                if v == u || network.topology().connected(u, v) {
                    continue;
                }
                // Only constrain ordered pairs once.
                if v < u {
                    continue;
                }
                mrf.add_edge(
                    u,
                    v,
                    Arc::new(ConnectivityPotential {
                        radio: network.radio(),
                        connected: false,
                    }),
                );
                added += 1;
            }
        }
    }
    mrf
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsnloc_net::network::NetworkBuilder;
    use wsnloc_net::{AnchorStrategy, Deployment, RadioModel, RangingModel};

    fn network() -> Network {
        NetworkBuilder {
            deployment: Deployment::planned_square_drop(500.0, 3, 40.0),
            node_count: 36,
            anchors: AnchorStrategy::Random { count: 5 },
            radio: RadioModel::UnitDisk { range: 150.0 },
            ranging: RangingModel::Multiplicative { factor: 0.1 },
        }
        .build(3)
        .0
    }

    #[test]
    fn mrf_mirrors_network_structure() {
        let net = network();
        let mrf = build_mrf(&net, &PriorModel::Uninformative, &ModelOptions::default());
        assert_eq!(mrf.len(), net.len());
        assert_eq!(mrf.edges().len(), net.measurements().len());
        // Anchors fixed at their positions.
        for (id, pos) in net.anchors() {
            assert_eq!(mrf.fixed(id), Some(pos));
        }
        assert_eq!(mrf.free_vars().len(), net.len() - net.anchor_count());
    }

    #[test]
    fn edge_potentials_peak_at_measured_distance() {
        let net = network();
        let mrf = build_mrf(&net, &PriorModel::Uninformative, &ModelOptions::default());
        for (e, m) in mrf.edges().iter().zip(net.measurements()) {
            assert_eq!((e.u, e.v), (m.a, m.b));
            let at_obs = e.potential.log_likelihood(m.distance);
            assert!(at_obs >= e.potential.log_likelihood(m.distance * 0.7));
            assert!(at_obs >= e.potential.log_likelihood(m.distance * 1.4));
        }
    }

    #[test]
    fn drop_point_priors_attach() {
        let net = network();
        let mrf = build_mrf(
            &net,
            &PriorModel::DropPoint { sigma: 60.0 },
            &ModelOptions::default(),
        );
        for &u in &mrf.free_vars() {
            let plan = net.planned_position(u).unwrap();
            assert_eq!(mrf.unary(u).log_density(plan), 0.0);
        }
    }

    #[test]
    fn negative_constraints_add_extra_edges() {
        let net = network();
        let base = build_mrf(&net, &PriorModel::Uninformative, &ModelOptions::default());
        let with_neg = build_mrf(
            &net,
            &PriorModel::Uninformative,
            &ModelOptions {
                negative_constraints_per_node: 2,
                seed: 1,
            },
        );
        assert!(with_neg.edges().len() > base.edges().len());
        // Negative edges connect non-neighbors only.
        for e in &with_neg.edges()[base.edges().len()..] {
            assert!(!net.topology().connected(e.u, e.v));
        }
    }

    #[test]
    fn negative_constraint_sampling_is_deterministic() {
        let net = network();
        let opts = ModelOptions {
            negative_constraints_per_node: 3,
            seed: 77,
        };
        let a = build_mrf(&net, &PriorModel::Uninformative, &opts);
        let b = build_mrf(&net, &PriorModel::Uninformative, &opts);
        assert_eq!(a.edges().len(), b.edges().len());
        for (x, y) in a.edges().iter().zip(b.edges()) {
            assert_eq!((x.u, x.v), (y.u, y.v));
        }
    }
}
