//! Epoch-to-epoch localization sessions with belief carry-over.
//!
//! A [`LocalizationSession`] is the stateful, streaming counterpart of
//! [`BnlLocalizer::localize`]: it runs one BP solve per *measurement
//! epoch* and carries the posterior beliefs forward, convolving them
//! with a [`MotionModel`] so that each epoch starts from last epoch's
//! knowledge instead of from the static pre-knowledge prior. This is
//! the paper's pre-knowledge idea made recursive — the posterior at
//! time `t`, pushed through `x_{t+1} = F·x_t + w`, *is* the
//! pre-knowledge at time `t+1` — and it is what lets a moving network
//! be tracked with 2–3 BP iterations per epoch instead of re-solved
//! from scratch.
//!
//! One-shot localization is the degenerate single-epoch case:
//! [`BnlLocalizer::localize`] constructs a fresh session and advances
//! it once, so observers, fault plans, and metrics flow through one
//! code path whether the caller streams or not.

use crate::localizer::BnlLocalizer;
use crate::result::LocalizationResult;
use wsnloc_bayes::engine::Belief;
use wsnloc_bayes::{GaussianBelief, GridBelief, MotionModel, ParticleBelief};
use wsnloc_geom::rng::Xoshiro256pp;
use wsnloc_geom::Vec2;
use wsnloc_net::Network;
use wsnloc_obs::{InferenceObserver, NullObserver, Stopwatch};

/// Seed-mixing tag for the motion-prediction RNG stream, so particle
/// jitter draws can never collide with the engines' own streams.
const MOTION_STREAM_TAG: u64 = 0x4D07_10DE;

/// Posterior beliefs carried between epochs, type-erased over the
/// backend that produced them. One entry per network node (anchor
/// entries are present but ignored on re-entry — anchors re-fix).
#[derive(Debug, Clone)]
pub enum CarriedBeliefs {
    /// Grid-backend cell histograms.
    Grid(Vec<GridBelief>),
    /// Particle-backend weighted particle sets.
    Particle(Vec<ParticleBelief>),
    /// Gaussian-backend means and covariances.
    Gaussian(Vec<GaussianBelief>),
}

impl CarriedBeliefs {
    /// Number of per-node beliefs carried.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            CarriedBeliefs::Grid(v) => v.len(),
            CarriedBeliefs::Particle(v) => v.len(),
            CarriedBeliefs::Gaussian(v) => v.len(),
        }
    }

    /// `true` iff no beliefs are carried.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point estimate and RMS spread of node `id`'s carried belief.
    #[must_use]
    pub fn moments(&self, id: usize) -> (Vec2, f64) {
        match self {
            CarriedBeliefs::Grid(v) => (v[id].mean(), Belief::spread(&v[id])),
            CarriedBeliefs::Particle(v) => (v[id].mean(), Belief::spread(&v[id])),
            CarriedBeliefs::Gaussian(v) => (v[id].mean, v[id].spread()),
        }
    }

    /// The predict step: every belief convolved with `motion`. The
    /// particle variant's process-noise jitter draws from a dedicated
    /// stream derived from `seed` (mixed with [`MOTION_STREAM_TAG`]
    /// and split per node), leaving engine RNG streams untouched.
    #[must_use]
    pub fn predicted(&self, motion: &MotionModel, seed: u64) -> CarriedBeliefs {
        match self {
            CarriedBeliefs::Grid(v) => {
                CarriedBeliefs::Grid(v.iter().map(|b| motion.predict_grid(b)).collect())
            }
            CarriedBeliefs::Particle(v) => {
                let root = Xoshiro256pp::seed_from(seed ^ MOTION_STREAM_TAG);
                CarriedBeliefs::Particle(
                    v.iter()
                        .enumerate()
                        .map(|(u, b)| {
                            let mut rng = root.split(u as u64);
                            motion.predict_particles(b, &mut rng)
                        })
                        .collect(),
                )
            }
            CarriedBeliefs::Gaussian(v) => {
                CarriedBeliefs::Gaussian(v.iter().map(|b| motion.predict_gaussian(b)).collect())
            }
        }
    }
}

/// A long-lived localization session: one BP solve per measurement
/// epoch, with posterior beliefs carried (and motion-convolved)
/// between epochs.
///
/// ```
/// use wsnloc::prelude::*;
/// use wsnloc::session::LocalizationSession;
///
/// let scenario = Scenario::standard_with_preknowledge(100.0);
/// let (network, _truth) = scenario.build_trial(0);
/// let engine = BnlLocalizer::builder(Backend::particle(80).expect("valid backend"))
///     .max_iterations(2)
///     .try_build()
///     .expect("valid configuration");
/// let mut session = LocalizationSession::new(engine)
///     .with_motion(MotionModel::random_walk(5.0));
/// let first = session.advance(&network, 7);
/// let second = session.advance(&network, 8); // warm-started
/// assert_eq!(session.epoch(), 2);
/// assert_eq!(first.estimates.len(), second.estimates.len());
/// ```
#[derive(Debug, Clone)]
pub struct LocalizationSession {
    engine: BnlLocalizer,
    motion: Option<MotionModel>,
    carried: Option<CarriedBeliefs>,
    epoch: u64,
}

impl LocalizationSession {
    /// Opens a session around a configured localizer. Without a motion
    /// model, carried beliefs re-enter the next epoch unchanged
    /// (appropriate for a static network observed repeatedly).
    #[must_use]
    pub fn new(engine: BnlLocalizer) -> Self {
        LocalizationSession {
            engine,
            motion: None,
            carried: None,
            epoch: 0,
        }
    }

    /// Sets the between-epoch motion model (the predict step).
    #[must_use]
    pub fn with_motion(mut self, motion: MotionModel) -> Self {
        self.motion = Some(motion);
        self
    }

    /// The underlying localizer configuration.
    #[must_use]
    pub fn engine(&self) -> &BnlLocalizer {
        &self.engine
    }

    /// Epochs advanced (or coasted) so far.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether the session holds carried beliefs to warm-start from.
    #[must_use]
    pub fn is_warm(&self) -> bool {
        self.carried.is_some()
    }

    /// Drops all carried state; the next epoch cold-starts from the
    /// configured pre-knowledge prior, exactly as a fresh session.
    pub fn reset(&mut self) {
        self.carried = None;
        self.epoch = 0;
    }

    /// Advances one epoch: motion-predicts the carried beliefs, runs
    /// the localizer warm-started from them, and captures the new
    /// posterior for the next epoch.
    pub fn advance(&mut self, network: &Network, seed: u64) -> LocalizationResult {
        self.advance_full(network, seed, &NullObserver, |_, _| {})
    }

    /// [`LocalizationSession::advance`] with structured telemetry
    /// reported into `observer`.
    pub fn advance_observed(
        &mut self,
        network: &Network,
        seed: u64,
        observer: &dyn InferenceObserver,
    ) -> LocalizationResult {
        self.advance_full(network, seed, observer, |_, _| {})
    }

    /// The full epoch path: telemetry observer plus the estimate-level
    /// per-iteration callback. A carried-belief/network size mismatch
    /// (the scenario changed under the session) falls back to a cold
    /// start rather than indexing out of range.
    pub fn advance_full<F>(
        &mut self,
        network: &Network,
        seed: u64,
        observer: &dyn InferenceObserver,
        on_iteration: F,
    ) -> LocalizationResult
    where
        F: FnMut(usize, &[Option<Vec2>]),
    {
        let warm = self
            .carried
            .take()
            .map(|c| match &self.motion {
                Some(m) => c.predicted(m, seed),
                None => c,
            })
            .filter(|c| c.len() == network.len());
        let (result, carried) =
            self.engine
                .localize_epoch(network, seed, warm.as_ref(), observer, on_iteration);
        self.carried = Some(carried);
        self.epoch += 1;
        result
    }

    /// Degraded epoch under load shedding: no BP runs. The carried
    /// beliefs receive their motion predict (so uncertainty grows and
    /// a later real epoch resumes consistently — the `DecayToPrior`
    /// behavior at the session level) and the predicted moments are
    /// reported as this epoch's estimates. Anchors report their known
    /// positions; a session with no carried state yet reports only
    /// anchors.
    pub fn coast(&mut self, network: &Network, seed: u64) -> LocalizationResult {
        let start = Stopwatch::start();
        if let (Some(c), Some(m)) = (self.carried.as_ref(), self.motion.as_ref()) {
            self.carried = Some(c.predicted(m, seed));
        }
        let mut result = self.report_carried(network);
        self.epoch += 1;
        result.elapsed_secs = start.elapsed_secs();
        result
    }

    /// Degraded epoch under the `HoldLast` policy: no BP runs and no
    /// motion predict either — the carried beliefs stay frozen and last
    /// epoch's moments are re-reported verbatim.
    pub fn hold(&mut self, network: &Network) -> LocalizationResult {
        let start = Stopwatch::start();
        let mut result = self.report_carried(network);
        self.epoch += 1;
        result.elapsed_secs = start.elapsed_secs();
        result
    }

    /// Anchors at their known positions plus carried-belief moments for
    /// every free node (when carried state matches the network).
    fn report_carried(&self, network: &Network) -> LocalizationResult {
        let mut result = LocalizationResult::empty(network.len());
        for (id, pos) in network.anchors() {
            result.estimates[id] = Some(pos);
            result.uncertainty[id] = Some(0.0);
        }
        if let Some(c) = self.carried.as_ref().filter(|c| c.len() == network.len()) {
            for id in 0..network.len() {
                if !network.is_anchor(id) {
                    let (mean, spread) = c.moments(id);
                    result.estimates[id] = Some(mean);
                    result.uncertainty[id] = Some(spread);
                }
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::localizer::Backend;
    use crate::prior::PriorModel;
    use crate::result::Localizer;
    use wsnloc_net::network::NetworkBuilder;
    use wsnloc_net::{AnchorStrategy, Deployment, GroundTruth, RadioModel, RangingModel};

    fn world(seed: u64) -> (Network, GroundTruth) {
        NetworkBuilder {
            deployment: Deployment::planned_square_drop(500.0, 4, 40.0),
            node_count: 40,
            anchors: AnchorStrategy::Random { count: 6 },
            radio: RadioModel::UnitDisk { range: 180.0 },
            ranging: RangingModel::Multiplicative { factor: 0.05 },
        }
        .build(seed)
    }

    fn engine() -> BnlLocalizer {
        BnlLocalizer::builder(Backend::particle(80).expect("valid backend"))
            .prior(PriorModel::DropPoint { sigma: 40.0 })
            .max_iterations(3)
            .tolerance(0.0)
            .try_build()
            .expect("valid config")
    }

    #[test]
    fn single_epoch_session_matches_one_shot_localize() {
        let (network, _) = world(1);
        let algo = engine();
        let one_shot = algo.localize(&network, 42);
        let mut session = LocalizationSession::new(algo);
        let epoch = session.advance(&network, 42);
        assert_eq!(one_shot.estimates, epoch.estimates);
        assert_eq!(one_shot.uncertainty, epoch.uncertainty);
        assert_eq!(one_shot.iterations, epoch.iterations);
    }

    #[test]
    fn warm_epochs_are_deterministic() {
        let (network, _) = world(2);
        let run = || {
            let mut s =
                LocalizationSession::new(engine()).with_motion(MotionModel::random_walk(4.0));
            let _ = s.advance(&network, 1);
            s.advance(&network, 2)
        };
        let a = run();
        let b = run();
        assert_eq!(a.estimates, b.estimates);
        assert_eq!(a.uncertainty, b.uncertainty);
    }

    #[test]
    fn warm_start_differs_from_cold_start() {
        let (network, _) = world(3);
        let mut s = LocalizationSession::new(engine());
        let _ = s.advance(&network, 1);
        assert!(s.is_warm());
        let warm = s.advance(&network, 2);
        let cold = engine().localize(&network, 2);
        assert_ne!(warm.estimates, cold.estimates);
    }

    #[test]
    fn reset_restores_cold_start() {
        let (network, _) = world(4);
        let mut s = LocalizationSession::new(engine());
        let first = s.advance(&network, 9);
        let _ = s.advance(&network, 10);
        s.reset();
        assert_eq!(s.epoch(), 0);
        let again = s.advance(&network, 9);
        assert_eq!(first.estimates, again.estimates);
    }

    #[test]
    fn coast_reports_predicted_moments_and_inflates_uncertainty() {
        let (network, _) = world(5);
        let mut s = LocalizationSession::new(engine()).with_motion(MotionModel::random_walk(10.0));
        let solved = s.advance(&network, 1);
        let coasted = s.coast(&network, 2);
        assert_eq!(s.epoch(), 2);
        let mut free_checked = 0;
        for id in 0..network.len() {
            if network.is_anchor(id) {
                assert_eq!(coasted.estimates[id], solved.estimates[id]);
                continue;
            }
            assert!(coasted.estimates[id].is_some());
            // Process noise must grow the reported spread.
            assert!(coasted.uncertainty[id].unwrap() > solved.uncertainty[id].unwrap());
            free_checked += 1;
        }
        assert!(free_checked > 0);
        assert_eq!(coasted.iterations, 0);
        assert!(!coasted.converged);
    }

    #[test]
    fn coast_before_any_epoch_reports_only_anchors() {
        let (network, _) = world(6);
        let mut s = LocalizationSession::new(engine());
        let r = s.coast(&network, 1);
        for id in 0..network.len() {
            assert_eq!(r.estimates[id].is_some(), network.is_anchor(id));
        }
    }

    #[test]
    fn size_mismatch_falls_back_to_cold_start() {
        let (big, _) = world(7);
        let (small, _) = NetworkBuilder {
            deployment: Deployment::planned_square_drop(500.0, 3, 40.0),
            node_count: 20,
            anchors: AnchorStrategy::Random { count: 5 },
            radio: RadioModel::UnitDisk { range: 200.0 },
            ranging: RangingModel::Multiplicative { factor: 0.05 },
        }
        .build(8);
        let mut s = LocalizationSession::new(engine());
        let _ = s.advance(&big, 1);
        let switched = s.advance(&small, 2);
        let cold = engine().localize(&small, 2);
        assert_eq!(switched.estimates, cold.estimates);
    }

    #[test]
    fn grid_and_gaussian_sessions_carry_over() {
        let (network, _) = world(9);
        for algo in [
            BnlLocalizer::builder(Backend::grid(20).expect("valid backend"))
                .prior(PriorModel::DropPoint { sigma: 40.0 })
                .max_iterations(2)
                .try_build()
                .expect("valid config"),
            BnlLocalizer::builder(Backend::gaussian())
                .prior(PriorModel::DropPoint { sigma: 40.0 })
                .max_iterations(2)
                .try_build()
                .expect("valid config"),
        ] {
            let mut s =
                LocalizationSession::new(algo.clone()).with_motion(MotionModel::random_walk(3.0));
            let _ = s.advance(&network, 1);
            let warm = s.advance(&network, 2);
            let cold = algo.localize(&network, 2);
            assert_ne!(
                warm.estimates,
                cold.estimates,
                "{} warm epoch must differ from cold",
                algo.name()
            );
        }
    }
}
