//! Pre-knowledge prior models.
//!
//! "Pre-knowledge" is whatever is known about node positions *before*
//! measurement. [`PriorModel`] enumerates the forms the paper's setting
//! admits and maps each node of a [`Network`] to a unary potential for the
//! Bayesian network. The interesting experimental axes are the prior's
//! *quality* (how tight `sigma` is relative to the true deployment scatter)
//! and its *coverage* (which fraction of nodes has any pre-knowledge at
//! all) — both are swept by experiment F6.

use std::sync::Arc;
use wsnloc_bayes::{GaussianUnary, UnaryPotential, UniformBoxUnary, UniformShapeUnary};
use wsnloc_geom::rng::Xoshiro256pp;
use wsnloc_geom::Shape;
use wsnloc_geom::Vec2;
use wsnloc_net::Network;

/// What is known about unknown-node positions before measurement.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PriorModel {
    /// No pre-knowledge: uniform over the field bounding box. This ablation
    /// turns BNL-PK into plain cooperative NBP.
    Uninformative,
    /// Gaussian prior centered on each node's planned drop point with the
    /// given standard deviation. Nodes whose deployment carries no plan
    /// fall back to uninformative.
    DropPoint {
        /// Prior standard deviation (meters). Well-specified when equal to
        /// the true deployment scatter; the F6 sweep deliberately
        /// mis-specifies it.
        sigma: f64,
    },
    /// Every unknown node is known to lie inside a region (e.g. "the
    /// corridor", "sector 7") — uniform over that shape.
    Region(Shape),
    /// An explicit Gaussian prior per node (`None` entries fall back to
    /// uninformative). This is how temporal tracking feeds one step's
    /// posterior into the next step's Bayesian network.
    PerNodeGaussian {
        /// Prior mean per node (`None` = uninformative).
        means: Vec<Option<Vec2>>,
        /// Prior standard deviation per node (ignored where `means` is
        /// `None`).
        sigmas: Vec<f64>,
    },
    /// Drop-point priors for a random fraction of nodes, uninformative for
    /// the rest — models partial pre-knowledge.
    PartialDropPoint {
        /// Prior standard deviation for covered nodes.
        sigma: f64,
        /// Fraction of unknowns with pre-knowledge, in `[0, 1]`.
        coverage: f64,
        /// Seed for the coverage lottery (kept in the model so the same
        /// configuration always covers the same nodes).
        seed: u64,
    },
}

impl PriorModel {
    /// Builds the per-node unary potentials for a network. The returned
    /// vector is indexed by node id; anchors get potentials too (unused by
    /// inference, which fixes them) for uniformity.
    pub fn build(&self, network: &Network) -> Vec<Arc<dyn UnaryPotential>> {
        let bounds = network.field_bounds();
        let uninformative: Arc<dyn UnaryPotential> = Arc::new(UniformBoxUnary(bounds));
        match self {
            PriorModel::Uninformative => vec![uninformative; network.len()],
            PriorModel::DropPoint { sigma } => (0..network.len())
                .map(|id| match network.planned_position(id) {
                    Some(mean) => Arc::new(GaussianUnary {
                        mean,
                        sigma: *sigma,
                    }) as Arc<dyn UnaryPotential>,
                    None => uninformative.clone(),
                })
                .collect(),
            PriorModel::PerNodeGaussian { means, sigmas } => {
                assert_eq!(means.len(), network.len(), "one mean slot per node");
                assert_eq!(sigmas.len(), network.len(), "one sigma per node");
                means
                    .iter()
                    .zip(sigmas)
                    .map(|(m, &sigma)| match m {
                        Some(mean) => Arc::new(GaussianUnary {
                            mean: *mean,
                            sigma: sigma.max(1e-3),
                        }) as Arc<dyn UnaryPotential>,
                        None => uninformative.clone(),
                    })
                    .collect()
            }
            PriorModel::Region(shape) => {
                let region: Arc<dyn UnaryPotential> = Arc::new(UniformShapeUnary(shape.clone()));
                vec![region; network.len()]
            }
            PriorModel::PartialDropPoint {
                sigma,
                coverage,
                seed,
            } => {
                let mut rng = Xoshiro256pp::seed_from(*seed);
                (0..network.len())
                    .map(|id| match network.planned_position(id) {
                        Some(mean) if rng.bernoulli(*coverage) => Arc::new(GaussianUnary {
                            mean,
                            sigma: *sigma,
                        })
                            as Arc<dyn UnaryPotential>,
                        _ => uninformative.clone(),
                    })
                    .collect()
            }
        }
    }

    /// `true` when this model injects any information beyond the field
    /// boundary.
    pub fn is_informative(&self) -> bool {
        !matches!(self, PriorModel::Uninformative)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsnloc_geom::Vec2;
    use wsnloc_net::network::NetworkBuilder;
    use wsnloc_net::{AnchorStrategy, Deployment, RadioModel, RangingModel};

    fn planned_network() -> Network {
        NetworkBuilder {
            deployment: Deployment::planned_square_drop(1000.0, 4, 60.0),
            node_count: 64,
            anchors: AnchorStrategy::Random { count: 6 },
            radio: RadioModel::UnitDisk { range: 200.0 },
            ranging: RangingModel::Multiplicative { factor: 0.1 },
        }
        .build(1)
        .0
    }

    fn uniform_network() -> Network {
        NetworkBuilder {
            deployment: Deployment::uniform_square(1000.0),
            node_count: 30,
            anchors: AnchorStrategy::Random { count: 4 },
            radio: RadioModel::UnitDisk { range: 200.0 },
            ranging: RangingModel::Multiplicative { factor: 0.1 },
        }
        .build(2)
        .0
    }

    #[test]
    fn uninformative_covers_whole_field() {
        let net = uniform_network();
        let priors = PriorModel::Uninformative.build(&net);
        assert_eq!(priors.len(), net.len());
        let inside = Vec2::new(500.0, 500.0);
        let outside = Vec2::new(-10.0, 500.0);
        assert!(priors[0].log_density(inside).is_finite());
        assert_eq!(priors[0].log_density(outside), f64::NEG_INFINITY);
        assert!(!PriorModel::Uninformative.is_informative());
    }

    #[test]
    fn drop_point_prior_centers_on_plan() {
        let net = planned_network();
        let priors = PriorModel::DropPoint { sigma: 50.0 }.build(&net);
        for (id, prior) in priors.iter().enumerate() {
            let plan = net.planned_position(id).unwrap();
            assert_eq!(prior.log_density(plan), 0.0);
            assert!(prior.log_density(plan + Vec2::new(100.0, 0.0)) < -1.0);
        }
    }

    #[test]
    fn drop_point_falls_back_without_plans() {
        let net = uniform_network();
        let priors = PriorModel::DropPoint { sigma: 50.0 }.build(&net);
        // Uniform deployment has no plans: uniform prior, flat inside.
        let a = priors[0].log_density(Vec2::new(100.0, 100.0));
        let b = priors[0].log_density(Vec2::new(900.0, 900.0));
        assert_eq!(a, b);
    }

    #[test]
    fn region_prior_restricts_support() {
        let net = uniform_network();
        let shape = Shape::Disk {
            center: Vec2::new(500.0, 500.0),
            radius: 200.0,
        };
        let priors = PriorModel::Region(shape).build(&net);
        assert!(priors[3].log_density(Vec2::new(500.0, 500.0)).is_finite());
        assert_eq!(
            priors[3].log_density(Vec2::new(50.0, 50.0)),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn partial_coverage_fraction_respected() {
        let net = planned_network();
        let priors = PriorModel::PartialDropPoint {
            sigma: 50.0,
            coverage: 0.5,
            seed: 9,
        }
        .build(&net);
        // Count nodes with informative priors: their density at the plan
        // beats the density far away.
        let covered = (0..net.len())
            .filter(|&id| {
                let plan = net.planned_position(id).unwrap();
                priors[id].log_density(plan) > priors[id].log_density(plan + Vec2::new(200.0, 0.0))
            })
            .count();
        assert!(
            (10..=54).contains(&covered),
            "covered {covered} out of {}",
            net.len()
        );
        // Same seed → same lottery.
        let again = PriorModel::PartialDropPoint {
            sigma: 50.0,
            coverage: 0.5,
            seed: 9,
        }
        .build(&net);
        for id in 0..net.len() {
            let p = Vec2::new(123.0, 456.0);
            assert_eq!(priors[id].log_density(p), again[id].log_density(p));
        }
    }

    #[test]
    fn per_node_gaussian_mixes_informative_and_flat() {
        let net = uniform_network();
        let mut means = vec![None; net.len()];
        means[0] = Some(Vec2::new(100.0, 100.0));
        let sigmas = vec![10.0; net.len()];
        let priors = PriorModel::PerNodeGaussian { means, sigmas }.build(&net);
        assert_eq!(priors[0].log_density(Vec2::new(100.0, 100.0)), 0.0);
        assert!(priors[0].log_density(Vec2::new(200.0, 100.0)) < -10.0);
        // Node 1 is flat inside the field.
        let a = priors[1].log_density(Vec2::new(100.0, 100.0));
        let b = priors[1].log_density(Vec2::new(800.0, 800.0));
        assert_eq!(a, b);
    }

    #[test]
    fn coverage_extremes() {
        let net = planned_network();
        let none = PriorModel::PartialDropPoint {
            sigma: 50.0,
            coverage: 0.0,
            seed: 1,
        }
        .build(&net);
        let all = PriorModel::PartialDropPoint {
            sigma: 50.0,
            coverage: 1.0,
            seed: 1,
        }
        .build(&net);
        let plan = net.planned_position(0).unwrap();
        let far = plan + Vec2::new(300.0, 0.0);
        // coverage 0: flat (if far is inside the field).
        if none[0].log_density(far).is_finite() {
            assert_eq!(none[0].log_density(plan), none[0].log_density(far));
        }
        // coverage 1: peaked.
        assert!(all[0].log_density(plan) > all[0].log_density(far));
    }
}
