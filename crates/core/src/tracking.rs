//! Temporal tracking of mobile networks.
//!
//! The static algorithm extends to mobility by sequential Bayesian
//! filtering: each time step's posterior, convolved with a motion model,
//! becomes the next step's *pre-knowledge*. [`TrackingLocalizer`] is the
//! tracking facade over a [`LocalizationSession`]: it carries the full
//! per-node **beliefs** between steps (grid histograms, particle sets, or
//! Gaussian moments — see [`crate::session::CarriedBeliefs`]), applying
//! the configured [`MotionModel`] as the predict step, rather than
//! collapsing each posterior to a Gaussian summary and re-entering it as
//! a unary prior.
//!
//! The payoff is *budget*, not just accuracy: with a temporal prior, two or
//! three BP iterations per step suffice, where a memoryless localizer needs
//! its full flooding schedule from scratch every step (experiment F14).
//!
//! Construct through [`TrackingLocalizer::builder`] — the motion
//! configuration is validated into a typed [`ValidationError`] instead of
//! silently producing a tracker that never inflates its prior.

use crate::localizer::BnlLocalizer;
use crate::result::{LocalizationResult, Localizer};
use crate::session::LocalizationSession;
use wsnloc_bayes::{MotionModel, ValidationError};
use wsnloc_net::Network;

/// Sequential Bayesian tracker over network snapshots.
///
/// ```
/// use wsnloc::prelude::*;
///
/// let engine = BnlLocalizer::builder(Backend::particle(100).expect("valid backend"))
///     .try_build()
///     .expect("valid configuration");
/// let tracker = TrackingLocalizer::builder(engine.clone())
///     .motion_per_step(5.0)
///     .try_build()
///     .expect("valid tracker");
/// assert_eq!(tracker.name(), "Track(NBP/particle)");
///
/// // A non-finite motion budget is a typed error, not a silent NaN:
/// assert!(TrackingLocalizer::builder(engine)
///     .motion_per_step(f64::NAN)
///     .try_build()
///     .is_err());
/// ```
#[derive(Debug, Clone)]
pub struct TrackingLocalizer {
    /// The epoch session carrying beliefs between steps.
    pub(crate) session: LocalizationSession,
}

/// Validated builder for [`TrackingLocalizer`].
#[derive(Debug, Clone)]
pub struct TrackingLocalizerBuilder {
    engine: BnlLocalizer,
    motion: Option<MotionModel>,
    motion_per_step: Option<f64>,
}

impl TrackingLocalizerBuilder {
    /// Sets the expected per-step displacement (meters): `max_speed · dt`
    /// of the mobility model, used as the isotropic process-noise sigma.
    /// Must be finite and non-negative.
    #[must_use]
    pub fn motion_per_step(mut self, meters: f64) -> Self {
        self.motion_per_step = Some(meters);
        self.motion = None;
        self
    }

    /// Sets a full motion model (state transition plus anisotropic
    /// process noise), overriding [`Self::motion_per_step`].
    #[must_use]
    pub fn motion(mut self, model: MotionModel) -> Self {
        self.motion = Some(model);
        self.motion_per_step = None;
        self
    }

    /// Validates the configuration and returns the finished tracker.
    ///
    /// # Errors
    /// [`ValidationError::InvalidOption`] when no motion was configured or
    /// `motion_per_step` is negative or non-finite.
    pub fn try_build(self) -> Result<TrackingLocalizer, ValidationError> {
        let motion = match (self.motion, self.motion_per_step) {
            (Some(model), _) => model,
            (None, Some(meters)) => MotionModel::new([1.0, 0.0, 0.0, 1.0], meters, meters)?,
            (None, None) => {
                return Err(ValidationError::InvalidOption {
                    option: "motion",
                    value: f64::NAN,
                    requirement: "a tracker needs motion_per_step(..) or motion(..)",
                });
            }
        };
        Ok(TrackingLocalizer {
            session: LocalizationSession::new(self.engine).with_motion(motion),
        })
    }
}

impl TrackingLocalizer {
    /// Starts a validated builder around the per-step inference engine
    /// (whose prior supplies the step-0 pre-knowledge).
    #[must_use]
    pub fn builder(engine: BnlLocalizer) -> TrackingLocalizerBuilder {
        TrackingLocalizerBuilder {
            engine,
            motion: None,
            motion_per_step: None,
        }
    }

    /// The underlying per-step engine configuration.
    #[must_use]
    pub fn engine(&self) -> &BnlLocalizer {
        self.session.engine()
    }

    /// Resets to the initial (step-0) prior, dropping carried beliefs.
    pub fn reset(&mut self) {
        self.session.reset();
    }

    /// Processes one snapshot and returns its localization result,
    /// carrying the motion-predicted posterior beliefs forward as the
    /// next step's pre-knowledge. A network whose size changed since the
    /// previous step cold-starts instead of carrying stale beliefs.
    pub fn step(&mut self, network: &Network, seed: u64) -> LocalizationResult {
        self.session.advance(network, seed)
    }
}

impl Localizer for TrackingLocalizer {
    fn name(&self) -> String {
        format!("Track({})", self.session.engine().name())
    }

    /// Stateless single-shot interface: equivalent to a fresh step 0.
    fn localize(&self, network: &Network, seed: u64) -> LocalizationResult {
        self.session.engine().localize(network, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsnloc_geom::stats;
    use wsnloc_geom::{Aabb, Shape, Vec2};
    use wsnloc_net::mobility::{MobileWorld, RandomWaypoint};
    use wsnloc_net::{GroundTruth, RadioModel, RangingModel};

    fn world(seed: u64, speed: f64) -> MobileWorld {
        MobileWorld::new(
            Shape::Rect(Aabb::from_size(500.0, 500.0)),
            50,
            8,
            RadioModel::UnitDisk { range: 160.0 },
            RangingModel::Multiplicative { factor: 0.08 },
            RandomWaypoint {
                min_speed: speed,
                max_speed: speed,
                pause: 0.0,
            },
            1.0,
            seed,
        )
    }

    /// A deliberately tight per-step budget: 2 BP iterations. This is the
    /// regime tracking is for — a memoryless run cannot flood anchor
    /// information across the network in 2 iterations, a warm-started one
    /// doesn't need to.
    fn engine() -> BnlLocalizer {
        BnlLocalizer::builder(crate::localizer::Backend::particle(150).expect("valid backend"))
            .max_iterations(2)
            .tolerance(0.0)
            .try_build()
            .expect("valid config")
    }

    fn tracker(motion_per_step: f64) -> TrackingLocalizer {
        TrackingLocalizer::builder(engine())
            .motion_per_step(motion_per_step)
            .try_build()
            .expect("valid tracker")
    }

    fn step_error(result: &LocalizationResult, net: &Network, truth: &[Vec2]) -> f64 {
        let gt = GroundTruth::from_positions(truth.to_vec());
        let errs: Vec<f64> = result
            .errors_for(&gt, Some(net))
            .into_iter()
            .flatten()
            .collect();
        stats::mean(&errs).unwrap_or(f64::NAN)
    }

    #[test]
    fn tracking_beats_memoryless_on_later_steps() {
        let mut w = world(1, 8.0);
        let mut tracker = tracker(10.0);
        let memoryless = engine();
        let mut tracked = Vec::new();
        let mut fresh = Vec::new();
        for t in 0..6u64 {
            let net = w.step();
            let truth = w.positions().to_vec();
            tracked.push(step_error(&tracker.step(&net, t), &net, &truth));
            fresh.push(step_error(&memoryless.localize(&net, t), &net, &truth));
        }
        // After warm-up, the temporal prior must dominate under the tight
        // iteration budget.
        let tracked_tail: f64 = tracked[2..].iter().sum();
        let fresh_tail: f64 = fresh[2..].iter().sum();
        assert!(
            tracked_tail < fresh_tail,
            "tracking {tracked_tail:.1} should beat memoryless {fresh_tail:.1} (per-step: {tracked:?} vs {fresh:?})"
        );
    }

    #[test]
    fn tracker_error_stays_bounded_over_time() {
        let mut w = world(2, 12.0);
        let mut tracker = tracker(15.0);
        let mut errors = Vec::new();
        for t in 0..8u64 {
            let net = w.step();
            let truth = w.positions().to_vec();
            errors.push(step_error(&tracker.step(&net, t), &net, &truth));
        }
        // No divergence: late errors comparable to early ones.
        let early = errors[1];
        let late = errors[7];
        assert!(late < 3.0 * early + 30.0, "tracker diverged: {errors:?}");
    }

    #[test]
    fn reset_restores_initial_prior() {
        let mut w = world(3, 5.0);
        let net = w.step();
        let mut tracker = tracker(6.0);
        let first = tracker.step(&net, 0);
        tracker.reset();
        let again = tracker.step(&net, 0);
        assert_eq!(first.estimates, again.estimates);
    }

    #[test]
    fn name_reflects_engine() {
        assert_eq!(tracker(5.0).name(), "Track(NBP/particle)");
    }

    #[test]
    fn builder_requires_valid_motion() {
        assert!(TrackingLocalizer::builder(engine()).try_build().is_err());
        assert!(TrackingLocalizer::builder(engine())
            .motion_per_step(-1.0)
            .try_build()
            .is_err());
        assert!(TrackingLocalizer::builder(engine())
            .motion_per_step(f64::INFINITY)
            .try_build()
            .is_err());
        assert!(TrackingLocalizer::builder(engine())
            .motion(MotionModel::random_walk(4.0))
            .try_build()
            .is_ok());
    }
}
